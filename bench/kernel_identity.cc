/**
 * @file
 * kernel_identity — does the event kernel change the simulation?
 *
 * The event-kernel hot path (queue data structure, callback storage,
 * message delivery) is pure host engineering: it must never change
 * simulated behaviour.  This guard runs the full figure matrix
 * (fig4-fig7 configurations x all ten workloads) plus jittered
 * RandomTester sweeps and reduces every run to exact integers:
 * simulated cycles, the complete stat dump (FNV-1a hashed, every
 * counter name and value), and the final memory image hash.  Golden
 * values captured from one kernel implementation must match any
 * other bit for bit.
 *
 *   $ ./bench/kernel_identity --write-golden golden.json   # capture
 *   $ ./bench/kernel_identity --golden golden.json         # assert
 *
 * The repository commits the golden captured from the pre-overhaul
 * seed kernel (bench/kernel_identity_golden.json); CI asserts against
 * it, so any ordering or timing drift introduced by kernel work is a
 * hard failure, in the style of obs_overhead's cycle assertions.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/random_tester.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

/** FNV-1a over the full sorted stat dump (names and values). */
std::uint64_t
statHash(StatRegistry &reg)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void *p, std::size_t n) {
        const auto *b = static_cast<const unsigned char *>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 1099511628211ull;
        }
    };
    for (const auto &[name, value] : reg.snapshot()) {
        mix(name.data(), name.size());
        mix(&value, sizeof(value));
    }
    return h;
}

struct Row
{
    std::string workload;
    std::string config;
    bool ok = false;
    Cycles cycles = 0;
    std::uint64_t stats = 0;   ///< statHash of the full dump
};

Row
measure(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    Row row;
    row.workload = wl;
    row.config = cfg.label;
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    row.ok = sys.run() && workload->verify(sys);
    row.cycles = sys.cpuCycles();
    row.stats = statHash(sys.stats());
    return row;
}

/** The stress_jitter fault schedules, reduced to two for run time. */
std::vector<FaultConfig>
jitterSchedules()
{
    std::vector<FaultConfig> s;
    s.emplace_back(); // reference: no faults

    FaultConfig heavy;
    heavy.enabled = true;
    heavy.seed = 202;
    heavy.maxJitter = 40;
    heavy.spikePercent = 8;
    heavy.spikeCycles = 500;
    s.push_back(heavy);

    return s;
}

struct JitterRow
{
    std::string config;
    std::uint64_t seed = 0;
    bool ok = false;
    std::uint64_t image = 0;   ///< final memory image hash
};

} // namespace

int
main(int argc, char **argv)
{
    std::string golden_path;
    bool write_golden = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--golden" && i + 1 < argc) {
            golden_path = argv[++i];
        } else if (arg == "--write-golden" && i + 1 < argc) {
            golden_path = argv[++i];
            write_golden = true;
        } else {
            std::cerr << "usage: kernel_identity "
                         "[--golden f.json | --write-golden f.json]\n";
            return 2;
        }
    }

    // The union of the fig4 (protocol optimisations) and fig6/fig7
    // (state tracking) configuration axes.
    const std::vector<SystemConfig> configs = {
        baselineConfig(),        earlyRespConfig(),
        noCleanVicToMemConfig(), llcWriteBackConfig(),
        ownerTrackingConfig(),   sharerTrackingConfig(),
    };

    bool all_ok = true;
    std::vector<Row> rows;
    for (const std::string &wl : workloadIds()) {
        for (const SystemConfig &cfg : configs) {
            rows.push_back(measure(wl, cfg));
            all_ok = all_ok && rows.back().ok;
        }
    }

    std::vector<JitterRow> jrows;
    for (const SystemConfig &base :
         {baselineConfig(), sharerTrackingConfig()}) {
        for (unsigned s = 0; s < 2; ++s) {
            SystemConfig cfg = base;
            shrinkForTorture(cfg);
            cfg.check = false;

            RandomTesterConfig tcfg;
            tcfg.seed = 1000 + s * 77;
            tcfg.numLocations = 24;
            tcfg.roundsPerLocation = 5;

            JitterSweepResult res =
                runJitterSweep(cfg, tcfg, jitterSchedules());
            JitterRow jr;
            jr.config = cfg.label;
            jr.seed = tcfg.seed;
            jr.ok = res.ok;
            jr.image = res.imageHashes.empty() ? 0 : res.imageHashes[0];
            all_ok = all_ok && jr.ok;
            jrows.push_back(jr);
        }
    }

    JsonValue report = JsonValue::makeObject();
    report.set("bench", JsonValue("kernel_identity"));
    JsonValue jr = JsonValue::makeArray();
    for (const Row &r : rows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("config", JsonValue(r.config));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("statHash", JsonValue(r.stats));
        jr.push(std::move(o));
    }
    report.set("rows", std::move(jr));
    JsonValue jj = JsonValue::makeArray();
    for (const JitterRow &r : jrows) {
        JsonValue o = JsonValue::makeObject();
        o.set("config", JsonValue(r.config));
        o.set("seed", JsonValue(r.seed));
        o.set("ok", JsonValue(r.ok));
        o.set("imageHash", JsonValue(r.image));
        jj.push(std::move(o));
    }
    report.set("jitterRows", std::move(jj));
    report.set("ok", JsonValue(all_ok));

    if (!all_ok) {
        std::cerr << "ERROR: runs failed verification; identity "
                     "comparison void\n";
        report.write(std::cerr, 2);
        std::cerr << '\n';
        return 1;
    }

    if (write_golden) {
        std::ofstream os(golden_path);
        if (!os) {
            std::cerr << "cannot open " << golden_path << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "golden written to " << golden_path << " ("
                  << rows.size() << " runs, " << jrows.size()
                  << " jitter sweeps)\n";
        return 0;
    }

    if (golden_path.empty()) {
        report.write(std::cout, 2);
        std::cout << '\n';
        return 0;
    }

    std::ifstream is(golden_path);
    if (!is) {
        std::cerr << "cannot open golden " << golden_path << '\n';
        return 2;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    JsonValue golden = parseJson(ss.str());

    unsigned mismatches = 0;
    const auto &grows = golden.at("rows").items();
    if (grows.size() != rows.size()) {
        std::cerr << "ERROR: golden has " << grows.size()
                  << " rows, measured " << rows.size() << '\n';
        return 1;
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        const JsonValue &g = grows[i];
        if (g.at("workload").asString() != r.workload ||
            g.at("config").asString() != r.config) {
            std::cerr << "ERROR: row " << i << " identity mismatch ("
                      << r.workload << "/" << r.config << ")\n";
            ++mismatches;
            continue;
        }
        if (g.at("cycles").asUInt() != std::uint64_t(r.cycles)) {
            std::cerr << "ERROR: " << r.workload << " [" << r.config
                      << "]: cycles " << g.at("cycles").asUInt()
                      << " -> " << r.cycles << '\n';
            ++mismatches;
        }
        if (g.at("statHash").asUInt() != r.stats) {
            std::cerr << "ERROR: " << r.workload << " [" << r.config
                      << "]: stat dump hash drifted\n";
            ++mismatches;
        }
    }
    const auto &gjit = golden.at("jitterRows").items();
    if (gjit.size() != jrows.size()) {
        std::cerr << "ERROR: golden has " << gjit.size()
                  << " jitter rows, measured " << jrows.size() << '\n';
        return 1;
    }
    for (std::size_t i = 0; i < jrows.size(); ++i) {
        if (gjit[i].at("imageHash").asUInt() != jrows[i].image) {
            std::cerr << "ERROR: jitter sweep " << jrows[i].config
                      << " seed " << jrows[i].seed
                      << ": final memory image drifted\n";
            ++mismatches;
        }
    }

    if (mismatches) {
        std::cerr << "FAIL: " << mismatches
                  << " mismatch(es) vs golden — the kernel changed "
                     "the simulation\n";
        return 1;
    }
    std::cout << "OK: " << rows.size() << " runs and " << jrows.size()
              << " jitter sweeps bit-identical to golden\n";
    return 0;
}
