/**
 * @file
 * Table II: cache configurations as configured — printed from the
 * live SystemConfig defaults so the table can never drift from the
 * code.
 */

#include <cstdio>

#include "core/system_config.hh"

using namespace hsc;

namespace
{

void
row(const char *name, const CacheGeometry &g, Cycles latency)
{
    double kb = double(g.numSets) * g.assoc * BlockSizeBytes / 1024.0;
    std::printf("%-12s %10.0f KB %8u-way %8u sets %8llu cy\n", name, kb,
                g.assoc, g.numSets, (unsigned long long)latency);
}

} // namespace

int
main()
{
    SystemConfig cfg = baselineConfig();
    std::printf("Table II: cache configurations (64 B lines, TreePLRU)\n\n");
    std::printf("%-12s %13s %12s %13s %11s\n", "cache", "size", "assoc",
                "sets", "latency");
    std::printf("%-12s %8u entries %6u-way %8u sets %8llu cy\n",
                "Directory", cfg.dir.dirEntries, cfg.dir.dirAssoc,
                cfg.dir.dirEntries / cfg.dir.dirAssoc,
                (unsigned long long)cfg.dirLatency);
    row("LLC", cfg.llc.geom, cfg.llcLatency);
    row("L2", cfg.corePair.l2Geom, cfg.corePair.l2Latency);
    row("L1D", cfg.corePair.l1dGeom, cfg.corePair.l2Latency);
    row("L1I", cfg.corePair.l1iGeom, cfg.corePair.l2Latency);
    row("TCC", cfg.tcc.geom, cfg.tcc.latency);
    row("TCP", cfg.tcp.geom, cfg.tcp.latency);
    row("SQC", cfg.sqc.geom, cfg.sqc.latency);
    std::printf("\n(paper Table II: dir 256KB/32-way 20cy, LLC 16MB/16-way "
                "20cy, L2 2MB/8-way, L1D 64KB/2-way, L1I 32KB/2-way, TCC "
                "256KB/16-way 8cy, TCP 16KB/16-way 4cy, SQC 32KB/8-way "
                "1cy)\n");
    return 0;
}
