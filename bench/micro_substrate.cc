/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrates: how
 * fast the event queue, tag arrays, replacement policies and data
 * blocks run on the host.  These gate the wall-clock cost of the
 * figure harnesses.
 */

#include <benchmark/benchmark.h>

#include "cache/cache_array.hh"
#include "mem/data_block.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace hsc
{
namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = int(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(Tick(i % 97), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void
BM_EventQueueSelfScheduling(benchmark::State &state)
{
    const int n = int(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int remaining = n;
        std::function<void()> tick = [&] {
            if (--remaining > 0)
                eq.scheduleIn(1, tick);
        };
        eq.schedule(0, tick);
        eq.run();
        benchmark::DoNotOptimize(remaining);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueSelfScheduling)->Arg(4096);

struct Payload
{
    int state = 0;
};

void
BM_CacheArrayLookupHit(benchmark::State &state)
{
    CacheArray<Payload> arr("bench", {1024, 8});
    Rng rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i) {
        Addr a = blockAlign(rng.next() % (1 << 22));
        if (!arr.lookup(a) && arr.hasFreeWay(a)) {
            arr.allocate(a);
            addrs.push_back(a);
        }
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(arr.lookup(addrs[i % addrs.size()]));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookupHit);

void
BM_TreePlruVictim(benchmark::State &state)
{
    TreePlruPolicy plru(256, 16);
    Rng rng(2);
    for (unsigned s = 0; s < 256; ++s)
        for (unsigned w = 0; w < 16; ++w)
            plru.fill(s, w);
    for (auto _ : state) {
        unsigned set = unsigned(rng.below(256));
        unsigned v = plru.victim(set);
        plru.touch(set, v);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TreePlruVictim);

void
BM_DataBlockMaskedMerge(benchmark::State &state)
{
    DataBlock a, b;
    for (unsigned i = 0; i < BlockSizeBytes; ++i)
        b.raw()[i] = std::uint8_t(i);
    ByteMask mask = makeMask(8, 16) | makeMask(40, 8);
    for (auto _ : state) {
        a.merge(b, mask);
        benchmark::DoNotOptimize(a.raw());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataBlockMaskedMerge);

void
BM_DataBlockFullMerge(benchmark::State &state)
{
    DataBlock a, b;
    for (auto _ : state) {
        a.merge(b, FullMask);
        benchmark::DoNotOptimize(a.raw());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DataBlockFullMerge);

} // namespace
} // namespace hsc

BENCHMARK_MAIN();
