/**
 * @file
 * Figure 5: reduction in main-memory reads and writes issued by the
 * directory, per benchmark, for §III-B (noWBcleanVic), §III-C
 * (llcWB), and llcWB+useL3OnWT relative to the baseline.
 *
 * The paper reports an average 50.38% reduction in memory accesses
 * (dominated by obviating the write-through on every LLC write), with
 * no noticeable extra difference from useL3OnWT on the short runs.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::vector<SystemConfig> configs = {
        baselineConfig(),
        noCleanVicToMemConfig(),
        llcWriteBackConfig(),
        llcWriteBackUseL3Config(),
    };

    std::cout << "Figure 5: directory->memory reads+writes "
                 "(and % reduction vs baseline)\n\n";

    ResultMatrix results = runMatrix(workloadIds(), configs);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "baseline", "noWBcleanVic", "llcWB",
               "llcWB+useL3OnWT", "red%(llcWB+useL3)"},
              {"host_ms", "host_events_per_s"});
    std::vector<double> reductions;
    for (const std::string &wl : workloadIds()) {
        auto &row = results[wl];
        auto total = [&](const char *cfg) {
            return row[cfg].memReads + row[cfg].memWrites;
        };
        double base = double(total("baseline"));
        double best = double(total("llcWB+useL3OnWT"));
        double red = pctSaved(base, best);
        reductions.push_back(red);
        tw.row({wl, TableWriter::fmt(std::uint64_t(base)),
                TableWriter::fmt(total("noWBcleanVic")),
                TableWriter::fmt(total("llcWB")),
                TableWriter::fmt(std::uint64_t(best)),
                TableWriter::fmt(red)},
               hostCells(row));
    }
    tw.rule();
    tw.row({"average", "", "", "", "", TableWriter::fmt(mean(reductions))});

    std::cout << "\npaper reference: 50.38% average reduction in memory "
                 "accesses from obviating memory writes on every LLC "
                 "write.\n";
    return tw.writeCsv() ? 0 : 2;
}
