/**
 * @file
 * Ablation §VII (future work): directory replacement policy.
 *
 * With a deliberately small directory, compares Tree-PLRU (the
 * default), plain LRU, and the paper's proposed state-aware policy
 * (prefer unmodified entries with the fewest sharers, recency as the
 * tiebreak) by cycles, directory evictions and back-invalidation
 * probes.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    auto make = [](const std::string &repl, bool state_aware,
                   const std::string &label) {
        SystemConfig cfg = sharerTrackingConfig();
        scaleHierarchy(cfg);
        cfg.dir.dirRepl = repl;
        cfg.dir.stateAwareDirRepl = state_aware;
        cfg.label = label;
        // Small directory: replacements dominate.
        cfg.dir.dirEntries = 256;
        cfg.dir.dirAssoc = 8;
        return cfg;
    };
    std::vector<SystemConfig> configs = {
        make("TreePLRU", false, "treePLRU"),
        make("LRU", false, "LRU"),
        make("TreePLRU", true, "stateAware"),
    };

    std::cout << "Ablation (§VII): directory replacement policy "
                 "(256-entry directory)\n\n";

    // Configs are customised above (small directory): skip the
    // harness-default rescale inside runMatrix.
    ResultMatrix results = runMatrix(coherenceActiveIds(), configs,
                                     figureParams(), 0, /*scale=*/false);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "plru cyc", "lru cyc", "stateAware cyc",
               "plru dirEvict", "sA dirEvict"},
              {"host_ms", "host_events_per_s"});
    std::vector<double> saved;
    for (const std::string &wl : coherenceActiveIds()) {
        auto &row = results[wl];
        saved.push_back(pctSaved(double(row["treePLRU"].cycles),
                                 double(row["stateAware"].cycles)));
        auto back_inv = [&](const char *cfg) {
            return row[cfg].dirEvictions;
        };
        tw.row({wl, TableWriter::fmt(row["treePLRU"].cycles),
                TableWriter::fmt(row["LRU"].cycles),
                TableWriter::fmt(row["stateAware"].cycles),
                TableWriter::fmt(back_inv("treePLRU")),
                TableWriter::fmt(back_inv("stateAware"))},
               hostCells(row));
    }
    tw.rule();
    tw.row({"stateAware saved% (mean)", "", "",
            TableWriter::fmt(mean(saved)), "", ""});

    std::cout << "\npaper reference: a policy that avoids evicting "
                 "modified/many-sharer entries is expected to beat "
                 "Tree-PLRU (§VII).\n";
    return tw.writeCsv() ? 0 : 2;
}
