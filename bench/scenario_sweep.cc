/**
 * @file
 * scenario_sweep — synthetic scenario fleet harness.
 *
 * Derives one full ScenarioConfig per seed (zipfian skew, bursts,
 * read/write/atomic/vector mix, phases, producer/consumer fan-out),
 * generates each as an hsct trace in memory, and replays it through
 * the standard TraceWorkload frontend on two directory configurations
 * with the runtime coherence sanitizer ON.  Any FAIL row is a real
 * protocol (or frontend) bug on traffic no CHAI workload produces.
 *
 *   $ ./bench/scenario_sweep           # default: seeds 1..10
 *   $ ./bench/scenario_sweep 100       # the full fleet
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "trace/scenario.hh"
#include "workloads/workload.hh"

using namespace hsc;

namespace
{

Cycles
runOne(const ScenarioConfig &sc, const SystemConfig &cfg, bool &ok)
{
    HsaSystem sys(cfg);
    auto wl = makeScenarioWorkload(sc, WorkloadParams{});
    wl->setup(sys);
    bool ran = sys.run();
    ok = ran && wl->verify(sys);
    if (ran && !ok)
        std::fprintf(stderr, "  seed %llu [%s]: replay incomplete\n",
                     (unsigned long long)sc.seed, cfg.label.c_str());
    if (!ran)
        std::fprintf(stderr, "  seed %llu [%s]: %s\n",
                     (unsigned long long)sc.seed, cfg.label.c_str(),
                     sys.failReason().c_str());
    return sys.cpuCycles();
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned num_seeds = 10;
    if (argc > 1) {
        char *end = nullptr;
        num_seeds = unsigned(std::strtoul(argv[1], &end, 10));
        if (!end || *end != '\0' || num_seeds == 0) {
            std::cerr << "usage: scenario_sweep [num_seeds >= 1]\n";
            return 2;
        }
    }

    // The sweep is a correctness fleet, not a timing figure: the
    // sanitizer stays ON in both configurations.
    SystemConfig base = baselineConfig();
    base.label = "baseline";
    SystemConfig sharers = sharerTrackingConfig();
    sharers.label = "sharers";

    std::printf("%-6s %-9s %-9s %-6s  %s\n", "seed", "base-cy",
                "sharer-cy", "ok", "scenario");
    unsigned failures = 0;
    for (std::uint64_t seed = 1; seed <= num_seeds; ++seed) {
        ScenarioConfig sc = scenarioFromSeed(seed);
        bool ok_base = false, ok_sharers = false;
        Cycles cy_base = runOne(sc, base, ok_base);
        Cycles cy_sharers = runOne(sc, sharers, ok_sharers);
        bool ok = ok_base && ok_sharers;
        failures += !ok;
        std::printf("%-6llu %-9llu %-9llu %-6s  %s\n",
                    (unsigned long long)seed,
                    (unsigned long long)cy_base,
                    (unsigned long long)cy_sharers,
                    ok ? "PASS" : "FAIL",
                    describeScenario(sc).c_str());
    }
    if (failures) {
        std::printf("scenario_sweep: %u/%u scenarios FAILED\n",
                    failures, num_seeds);
        return 1;
    }
    std::printf("scenario_sweep: all %u scenarios passed "
                "(checker on)\n", num_seeds);
    return 0;
}
