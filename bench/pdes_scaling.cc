/**
 * @file
 * pdes_scaling — does the parallel kernel actually go faster?
 *
 * Two sweeps over the CPU-heavy tq workload:
 *
 *  - events/s vs worker threads on the big64 machine (74 shards):
 *    the classic sequential kernel, then PDES at 1/2/4/8 workers,
 *    each PDES point with the sharded coherence checker off and on.
 *    PDES rows must agree on simulated cycles (thread-count identity
 *    — asserted here, exhaustively in tests/core/pdes_matrix_test),
 *    and the checker-on rows must report the *same* cycles as the
 *    checker-off rows: the checker is an observer, so turning it on
 *    may cost host time but must never perturb the simulation;
 *    the sequential row legitimately differs by the doorbell
 *    lookahead on kernel-launch/DMA hops;
 *  - simulated cycles and events vs machine size (baseline -> big64
 *    -> big128) at a fixed worker count, showing what the big
 *    presets add to the working set.
 *
 * Host throughput numbers are observations, not simulation results:
 * they jitter with the machine and are only meaningful relative to
 * each other on the same host.  The committed BENCH_pdes.json records
 * the host's hardware_concurrency next to them; regenerate on a
 * >= 8-core host for a meaningful speedup curve (EXPERIMENTS.md).
 *
 *   $ ./bench/pdes_scaling                  # table to stdout
 *   $ ./bench/pdes_scaling --json out.json  # + machine-readable
 *   $ ./bench/pdes_scaling --smoke          # quick CI variant
 */

#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

struct ScalingRow
{
    std::string config;
    std::string mode; ///< "sequential" or "pdes"
    unsigned threads = 0;
    unsigned shards = 0;
    bool checker = false;
    RunMetrics m;
};

ScalingRow
runOne(const SystemConfig &base, const std::string &wl,
       const WorkloadParams &wp, bool pdes, unsigned threads,
       bool checker = false)
{
    SystemConfig cfg = base;
    cfg.check = checker;
    cfg.pdes.enabled = pdes;
    cfg.pdes.threads = threads;
    ScalingRow row;
    row.config = cfg.label;
    row.mode = pdes ? "pdes" : "sequential";
    row.threads = threads;
    row.checker = checker;
    row.m = benchWorkload(wl, cfg, wp);
    row.shards = row.m.pdesShards;
    return row;
}

double
eventsPerSec(const RunMetrics &m)
{
    return m.hostMs > 0 ? double(m.hostEvents) / (m.hostMs / 1000.0)
                        : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::cerr << "usage: pdes_scaling [--smoke] "
                         "[--json out.json]\n";
            return 2;
        }
    }

    const std::string wl = "tq";
    WorkloadParams wp;
    wp.scale = smoke ? 1 : 4;
    const std::vector<unsigned> threadCounts =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};

    bool all_ok = true;

    // --- events/s vs threads on big64 -----------------------------
    std::vector<ScalingRow> scaling;
    scaling.push_back(runOne(big64Config(), wl, wp, false, 0));
    for (unsigned t : threadCounts)
        scaling.push_back(runOne(big64Config(), wl, wp, true, t));
    for (unsigned t : threadCounts)
        scaling.push_back(
            runOne(big64Config(), wl, wp, true, t, /*checker=*/true));

    TableWriter tw(std::cout);
    std::cout << "pdes_scaling: " << wl << " on big64 (scale "
              << wp.scale << "), host concurrency "
              << std::thread::hardware_concurrency() << "\n\n";
    tw.header({"mode", "threads", "checker", "shards", "cycles",
               "events", "host ms", "events/s"});
    const ScalingRow *pdes1 = nullptr;
    const ScalingRow *pdes1_checked = nullptr;
    const ScalingRow *last_unchecked = nullptr;
    for (const ScalingRow &r : scaling) {
        all_ok = all_ok && r.m.ok;
        tw.row({r.mode,
                r.mode == "pdes" ? TableWriter::fmt(std::uint64_t(
                                       r.threads))
                                 : "-",
                r.checker ? "on" : "off",
                TableWriter::fmt(std::uint64_t(r.shards)),
                TableWriter::fmt(std::uint64_t(r.m.cycles)),
                TableWriter::fmt(r.m.hostEvents),
                TableWriter::fmt(r.m.hostMs),
                TableWriter::fmt(eventsPerSec(r.m), 0)});
        if (r.mode != "pdes")
            continue;
        const ScalingRow *&ref = r.checker ? pdes1_checked : pdes1;
        if (!ref) {
            ref = &r;
        } else if (r.m.cycles != ref->m.cycles) {
            std::cerr << "ERROR: pdes " << r.threads
                      << "-thread (checker "
                      << (r.checker ? "on" : "off") << ") cycles "
                      << r.m.cycles << " != 1-thread cycles "
                      << ref->m.cycles
                      << " — thread-count identity broken\n";
            all_ok = false;
        }
        if (!r.checker)
            last_unchecked = &r;
    }
    // The checker-unperturbed guard: a passive observer may cost host
    // time but must not move a single simulated cycle.
    if (pdes1 && pdes1_checked &&
        pdes1->m.cycles != pdes1_checked->m.cycles) {
        std::cerr << "ERROR: checker-on pdes cycles "
                  << pdes1_checked->m.cycles
                  << " != checker-off cycles " << pdes1->m.cycles
                  << " — the sharded checker perturbed the run\n";
        all_ok = false;
    }
    if (pdes1 && last_unchecked && last_unchecked != pdes1) {
        double base = eventsPerSec(pdes1->m);
        double top = eventsPerSec(last_unchecked->m);
        if (base > 0)
            std::cout << "\nspeedup at " << last_unchecked->threads
                      << " threads vs 1: "
                      << TableWriter::fmt(top / base) << "x\n";
    }

    // --- cycles vs machine size at a fixed worker count -----------
    std::vector<SystemConfig> machines = {baselineConfig(),
                                          big64Config()};
    if (!smoke)
        machines.push_back(big128Config());
    std::vector<ScalingRow> sizes;
    for (const SystemConfig &cfg : machines)
        sizes.push_back(runOne(cfg, wl, wp, true, 4));

    std::cout << "\nmachine-size sweep (pdes, 4 threads):\n\n";
    TableWriter tw2(std::cout);
    tw2.header({"config", "shards", "cycles", "events", "host ms"});
    for (const ScalingRow &r : sizes) {
        all_ok = all_ok && r.m.ok;
        tw2.row({r.config, TableWriter::fmt(std::uint64_t(r.shards)),
                 TableWriter::fmt(std::uint64_t(r.m.cycles)),
                 TableWriter::fmt(r.m.hostEvents),
                 TableWriter::fmt(r.m.hostMs)});
    }

    if (!json_path.empty()) {
        auto rowJson = [](const ScalingRow &r) {
            JsonValue o = JsonValue::makeObject();
            o.set("config", JsonValue(r.config));
            o.set("mode", JsonValue(r.mode));
            o.set("threads", JsonValue(std::uint64_t(r.threads)));
            o.set("checker", JsonValue(r.checker));
            o.set("shards", JsonValue(std::uint64_t(r.shards)));
            o.set("ok", JsonValue(r.m.ok));
            o.set("cycles", JsonValue(std::uint64_t(r.m.cycles)));
            o.set("events", JsonValue(r.m.hostEvents));
            o.set("hostMs", JsonValue(r.m.hostMs));
            o.set("eventsPerSec", JsonValue(eventsPerSec(r.m)));
            return o;
        };
        JsonValue report = JsonValue::makeObject();
        report.set("bench", JsonValue("pdes_scaling"));
        report.set("workload", JsonValue(wl));
        report.set("scale", JsonValue(std::uint64_t(wp.scale)));
        report.set("hostConcurrency",
                   JsonValue(std::uint64_t(
                       std::thread::hardware_concurrency())));
        JsonValue js = JsonValue::makeArray();
        for (const ScalingRow &r : scaling)
            js.push(rowJson(r));
        report.set("scaling", std::move(js));
        JsonValue jm = JsonValue::makeArray();
        for (const ScalingRow &r : sizes)
            jm.push(rowJson(r));
        report.set("machineSize", std::move(jm));
        report.set("ok", JsonValue(all_ok));
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot open " << json_path << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "\nJSON written to " << json_path << '\n';
    }

    if (!all_ok) {
        std::cerr << "FAIL: a run failed verification or identity\n";
        return 1;
    }
    return 0;
}
