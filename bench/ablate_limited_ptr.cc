/**
 * @file
 * Ablation §IV-B: limited-pointer sharer lists vs the full map.
 *
 * Sweeps the number of exact sharer pointers (1, 2, 4) against the
 * full-map code and owner-only tracking, reporting probes and cycles.
 * The paper notes exhaustive sharer tracking "scales area linearly"
 * and may pass the point of diminishing returns — this sweep
 * quantifies where the probe-traffic benefit saturates.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::vector<SystemConfig> configs = {
        ownerTrackingConfig(),
        limitedPointerConfig(1),
        limitedPointerConfig(2),
        limitedPointerConfig(4),
        sharerTrackingConfig(), // full map
    };

    std::cout << "Ablation (§IV-B): sharer-pointer budget sweep\n\n";

    ResultMatrix results = runMatrix(coherenceActiveIds(), configs);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "owner", "ptr1", "ptr2", "ptr4", "fullMap"},
              {"host_ms", "host_events_per_s"});
    std::cout << "probes sent by the directory:\n";
    for (const std::string &wl : coherenceActiveIds()) {
        auto &row = results[wl];
        tw.row({wl, TableWriter::fmt(row["ownerTracking"].probes),
                TableWriter::fmt(row["limitedPtr1"].probes),
                TableWriter::fmt(row["limitedPtr2"].probes),
                TableWriter::fmt(row["limitedPtr4"].probes),
                TableWriter::fmt(row["sharersTracking"].probes)},
               hostCells(row));
    }
    tw.rule();
    std::cout << "cycles:\n";
    for (const std::string &wl : coherenceActiveIds()) {
        auto &row = results[wl];
        tw.row({wl, TableWriter::fmt(row["ownerTracking"].cycles),
                TableWriter::fmt(row["limitedPtr1"].cycles),
                TableWriter::fmt(row["limitedPtr2"].cycles),
                TableWriter::fmt(row["limitedPtr4"].cycles),
                TableWriter::fmt(row["sharersTracking"].cycles)},
               hostCells(row));
    }

    std::cout << "\npaper reference: owner-only tracking already captures "
                 "most of the benefit; a few pointers close most of the "
                 "remaining gap to the full map.\n";
    return tw.writeCsv() ? 0 : 2;
}
