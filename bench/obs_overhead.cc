/**
 * @file
 * obs_overhead — what does transaction tracing cost, and does it
 * perturb the simulation?
 *
 * Every workload runs three times on identical configurations except
 * SystemConfig::obs: tracing off, tracing on, and tracing on with
 * time-series sampling.  The observability layer is a passive
 * observer, so simulated cycles must be bit-identical across all
 * three runs (asserted, not assumed — this is the guard CI relies
 * on); the interesting number is the host-time overhead of tracing,
 * reported per workload and as a mean, together with the tracer's
 * own span counters.
 *
 *   $ ./bench/obs_overhead                 # table to stdout
 *   $ ./bench/obs_overhead overhead.json   # plus JSON report
 */

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "obs/tracer.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

struct Row
{
    std::string workload;
    std::string config;
    bool ok = false;
    Cycles cycles = 0;          ///< simulated (identical off/on)
    double wallOffMs = 0.0;
    double wallOnMs = 0.0;
    std::uint64_t spansCompleted = 0;
    std::uint64_t ringDropped = 0;

    double
    overheadPct() const
    {
        return wallOffMs > 0.0
                   ? (wallOnMs - wallOffMs) / wallOffMs * 100.0
                   : 0.0;
    }
};

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

/** One timed workload run under the given observability config. */
bool
timedRun(const std::string &wl, SystemConfig cfg, bool obs_on,
         Cycles sampling, Cycles &cycles, double &wall_ms,
         Row *stats_out)
{
    cfg.obs.enabled = obs_on;
    cfg.obs.samplingInterval = sampling;
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool ok = sys.run() && workload->verify(sys);
    wall_ms = millisSince(t0);
    cycles = sys.cpuCycles();
    if (stats_out && sys.tracer()) {
        stats_out->spansCompleted = sys.tracer()->completed();
        stats_out->ringDropped = sys.tracer()->ringDropped();
    }
    return ok;
}

Row
measure(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    Row row;
    row.workload = wl;
    row.config = cfg.label;

    Cycles cy_off = 0, cy_on = 0, cy_sampled = 0;
    double wall_sampled = 0.0;
    bool ok_off =
        timedRun(wl, cfg, false, 0, cy_off, row.wallOffMs, nullptr);
    bool ok_on = timedRun(wl, cfg, true, 0, cy_on, row.wallOnMs, &row);
    bool ok_sampled =
        timedRun(wl, cfg, true, 100, cy_sampled, wall_sampled, nullptr);
    row.cycles = cy_on;
    // A passive observer may not perturb the simulation.
    row.ok = ok_off && ok_on && ok_sampled && cy_off == cy_on &&
             cy_off == cy_sampled;
    if (cy_off != cy_on) {
        std::cerr << "ERROR: " << wl
                  << ": tracing changed simulated cycles (" << cy_off
                  << " vs " << cy_on << ")\n";
    }
    if (cy_off != cy_sampled) {
        std::cerr << "ERROR: " << wl
                  << ": sampling changed simulated cycles (" << cy_off
                  << " vs " << cy_sampled << ")\n";
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<Row> rows;
    for (const std::string &wl : workloadIds())
        rows.push_back(measure(wl, sharerTrackingConfig()));

    TableWriter tw(std::cout);
    tw.header({"workload", "config", "cycles", "off ms", "on ms",
               "ovh %", "spans", "ring drops", "result"});
    std::vector<double> overheads;
    bool all_ok = true;
    for (const Row &r : rows) {
        overheads.push_back(r.overheadPct());
        all_ok = all_ok && r.ok;
        tw.row({r.workload, r.config, TableWriter::fmt(r.cycles),
                TableWriter::fmt(r.wallOffMs),
                TableWriter::fmt(r.wallOnMs),
                TableWriter::fmt(r.overheadPct()),
                TableWriter::fmt(r.spansCompleted),
                TableWriter::fmt(r.ringDropped),
                r.ok ? "OK" : "FAIL"});
    }
    tw.rule();
    tw.row({"mean", "", "", "", "", TableWriter::fmt(mean(overheads)),
            "", "", all_ok ? "OK" : "FAIL"});

    JsonValue report = JsonValue::makeObject();
    report.set("bench", JsonValue("obs_overhead"));
    JsonValue jrows = JsonValue::makeArray();
    for (const Row &r : rows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("config", JsonValue(r.config));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("wallOffMs", JsonValue(r.wallOffMs));
        o.set("wallOnMs", JsonValue(r.wallOnMs));
        o.set("overheadPct", JsonValue(r.overheadPct()));
        o.set("obs.spansCompleted", JsonValue(r.spansCompleted));
        o.set("obs.ringDropped", JsonValue(r.ringDropped));
        jrows.push(std::move(o));
    }
    report.set("rows", std::move(jrows));
    report.set("meanOverheadPct", JsonValue(mean(overheads)));
    report.set("ok", JsonValue(all_ok));

    if (argc > 1) {
        std::ofstream os(argv[1]);
        if (!os) {
            std::cerr << "cannot open " << argv[1] << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "JSON report written to " << argv[1] << '\n';
    } else {
        std::cout << '\n';
        report.write(std::cout, 2);
        std::cout << '\n';
    }
    return all_ok ? 0 : 1;
}
