/**
 * @file
 * Ablation §III-A: early-dirty-response sensitivity to memory latency.
 *
 * The paper argues the early response matters most "when the latency
 * of memory or LLC access is significantly higher than the probe
 * round-trip".  This harness sweeps the memory latency and reports
 * the cycles saved by §III-A on the probe-heavy workloads, plus the
 * number of transactions that actually took the early path.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main()
{
    const std::vector<Cycles> latencies = {60, 150, 400};

    std::cout << "Ablation (§III-A): early dirty response vs memory "
                 "latency\n\n";

    TableWriter tw(std::cout);
    tw.header({"benchmark", "memLat", "base cyc", "early cyc", "saved%",
               "earlyResponses"});
    for (Cycles lat : latencies) {
        std::vector<double> saved;
        for (const std::string &wl : {std::string("tq"),
                                      std::string("trns"),
                                      std::string("rscd")}) {
            SystemConfig base = baselineConfig();
            SystemConfig early = earlyRespConfig();
            base.memLatency = early.memLatency = lat;
            scaleHierarchy(base);
            scaleHierarchy(early);
            RunMetrics mb = benchWorkload(wl, base, figureParams());
            RunMetrics me = benchWorkload(wl, early, figureParams());
            double s = pctSaved(double(mb.cycles), double(me.cycles));
            saved.push_back(s);
            tw.row({wl, TableWriter::fmt(std::uint64_t(lat)),
                    TableWriter::fmt(mb.cycles),
                    TableWriter::fmt(me.cycles), TableWriter::fmt(s),
                    TableWriter::fmt(me.earlyResponses)});
        }
        tw.rule();
    }

    std::cout << "\npaper reference: early probe responses 'do not "
                 "produce significant improvements' at the evaluated "
                 "latencies; the benefit grows with the memory/probe "
                 "latency ratio.\n";
    return 0;
}
