/**
 * @file
 * Ablation §III-A: early-dirty-response sensitivity to memory latency.
 *
 * The paper argues the early response matters most "when the latency
 * of memory or LLC access is significantly higher than the probe
 * round-trip".  This harness sweeps the memory latency and reports
 * the cycles saved by §III-A on the probe-heavy workloads, plus the
 * number of transactions that actually took the early path.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    const std::vector<Cycles> latencies = {60, 150, 400};
    const std::vector<std::string> wls = {"tq", "trns", "rscd"};

    std::cout << "Ablation (§III-A): early dirty response vs memory "
                 "latency\n\n";

    std::vector<SystemConfig> configs;
    for (Cycles lat : latencies) {
        SystemConfig base = baselineConfig();
        SystemConfig early = earlyRespConfig();
        base.memLatency = early.memLatency = lat;
        scaleHierarchy(base);
        scaleHierarchy(early);
        base.label = "base" + std::to_string(lat);
        early.label = "early" + std::to_string(lat);
        configs.push_back(base);
        configs.push_back(early);
    }
    // Configs carry their own memLatency: skip the rescale.
    ResultMatrix results =
        runMatrix(wls, configs, figureParams(), 0, /*scale=*/false);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "memLat", "base cyc", "early cyc", "saved%",
               "earlyResponses"},
              {"host_ms", "host_events_per_s"});
    for (Cycles lat : latencies) {
        for (const std::string &wl : wls) {
            auto &row = results[wl];
            const RunMetrics &mb = row["base" + std::to_string(lat)];
            const RunMetrics &me = row["early" + std::to_string(lat)];
            double s = pctSaved(double(mb.cycles), double(me.cycles));
            tw.row({wl, TableWriter::fmt(std::uint64_t(lat)),
                    TableWriter::fmt(mb.cycles),
                    TableWriter::fmt(me.cycles), TableWriter::fmt(s),
                    TableWriter::fmt(me.earlyResponses)},
                   hostCells(row));
        }
        tw.rule();
    }

    std::cout << "\npaper reference: early probe responses 'do not "
                 "produce significant improvements' at the evaluated "
                 "latencies; the benefit grows with the memory/probe "
                 "latency ratio.\n";
    return tw.writeCsv() ? 0 : 2;
}
