/**
 * @file
 * Table III: system configuration as simulated, printed from the live
 * defaults.
 */

#include <cstdio>

#include "core/system_config.hh"

using namespace hsc;

int
main()
{
    SystemConfig cfg = baselineConfig();
    std::printf("Table III: system configuration simulated\n\n");
    std::printf("%-28s %u\n", "#CUs", cfg.numCus);
    std::printf("%-28s %u\n", "#SIMDs (wavefronts) per CU",
                cfg.wavefrontsPerCu);
    std::printf("%-28s %u\n", "#lanes per wavefront",
                cfg.lanesPerWavefront);
    std::printf("%-28s %u\n", "#TCPs per CU", 1u);
    std::printf("%-28s %u\n", "#TCCs", cfg.topo.numTccs);
    std::printf("%-28s %u / %u\n", "#CorePairs / #CPUs",
                cfg.topo.numCorePairs, cfg.topo.numCorePairs * 2);
    std::printf("%-28s %.1f GHz\n", "CPU freq.", cfg.cpuMHz / 1000.0);
    std::printf("%-28s %.1f GHz\n", "GPU freq.", cfg.gpuMHz / 1000.0);
    std::printf("%-28s %llu CPU cycles\n", "memory latency",
                (unsigned long long)cfg.memLatency);
    std::printf("%-28s %llu CPU cycles\n", "directory link latency",
                (unsigned long long)cfg.linkLatency);
    std::printf("\n(paper Table III: 8 CUs / 16 SIMDs per CU, 1 TCP per "
                "CU, 1 TCC, 4 CorePairs / 8 CPUs, 3.5 GHz CPU, 1.1 GHz "
                "GPU)\n");
    return 0;
}
