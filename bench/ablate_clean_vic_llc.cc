/**
 * @file
 * Ablation §III-B1: should clean victims be cached in the LLC at all?
 *
 * The paper evaluated dropping clean victims entirely ("lost in the
 * air") and found *inconsistent* improvement/degradation: it helps
 * when clean victims would pollute the LLC (read-once data) and hurts
 * when another agent re-reads the line soon after the eviction.  This
 * harness reproduces that comparison.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::vector<SystemConfig> configs = {
        noCleanVicToMemConfig(), // §III-B: clean victims still cached
        noCleanVicToLlcConfig(), // §III-B1: clean victims dropped
    };

    std::cout << "Ablation (§III-B1): caching clean victims in the LLC\n\n";

    ResultMatrix results = runMatrix(workloadIds(), configs);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "cached cyc", "dropped cyc", "saved%",
               "cached LLC hit%", "dropped LLC hit%"},
              {"host_ms", "host_events_per_s"});
    std::vector<double> saved;
    auto hit_pct = [](const RunMetrics &m) {
        return m.llcReads ? 100.0 * double(m.llcHits) / double(m.llcReads)
                          : 0.0;
    };
    for (const std::string &wl : workloadIds()) {
        auto &row = results[wl];
        const RunMetrics &cached = row["noWBcleanVic"];
        const RunMetrics &dropped = row["noCleanVicLLC"];
        double s = pctSaved(double(cached.cycles), double(dropped.cycles));
        saved.push_back(s);
        tw.row({wl, TableWriter::fmt(cached.cycles),
                TableWriter::fmt(dropped.cycles), TableWriter::fmt(s),
                TableWriter::fmt(hit_pct(cached)),
                TableWriter::fmt(hit_pct(dropped))},
               hostCells(row));
    }
    tw.rule();
    tw.row({"average", "", "", TableWriter::fmt(mean(saved)), "", ""});

    std::cout << "\npaper reference: inconsistent improvement and "
                 "degradation across benchmarks (§III-B1), which is why "
                 "the variant is evaluated but not adopted.\n";
    return tw.writeCsv() ? 0 : 2;
}
