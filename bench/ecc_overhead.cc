/**
 * @file
 * ecc_overhead — what does the storage-fault/ECC model cost, and does
 * an armed-but-quiet model perturb a clean simulation?
 *
 * Every workload runs three times on identical configurations except
 * the storage-fault knobs: model off, model enabled at zero fault
 * rate ("armed"), and model enabled at a steady single-bit rate with
 * double-bit events off and the background scrubber running
 * ("correcting").  The armed run must be bit-identical to the off run
 * (cycles + full stat dump) — the injector sits on the access path of
 * every cache data array, so this is the guard that the tax of having
 * the model compiled in and switched on is *zero draws, zero ticks*.
 * The correcting run must end attributed: either verification passes
 * with every flip corrected/scrubbed, or an accumulated double hit is
 * contained.  The interesting numbers are the host-time overhead of
 * the injector draws and the corrected/scrub-repair counts.
 *
 *   $ ./bench/ecc_overhead                 # table to stdout
 *   $ ./bench/ecc_overhead ecc.json        # plus JSON report
 */

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "sim/hash.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

/** FNV-1a over the stat dump, minus the model's own ".storage."
 *  counter group — arming the model registers those names, and the
 *  guard compares runs with the group present vs absent. */
std::uint64_t
statHash(StatRegistry &reg)
{
    std::uint64_t h = FnvOffsetBasis;
    for (const auto &[name, value] : reg.snapshot()) {
        if (name.find(".storage.") != std::string::npos)
            continue;
        h = fnvBytes(name.data(), name.size(), h);
        h = fnvBytes(&value, sizeof(value), h);
    }
    return h;
}

struct Row
{
    std::string workload;
    bool ok = false;
    Cycles cycles = 0;         ///< simulated (identical off/armed)
    double wallOffMs = 0.0;
    double wallArmedMs = 0.0;
    double wallCorrMs = 0.0;
    bool contained = false;    ///< correcting run hit a double
    std::uint64_t corrected = 0;
    std::uint64_t scrubRepairs = 0;

    double
    overheadPct() const
    {
        return wallOffMs > 0.0
                   ? (wallArmedMs - wallOffMs) / wallOffMs * 100.0
                   : 0.0;
    }
};

struct RunOut
{
    bool passed = false;
    bool contained = false;
    Cycles cycles = 0;
    std::uint64_t stats = 0;
    StorageSummary storage;
    double wallMs = 0.0;
};

RunOut
timedRun(const std::string &wl, const SystemConfig &cfg)
{
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    RunOut out;
    auto t0 = std::chrono::steady_clock::now();
    out.passed = sys.run() && workload->verify(sys);
    out.wallMs = millisSince(t0);
    out.contained = sys.containmentReport().contained();
    out.cycles = sys.cpuCycles();
    out.stats = statHash(sys.stats());
    out.storage = sys.storageSummary();
    return out;
}

Row
measure(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    Row row;
    row.workload = wl;

    SystemConfig armed = cfg;
    armed.storageFault.enabled = true; // zero rate: no fault source
    SystemConfig corr = cfg;
    corr.storageFault.enabled = true;
    corr.storageFault.flipPer10kAccesses = 50;
    corr.storageFault.doublePer10k = 0;
    corr.storageFault.scrubIntervalCycles = 2000;

    RunOut off = timedRun(wl, cfg);
    RunOut on = timedRun(wl, armed);
    RunOut cr = timedRun(wl, corr);
    row.cycles = on.cycles;
    row.wallOffMs = off.wallMs;
    row.wallArmedMs = on.wallMs;
    row.wallCorrMs = cr.wallMs;
    row.contained = cr.contained;
    row.corrected = cr.storage.corrected;
    row.scrubRepairs = cr.storage.scrubRepairs;
    // Armed-at-zero-rate must be invisible; the correcting run must
    // be attributed (clean pass on corrected singles, or contained).
    row.ok = off.passed && on.passed &&
             off.cycles == on.cycles && off.stats == on.stats &&
             (cr.passed || cr.contained) && cr.storage.corrected > 0;
    if (off.cycles != on.cycles || off.stats != on.stats) {
        std::cerr << "ERROR: " << wl
                  << ": armed storage-fault model changed the "
                     "simulation ("
                  << off.cycles << " vs " << on.cycles << " cycles)\n";
    }
    if (!cr.passed && !cr.contained) {
        std::cerr << "ERROR: " << wl
                  << ": correcting run escaped attribution\n";
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<Row> rows;
    for (const std::string &wl : workloadIds())
        rows.push_back(measure(wl, sharerTrackingConfig()));

    TableWriter tw(std::cout);
    tw.header({"workload", "cycles", "off ms", "armed ms", "ovh %",
               "corr ms", "corrected", "scrubbed", "outcome",
               "result"});
    std::vector<double> overheads;
    bool all_ok = true;
    for (const Row &r : rows) {
        overheads.push_back(r.overheadPct());
        all_ok = all_ok && r.ok;
        tw.row({r.workload, TableWriter::fmt(r.cycles),
                TableWriter::fmt(r.wallOffMs),
                TableWriter::fmt(r.wallArmedMs),
                TableWriter::fmt(r.overheadPct()),
                TableWriter::fmt(r.wallCorrMs),
                TableWriter::fmt(r.corrected),
                TableWriter::fmt(r.scrubRepairs),
                r.contained ? "contained" : "corrected",
                r.ok ? "OK" : "FAIL"});
    }
    tw.rule();
    tw.row({"mean", "", "", "", TableWriter::fmt(mean(overheads)), "",
            "", "", "", all_ok ? "OK" : "FAIL"});

    JsonValue report = JsonValue::makeObject();
    report.set("bench", JsonValue("ecc_overhead"));
    JsonValue jrows = JsonValue::makeArray();
    for (const Row &r : rows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("wallOffMs", JsonValue(r.wallOffMs));
        o.set("wallArmedMs", JsonValue(r.wallArmedMs));
        o.set("wallCorrMs", JsonValue(r.wallCorrMs));
        o.set("overheadPct", JsonValue(r.overheadPct()));
        o.set("contained", JsonValue(r.contained));
        o.set("corrected", JsonValue(r.corrected));
        o.set("scrubRepairs", JsonValue(r.scrubRepairs));
        jrows.push(std::move(o));
    }
    report.set("rows", std::move(jrows));
    report.set("meanOverheadPct", JsonValue(mean(overheads)));
    report.set("ok", JsonValue(all_ok));

    if (argc > 1) {
        std::ofstream os(argv[1]);
        if (!os) {
            std::cerr << "cannot open " << argv[1] << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "JSON report written to " << argv[1] << '\n';
    } else {
        std::cout << '\n';
        report.write(std::cout, 2);
        std::cout << '\n';
    }
    return all_ok ? 0 : 1;
}
