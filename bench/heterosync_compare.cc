/**
 * @file
 * Benchmark-selection study (§V): CHAI vs HeteroSync.
 *
 * The paper chose CHAI because HeteroSync (GPU-only synchronisation
 * microbenchmarks) showed effects that were "not prominent due to
 * their limited collaborative properties".  This harness quantifies
 * that: the tracking directory's cycle improvement on the
 * coherence-active CHAI workloads vs the HeteroSync-style ones.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

void
section(const char *title, const std::vector<std::string> &ids,
        std::vector<double> &saved_out)
{
    std::cout << title << "\n";
    TableWriter tw(std::cout);
    tw.header({"benchmark", "baseline cyc", "tracking cyc", "saved%",
               "probes base", "probes trk"});
    for (const std::string &wl : ids) {
        SystemConfig base = baselineConfig();
        SystemConfig trk = sharerTrackingConfig();
        scaleHierarchy(base);
        scaleHierarchy(trk);
        RunMetrics mb = benchWorkload(wl, base, figureParams());
        RunMetrics mt = benchWorkload(wl, trk, figureParams());
        if (!mb.ok || !mt.ok)
            std::cerr << "WARNING: " << wl << " failed\n";
        double s = pctSaved(double(mb.cycles), double(mt.cycles));
        saved_out.push_back(s);
        tw.row({wl, TableWriter::fmt(mb.cycles),
                TableWriter::fmt(mt.cycles), TableWriter::fmt(s),
                TableWriter::fmt(mb.probes), TableWriter::fmt(mt.probes)});
    }
    std::cout << "\n";
}

} // namespace

int
main()
{
    std::cout << "Benchmark selection (§V): collaborative CHAI vs "
                 "GPU-only HeteroSync\n\n";

    std::vector<double> chai, hs;
    section("CHAI (coherence-active):", coherenceActiveIds(), chai);
    section("HeteroSync-style:", heteroSyncIds(), hs);

    std::cout << "mean saved%: CHAI " << TableWriter::fmt(mean(chai))
              << "  vs  HeteroSync " << TableWriter::fmt(mean(hs))
              << "\n\npaper reference: \"the effects of the enhancements "
                 "are not prominent [on HeteroSync] due to their limited "
                 "collaborative properties\" — the collaborative suite "
                 "benefits far more.\n";
    return 0;
}
