/**
 * @file
 * Benchmark-selection study (§V): CHAI vs HeteroSync.
 *
 * The paper chose CHAI because HeteroSync (GPU-only synchronisation
 * microbenchmarks) showed effects that were "not prominent due to
 * their limited collaborative properties".  This harness quantifies
 * that: the tracking directory's cycle improvement on the
 * coherence-active CHAI workloads vs the HeteroSync-style ones.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

void
section(const char *title, const std::vector<std::string> &ids,
        const std::string &csv_path, std::vector<double> &saved_out)
{
    std::cout << title << "\n";
    ResultMatrix results = runMatrix(
        ids, {baselineConfig(), sharerTrackingConfig()});
    BenchTable tw(std::cout, csv_path);
    tw.header({"benchmark", "baseline cyc", "tracking cyc", "saved%",
               "probes base", "probes trk"},
              {"host_ms", "host_events_per_s"});
    for (const std::string &wl : ids) {
        auto &row = results[wl];
        const RunMetrics &mb = row["baseline"];
        const RunMetrics &mt = row["sharersTracking"];
        double s = pctSaved(double(mb.cycles), double(mt.cycles));
        saved_out.push_back(s);
        tw.row({wl, TableWriter::fmt(mb.cycles),
                TableWriter::fmt(mt.cycles), TableWriter::fmt(s),
                TableWriter::fmt(mb.probes), TableWriter::fmt(mt.probes)},
               hostCells(row));
    }
    tw.writeCsv();
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::cout << "Benchmark selection (§V): collaborative CHAI vs "
                 "GPU-only HeteroSync\n\n";

    // Optional argv[1]/argv[2]: CSV mirrors of the two sections.
    std::vector<double> chai, hs;
    section("CHAI (coherence-active):", coherenceActiveIds(),
            argc > 1 ? argv[1] : "", chai);
    section("HeteroSync-style:", heteroSyncIds(),
            argc > 2 ? argv[2] : "", hs);

    std::cout << "mean saved%: CHAI " << TableWriter::fmt(mean(chai))
              << "  vs  HeteroSync " << TableWriter::fmt(mean(hs))
              << "\n\npaper reference: \"the effects of the enhancements "
                 "are not prominent [on HeteroSync] due to their limited "
                 "collaborative properties\" — the collaborative suite "
                 "benefits far more.\n";
    return 0;
}
