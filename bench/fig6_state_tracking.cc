/**
 * @file
 * Figure 6: performance increments of owner tracking and sharer
 * tracking (§IV) in %-saved simulated cycles over the baseline, on
 * the five most coherence-active benchmarks.
 *
 * The paper reports a 14.4% average improvement, driven by eliding
 * unnecessary probes (and LLC/memory reads) on directory hits.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::vector<SystemConfig> configs = {
        baselineConfig(),
        ownerTrackingConfig(),
        sharerTrackingConfig(),
    };

    std::cout << "Figure 6: % saved simulated cycles over baseline "
                 "(precise state tracking)\n\n";

    ResultMatrix results = runMatrix(coherenceActiveIds(), configs);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "base cycles", "owner%", "sharers%"},
              {"host_ms", "host_events_per_s"});
    std::vector<double> mo, ms;
    for (const std::string &wl : coherenceActiveIds()) {
        auto &row = results[wl];
        double base = double(row["baseline"].cycles);
        double owner = pctSaved(base, double(row["ownerTracking"].cycles));
        double sharers =
            pctSaved(base, double(row["sharersTracking"].cycles));
        mo.push_back(owner);
        ms.push_back(sharers);
        tw.row({wl, TableWriter::fmt(row["baseline"].cycles),
                TableWriter::fmt(owner), TableWriter::fmt(sharers)},
               hostCells(row));
    }
    tw.rule();
    tw.row({"average", "", TableWriter::fmt(mean(mo)),
            TableWriter::fmt(mean(ms))});

    std::cout << "\npaper reference: 14.4% average improvement over the "
                 "five benchmarks tested.\n";
    return tw.writeCsv() ? 0 : 2;
}
