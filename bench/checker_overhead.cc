/**
 * @file
 * checker_overhead — what does the runtime coherence sanitizer cost?
 *
 * Every workload runs twice on identical configurations except
 * SystemConfig::check, timing host wall-clock for both.  The checker
 * is a passive observer, so simulated cycles must not move at all
 * (that is asserted, not assumed); the interesting number is the
 * host-time overhead, reported per workload and as a mean, together
 * with the checker's own work counters.
 *
 *   $ ./bench/checker_overhead                 # table to stdout
 *   $ ./bench/checker_overhead overhead.json   # plus JSON report
 */

#include <chrono>
#include <iostream>
#include <fstream>

#include "bench/bench_util.hh"
#include "core/random_tester.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

struct Row
{
    std::string workload;
    std::string config;
    bool ok = false;
    Cycles cycles = 0;          ///< simulated (identical on/off)
    double wallOffMs = 0.0;
    double wallOnMs = 0.0;
    std::uint64_t transitionsChecked = 0;
    std::uint64_t blocksShadowed = 0;

    double
    overheadPct() const
    {
        return wallOffMs > 0.0
                   ? (wallOnMs - wallOffMs) / wallOffMs * 100.0
                   : 0.0;
    }
};

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

/** One timed workload run; returns simulated cycles via @p cycles. */
bool
timedRun(const std::string &wl, SystemConfig cfg, bool check,
         Cycles &cycles, double &wall_ms, Row *stats_out)
{
    cfg.check = check;
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool ok = sys.run() && workload->verify(sys);
    wall_ms = millisSince(t0);
    cycles = sys.cpuCycles();
    if (stats_out && sys.checker()) {
        stats_out->transitionsChecked =
            sys.checker()->transitionsChecked();
        stats_out->blocksShadowed = sys.checker()->blocksShadowed();
    }
    return ok;
}

Row
measure(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    Row row;
    row.workload = wl;
    row.config = cfg.label;

    Cycles cycles_off = 0, cycles_on = 0;
    bool ok_off =
        timedRun(wl, cfg, false, cycles_off, row.wallOffMs, nullptr);
    bool ok_on = timedRun(wl, cfg, true, cycles_on, row.wallOnMs, &row);
    row.cycles = cycles_on;
    // A passive checker may not perturb the simulation.
    row.ok = ok_off && ok_on && cycles_off == cycles_on;
    if (cycles_off != cycles_on) {
        std::cerr << "ERROR: " << wl
                  << ": checker changed simulated cycles (" << cycles_off
                  << " vs " << cycles_on << ")\n";
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<Row> rows;
    for (const std::string &wl : workloadIds())
        rows.push_back(measure(wl, sharerTrackingConfig()));

    TableWriter tw(std::cout);
    tw.header({"workload", "config", "cycles", "off ms", "on ms",
               "ovh %", "transitions", "blocks", "result"});
    std::vector<double> overheads;
    bool all_ok = true;
    for (const Row &r : rows) {
        overheads.push_back(r.overheadPct());
        all_ok = all_ok && r.ok;
        tw.row({r.workload, r.config, TableWriter::fmt(r.cycles),
                TableWriter::fmt(r.wallOffMs), TableWriter::fmt(r.wallOnMs),
                TableWriter::fmt(r.overheadPct()),
                TableWriter::fmt(r.transitionsChecked),
                TableWriter::fmt(r.blocksShadowed),
                r.ok ? "OK" : "FAIL"});
    }
    tw.rule();
    tw.row({"mean", "", "", "", "", TableWriter::fmt(mean(overheads)),
            "", "", all_ok ? "OK" : "FAIL"});

    JsonValue report = JsonValue::makeObject();
    report.set("bench", JsonValue("checker_overhead"));
    JsonValue jrows = JsonValue::makeArray();
    for (const Row &r : rows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("config", JsonValue(r.config));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("wallOffMs", JsonValue(r.wallOffMs));
        o.set("wallOnMs", JsonValue(r.wallOnMs));
        o.set("overheadPct", JsonValue(r.overheadPct()));
        o.set("checker.transitionsChecked",
              JsonValue(r.transitionsChecked));
        o.set("checker.blocksShadowed", JsonValue(r.blocksShadowed));
        jrows.push(std::move(o));
    }
    report.set("rows", std::move(jrows));
    report.set("meanOverheadPct", JsonValue(mean(overheads)));
    report.set("ok", JsonValue(all_ok));

    if (argc > 1) {
        std::ofstream os(argv[1]);
        if (!os) {
            std::cerr << "cannot open " << argv[1] << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "JSON report written to " << argv[1] << '\n';
    } else {
        std::cout << '\n';
        report.write(std::cout, 2);
        std::cout << '\n';
    }
    return all_ok ? 0 : 1;
}
