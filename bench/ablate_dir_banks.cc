/**
 * @file
 * Ablation (§VII future work): distributed (banked) directories.
 *
 * The paper reserves distributed directories for scalability as future
 * work; the tracking directory here is bank-compatible.  This harness
 * sweeps the bank count under a directory with a realistic service
 * rate (transactions cannot start back-to-back), showing how banking
 * relieves directory occupancy on the atomics-heavy workloads.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main()
{
    std::cout << "Ablation (§VII): directory banking "
                 "(service period 8 cycles per bank)\n\n";

    TableWriter tw(std::cout);
    tw.header({"benchmark", "1 bank", "2 banks", "4 banks",
               "saved% (4 banks)"});
    std::vector<double> saved;
    for (const std::string &wl : coherenceActiveIds()) {
        std::map<unsigned, RunMetrics> by_banks;
        for (unsigned banks : {1u, 2u, 4u}) {
            SystemConfig cfg = sharerTrackingConfig();
            scaleHierarchy(cfg);
            cfg.numDirBanks = banks;
            // A loaded directory: each transaction occupies the bank.
            cfg.dirServicePeriod = 8;
            cfg.label = std::to_string(banks) + "banks";
            by_banks[banks] = benchWorkload(wl, cfg, figureParams());
            if (!by_banks[banks].ok)
                std::cerr << "WARNING: " << wl << " failed at " << banks
                          << " banks\n";
        }
        double s = pctSaved(double(by_banks[1].cycles),
                            double(by_banks[4].cycles));
        saved.push_back(s);
        tw.row({wl, TableWriter::fmt(by_banks[1].cycles),
                TableWriter::fmt(by_banks[2].cycles),
                TableWriter::fmt(by_banks[4].cycles),
                TableWriter::fmt(s)});
    }
    tw.rule();
    tw.row({"average", "", "", "", TableWriter::fmt(mean(saved))});

    std::cout << "\nBanking divides the directory occupancy pressure; "
                 "the tracked state is partitioned by address, so no "
                 "cross-bank coherence actions are ever needed.\n";
    return 0;
}
