/**
 * @file
 * Ablation (§VII future work): distributed (banked) directories.
 *
 * The paper reserves distributed directories for scalability as future
 * work; the tracking directory here is bank-compatible.  This harness
 * sweeps the bank count under a directory with a realistic service
 * rate (transactions cannot start back-to-back), showing how banking
 * relieves directory occupancy on the atomics-heavy workloads.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::cout << "Ablation (§VII): directory banking "
                 "(service period 8 cycles per bank)\n\n";

    std::vector<SystemConfig> configs;
    for (unsigned banks : {1u, 2u, 4u}) {
        SystemConfig cfg = sharerTrackingConfig();
        scaleHierarchy(cfg);
        cfg.numDirBanks = banks;
        // A loaded directory: each transaction occupies the bank.
        cfg.dirServicePeriod = 8;
        cfg.label = std::to_string(banks) + "banks";
        configs.push_back(cfg);
    }
    // Configs are customised above: skip the rescale inside runMatrix.
    ResultMatrix results = runMatrix(coherenceActiveIds(), configs,
                                     figureParams(), 0, /*scale=*/false);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "1 bank", "2 banks", "4 banks",
               "saved% (4 banks)"},
              {"host_ms", "host_events_per_s"});
    std::vector<double> saved;
    for (const std::string &wl : coherenceActiveIds()) {
        auto &row = results[wl];
        double s = pctSaved(double(row["1banks"].cycles),
                            double(row["4banks"].cycles));
        saved.push_back(s);
        tw.row({wl, TableWriter::fmt(row["1banks"].cycles),
                TableWriter::fmt(row["2banks"].cycles),
                TableWriter::fmt(row["4banks"].cycles),
                TableWriter::fmt(s)},
               hostCells(row));
    }
    tw.rule();
    tw.row({"average", "", "", "", TableWriter::fmt(mean(saved))});

    std::cout << "\nBanking divides the directory occupancy pressure; "
                 "the tracked state is partitioned by address, so no "
                 "cross-bank coherence actions are ever needed.\n";
    return tw.writeCsv() ? 0 : 2;
}
