/**
 * @file
 * recovery_overhead — what does the reliable transport cost, and does
 * it perturb a clean simulation?
 *
 * Every workload runs three times on identical configurations except
 * the recovery knobs: transport off (legacy delivery), transport on
 * with a clean wire, and transport on over a lossy wire (1% drop,
 * 1% duplicate, 0.1% corrupt).  On a clean wire the transport is pure
 * bookkeeping, so simulated cycles must be bit-identical to the
 * legacy path and the retransmission/dedup counters must all be zero
 * (asserted, not assumed — this is the guard CI relies on); the
 * interesting numbers are the host-time overhead of the sequence/ack
 * machinery and the recovery work a lossy wire induces.
 *
 *   $ ./bench/recovery_overhead                 # table to stdout
 *   $ ./bench/recovery_overhead overhead.json   # plus JSON report
 */

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

struct Row
{
    std::string workload;
    std::string config;
    bool ok = false;
    Cycles cycles = 0;        ///< simulated (identical off/clean-on)
    Cycles lossyCycles = 0;   ///< simulated, lossy wire (recovery adds)
    double wallOffMs = 0.0;
    double wallOnMs = 0.0;
    double wallLossyMs = 0.0;
    std::uint64_t cleanRetransmits = 0;  ///< must be 0
    std::uint64_t cleanDupDrops = 0;     ///< must be 0
    std::uint64_t lossyRetransmits = 0;

    double
    overheadPct() const
    {
        return wallOffMs > 0.0
                   ? (wallOnMs - wallOffMs) / wallOffMs * 100.0
                   : 0.0;
    }
};

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

/** One timed workload run under the given recovery config. */
bool
timedRun(const std::string &wl, SystemConfig cfg, Cycles &cycles,
         double &wall_ms, TransportSummary &ts)
{
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool ok = sys.run() && workload->verify(sys);
    wall_ms = millisSince(t0);
    cycles = sys.cpuCycles();
    ts = sys.transportSummary();
    return ok;
}

Row
measure(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    Row row;
    row.workload = wl;
    row.config = cfg.label;

    SystemConfig clean = cfg;
    clean.transport.enabled = true;
    SystemConfig lossy = clean;
    lossy.fault.enabled = true;
    lossy.fault.seed = 1;
    lossy.fault.dropPer10k = 100;
    lossy.fault.dupPer10k = 100;
    lossy.fault.corruptPer10k = 10;

    Cycles cy_off = 0, cy_on = 0;
    TransportSummary ts_off, ts_on, ts_lossy;
    bool ok_off = timedRun(wl, cfg, cy_off, row.wallOffMs, ts_off);
    bool ok_on = timedRun(wl, clean, cy_on, row.wallOnMs, ts_on);
    bool ok_lossy =
        timedRun(wl, lossy, row.lossyCycles, row.wallLossyMs, ts_lossy);
    row.cycles = cy_on;
    row.cleanRetransmits = ts_on.retransmits;
    row.cleanDupDrops = ts_on.dupDrops;
    row.lossyRetransmits = ts_lossy.retransmits;
    // On a clean wire the transport may not perturb the simulation:
    // identical cycles, zero recovery work.
    row.ok = ok_off && ok_on && ok_lossy && cy_off == cy_on &&
             ts_on.retransmits == 0 && ts_on.dupDrops == 0 &&
             ts_on.corruptDrops == 0 && ts_on.wireDrops == 0 &&
             ts_lossy.retransmits > 0;
    if (cy_off != cy_on) {
        std::cerr << "ERROR: " << wl
                  << ": clean transport changed simulated cycles ("
                  << cy_off << " vs " << cy_on << ")\n";
    }
    if (ts_on.retransmits || ts_on.dupDrops) {
        std::cerr << "ERROR: " << wl
                  << ": clean transport did recovery work ("
                  << ts_on.retransmits << " retransmits, "
                  << ts_on.dupDrops << " dup drops)\n";
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<Row> rows;
    for (const std::string &wl : workloadIds())
        rows.push_back(measure(wl, sharerTrackingConfig()));

    TableWriter tw(std::cout);
    tw.header({"workload", "config", "cycles", "off ms", "on ms",
               "ovh %", "lossy cycles", "lossy retx", "result"});
    std::vector<double> overheads;
    bool all_ok = true;
    for (const Row &r : rows) {
        overheads.push_back(r.overheadPct());
        all_ok = all_ok && r.ok;
        tw.row({r.workload, r.config, TableWriter::fmt(r.cycles),
                TableWriter::fmt(r.wallOffMs),
                TableWriter::fmt(r.wallOnMs),
                TableWriter::fmt(r.overheadPct()),
                TableWriter::fmt(r.lossyCycles),
                TableWriter::fmt(r.lossyRetransmits),
                r.ok ? "OK" : "FAIL"});
    }
    tw.rule();
    tw.row({"mean", "", "", "", "", TableWriter::fmt(mean(overheads)),
            "", "", all_ok ? "OK" : "FAIL"});

    JsonValue report = JsonValue::makeObject();
    report.set("bench", JsonValue("recovery_overhead"));
    JsonValue jrows = JsonValue::makeArray();
    for (const Row &r : rows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("config", JsonValue(r.config));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("lossyCycles", JsonValue(std::uint64_t(r.lossyCycles)));
        o.set("wallOffMs", JsonValue(r.wallOffMs));
        o.set("wallOnMs", JsonValue(r.wallOnMs));
        o.set("wallLossyMs", JsonValue(r.wallLossyMs));
        o.set("overheadPct", JsonValue(r.overheadPct()));
        o.set("cleanRetransmits", JsonValue(r.cleanRetransmits));
        o.set("cleanDupDrops", JsonValue(r.cleanDupDrops));
        o.set("lossyRetransmits", JsonValue(r.lossyRetransmits));
        jrows.push(std::move(o));
    }
    report.set("rows", std::move(jrows));
    report.set("meanOverheadPct", JsonValue(mean(overheads)));
    report.set("ok", JsonValue(all_ok));

    if (argc > 1) {
        std::ofstream os(argv[1]);
        if (!os) {
            std::cerr << "cannot open " << argv[1] << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "JSON report written to " << argv[1] << '\n';
    } else {
        std::cout << '\n';
        report.write(std::cout, 2);
        std::cout << '\n';
    }
    return all_ok ? 0 : 1;
}
