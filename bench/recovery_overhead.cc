/**
 * @file
 * recovery_overhead — what does the reliable transport cost, and does
 * it perturb a clean simulation?
 *
 * Every workload runs three times on identical configurations except
 * the recovery knobs: transport off (legacy delivery), transport on
 * with a clean wire, and transport on over a lossy wire (1% drop,
 * 1% duplicate, 0.1% corrupt).  On a clean wire the transport is pure
 * bookkeeping, so simulated cycles must be bit-identical to the
 * legacy path and the retransmission/dedup counters must all be zero
 * (asserted, not assumed — this is the guard CI relies on); the
 * interesting numbers are the host-time overhead of the sequence/ack
 * machinery and the recovery work a lossy wire induces.
 *
 * A second table measures the checkpoint subsystem the same way:
 * every workload runs with checkpointing off and with a periodic
 * drain-quiesce checkpoint cadence (snapshots written to disk), and
 * the last checkpoint is then restored and resumed.  The resumed run
 * must be bit-identical (cycles + full stat dump) to the cadenced
 * reference — asserted, like the clean-wire guard — while the
 * interesting numbers are the host-time cost of checkpointing, the
 * snapshot size, and the restore/replay time.
 *
 * A third table exercises storage-fault containment: every workload
 * runs with a deterministic one-shot double-bit flip injected early,
 * and the run must end attributed — either a structured
 * ContainmentReport (machine-check poison consumed) or a provably
 * cured flip (full-line overwrite) on an otherwise clean pass.  A
 * silent escape (failed verification with neither) fails the bench.
 * The interesting number is containment latency: ticks from the flip
 * landing to the consumer tripping on it.
 *
 *   $ ./bench/recovery_overhead                 # table to stdout
 *   $ ./bench/recovery_overhead overhead.json   # plus JSON report
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench/bench_util.hh"
#include "sim/hash.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

struct Row
{
    std::string workload;
    std::string config;
    bool ok = false;
    Cycles cycles = 0;        ///< simulated (identical off/clean-on)
    Cycles lossyCycles = 0;   ///< simulated, lossy wire (recovery adds)
    double wallOffMs = 0.0;
    double wallOnMs = 0.0;
    double wallLossyMs = 0.0;
    std::uint64_t cleanRetransmits = 0;  ///< must be 0
    std::uint64_t cleanDupDrops = 0;     ///< must be 0
    std::uint64_t lossyRetransmits = 0;

    double
    overheadPct() const
    {
        return wallOffMs > 0.0
                   ? (wallOnMs - wallOffMs) / wallOffMs * 100.0
                   : 0.0;
    }
};

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

/** One timed workload run under the given recovery config. */
bool
timedRun(const std::string &wl, SystemConfig cfg, Cycles &cycles,
         double &wall_ms, TransportSummary &ts)
{
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool ok = sys.run() && workload->verify(sys);
    wall_ms = millisSince(t0);
    cycles = sys.cpuCycles();
    ts = sys.transportSummary();
    return ok;
}

Row
measure(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    Row row;
    row.workload = wl;
    row.config = cfg.label;

    SystemConfig clean = cfg;
    clean.transport.enabled = true;
    SystemConfig lossy = clean;
    lossy.fault.enabled = true;
    lossy.fault.seed = 1;
    lossy.fault.dropPer10k = 100;
    lossy.fault.dupPer10k = 100;
    lossy.fault.corruptPer10k = 10;

    Cycles cy_off = 0, cy_on = 0;
    TransportSummary ts_off, ts_on, ts_lossy;
    bool ok_off = timedRun(wl, cfg, cy_off, row.wallOffMs, ts_off);
    bool ok_on = timedRun(wl, clean, cy_on, row.wallOnMs, ts_on);
    bool ok_lossy =
        timedRun(wl, lossy, row.lossyCycles, row.wallLossyMs, ts_lossy);
    row.cycles = cy_on;
    row.cleanRetransmits = ts_on.retransmits;
    row.cleanDupDrops = ts_on.dupDrops;
    row.lossyRetransmits = ts_lossy.retransmits;
    // On a clean wire the transport may not perturb the simulation:
    // identical cycles, zero recovery work.
    row.ok = ok_off && ok_on && ok_lossy && cy_off == cy_on &&
             ts_on.retransmits == 0 && ts_on.dupDrops == 0 &&
             ts_on.corruptDrops == 0 && ts_on.wireDrops == 0 &&
             ts_lossy.retransmits > 0;
    if (cy_off != cy_on) {
        std::cerr << "ERROR: " << wl
                  << ": clean transport changed simulated cycles ("
                  << cy_off << " vs " << cy_on << ")\n";
    }
    if (ts_on.retransmits || ts_on.dupDrops) {
        std::cerr << "ERROR: " << wl
                  << ": clean transport did recovery work ("
                  << ts_on.retransmits << " retransmits, "
                  << ts_on.dupDrops << " dup drops)\n";
    }
    return row;
}

/** FNV-1a over the complete stat dump (kernel_identity's reduction). */
std::uint64_t
statHash(StatRegistry &reg)
{
    std::uint64_t h = FnvOffsetBasis;
    for (const auto &[name, value] : reg.snapshot()) {
        h = fnvBytes(name.data(), name.size(), h);
        h = fnvBytes(&value, sizeof(value), h);
    }
    return h;
}

struct CkptRow
{
    std::string workload;
    bool ok = false;
    Cycles cycles = 0;            ///< simulated, cadence on
    double wallOffMs = 0.0;       ///< checkpointing off
    double wallCkptMs = 0.0;      ///< periodic cadence + file writes
    double wallRestoreMs = 0.0;   ///< restore last snapshot + resume
    std::uint64_t checkpoints = 0;
    std::uint64_t loggedOps = 0;
    std::uint64_t snapshotBytes = 0;

    double
    overheadPct() const
    {
        return wallOffMs > 0.0
                   ? (wallCkptMs - wallOffMs) / wallOffMs * 100.0
                   : 0.0;
    }
};

CkptRow
measureCkpt(const std::string &wl, const SystemConfig &base,
            const std::string &snap_path)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    CkptRow row;
    row.workload = wl;

    Cycles cy_off = 0;
    TransportSummary ts;
    bool ok_off = timedRun(wl, cfg, cy_off, row.wallOffMs, ts);

    // Periodic drain-quiesce checkpoints, written to disk.
    std::remove(snap_path.c_str());
    SystemConfig ckpt_cfg = cfg;
    ckpt_cfg.ckpt.everyCycles = 5000;
    ckpt_cfg.ckpt.outPath = snap_path;
    bool ok_ckpt = false;
    std::uint64_t ref_stats = 0;
    {
        HsaSystem sys(ckpt_cfg);
        auto workload = makeWorkload(wl, figureParams());
        workload->setup(sys);
        auto t0 = std::chrono::steady_clock::now();
        ok_ckpt = sys.run() && workload->verify(sys);
        row.wallCkptMs = millisSince(t0);
        row.cycles = sys.cpuCycles();
        row.checkpoints = sys.checkpointsTaken();
        row.snapshotBytes = sys.lastSnapshotText().size();
        auto stats = sys.stats().snapshot();
        row.loggedOps = stats.at("system.ckpt.loggedOps");
        ref_stats = statHash(sys.stats());
    }

    // Restore the last on-disk checkpoint and resume to completion;
    // the resumed run must land exactly on the cadenced reference.
    bool ok_resume = false;
    Cycles cy_resume = 0;
    std::uint64_t resume_stats = 0;
    if (ok_ckpt && row.checkpoints > 0) {
        SystemConfig res_cfg = ckpt_cfg;
        res_cfg.ckpt.outPath.clear(); // keep resumed snapshots in memory
        res_cfg.ckpt.restorePath = snap_path;
        HsaSystem sys(res_cfg);
        auto workload = makeWorkload(wl, figureParams());
        workload->setup(sys);
        auto t0 = std::chrono::steady_clock::now();
        ok_resume = sys.run() && workload->verify(sys);
        row.wallRestoreMs = millisSince(t0);
        cy_resume = sys.cpuCycles();
        resume_stats = statHash(sys.stats());
    }
    std::remove(snap_path.c_str());

    row.ok = ok_off && ok_ckpt && ok_resume && row.checkpoints > 0 &&
             cy_resume == row.cycles && resume_stats == ref_stats;
    if (ok_ckpt && ok_resume &&
        (cy_resume != row.cycles || resume_stats != ref_stats)) {
        std::cerr << "ERROR: " << wl
                  << ": resumed run diverged from the cadenced "
                     "reference ("
                  << cy_resume << " vs " << row.cycles << " cycles)\n";
    }
    return row;
}

struct PoisonRow
{
    std::string workload;
    bool ok = false;
    bool contained = false;
    Tick flipTick = 0;
    Tick containTick = 0;     ///< 0 when the flip was cured
    std::string consumer;
    std::uint64_t poisonedLines = 0;
    double wallMs = 0.0;

    std::uint64_t
    latencyTicks() const
    {
        return contained ? containTick - flipTick : 0;
    }
};

PoisonRow
measurePoison(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    PoisonRow row;
    row.workload = wl;
    row.flipTick = 20'000;
    cfg.storageFault.enabled = true;
    cfg.storageFault.flipAtTick = row.flipTick;

    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool passed = sys.run() && workload->verify(sys);
    row.wallMs = millisSince(t0);
    const ContainmentReport &cr = sys.containmentReport();
    row.contained = cr.contained();
    row.containTick = cr.atTick;
    row.consumer = cr.consumer;
    row.poisonedLines = sys.storageSummary().poisoned;
    // Attributed either way: poison consumed (containment) or the
    // poisoned line was cured by a full overwrite and the run passed
    // clean.  A failing run with no containment is a silent escape.
    row.ok = row.contained ? !passed
                           : (passed && row.poisonedLines > 0);
    if (!row.ok) {
        std::cerr << "ERROR: " << wl
                  << ": one-shot flip escaped attribution (passed="
                  << passed << ", contained=" << row.contained << ")\n";
    }
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<Row> rows;
    for (const std::string &wl : workloadIds())
        rows.push_back(measure(wl, sharerTrackingConfig()));
    std::vector<CkptRow> crows;
    for (const std::string &wl : workloadIds())
        crows.push_back(measureCkpt(wl, sharerTrackingConfig(),
                                    "recovery_overhead.snapshot"));
    std::vector<PoisonRow> prows;
    for (const std::string &wl : workloadIds())
        prows.push_back(measurePoison(wl, sharerTrackingConfig()));

    TableWriter tw(std::cout);
    tw.header({"workload", "config", "cycles", "off ms", "on ms",
               "ovh %", "lossy cycles", "lossy retx", "result"});
    std::vector<double> overheads;
    bool all_ok = true;
    for (const Row &r : rows) {
        overheads.push_back(r.overheadPct());
        all_ok = all_ok && r.ok;
        tw.row({r.workload, r.config, TableWriter::fmt(r.cycles),
                TableWriter::fmt(r.wallOffMs),
                TableWriter::fmt(r.wallOnMs),
                TableWriter::fmt(r.overheadPct()),
                TableWriter::fmt(r.lossyCycles),
                TableWriter::fmt(r.lossyRetransmits),
                r.ok ? "OK" : "FAIL"});
    }
    tw.rule();
    tw.row({"mean", "", "", "", "", TableWriter::fmt(mean(overheads)),
            "", "", all_ok ? "OK" : "FAIL"});

    std::cout << '\n';
    TableWriter ctw(std::cout);
    ctw.header({"workload", "cycles", "off ms", "ckpt ms", "ovh %",
                "ckpts", "ops", "snap KB", "restore ms", "result"});
    std::vector<double> ckpt_overheads;
    for (const CkptRow &r : crows) {
        ckpt_overheads.push_back(r.overheadPct());
        all_ok = all_ok && r.ok;
        ctw.row({r.workload, TableWriter::fmt(r.cycles),
                 TableWriter::fmt(r.wallOffMs),
                 TableWriter::fmt(r.wallCkptMs),
                 TableWriter::fmt(r.overheadPct()),
                 TableWriter::fmt(r.checkpoints),
                 TableWriter::fmt(r.loggedOps),
                 TableWriter::fmt(double(r.snapshotBytes) / 1024.0),
                 TableWriter::fmt(r.wallRestoreMs),
                 r.ok ? "OK" : "FAIL"});
    }
    ctw.rule();
    ctw.row({"mean", "", "", "", TableWriter::fmt(mean(ckpt_overheads)),
             "", "", "", "", all_ok ? "OK" : "FAIL"});

    std::cout << '\n';
    TableWriter ptw(std::cout);
    ptw.header({"workload", "flip @", "outcome", "contain @",
                "latency", "consumer", "ms", "result"});
    unsigned containments = 0;
    for (const PoisonRow &r : prows) {
        all_ok = all_ok && r.ok;
        if (r.contained)
            ++containments;
        ptw.row({r.workload, TableWriter::fmt(r.flipTick),
                 r.contained ? "contained" : "cured",
                 r.contained ? TableWriter::fmt(r.containTick)
                             : std::string("-"),
                 r.contained ? TableWriter::fmt(r.latencyTicks())
                             : std::string("-"),
                 r.contained ? r.consumer : std::string("-"),
                 TableWriter::fmt(r.wallMs), r.ok ? "OK" : "FAIL"});
    }
    ptw.rule();
    ptw.row({"contained", TableWriter::fmt(std::uint64_t(containments)),
             "", "", "", "", "", all_ok ? "OK" : "FAIL"});

    JsonValue report = JsonValue::makeObject();
    report.set("bench", JsonValue("recovery_overhead"));
    JsonValue jrows = JsonValue::makeArray();
    for (const Row &r : rows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("config", JsonValue(r.config));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("lossyCycles", JsonValue(std::uint64_t(r.lossyCycles)));
        o.set("wallOffMs", JsonValue(r.wallOffMs));
        o.set("wallOnMs", JsonValue(r.wallOnMs));
        o.set("wallLossyMs", JsonValue(r.wallLossyMs));
        o.set("overheadPct", JsonValue(r.overheadPct()));
        o.set("cleanRetransmits", JsonValue(r.cleanRetransmits));
        o.set("cleanDupDrops", JsonValue(r.cleanDupDrops));
        o.set("lossyRetransmits", JsonValue(r.lossyRetransmits));
        jrows.push(std::move(o));
    }
    report.set("rows", std::move(jrows));
    report.set("meanOverheadPct", JsonValue(mean(overheads)));
    JsonValue jcrows = JsonValue::makeArray();
    for (const CkptRow &r : crows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("wallOffMs", JsonValue(r.wallOffMs));
        o.set("wallCkptMs", JsonValue(r.wallCkptMs));
        o.set("wallRestoreMs", JsonValue(r.wallRestoreMs));
        o.set("overheadPct", JsonValue(r.overheadPct()));
        o.set("checkpoints", JsonValue(r.checkpoints));
        o.set("loggedOps", JsonValue(r.loggedOps));
        o.set("snapshotBytes", JsonValue(r.snapshotBytes));
        jcrows.push(std::move(o));
    }
    report.set("checkpointRows", std::move(jcrows));
    report.set("ckptMeanOverheadPct", JsonValue(mean(ckpt_overheads)));
    JsonValue jprows = JsonValue::makeArray();
    for (const PoisonRow &r : prows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("ok", JsonValue(r.ok));
        o.set("contained", JsonValue(r.contained));
        o.set("flipTick", JsonValue(std::uint64_t(r.flipTick)));
        o.set("containTick", JsonValue(std::uint64_t(r.containTick)));
        o.set("latencyTicks", JsonValue(r.latencyTicks()));
        o.set("consumer", JsonValue(r.consumer));
        o.set("poisonedLines", JsonValue(r.poisonedLines));
        o.set("wallMs", JsonValue(r.wallMs));
        jprows.push(std::move(o));
    }
    report.set("poisonRows", std::move(jprows));
    report.set("ok", JsonValue(all_ok));

    if (argc > 1) {
        std::ofstream os(argv[1]);
        if (!os) {
            std::cerr << "cannot open " << argv[1] << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "JSON report written to " << argv[1] << '\n';
    } else {
        std::cout << '\n';
        report.write(std::cout, 2);
        std::cout << '\n';
    }
    return all_ok ? 0 : 1;
}
