/**
 * @file
 * host_perf — how fast does the simulator run on the host?
 *
 * Runs a fixed workload mix (all ten CHAI-style workloads on the
 * baseline and sharer-tracking configurations) and reports, per run
 * and in total, the number of kernel events executed, host wall time,
 * and host events/sec.  The event count is a pure function of the
 * simulated system, so it is bit-deterministic run to run and across
 * kernel implementations that preserve (tick, prio, seq) ordering —
 * CI asserts it against the committed BENCH_hostperf.json baseline;
 * wall time and events/sec are the numbers the event-kernel work is
 * judged by.
 *
 *   $ ./bench/host_perf                          # table to stdout
 *   $ ./bench/host_perf --json BENCH_hostperf.json
 *   $ ./bench/host_perf --baseline BENCH_hostperf.json   # CI guard
 *   $ ./bench/host_perf --repeat 3               # steadier timing
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/json.hh"

using namespace hsc;
using namespace hsc::bench;

namespace
{

struct Row
{
    std::string workload;
    std::string config;
    bool ok = false;
    Cycles cycles = 0;
    std::uint64_t events = 0;
    double wallMs = 0.0;

    double
    eventsPerSec() const
    {
        return wallMs > 0.0 ? double(events) / (wallMs / 1000.0) : 0.0;
    }
};

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

Row
measure(const std::string &wl, const SystemConfig &base)
{
    SystemConfig cfg = base;
    scaleHierarchy(cfg);
    Row row;
    row.workload = wl;
    row.config = cfg.label;
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool ok = sys.run() && workload->verify(sys);
    row.wallMs = millisSince(t0);
    row.cycles = sys.cpuCycles();
    row.events = sys.eventQueue().numExecuted();
    row.ok = ok;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string baseline_path;
    int repeat = 1;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--repeat" && i + 1 < argc) {
            repeat = std::atoi(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: host_perf [--json out.json] "
                         "[--baseline BENCH_hostperf.json] [--repeat n]\n";
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << '\n';
            return 2;
        }
    }
    if (repeat < 1)
        repeat = 1;

    const std::vector<SystemConfig> configs = {baselineConfig(),
                                               sharerTrackingConfig()};

    // Best-of-N timing per (workload, config): the event count is
    // identical across repeats (asserted), the wall time takes the
    // minimum to shed scheduler noise.
    std::vector<Row> rows;
    bool all_ok = true;
    for (const std::string &wl : workloadIds()) {
        for (const SystemConfig &cfg : configs) {
            Row best;
            for (int r = 0; r < repeat; ++r) {
                Row sample = measure(wl, cfg);
                if (r == 0) {
                    best = sample;
                } else {
                    if (sample.events != best.events) {
                        std::cerr << "ERROR: " << wl
                                  << ": event count not deterministic ("
                                  << best.events << " vs " << sample.events
                                  << ")\n";
                        best.ok = false;
                    }
                    best.wallMs = std::min(best.wallMs, sample.wallMs);
                }
            }
            all_ok = all_ok && best.ok;
            rows.push_back(best);
        }
    }

    std::uint64_t total_events = 0;
    double total_wall_ms = 0.0;
    TableWriter tw(std::cout);
    tw.header({"workload", "config", "cycles", "events", "wall ms",
               "events/s", "result"});
    for (const Row &r : rows) {
        total_events += r.events;
        total_wall_ms += r.wallMs;
        tw.row({r.workload, r.config, TableWriter::fmt(r.cycles),
                TableWriter::fmt(r.events), TableWriter::fmt(r.wallMs),
                TableWriter::fmt(r.eventsPerSec(), 0),
                r.ok ? "OK" : "FAIL"});
    }
    double total_eps =
        total_wall_ms > 0.0 ? double(total_events) / (total_wall_ms / 1e3)
                            : 0.0;
    tw.rule();
    tw.row({"total", "", "", TableWriter::fmt(total_events),
            TableWriter::fmt(total_wall_ms), TableWriter::fmt(total_eps, 0),
            all_ok ? "OK" : "FAIL"});

    JsonValue report = JsonValue::makeObject();
    report.set("bench", JsonValue("host_perf"));
    JsonValue jrows = JsonValue::makeArray();
    for (const Row &r : rows) {
        JsonValue o = JsonValue::makeObject();
        o.set("workload", JsonValue(r.workload));
        o.set("config", JsonValue(r.config));
        o.set("ok", JsonValue(r.ok));
        o.set("cycles", JsonValue(std::uint64_t(r.cycles)));
        o.set("events", JsonValue(r.events));
        o.set("wallMs", JsonValue(r.wallMs));
        o.set("eventsPerSec", JsonValue(r.eventsPerSec()));
        jrows.push(std::move(o));
    }
    report.set("rows", std::move(jrows));
    report.set("totalEvents", JsonValue(total_events));
    report.set("totalWallMs", JsonValue(total_wall_ms));
    report.set("eventsPerSec", JsonValue(total_eps));
    report.set("ok", JsonValue(all_ok));

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os) {
            std::cerr << "cannot open " << json_path << '\n';
            return 2;
        }
        report.write(os, 2);
        os << '\n';
        std::cout << "JSON report written to " << json_path << '\n';
    } else {
        std::cout << '\n';
        report.write(std::cout, 2);
        std::cout << '\n';
    }

    if (!baseline_path.empty()) {
        std::ifstream is(baseline_path);
        if (!is) {
            std::cerr << "cannot open baseline " << baseline_path << '\n';
            return 2;
        }
        std::stringstream ss;
        ss << is.rdbuf();
        JsonValue baseline = parseJson(ss.str());
        // The committed record holds before/after kernel numbers; the
        // event count is the deterministic quantity CI can assert.
        const JsonValue *after = baseline.find("after");
        const JsonValue &expect =
            after ? after->at("totalEvents") : baseline.at("totalEvents");
        if (expect.asUInt() != total_events) {
            std::cerr << "ERROR: event count drifted from baseline ("
                      << expect.asUInt() << " expected, " << total_events
                      << " measured)\n";
            return 1;
        }
        std::cout << "baseline event count matches (" << total_events
                  << ")\n";
    }

    return all_ok ? 0 : 1;
}
