/**
 * @file
 * Figure 4: performance increments of the three protocol
 * optimisations (§III-A early dirty response, §III-B no clean-victim
 * write-back to memory, §III-C write-back LLC) per benchmark, in
 * %-saved simulated cycles over the unmodified baseline.
 *
 * The paper reports varying small improvements (average 1.68% without
 * precise state tracking), with data-parallel benchmarks (bs, pad,
 * hsti, hsto, rscd) showing the least benefit due to their low
 * coherence activity.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::vector<SystemConfig> configs = {
        baselineConfig(),
        earlyRespConfig(),
        noCleanVicToMemConfig(),
        llcWriteBackConfig(),
    };

    std::cout << "Figure 4: % saved simulated cycles over baseline\n";
    std::cout << "(three §III protocol optimisations, no state "
                 "tracking)\n\n";

    ResultMatrix results = runMatrix(workloadIds(), configs);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "base cycles", "earlyResp%", "noWBcleanVic%",
               "llcWB%"},
              {"host_ms", "host_events_per_s"});
    std::vector<double> m1, m2, m3;
    for (const std::string &wl : workloadIds()) {
        auto &row = results[wl];
        double base = double(row["baseline"].cycles);
        double early = pctSaved(base, double(row["earlyResp"].cycles));
        double novic = pctSaved(base, double(row["noWBcleanVic"].cycles));
        double llcwb = pctSaved(base, double(row["llcWB"].cycles));
        m1.push_back(early);
        m2.push_back(novic);
        m3.push_back(llcwb);
        tw.row({wl, TableWriter::fmt(row["baseline"].cycles),
                TableWriter::fmt(early), TableWriter::fmt(novic),
                TableWriter::fmt(llcwb)},
               hostCells(row));
    }
    tw.rule();
    tw.row({"average", "", TableWriter::fmt(mean(m1)),
            TableWriter::fmt(mean(m2)), TableWriter::fmt(mean(m3))});

    std::cout << "\npaper reference: small per-optimisation gains, "
                 "1.68% average across the optimisations; least on the "
                 "data-parallel benchmarks.\n";
    return tw.writeCsv() ? 0 : 2;
}
