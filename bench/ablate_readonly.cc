/**
 * @file
 * Ablation (§IX future work): not tracking read-only data.
 *
 * The paper's conclusion reserves "investigation of the advantages of
 * not tracking certain read-only memory pages" for future work.  This
 * harness implements it: the read-shared input arrays of rsct (every
 * agent scans all points) are declared read-only, so their reads
 * allocate no directory entries.  With a small directory this frees
 * capacity for the contended read-write lines.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::cout << "Ablation (§IX): read-only region tracking elision "
                 "(rsct, small directory)\n\n";

    const std::vector<unsigned> sizes = {64u, 128u, 256u};
    std::vector<SystemConfig> configs;
    for (unsigned entries : sizes) {
        for (bool ro : {false, true}) {
            SystemConfig cfg = sharerTrackingConfig();
            scaleHierarchy(cfg);
            cfg.dir.dirEntries = entries;
            cfg.dir.dirAssoc = 8;
            if (ro) {
                // The rsct points arrays are the first allocations of
                // the workload heap: px then py, 128*scale u32 each.
                WorkloadParams p = figureParams();
                Addr base = 0x100000;
                cfg.dir.readOnlyBase = base;
                cfg.dir.readOnlyLimit =
                    base + 2ull * 128 * p.scale * 4;
            }
            cfg.label = std::to_string(entries) +
                        (ro ? "-readOnly" : "-tracked");
            configs.push_back(cfg);
        }
    }
    // Configs are customised above: skip the rescale.
    ResultMatrix results = runMatrix({"rsct"}, configs, figureParams(),
                                     0, /*scale=*/false);
    auto &row = results["rsct"];

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"dir entries", "mode", "cycles", "dirEvictions",
               "probes", "roElided"},
              {"host_ms", "host_events_per_s"});
    for (unsigned entries : sizes) {
        for (bool ro : {false, true}) {
            const char *mode = ro ? "readOnly" : "tracked";
            const RunMetrics &m =
                row[std::to_string(entries) + "-" + mode];
            tw.row({TableWriter::fmt(std::uint64_t(entries)), mode,
                    TableWriter::fmt(m.cycles),
                    TableWriter::fmt(m.dirEvictions),
                    TableWriter::fmt(m.probes),
                    TableWriter::fmt(m.readOnlyElided)},
                   hostCells(row));
        }
        tw.rule();
    }

    std::cout << "\nReads of the declared region allocate no directory "
                 "entries, freeing capacity for contended read-write "
                 "lines (paper §IX future work).\n";
    return tw.writeCsv() ? 0 : 2;
}
