/**
 * @file
 * stress_jitter — fault-injection stress harness.
 *
 * Runs the RandomTester jitter sweep (same schedule, several fault
 * schedules, identical-final-image assertion) across the directory
 * configurations and several tester seeds, and prints a result table.
 * A FAIL row is a timing-dependent coherence bug: link jitter is
 * semantics-preserving, so the protocol outcome must not change.
 *
 *   $ ./bench/stress_jitter              # default: 4 seeds
 *   $ ./bench/stress_jitter 12           # heavier: 12 seeds
 */

#include <cstdlib>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/random_tester.hh"

using namespace hsc;

namespace
{

std::vector<FaultConfig>
schedules()
{
    std::vector<FaultConfig> s;
    s.emplace_back(); // reference: no faults

    FaultConfig mild;
    mild.enabled = true;
    mild.seed = 101;
    mild.maxJitter = 8;
    s.push_back(mild);

    FaultConfig heavy;
    heavy.enabled = true;
    heavy.seed = 202;
    heavy.maxJitter = 40;
    heavy.spikePercent = 8;
    heavy.spikeCycles = 500;
    s.push_back(heavy);

    FaultConfig spiky;
    spiky.enabled = true;
    spiky.seed = 303;
    spiky.maxJitter = 4;
    spiky.spikePercent = 25;
    spiky.spikeCycles = 2000;
    s.push_back(spiky);

    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned num_seeds = 4;
    if (argc > 1) {
        char *end = nullptr;
        num_seeds = unsigned(std::strtoul(argv[1], &end, 10));
        if (!end || *end != '\0' || num_seeds == 0) {
            std::cerr << "usage: stress_jitter [num_seeds >= 1]\n";
            return 2;
        }
    }

    std::vector<SystemConfig> configs = {
        baselineConfig(),
        earlyRespConfig(),
        llcWriteBackConfig(),
        ownerTrackingConfig(),
        sharerTrackingConfig(),
    };

    TableWriter tw(std::cout);
    tw.header({"config", "seed", "schedules", "result", "image"});

    unsigned failures = 0;
    for (const SystemConfig &base : configs) {
        for (unsigned s = 0; s < num_seeds; ++s) {
            SystemConfig cfg = base;
            shrinkForTorture(cfg);
            cfg.check = false;  // stress throughput, not the sanitizer

            RandomTesterConfig tcfg;
            tcfg.seed = 1000 + s * 77;
            tcfg.numLocations = 24;
            tcfg.roundsPerLocation = 5;

            JitterSweepResult res =
                runJitterSweep(cfg, tcfg, schedules());
            if (!res.ok) {
                ++failures;
                for (const std::string &f : res.failures)
                    std::cerr << "  " << f << '\n';
            }
            char image[32];
            std::snprintf(image, sizeof(image), "%016llx",
                          (unsigned long long)(res.imageHashes.empty()
                                                   ? 0
                                                   : res.imageHashes[0]));
            tw.row({cfg.label, std::to_string(tcfg.seed),
                    std::to_string(res.imageHashes.size()),
                    res.ok ? "OK" : "FAIL", image});
        }
    }
    tw.rule();
    std::cout << (failures ? "FAIL" : "OK") << ": " << failures
              << " divergent sweep(s)\n";
    return failures ? 1 : 0;
}
