/** @file Shared helpers for the figure-regeneration harnesses. */

#ifndef HSC_BENCH_BENCH_UTIL_HH
#define HSC_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/run_report.hh"
#include "workloads/workload.hh"

namespace hsc::bench
{

/** Default problem size used by every figure harness. */
inline WorkloadParams
figureParams()
{
    WorkloadParams p;
    p.scale = 4;
    return p;
}

/**
 * Scale the cache hierarchy down proportionally to the scaled-down
 * workload working sets, so capacity-induced victim traffic (which
 * Figs. 4 and 5 measure the handling of) matches what full-size CHAI
 * inputs produce against the Table II hierarchy.  Latencies and
 * organisation are unchanged.  See EXPERIMENTS.md.
 */
inline void
scaleHierarchy(SystemConfig &cfg)
{
    // Benchmarks measure the modelled system, not the sanitizer: the
    // runtime coherence checker stays off here (tests default it on;
    // bench/checker_overhead quantifies its cost explicitly).
    cfg.check = false;
    cfg.corePair.l2Geom = {16, 8};   // 8 KB
    cfg.corePair.l1dGeom = {8, 2};   // 1 KB
    cfg.corePair.l1iGeom = {8, 2};   // 1 KB
    cfg.tcp.geom = {8, 4};           // 2 KB
    cfg.tcc.geom = {16, 4};          // 4 KB
    cfg.sqc.geom = {8, 4};           // 2 KB
    cfg.llc.geom = {128, 8};         // 64 KB
    cfg.dir.dirEntries = 1024;
    cfg.dir.dirAssoc = 16;
}

/** Result matrix: [workload][config label] -> metrics. */
using ResultMatrix =
    std::map<std::string, std::map<std::string, RunMetrics>>;

/**
 * Run every (workload, config) pair and collect the metrics; failed
 * runs are reported and keep ok=false.
 */
inline ResultMatrix
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<SystemConfig> &configs,
          const WorkloadParams &params = figureParams())
{
    ResultMatrix results;
    for (const std::string &wl : workloads) {
        for (SystemConfig cfg : configs) {
            scaleHierarchy(cfg);
            RunMetrics m = benchWorkload(wl, cfg, params);
            if (!m.ok) {
                std::cerr << "WARNING: " << wl << " [" << cfg.label
                          << "] failed verification\n";
            }
            results[wl][cfg.label] = m;
        }
    }
    return results;
}

/** RFC-4180-style cell escaping (quote on comma/quote/newline). */
inline std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * Table that renders fixed-width to a stream and, when a CSV path was
 * given, mirrors header+rows machine-readably.  The figure harnesses
 * all follow the same convention: an optional argv[1] names the CSV
 * output file (rules are cosmetic and not mirrored).
 */
class BenchTable
{
  public:
    BenchTable(std::ostream &os, std::string csv_path)
        : tw(os), csvPath(std::move(csv_path))
    {
    }

    void
    header(const std::vector<std::string> &cols)
    {
        tw.header(cols);
        mirror.push_back(cols);
    }

    void
    row(const std::vector<std::string> &cells)
    {
        tw.row(cells);
        mirror.push_back(cells);
    }

    void rule() { tw.rule(); }

    /**
     * Write the mirrored rows to the CSV path (no-op without one).
     * Returns false, with a message on stderr, on I/O failure.
     */
    bool
    writeCsv() const
    {
        if (csvPath.empty())
            return true;
        std::ofstream os(csvPath);
        if (!os) {
            std::cerr << "cannot open " << csvPath << " for writing\n";
            return false;
        }
        for (const auto &cells : mirror) {
            for (std::size_t i = 0; i < cells.size(); ++i)
                os << (i ? "," : "") << csvEscape(cells[i]);
            os << '\n';
        }
        if (!os) {
            std::cerr << "write to " << csvPath << " failed\n";
            return false;
        }
        std::cout << "CSV written to " << csvPath << '\n';
        return true;
    }

  private:
    TableWriter tw;
    std::string csvPath;
    std::vector<std::vector<std::string>> mirror;
};

/** The figure harnesses' CSV-path convention: optional argv[1]. */
inline std::string
csvPathFromArgs(int argc, char **argv)
{
    return argc > 1 ? argv[1] : "";
}

/** Geometric-style arithmetic mean over a vector. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0;
    for (double x : v)
        sum += x;
    return sum / double(v.size());
}

} // namespace hsc::bench

#endif // HSC_BENCH_BENCH_UTIL_HH
