/** @file Shared helpers for the figure-regeneration harnesses. */

#ifndef HSC_BENCH_BENCH_UTIL_HH
#define HSC_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/run_report.hh"
#include "workloads/workload.hh"

namespace hsc::bench
{

/** Default problem size used by every figure harness. */
inline WorkloadParams
figureParams()
{
    WorkloadParams p;
    p.scale = 4;
    return p;
}

/**
 * Scale the cache hierarchy down proportionally to the scaled-down
 * workload working sets, so capacity-induced victim traffic (which
 * Figs. 4 and 5 measure the handling of) matches what full-size CHAI
 * inputs produce against the Table II hierarchy.  Latencies and
 * organisation are unchanged.  See EXPERIMENTS.md.
 */
inline void
scaleHierarchy(SystemConfig &cfg)
{
    // Benchmarks measure the modelled system, not the sanitizer: the
    // runtime coherence checker stays off here (tests default it on;
    // bench/checker_overhead quantifies its cost explicitly).
    cfg.check = false;
    cfg.corePair.l2Geom = {16, 8};   // 8 KB
    cfg.corePair.l1dGeom = {8, 2};   // 1 KB
    cfg.corePair.l1iGeom = {8, 2};   // 1 KB
    cfg.tcp.geom = {8, 4};           // 2 KB
    cfg.tcc.geom = {16, 4};          // 4 KB
    cfg.sqc.geom = {8, 4};           // 2 KB
    cfg.llc.geom = {128, 8};         // 64 KB
    cfg.dir.dirEntries = 1024;
    cfg.dir.dirAssoc = 16;
}

/** Result matrix: [workload][config label] -> metrics. */
using ResultMatrix =
    std::map<std::string, std::map<std::string, RunMetrics>>;

/**
 * Run every (workload, config) pair and collect the metrics; failed
 * runs are reported and keep ok=false.
 *
 * The pairs run in parallel on a small thread pool: each simulation
 * is a self-contained HsaSystem with its own event queue, so runs are
 * independent and their (fully deterministic) simulated results do
 * not depend on the interleaving.  Worker count defaults to the
 * hardware concurrency, clamped to the task count; HSC_BENCH_THREADS
 * overrides it (1 = serial, for debugging).  Warnings and matrix
 * assembly happen after the join, in deterministic task order, so
 * stderr/stdout output is identical run to run.
 *
 * @p scale applies scaleHierarchy to every config; harnesses that
 * customise cache/directory geometry themselves pass false.
 */
inline ResultMatrix
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<SystemConfig> &configs,
          const WorkloadParams &params = figureParams(),
          unsigned threads = 0, bool scale = true)
{
    struct Task
    {
        const std::string *wl;
        SystemConfig cfg;
        RunMetrics out;
    };
    std::vector<Task> tasks;
    tasks.reserve(workloads.size() * configs.size());
    for (const std::string &wl : workloads) {
        for (SystemConfig cfg : configs) {
            if (scale)
                scaleHierarchy(cfg);
            tasks.push_back(Task{&wl, std::move(cfg), RunMetrics{}});
        }
    }

    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw ? hw : 1;
        if (const char *env = std::getenv("HSC_BENCH_THREADS"))
            threads = unsigned(std::max(1, std::atoi(env)));
    }
    threads = unsigned(std::min<std::size_t>(threads, tasks.size()));

    std::atomic<std::size_t> next{0};
    auto worker = [&tasks, &next, &params] {
        for (std::size_t i = next.fetch_add(1); i < tasks.size();
             i = next.fetch_add(1)) {
            Task &t = tasks[i];
            try {
                t.out = benchWorkload(*t.wl, t.cfg, params);
            } catch (const std::exception &e) {
                // Keep the slot: the failure surfaces as a warned,
                // !ok row instead of tearing down the whole sweep.
                t.out.workload = *t.wl;
                t.out.config = t.cfg.label;
                t.out.ok = false;
                t.out.failReason = e.what();
            }
        }
    };
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            pool.emplace_back(worker);
        for (std::thread &th : pool)
            th.join();
    }

    ResultMatrix results;
    for (Task &t : tasks) {
        if (!t.out.ok) {
            std::cerr << "WARNING: " << *t.wl << " [" << t.cfg.label
                      << "] failed verification";
            if (!t.out.failReason.empty())
                std::cerr << " (" << t.out.failReason << ")";
            std::cerr << "\n";
        }
        results[*t.wl][t.cfg.label] = std::move(t.out);
    }
    return results;
}

/**
 * Host-performance cells for one result-matrix row (summed over its
 * configs): wall milliseconds and aggregate events per second.  The
 * figure harnesses append these to the CSV mirror only, keeping the
 * printed tables aligned with the paper's figures.
 */
inline std::vector<std::string>
hostCells(const std::map<std::string, RunMetrics> &row)
{
    double ms = 0;
    double events = 0;
    for (const auto &[label, m] : row) {
        ms += m.hostMs;
        events += double(m.hostEvents);
    }
    double evps = ms > 0 ? events / (ms / 1000.0) : 0;
    return {TableWriter::fmt(ms), TableWriter::fmt(evps, 0)};
}

/** RFC-4180-style cell escaping (quote on comma/quote/newline). */
inline std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/**
 * Table that renders fixed-width to a stream and, when a CSV path was
 * given, mirrors header+rows machine-readably.  The figure harnesses
 * all follow the same convention: an optional argv[1] names the CSV
 * output file (rules are cosmetic and not mirrored).
 */
class BenchTable
{
  public:
    BenchTable(std::ostream &os, std::string csv_path)
        : tw(os), csvPath(std::move(csv_path))
    {
    }

    /** Print the header; @p csv_extra columns go to the CSV mirror
     *  only (host-performance columns that would misalign the
     *  figure-fidelity console table). */
    void
    header(const std::vector<std::string> &cols,
           const std::vector<std::string> &csv_extra = {})
    {
        tw.header(cols);
        mirror.push_back(concat(cols, csv_extra));
    }

    void
    row(const std::vector<std::string> &cells,
        const std::vector<std::string> &csv_extra = {})
    {
        tw.row(cells);
        mirror.push_back(concat(cells, csv_extra));
    }

    void rule() { tw.rule(); }

    /**
     * Write the mirrored rows to the CSV path (no-op without one).
     * Returns false, with a message on stderr, on I/O failure.
     */
    bool
    writeCsv() const
    {
        if (csvPath.empty())
            return true;
        std::ofstream os(csvPath);
        if (!os) {
            std::cerr << "cannot open " << csvPath << " for writing\n";
            return false;
        }
        for (const auto &cells : mirror) {
            for (std::size_t i = 0; i < cells.size(); ++i)
                os << (i ? "," : "") << csvEscape(cells[i]);
            os << '\n';
        }
        if (!os) {
            std::cerr << "write to " << csvPath << " failed\n";
            return false;
        }
        std::cout << "CSV written to " << csvPath << '\n';
        return true;
    }

  private:
    static std::vector<std::string>
    concat(const std::vector<std::string> &a,
           const std::vector<std::string> &b)
    {
        std::vector<std::string> out = a;
        out.insert(out.end(), b.begin(), b.end());
        return out;
    }

    TableWriter tw;
    std::string csvPath;
    std::vector<std::vector<std::string>> mirror;
};

/** The figure harnesses' CSV-path convention: optional argv[1]. */
inline std::string
csvPathFromArgs(int argc, char **argv)
{
    return argc > 1 ? argv[1] : "";
}

/** Geometric-style arithmetic mean over a vector. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0;
    for (double x : v)
        sum += x;
    return sum / double(v.size());
}

} // namespace hsc::bench

#endif // HSC_BENCH_BENCH_UTIL_HH
