/** @file Shared helpers for the figure-regeneration harnesses. */

#ifndef HSC_BENCH_BENCH_UTIL_HH
#define HSC_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/run_report.hh"
#include "workloads/workload.hh"

namespace hsc::bench
{

/** Default problem size used by every figure harness. */
inline WorkloadParams
figureParams()
{
    WorkloadParams p;
    p.scale = 4;
    return p;
}

/**
 * Scale the cache hierarchy down proportionally to the scaled-down
 * workload working sets, so capacity-induced victim traffic (which
 * Figs. 4 and 5 measure the handling of) matches what full-size CHAI
 * inputs produce against the Table II hierarchy.  Latencies and
 * organisation are unchanged.  See EXPERIMENTS.md.
 */
inline void
scaleHierarchy(SystemConfig &cfg)
{
    // Benchmarks measure the modelled system, not the sanitizer: the
    // runtime coherence checker stays off here (tests default it on;
    // bench/checker_overhead quantifies its cost explicitly).
    cfg.check = false;
    cfg.corePair.l2Geom = {16, 8};   // 8 KB
    cfg.corePair.l1dGeom = {8, 2};   // 1 KB
    cfg.corePair.l1iGeom = {8, 2};   // 1 KB
    cfg.tcp.geom = {8, 4};           // 2 KB
    cfg.tcc.geom = {16, 4};          // 4 KB
    cfg.sqc.geom = {8, 4};           // 2 KB
    cfg.llc.geom = {128, 8};         // 64 KB
    cfg.dir.dirEntries = 1024;
    cfg.dir.dirAssoc = 16;
}

/** Result matrix: [workload][config label] -> metrics. */
using ResultMatrix =
    std::map<std::string, std::map<std::string, RunMetrics>>;

/**
 * Run every (workload, config) pair and collect the metrics; failed
 * runs are reported and keep ok=false.
 */
inline ResultMatrix
runMatrix(const std::vector<std::string> &workloads,
          const std::vector<SystemConfig> &configs,
          const WorkloadParams &params = figureParams())
{
    ResultMatrix results;
    for (const std::string &wl : workloads) {
        for (SystemConfig cfg : configs) {
            scaleHierarchy(cfg);
            RunMetrics m = benchWorkload(wl, cfg, params);
            if (!m.ok) {
                std::cerr << "WARNING: " << wl << " [" << cfg.label
                          << "] failed verification\n";
            }
            results[wl][cfg.label] = m;
        }
    }
    return results;
}

/** Geometric-style arithmetic mean over a vector. */
inline double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0;
    for (double x : v)
        sum += x;
    return sum / double(v.size());
}

} // namespace hsc::bench

#endif // HSC_BENCH_BENCH_UTIL_HH
