/**
 * @file
 * Table I: the tracking directory's state-transition matrix.
 *
 * Runs the five coherence-active workloads under the sharer-tracking
 * directory and prints how many times each (state, request) cell of
 * Table I was exercised — a dynamic coverage report of the paper's
 * state machine.  Illegal cells (e.g. VicDirty in S) assert inside
 * the directory and therefore must show zero.
 */

#include <iostream>

#include "bench/bench_util.hh"

#include "core/random_tester.hh"

using namespace hsc;
using namespace hsc::bench;

int
main()
{
    const std::vector<MsgType> request_rows = {
        MsgType::RdBlk,     MsgType::RdBlkS,  MsgType::RdBlkM,
        MsgType::VicClean,  MsgType::VicDirty, MsgType::TccRdBlk,
        MsgType::WriteThrough, MsgType::Flush, MsgType::Atomic,
        MsgType::DmaRead,   MsgType::DmaWrite,
    };

    std::map<std::string, std::uint64_t> totals;
    SystemConfig cfg = sharerTrackingConfig();
    scaleHierarchy(cfg);

    auto accumulate = [&](HsaSystem &sys) {
        for (const char *state : {"I", "S", "O"}) {
            for (MsgType t : request_rows) {
                std::string key = std::string("system.dir.tableI.") +
                                  state + "." +
                                  std::string(msgTypeName(t));
                totals[key] += sys.stats().counter(key);
            }
        }
    };

    // The workloads in both GPU cache modes (write-back exercises the
    // Flush rows via store-release drains).
    for (bool wb : {false, true}) {
        SystemConfig c = cfg;
        c.gpuWriteBack = wb;
        for (const std::string &wl : coherenceActiveIds()) {
            HsaSystem sys(c);
            auto w = makeWorkload(wl, figureParams());
            w->setup(sys);
            if (!sys.run() || !w->verify(sys)) {
                std::cerr << "WARNING: " << wl << " failed\n";
                continue;
            }
            accumulate(sys);
        }
    }

    // The random tester adds the DMA rows.
    {
        HsaSystem sys(cfg);
        RandomTesterConfig tcfg;
        tcfg.numLocations = 48;
        RandomTester tester(sys, tcfg);
        if (!tester.run())
            std::cerr << "WARNING: random tester failed\n";
        accumulate(sys);
    }

    std::cout << "Table I: observed (state x request) transition counts\n"
              << "(sharer-tracking directory, five coherence-active "
                 "workloads)\n\n";
    TableWriter tw(std::cout);
    tw.header({"request", "state I", "state S", "state O"});
    for (MsgType t : request_rows) {
        std::string n(msgTypeName(t));
        tw.row({n,
                TableWriter::fmt(
                    totals["system.dir.tableI.I." + n]),
                TableWriter::fmt(
                    totals["system.dir.tableI.S." + n]),
                TableWriter::fmt(
                    totals["system.dir.tableI.O." + n])});
    }

    std::cout << "\nIllegal Table I cells (VicDirty in S) panic inside "
                 "the directory, so a nonzero run proves they never "
                 "occurred.\n";
    return 0;
}
