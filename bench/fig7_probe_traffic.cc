/**
 * @file
 * Figure 7: reduction in network traffic as % reduction in probes
 * sent out of the directory, for owner tracking and sharer tracking
 * over the baseline, on the five coherence-active benchmarks.
 *
 * The paper reports an 80.3% average probe reduction, with sharer
 * tracking adding little over owner tracking on 4 of 5 benchmarks.
 */

#include "bench/bench_util.hh"

using namespace hsc;
using namespace hsc::bench;

int
main(int argc, char **argv)
{
    std::vector<SystemConfig> configs = {
        baselineConfig(),
        ownerTrackingConfig(),
        sharerTrackingConfig(),
    };

    std::cout << "Figure 7: probes sent from the directory "
                 "(and % reduction vs baseline)\n\n";

    ResultMatrix results = runMatrix(coherenceActiveIds(), configs);

    BenchTable tw(std::cout, csvPathFromArgs(argc, argv));
    tw.header({"benchmark", "baseline", "owner", "sharers", "owner red%",
               "sharers red%"},
              {"host_ms", "host_events_per_s"});
    std::vector<double> mo, ms;
    for (const std::string &wl : coherenceActiveIds()) {
        auto &row = results[wl];
        double base = double(row["baseline"].probes);
        double owner = double(row["ownerTracking"].probes);
        double sharers = double(row["sharersTracking"].probes);
        mo.push_back(pctSaved(base, owner));
        ms.push_back(pctSaved(base, sharers));
        tw.row({wl, TableWriter::fmt(row["baseline"].probes),
                TableWriter::fmt(row["ownerTracking"].probes),
                TableWriter::fmt(row["sharersTracking"].probes),
                TableWriter::fmt(pctSaved(base, owner)),
                TableWriter::fmt(pctSaved(base, sharers))},
               hostCells(row));
    }
    tw.rule();
    tw.row({"average", "", "", "", TableWriter::fmt(mean(mo)),
            TableWriter::fmt(mean(ms))});

    std::cout << "\npaper reference: 80.3% average probe reduction; "
                 "sharer tracking adds little on 4 of 5 benchmarks.\n";
    return tw.writeCsv() ? 0 : 2;
}
