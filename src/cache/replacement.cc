#include "cache/replacement.hh"

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{

void
ReplacementPolicy::serialize(JsonValue &out) const
{
    out.set("tick", JsonValue(tick));
    JsonValue touch = JsonValue::makeArray();
    for (std::size_t i = 0; i < lastTouch.size(); ++i) {
        if (lastTouch[i] == 0)
            continue;
        JsonValue pair = JsonValue::makeArray();
        pair.push(JsonValue(std::uint64_t(i)));
        pair.push(JsonValue(lastTouch[i]));
        touch.push(std::move(pair));
    }
    out.set("touch", std::move(touch));
}

void
ReplacementPolicy::restore(const JsonValue &in)
{
    tick = in.at("tick").asUInt();
    std::fill(lastTouch.begin(), lastTouch.end(), 0);
    for (const JsonValue &pair : in.at("touch").items()) {
        std::size_t i = pair.items().at(0).asUInt();
        if (i >= lastTouch.size())
            throw SimError("replacement restore: stamp index out of "
                           "range — geometry mismatch", "snapshot");
        lastTouch[i] = pair.items().at(1).asUInt();
    }
}

ReplacementPolicy::ReplacementPolicy(unsigned num_sets, unsigned assoc)
    : numSets(num_sets), assoc(assoc),
      lastTouch(std::size_t(num_sets) * assoc, 0)
{
    panic_if(assoc == 0 || num_sets == 0, "degenerate cache geometry");
}

void
ReplacementPolicy::touch(unsigned set, unsigned way)
{
    lastTouch[std::size_t(set) * assoc + way] = ++tick;
}

void
ReplacementPolicy::fill(unsigned set, unsigned way)
{
    lastTouch[std::size_t(set) * assoc + way] = ++tick;
}

unsigned
ReplacementPolicy::victimAmong(unsigned set,
                               std::span<const unsigned> candidates) const
{
    panic_if(candidates.empty(), "victimAmong with no candidates");
    // Prefer the policy's own victim when it is eligible so the
    // configured policy (not the recency fallback) decides the common
    // all-ways-eligible case.
    unsigned preferred = victim(set);
    for (unsigned way : candidates) {
        if (way == preferred)
            return preferred;
    }
    unsigned best = candidates.front();
    for (unsigned way : candidates) {
        if (stamp(set, way) < stamp(set, best))
            best = way;
    }
    return best;
}

unsigned
LruPolicy::victim(unsigned set) const
{
    unsigned best = 0;
    for (unsigned way = 1; way < assoc; ++way) {
        if (stamp(set, way) < stamp(set, best))
            best = way;
    }
    return best;
}

TreePlruPolicy::TreePlruPolicy(unsigned num_sets, unsigned assoc)
    : ReplacementPolicy(num_sets, assoc)
{
    panic_if(assoc & (assoc - 1),
             "TreePLRU requires power-of-two associativity (got %u)",
             assoc);
    nodesPerSet = assoc - 1;
    bits.assign(std::size_t(num_sets) * nodesPerSet, false);
}

void
TreePlruPolicy::updateTree(unsigned set, unsigned way)
{
    // Walk root-to-leaf; at each node point the PLRU bit *away* from
    // the touched way.
    std::size_t base = std::size_t(set) * nodesPerSet;
    unsigned node = 0;
    unsigned lo = 0, hi = assoc;
    while (hi - lo > 1) {
        unsigned mid = (lo + hi) / 2;
        bool right = way >= mid;
        bits[base + node] = !right;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

void
TreePlruPolicy::touch(unsigned set, unsigned way)
{
    ReplacementPolicy::touch(set, way);
    updateTree(set, way);
}

void
TreePlruPolicy::fill(unsigned set, unsigned way)
{
    ReplacementPolicy::fill(set, way);
    updateTree(set, way);
}

unsigned
TreePlruPolicy::victim(unsigned set) const
{
    std::size_t base = std::size_t(set) * nodesPerSet;
    unsigned node = 0;
    unsigned lo = 0, hi = assoc;
    while (hi - lo > 1) {
        unsigned mid = (lo + hi) / 2;
        bool right = bits[base + node];
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

void
TreePlruPolicy::serialize(JsonValue &out) const
{
    ReplacementPolicy::serialize(out);
    // One packed word per set with any bit raised (nodesPerSet <= 63
    // under the MaxAssoc = 64 cap).
    JsonValue packed = JsonValue::makeArray();
    for (unsigned set = 0; set < numSets; ++set) {
        std::uint64_t w = 0;
        std::size_t base = std::size_t(set) * nodesPerSet;
        for (unsigned n = 0; n < nodesPerSet; ++n) {
            if (bits[base + n])
                w |= std::uint64_t(1) << n;
        }
        if (w == 0)
            continue;
        JsonValue pair = JsonValue::makeArray();
        pair.push(JsonValue(std::uint64_t(set)));
        pair.push(JsonValue(w));
        packed.push(std::move(pair));
    }
    out.set("bits", std::move(packed));
}

void
TreePlruPolicy::restore(const JsonValue &in)
{
    ReplacementPolicy::restore(in);
    std::fill(bits.begin(), bits.end(), false);
    for (const JsonValue &pair : in.at("bits").items()) {
        std::uint64_t set = pair.items().at(0).asUInt();
        std::uint64_t w = pair.items().at(1).asUInt();
        if (set >= numSets)
            throw SimError("TreePLRU restore: set index out of range — "
                           "geometry mismatch", "snapshot");
        std::size_t base = std::size_t(set) * nodesPerSet;
        for (unsigned n = 0; n < nodesPerSet; ++n)
            bits[base + n] = (w >> n) & 1;
    }
}

std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &kind, unsigned num_sets,
                      unsigned assoc)
{
    if (kind == "LRU")
        return std::make_unique<LruPolicy>(num_sets, assoc);
    if (kind == "TreePLRU")
        return std::make_unique<TreePlruPolicy>(num_sets, assoc);
    fatal("unknown replacement policy '%s'", kind.c_str());
}

} // namespace hsc
