/**
 * @file
 * Replacement policies for caches and the directory.
 *
 * Tree-PLRU is the paper's default for both LLC and directory
 * (Table II).  LRU is provided for comparison, and the directory bench
 * ablates the "state-aware" policy sketched in the paper's future work
 * (§VII): prefer victims with no modified data and the fewest sharers,
 * falling back to recency among equals — implemented here via
 * victimAmong() over a caller-filtered candidate list.
 */

#ifndef HSC_CACHE_REPLACEMENT_HH
#define HSC_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hsc
{

class JsonValue;

/**
 * Per-set replacement state.  Policies also keep last-touch
 * timestamps so a victim can be picked among an arbitrary candidate
 * subset (used by the state-aware directory policy).
 */
class ReplacementPolicy
{
  public:
    ReplacementPolicy(unsigned num_sets, unsigned assoc);
    virtual ~ReplacementPolicy() = default;

    /** Record a hit on (set, way). */
    virtual void touch(unsigned set, unsigned way);

    /** Record a fill of (set, way). */
    virtual void fill(unsigned set, unsigned way);

    /** Pick a victim way considering the whole set. */
    virtual unsigned victim(unsigned set) const = 0;

    /**
     * Pick a victim among @p candidates (non-empty): least recently
     * touched.  Used when the owner restricts eligibility (e.g. the
     * state-aware directory policy).
     */
    unsigned victimAmong(unsigned set,
                         std::span<const unsigned> candidates) const;

    unsigned associativity() const { return assoc; }

    /** @{ Snapshot hooks: replacement metadata is persistent state —
     *  a resumed run must pick the same victims as the uninterrupted
     *  one.  Stamps are stored sparsely (untouched ways are omitted),
     *  so snapshots scale with occupancy, not geometry. */
    virtual void serialize(JsonValue &out) const;
    virtual void restore(const JsonValue &in);
    /** @} */

  protected:
    std::uint64_t
    stamp(unsigned set, unsigned way) const
    {
        return lastTouch[std::size_t(set) * assoc + way];
    }

    unsigned numSets;
    unsigned assoc;

  private:
    std::vector<std::uint64_t> lastTouch;
    std::uint64_t tick = 0;
};

/** Exact least-recently-used. */
class LruPolicy : public ReplacementPolicy
{
  public:
    using ReplacementPolicy::ReplacementPolicy;
    unsigned victim(unsigned set) const override;
};

/** Binary-tree pseudo-LRU, the Table II default. */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    TreePlruPolicy(unsigned num_sets, unsigned assoc);

    void touch(unsigned set, unsigned way) override;
    void fill(unsigned set, unsigned way) override;
    unsigned victim(unsigned set) const override;

    void serialize(JsonValue &out) const override;
    void restore(const JsonValue &in) override;

  private:
    void updateTree(unsigned set, unsigned way);

    unsigned nodesPerSet;
    /** Tree bits; true means "the PLRU victim is in the right half". */
    std::vector<bool> bits;
};

/** Named policy factory: "LRU" or "TreePLRU". */
std::unique_ptr<ReplacementPolicy>
makeReplacementPolicy(const std::string &kind, unsigned num_sets,
                      unsigned assoc);

} // namespace hsc

#endif // HSC_CACHE_REPLACEMENT_HH
