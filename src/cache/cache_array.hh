/**
 * @file
 * Generic set-associative tag store.
 *
 * CacheArray owns the tags and an Entry payload per line; protocol
 * controllers define the Entry (state, data, sharer bitmap, ...).
 * Victim selection is delegated to a ReplacementPolicy and can be
 * restricted to an eligible subset for the state-aware directory
 * policy.
 */

#ifndef HSC_CACHE_CACHE_ARRAY_HH
#define HSC_CACHE_CACHE_ARRAY_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "mem/data_block.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace hsc
{

/** Geometry + hit/miss statistics of one cache structure. */
struct CacheGeometry
{
    unsigned numSets;
    unsigned assoc;
    /** Low block-index bits to skip when forming the set index —
     *  nonzero in banked structures where those bits select the bank
     *  and are constant within one bank. */
    unsigned indexShift = 0;

    /** Geometry from capacity in bytes with 64-byte lines. */
    static CacheGeometry
    fromBytes(std::uint64_t bytes, unsigned assoc)
    {
        return CacheGeometry{
            static_cast<unsigned>(bytes / BlockSizeBytes / assoc), assoc};
    }
};

/**
 * Set-associative array of Entry payloads indexed by block address.
 */
template <typename Entry>
class CacheArray
{
  public:
    /** Upper bound on associativity: keeps victim-candidate lists on
     *  the stack in findVictimAmong. */
    static constexpr unsigned MaxAssoc = 64;

    CacheArray(std::string name, CacheGeometry geom,
               const std::string &repl = "TreePLRU")
        : _name(std::move(name)), numSets(geom.numSets), assoc(geom.assoc),
          indexShift(geom.indexShift),
          lines(std::size_t(geom.numSets) * geom.assoc),
          policy(makeReplacementPolicy(repl, geom.numSets, geom.assoc))
    {
        panic_if(numSets == 0 || (numSets & (numSets - 1)),
                 "%s: numSets must be a nonzero power of two (got %u)",
                 _name.c_str(), numSets);
        panic_if(assoc == 0 || assoc > MaxAssoc,
                 "%s: assoc must be in [1, %u] (got %u)", _name.c_str(),
                 MaxAssoc, assoc);
    }

    /** Look up @p addr; returns the entry or nullptr. Updates recency
     * when @p touch is set. */
    Entry *
    lookup(Addr addr, bool touch = true)
    {
        Addr tag = blockAlign(addr);
        unsigned set = setIndex(addr);
        for (unsigned way = 0; way < assoc; ++way) {
            Line &l = line(set, way);
            if (l.valid && l.tag == tag) {
                if (touch)
                    policy->touch(set, way);
                return &l.entry;
            }
        }
        return nullptr;
    }

    const Entry *
    peek(Addr addr) const
    {
        return const_cast<CacheArray *>(this)->lookup(addr, false);
    }

    /** True when the set of @p addr has an invalid way available. */
    bool
    hasFreeWay(Addr addr) const
    {
        unsigned set = setIndex(addr);
        for (unsigned way = 0; way < assoc; ++way) {
            if (!lineC(set, way).valid)
                return true;
        }
        return false;
    }

    /**
     * Allocate a line for @p addr in a free way.  The caller must have
     * made room (hasFreeWay) and the address must not already be
     * present.
     */
    Entry &
    allocate(Addr addr)
    {
        panic_if(lookup(addr, false),
                 "%s: allocate of already-present %#llx", _name.c_str(),
                 (unsigned long long)addr);
        unsigned set = setIndex(addr);
        for (unsigned way = 0; way < assoc; ++way) {
            Line &l = line(set, way);
            if (!l.valid) {
                l.valid = true;
                l.tag = blockAlign(addr);
                l.entry = Entry{};
                policy->fill(set, way);
                return l.entry;
            }
        }
        panic("%s: allocate with no free way for %#llx", _name.c_str(),
              (unsigned long long)addr);
    }

    /** Address+entry reference of a would-be victim. */
    struct Victim
    {
        Addr addr;
        Entry *entry;
    };

    /**
     * Pick a replacement victim in the set of @p new_addr using the
     * policy over all valid ways.
     */
    Victim
    findVictim(Addr new_addr)
    {
        unsigned set = setIndex(new_addr);
        unsigned way = policy->victim(set);
        Line &l = line(set, way);
        panic_if(!l.valid, "%s: policy picked invalid victim way",
                 _name.c_str());
        return Victim{l.tag, &l.entry};
    }

    /**
     * Pick a victim among valid ways that satisfy @p eligible,
     * least-recently-touched first.  Falls back to the unrestricted
     * policy when no way qualifies.
     *
     * @p eligible is a function template parameter (bool(Addr, const
     * Entry &)) so the predicate inlines on the miss path — no
     * std::function construction per lookup (DESIGN.md §9).
     */
    template <typename EligibleFn>
    Victim
    findVictimAmong(Addr new_addr, EligibleFn &&eligible)
    {
        unsigned set = setIndex(new_addr);
        // The candidate set is at most one way per column; assoc is
        // capped in the constructor so this lives on the stack.
        unsigned cand[MaxAssoc];
        unsigned numCand = 0;
        for (unsigned way = 0; way < assoc; ++way) {
            Line &l = line(set, way);
            if (l.valid && eligible(l.tag, l.entry))
                cand[numCand++] = way;
        }
        if (numCand == 0)
            return findVictim(new_addr);
        unsigned way = policy->victimAmong(set, {cand, numCand});
        Line &l = line(set, way);
        return Victim{l.tag, &l.entry};
    }

    /** Remove @p addr if present. */
    void
    invalidate(Addr addr)
    {
        Addr tag = blockAlign(addr);
        unsigned set = setIndex(addr);
        for (unsigned way = 0; way < assoc; ++way) {
            Line &l = line(set, way);
            if (l.valid && l.tag == tag) {
                l.valid = false;
                return;
            }
        }
    }

    /** Visit every valid line (used by the invariant checker).  @p fn
     *  is a template parameter (void(Addr, const Entry &)) so sweeps
     *  inline instead of calling through std::function. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Line &l : lines) {
            if (l.valid)
                fn(l.tag, l.entry);
        }
    }

    /** Number of valid lines. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const Line &l : lines)
            n += l.valid;
        return n;
    }

    /** Visit every valid line with its (set, way) coordinates —
     *  snapshot serialization needs the way so a restored array
     *  reproduces the exact victim-selection state. */
    template <typename Fn>
    void
    forEachWay(Fn &&fn) const
    {
        for (unsigned set = 0; set < numSets; ++set) {
            for (unsigned way = 0; way < assoc; ++way) {
                const Line &l = lineC(set, way);
                if (l.valid)
                    fn(set, way, l.tag, l.entry);
            }
        }
    }

    /**
     * Snapshot restore: materialize a line at an exact (set, way)
     * slot.  The slot must be empty (restores start from a fresh
     * array) and the policy is deliberately *not* touched — recency
     * metadata is restored wholesale via replacement().
     */
    Entry &
    restoreLine(unsigned set, unsigned way, Addr tag)
    {
        panic_if(set >= numSets || way >= assoc,
                 "%s: restoreLine(%u, %u) out of range", _name.c_str(),
                 set, way);
        Line &l = line(set, way);
        panic_if(l.valid, "%s: restoreLine into occupied (%u, %u)",
                 _name.c_str(), set, way);
        l.valid = true;
        l.tag = blockAlign(tag);
        l.entry = Entry{};
        return l.entry;
    }

    ReplacementPolicy &replacement() { return *policy; }
    const ReplacementPolicy &replacement() const { return *policy; }

    const std::string &name() const { return _name; }
    unsigned sets() const { return numSets; }
    unsigned ways() const { return assoc; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        Entry entry{};
    };

    unsigned
    setIndex(Addr addr) const
    {
        return static_cast<unsigned>(
            (addr >> (BlockShift + indexShift)) & (numSets - 1));
    }

    Line &line(unsigned set, unsigned way)
    {
        return lines[std::size_t(set) * assoc + way];
    }
    const Line &lineC(unsigned set, unsigned way) const
    {
        return lines[std::size_t(set) * assoc + way];
    }

    const std::string _name;
    unsigned numSets;
    unsigned assoc;
    unsigned indexShift;
    std::vector<Line> lines;
    std::unique_ptr<ReplacementPolicy> policy;
};

} // namespace hsc

#endif // HSC_CACHE_CACHE_ARRAY_HH
