#include "cache/cache_array.hh"
