/**
 * @file
 * TraceRecorder: the capture side of the trace frontend.
 *
 * The core issue paths (CpuCtx/WaveCtx op start, DmaEngine attributed
 * ops) call one recorder method per operation as it issues; the
 * recorder timestamps it from the bound event queue and appends it to
 * a TraceWriter.  Recording happens at the *top* of each op — before
 * any snapshot drain/park branch — so each op is captured exactly once
 * in per-agent program order even across checkpoint boundaries.
 *
 * A recorder either writes straight to a file (capture runs) or into
 * an in-memory buffer (tests, capture→replay round-trips without
 * touching the filesystem).
 */

#ifndef HSC_TRACE_TRACE_CAPTURE_HH
#define HSC_TRACE_TRACE_CAPTURE_HH

#include <memory>
#include <sstream>

#include "trace/trace_io.hh"

namespace hsc
{

class EventQueue;

class TraceRecorder
{
  public:
    /** Record into an in-memory buffer (see buffer()). */
    TraceRecorder();

    /** Record into the file at @p path. */
    explicit TraceRecorder(const std::string &path);

    /** Ticks for all subsequent records come from @p eq. */
    void bindClock(const EventQueue *eq) { clock = eq; }

    /** Functional init of a heap word (prologue; before run). */
    void memInit(Addr addr, unsigned size, std::uint64_t value);

    // CPU thread ops (agent key == tid)
    void cpuLoad(std::uint64_t agent, Addr addr, unsigned size);
    void cpuStore(std::uint64_t agent, Addr addr, unsigned size,
                  std::uint64_t value);
    void cpuAmo(std::uint64_t agent, Addr addr, unsigned size,
                AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2);
    void cpuCompute(std::uint64_t agent, Cycles cycles);
    void kernelLaunch(std::uint64_t agent, std::uint64_t ordinal,
                      std::uint64_t workgroups, bool async);
    void kernelWait(std::uint64_t agent);

    // GPU wavefront ops (agent key == waveAgentKey(ordinal, wg))
    void gpuVload(std::uint64_t agent, Addr base, Addr stride,
                  unsigned size);
    void gpuVstore(std::uint64_t agent, Addr base, Addr stride,
                   unsigned size,
                   const std::vector<std::uint64_t> &lanes);
    void gpuLoad(std::uint64_t agent, Addr addr, unsigned size,
                 Scope scope);
    void gpuStore(std::uint64_t agent, Addr addr, unsigned size,
                  std::uint64_t value, Scope scope);
    void gpuAmo(std::uint64_t agent, Addr addr, unsigned size,
                Scope scope, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2);
    void gpuCompute(std::uint64_t agent, Cycles cycles);
    void gpuAcquire(std::uint64_t agent);
    void gpuRelease(std::uint64_t agent);

    // Attributed DMA ops (recorded on the issuing CPU thread's stream)
    void dmaRead(std::uint64_t agent, Addr addr);
    void dmaWrite(std::uint64_t agent, Addr addr, const DataBlock &data,
                  ByteMask mask);
    void dmaCopy(std::uint64_t agent, Addr dst, Addr src,
                 std::uint64_t bytes);

    /** The agent issued its last op; terminates its stream. */
    void agentEnd(std::uint64_t agent);

    /** Seal the trace (idempotent).  @p has_reference stamps the
     *  capture's outcome so replay can assert bit-identity. */
    void finalize(std::uint32_t num_cpu_threads, Addr heap_base,
                  Addr heap_end, bool has_reference, Cycles ref_cycles,
                  std::uint64_t ref_image_hash);

    /** In-memory mode only: the encoded trace bytes so far. */
    std::string buffer() const;

    std::uint64_t recordCount() const { return writer->recordCount(); }

  private:
    Tick now() const;
    TraceRecord stamp(TraceOp op, std::uint64_t agent) const;

    std::unique_ptr<std::ostringstream> mem;
    std::unique_ptr<TraceWriter> writer;
    const EventQueue *clock = nullptr;
};

} // namespace hsc

#endif // HSC_TRACE_TRACE_CAPTURE_HH
