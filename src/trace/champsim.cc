#include "trace/champsim.hh"

#include <istream>
#include <map>
#include <sstream>
#include <string>

#include "sim/sim_error.hh"
#include "trace/trace_io.hh"

namespace hsc
{

namespace
{

constexpr Addr ImportHeapBase = 0x100000;

[[noreturn]] void
badLine(std::uint64_t line_no, const std::string &line,
        const std::string &why)
{
    throw SimError("champsim import: line " + std::to_string(line_no) +
                       " (" + line + "): " + why,
                   "trace");
}

} // namespace

std::uint64_t
convertChampSim(std::istream &in, std::ostream &out,
                const ChampSimOptions &opts)
{
    if (opts.workingSetBytes < BlockSizeBytes ||
        opts.workingSetBytes % BlockSizeBytes != 0) {
        throw SimError("champsim import: working set must be a "
                       "positive multiple of 64 bytes",
                       "trace");
    }

    TraceWriter w(out);
    std::map<std::uint64_t, Tick> clocks;         // dense tid -> tick
    std::map<std::uint64_t, std::uint64_t> remap; // foreign -> dense tid
    std::uint64_t converted = 0;
    std::uint64_t lineNo = 0;
    std::string line;
    std::uint64_t valueSeed = 0x1D1;

    while (std::getline(in, line)) {
        ++lineNo;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream ls(line);
        std::uint64_t tid;
        std::string kind, addrTok;
        if (!(ls >> tid))
            continue; // blank or comment-only line
        if (!(ls >> kind >> addrTok))
            badLine(lineNo, line, "expected '<tid> R|W <hex-addr>'");
        if (kind != "R" && kind != "W" && kind != "r" && kind != "w")
            badLine(lineNo, line, "access kind must be R or W");

        std::uint64_t addr = 0;
        try {
            std::size_t used = 0;
            addr = std::stoull(addrTok, &used, 16);
            if (used != addrTok.size())
                badLine(lineNo, line, "bad hex address");
        } catch (const std::logic_error &) {
            badLine(lineNo, line, "bad hex address");
        }

        unsigned size = opts.defaultSize;
        std::uint64_t sizeTok;
        if (ls >> sizeTok) {
            if (sizeTok != 1 && sizeTok != 2 && sizeTok != 4 &&
                sizeTok != 8) {
                badLine(lineNo, line, "size must be 1, 2, 4 or 8");
            }
            size = unsigned(sizeTok);
        }

        // Fold into the heap window, preserving relative locality,
        // and realign for the access size.
        Addr folded = ImportHeapBase + (addr % opts.workingSetBytes);
        folded -= folded % size;

        // Foreign thread ids may be sparse; replay threads are dense.
        std::uint64_t dense =
            remap.try_emplace(tid, remap.size()).first->second;
        Tick &clk = clocks[dense];
        clk += opts.opGap;

        TraceRecord r;
        r.agent = dense;
        r.tick = clk;
        r.addr = folded;
        r.size = size;
        if (kind == "R" || kind == "r") {
            r.op = TraceOp::CpuLoad;
        } else {
            r.op = TraceOp::CpuStore;
            valueSeed = valueSeed * 6364136223846793005ull + 1442695040888963407ull;
            r.value = valueSeed;
        }
        w.append(r);
        ++converted;
    }
    if (converted == 0)
        throw SimError("champsim import: no accesses in input", "trace");

    for (const auto &[tid, clk] : clocks)
        w.agentEnd(tid, clk + 1);

    w.finalize(std::uint32_t(remap.size()), ImportHeapBase,
               ImportHeapBase + opts.workingSetBytes, false, 0, 0);
    return converted;
}

} // namespace hsc
