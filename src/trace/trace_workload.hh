/**
 * @file
 * TraceWorkload — the trace-replay frontend.
 *
 * Replays an hsct trace through the *same* issue paths the CHAI
 * generators use: each recorded CPU stream becomes a coroutine over
 * CpuCtx, each recorded wavefront stream a coroutine over WaveCtx, and
 * DMA ops go through the attributed DmaEngine awaitables.  Replay is
 * self-timed — recorded ticks are carried for tooling but the replayed
 * ops issue as the memory system lets them, which by induction
 * reproduces the capture's timing exactly (capture→replay is asserted
 * bit-identical on cycles and the final heap image when the trace
 * carries a reference outcome).
 */

#ifndef HSC_TRACE_TRACE_WORKLOAD_HH
#define HSC_TRACE_TRACE_WORKLOAD_HH

#include <iosfwd>
#include <memory>

#include "trace/trace_io.hh"
#include "workloads/workload.hh"

namespace hsc
{

class TraceWorkload : public Workload
{
  public:
    /** Replay the trace file at @p path. */
    TraceWorkload(const WorkloadParams &p, const std::string &path);

    /** Replay from @p in (kept alive for the workload's lifetime). */
    TraceWorkload(const WorkloadParams &p,
                  std::shared_ptr<std::istream> in);

    std::string name() const override { return "trace"; }

    /** Apply the MemInit prologue, reserve the captured heap span and
     *  register one CPU thread per recorded stream. */
    void setup(HsaSystem &sys) override;

    /** The trace must be fully consumed; when it carries a reference
     *  outcome, cycles and the final heap image must match it. */
    bool verify(HsaSystem &sys) override;

  private:
    std::shared_ptr<std::istream> in; ///< istream mode only
    std::shared_ptr<TraceReader> reader;
};

} // namespace hsc

#endif // HSC_TRACE_TRACE_WORKLOAD_HH
