#include "trace/scenario.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/snapshot.hh"
#include "trace/trace_io.hh"
#include "trace/trace_workload.hh"

namespace hsc
{

namespace
{

constexpr Addr ScenarioHeapBase = 0x100000;

/** Zipfian block sampler: rank r drawn with weight 1/(r+1)^alpha,
 *  then mapped to a block through a phase-specific affine shuffle so
 *  each phase heats a different part of the working set. */
class ZipfSampler
{
  public:
    ZipfSampler(unsigned blocks, double alpha) : n(blocks)
    {
        cdf.reserve(n);
        double sum = 0;
        for (unsigned i = 0; i < n; ++i) {
            sum += alpha == 0 ? 1.0 : 1.0 / std::pow(double(i + 1), alpha);
            cdf.push_back(sum);
        }
        for (double &c : cdf)
            c /= sum;
    }

    unsigned
    sample(Rng &rng, unsigned phase) const
    {
        double u = rng.uniform();
        auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        auto rank = unsigned(it - cdf.begin());
        if (rank >= n)
            rank = n - 1;
        // Affine shuffle: odd multiplier, phase-dependent offset.
        return unsigned((std::uint64_t(rank) * 2654435761u +
                         std::uint64_t(phase) * 40503u) %
                        n);
    }

  private:
    unsigned n;
    std::vector<double> cdf;
};

constexpr AtomicOp AmoChoices[] = {
    AtomicOp::Add, AtomicOp::Exch, AtomicOp::Cas, AtomicOp::Min,
    AtomicOp::Max, AtomicOp::Or,   AtomicOp::And,
};

/** Per-agent synthetic clock implementing the burst shape.  Ticks
 *  only order records in the file (replay is self-timed), but a
 *  realistic interleave keeps the reader's look-ahead window small. */
struct AgentClock
{
    Tick t = 0;
    unsigned inBurst = 0;

    Tick
    step(const ScenarioConfig &cfg)
    {
        t += cfg.opGap;
        if (++inBurst >= cfg.burstLen) {
            inBurst = 0;
            t += cfg.burstGap;
        }
        return t;
    }
};

unsigned
alignedOffset(Rng &rng, unsigned size)
{
    return unsigned(rng.below(BlockSizeBytes / size)) * size;
}

} // namespace

ScenarioConfig
scenarioFromSeed(std::uint64_t seed)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0x5CE9A51);
    ScenarioConfig c;
    c.seed = seed;
    c.cpuThreads = unsigned(rng.range(1, 6));
    c.gpuKernels = unsigned(rng.range(0, 3));
    c.workgroupsPerKernel = unsigned(rng.range(2, 8));
    c.opsPerCpuThread = unsigned(rng.range(32, 160));
    c.opsPerWave = unsigned(rng.range(16, 96));
    c.workingSetBytes = rng.range(4, 64) * 1024;
    static const double alphas[] = {0.0, 0.5, 0.9, 1.2};
    c.zipfAlpha = alphas[rng.below(4)];
    c.readPct = unsigned(rng.range(30, 80));
    c.atomicPct = unsigned(rng.range(0, 25));
    c.vectorPct = unsigned(rng.range(0, 60));
    c.sharedPct = unsigned(rng.range(10, 60));
    c.dmaPct = unsigned(rng.range(0, 10));
    c.phases = unsigned(rng.range(1, 3));
    c.opGap = unsigned(rng.range(1, 4));
    c.burstLen = unsigned(rng.range(8, 32));
    c.burstGap = unsigned(rng.range(50, 400));
    c.producerConsumer = rng.chance(25);
    return c;
}

std::string
describeScenario(const ScenarioConfig &cfg)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "seed=%llu cpu=%u gpu=%ux%u ops=%u/%u ws=%lluK "
                  "zipf=%.1f r=%u%% amo=%u%% vec=%u%% shared=%u%% "
                  "dma=%u%% phases=%u burst=%u/%u%s",
                  (unsigned long long)cfg.seed, cfg.cpuThreads,
                  cfg.gpuKernels, cfg.workgroupsPerKernel,
                  cfg.opsPerCpuThread, cfg.opsPerWave,
                  (unsigned long long)(cfg.workingSetBytes / 1024),
                  cfg.zipfAlpha, cfg.readPct, cfg.atomicPct,
                  cfg.vectorPct, cfg.sharedPct, cfg.dmaPct, cfg.phases,
                  cfg.burstLen, cfg.burstGap,
                  cfg.producerConsumer ? " prodcons" : "");
    return buf;
}

namespace
{

/** The block index an op of @p agentSlot targets in @p phase. */
unsigned
pickBlock(Rng &rng, const ZipfSampler &zipf, const ScenarioConfig &cfg,
          unsigned sharedBlocks, unsigned privBlocks,
          unsigned agentSlot, unsigned totalSlots, unsigned phase)
{
    if (rng.chance(cfg.sharedPct) || privBlocks == 0) {
        // Shared slice: zipf-skewed over [0, sharedBlocks).
        return zipf.sample(rng, phase) % sharedBlocks;
    }
    unsigned base = sharedBlocks + (agentSlot % totalSlots) * privBlocks;
    return base + unsigned(rng.below(privBlocks));
}

} // namespace

void
generateScenarioTrace(const ScenarioConfig &cfg, std::ostream &os)
{
    fatal_if(cfg.cpuThreads == 0, "scenario: cpuThreads must be >= 1");
    fatal_if(cfg.workingSetBytes < 32 * BlockSizeBytes,
             "scenario: working set below 2K");

    const auto nblocks = unsigned(cfg.workingSetBytes / BlockSizeBytes);
    const unsigned sharedBlocks = std::max(1u, nblocks / 4);
    const unsigned totalWaves =
        cfg.gpuKernels * cfg.workgroupsPerKernel;
    const unsigned totalSlots = cfg.cpuThreads + std::max(1u, totalWaves);
    const unsigned privBlocks = (nblocks - sharedBlocks) / totalSlots;

    Rng rng(cfg.seed ^ 0x5CE2A210ull);
    ZipfSampler zipf(sharedBlocks, cfg.zipfAlpha);

    TraceWriter w(os);

    // Seed a quarter of the shared slice so reads observe nonzero
    // data from tick 0 (and the MemInit path gets exercised).
    for (unsigned b = 0; b < sharedBlocks; b += 4) {
        w.memInit(ScenarioHeapBase + Addr(b) * BlockSizeBytes, 8,
                  rng.next());
    }

    std::vector<std::vector<TraceRecord>> lists;

    const auto blockAddr = [&](unsigned blk) {
        return ScenarioHeapBase + Addr(blk) * BlockSizeBytes;
    };

    // ---- CPU threads ------------------------------------------------
    std::vector<Tick> launchTick(cfg.gpuKernels, 0);
    std::vector<bool> launchAsync(cfg.gpuKernels, false);
    for (unsigned t = 0; t < cfg.cpuThreads; ++t) {
        std::vector<TraceRecord> ops;
        AgentClock clk;
        clk.t = t; // stagger like HsaSystem's thread start
        const unsigned phaseLen =
            std::max(1u, cfg.opsPerCpuThread / cfg.phases);
        unsigned launched = 0;
        bool anyAsync = false;
        for (unsigned i = 0; i < cfg.opsPerCpuThread; ++i) {
            unsigned phase = std::min(i / phaseLen, cfg.phases - 1);
            TraceRecord r;
            r.agent = t;
            r.tick = clk.step(cfg);

            // Thread 0 owns the kernel launches, spread evenly.
            if (t == 0 && launched < cfg.gpuKernels &&
                i == (launched + 1) * cfg.opsPerCpuThread /
                         (cfg.gpuKernels + 1)) {
                r.op = TraceOp::KernelLaunch;
                r.value = launched; // ordinal: sole launcher => index
                r.value2 = cfg.workgroupsPerKernel;
                r.flag = rng.chance(50);
                launchAsync[launched] = r.flag;
                launchTick[launched] = r.tick;
                anyAsync = anyAsync || r.flag;
                if (!r.flag) {
                    // Sync launch: the thread stalls for the kernel.
                    clk.t += Tick(cfg.opsPerWave) * cfg.opGap + 10;
                }
                ++launched;
                ops.push_back(r);
                continue;
            }

            if (t == 0 && rng.chance(cfg.dmaPct)) {
                unsigned kind = unsigned(rng.below(4));
                unsigned src = unsigned(rng.below(nblocks));
                unsigned dst = unsigned(rng.below(nblocks));
                if (kind == 0) {
                    r.op = TraceOp::DmaRead;
                    r.addr = blockAddr(src);
                } else if (kind == 1) {
                    r.op = TraceOp::DmaWrite;
                    r.addr = blockAddr(dst);
                    r.mask = FullMask;
                    for (auto &byte : r.data)
                        byte = std::uint8_t(rng.next());
                } else {
                    r.op = TraceOp::DmaCopy;
                    unsigned blksLeft = nblocks - std::max(src, dst);
                    unsigned blks =
                        unsigned(rng.range(1, std::min(4u, blksLeft)));
                    r.addr = blockAddr(dst);
                    r.addr2 = blockAddr(src);
                    r.value2 = Addr(blks) * BlockSizeBytes;
                }
                ops.push_back(r);
                continue;
            }

            if (rng.chance(5)) {
                r.op = TraceOp::CpuCompute;
                r.value = rng.range(1, 20);
                ops.push_back(r);
                continue;
            }

            unsigned blk;
            bool read;
            if (cfg.producerConsumer && rng.chance(70)) {
                // Mailbox fan-out in the shared slice: producers
                // (even slots) write, consumers read.
                blk = unsigned(rng.below(sharedBlocks));
                read = (t % 2) != 0;
            } else {
                blk = pickBlock(rng, zipf, cfg, sharedBlocks,
                                privBlocks, t, totalSlots, phase);
                read = rng.chance(cfg.readPct);
            }
            static const unsigned sizes[] = {1, 2, 4, 8};
            unsigned size = sizes[rng.below(4)];
            r.addr = blockAddr(blk) + alignedOffset(rng, size);
            r.size = size;
            if (read) {
                r.op = TraceOp::CpuLoad;
            } else if (rng.chance(cfg.atomicPct)) {
                r.op = TraceOp::CpuAmo;
                r.size = 8;
                r.addr = blockAddr(blk) + alignedOffset(rng, 8);
                r.amo = AmoChoices[rng.below(7)];
                r.value = rng.next();
                r.value2 = r.amo == AtomicOp::Cas ? rng.next() : 0;
            } else {
                r.op = TraceOp::CpuStore;
                r.value = rng.next();
            }
            ops.push_back(r);
        }
        if (t == 0 && anyAsync) {
            TraceRecord r;
            r.op = TraceOp::KernelWait;
            r.agent = t;
            r.tick = clk.step(cfg);
            ops.push_back(r);
        }
        {
            TraceRecord r;
            r.op = TraceOp::AgentEnd;
            r.agent = t;
            r.tick = clk.step(cfg);
            ops.push_back(r);
        }
        lists.push_back(std::move(ops));
    }

    // ---- GPU wavefronts ---------------------------------------------
    for (unsigned k = 0; k < cfg.gpuKernels; ++k) {
        for (unsigned wg = 0; wg < cfg.workgroupsPerKernel; ++wg) {
            std::vector<TraceRecord> ops;
            AgentClock clk;
            clk.t = launchTick[k] + 1 + wg;
            const std::uint64_t agent = waveAgentKey(k, wg);
            const unsigned slot =
                cfg.cpuThreads + k * cfg.workgroupsPerKernel + wg;
            const unsigned phaseLen =
                std::max(1u, cfg.opsPerWave / cfg.phases);
            for (unsigned i = 0; i < cfg.opsPerWave; ++i) {
                unsigned phase = std::min(i / phaseLen, cfg.phases - 1);
                TraceRecord r;
                r.agent = agent;
                r.tick = clk.step(cfg);

                if (rng.chance(5)) {
                    r.op = TraceOp::GpuCompute;
                    r.value = rng.range(1, 10);
                    ops.push_back(r);
                    continue;
                }
                if (rng.chance(3)) {
                    r.op = rng.chance(50) ? TraceOp::GpuAcquire
                                          : TraceOp::GpuRelease;
                    ops.push_back(r);
                    continue;
                }
                if (rng.chance(cfg.vectorPct)) {
                    bool wide = rng.chance(40);
                    unsigned stride = wide ? BlockSizeBytes : 4;
                    unsigned span = wide ? cfg.lanes : 1;
                    unsigned blk = unsigned(
                        rng.below(std::max(1u, nblocks - span)));
                    r.addr = blockAddr(blk);
                    r.value = stride;
                    r.size = 4;
                    if (rng.chance(50)) {
                        r.op = TraceOp::GpuVload;
                    } else {
                        r.op = TraceOp::GpuVstore;
                        r.lanes.resize(cfg.lanes);
                        for (auto &v : r.lanes)
                            v = rng.next() & 0xFFFFFFFFull;
                    }
                    ops.push_back(r);
                    continue;
                }

                unsigned blk;
                bool read;
                if (cfg.producerConsumer && rng.chance(70)) {
                    blk = unsigned(rng.below(sharedBlocks));
                    read = (slot % 2) != 0;
                } else {
                    blk = pickBlock(rng, zipf, cfg,
                                    sharedBlocks, privBlocks, slot,
                                    totalSlots, phase);
                    read = rng.chance(cfg.readPct);
                }
                unsigned size = rng.chance(30) ? 8 : 4;
                r.addr = blockAddr(blk) + alignedOffset(rng, size);
                r.size = size;
                Scope scope = Scope::Wave;
                unsigned sd = unsigned(rng.below(10));
                if (sd >= 9)
                    scope = Scope::System;
                else if (sd >= 7)
                    scope = Scope::Device;
                if (read) {
                    r.op = TraceOp::GpuLoad;
                    r.scope = scope;
                } else if (rng.chance(cfg.atomicPct)) {
                    r.op = TraceOp::GpuAmo;
                    r.size = 4;
                    r.addr = blockAddr(blk) + alignedOffset(rng, 4);
                    r.scope = Scope::System;
                    r.amo = AmoChoices[rng.below(7)];
                    r.value = rng.next() & 0xFFFFFFFFull;
                    r.value2 = r.amo == AtomicOp::Cas
                                   ? rng.next() & 0xFFFFFFFFull
                                   : 0;
                } else {
                    r.op = TraceOp::GpuStore;
                    r.value = rng.next() & 0xFFFFFFFFull;
                    r.scope = scope;
                }
                ops.push_back(r);
            }
            {
                TraceRecord r;
                r.op = TraceOp::AgentEnd;
                r.agent = agent;
                r.tick = clk.step(cfg);
                ops.push_back(r);
            }
            lists.push_back(std::move(ops));
        }
    }

    // ---- k-way merge by synthetic tick ------------------------------
    // File order tracks the likely consumption order, keeping the
    // reader's look-ahead window shallow.
    std::vector<std::size_t> cursor(lists.size(), 0);
    while (true) {
        std::size_t best = lists.size();
        for (std::size_t a = 0; a < lists.size(); ++a) {
            if (cursor[a] >= lists[a].size())
                continue;
            if (best == lists.size() ||
                lists[a][cursor[a]].tick <
                    lists[best][cursor[best]].tick) {
                best = a;
            }
        }
        if (best == lists.size())
            break;
        w.append(lists[best][cursor[best]++]);
    }

    w.finalize(cfg.cpuThreads, ScenarioHeapBase,
               ScenarioHeapBase + cfg.workingSetBytes, false, 0, 0);
}

std::unique_ptr<Workload>
makeScenarioWorkload(const ScenarioConfig &cfg, const WorkloadParams &p)
{
    auto buf = std::make_shared<std::stringstream>(
        std::ios::binary | std::ios::in | std::ios::out);
    generateScenarioTrace(cfg, *buf);
    buf->seekg(0);
    return std::make_unique<TraceWorkload>(p, buf);
}

} // namespace hsc
