/**
 * @file
 * Seeded synthetic scenario generator (DESIGN.md §13.4).
 *
 * A ScenarioConfig fully determines one synthetic traffic shape:
 * zipfian address skew over a per-scenario working set, bursty
 * arrivals, read/write/atomic/vector mix, phase changes that re-skew
 * the hot set mid-run, shared vs per-agent slices, optional
 * producer/consumer fan-out and DMA traffic.  generateScenarioTrace()
 * emits it as an ordinary hsct trace, so every scenario replays
 * through the standard TraceWorkload frontend — checker, obs and all —
 * and shrinks like any other trace.  Same config, same bytes, always.
 */

#ifndef HSC_TRACE_SCENARIO_HH
#define HSC_TRACE_SCENARIO_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "sim/types.hh"

namespace hsc
{

class Workload;
struct WorkloadParams;

/** Every knob of one synthetic scenario.  All fields are derived from
 *  the seed by scenarioFromSeed(), or can be set by hand. */
struct ScenarioConfig
{
    std::uint64_t seed = 1;

    unsigned cpuThreads = 4;
    unsigned gpuKernels = 2;         ///< launched by thread 0
    unsigned workgroupsPerKernel = 4;
    unsigned lanes = 16;             ///< must match the replay config

    unsigned opsPerCpuThread = 64;
    unsigned opsPerWave = 32;

    std::uint64_t workingSetBytes = 16384; ///< block-aligned
    double zipfAlpha = 0.9;          ///< 0 = uniform
    unsigned readPct = 60;
    unsigned atomicPct = 10;         ///< of non-read ops
    unsigned vectorPct = 40;         ///< of GPU ops
    unsigned sharedPct = 30;         ///< ops landing in the shared slice
    unsigned dmaPct = 5;             ///< thread-0 op slots becoming DMA
    unsigned phases = 1;             ///< mid-run hot-set re-skews

    /** Arrival shaping: @p burstLen back-to-back ops separated by
     *  @p opGap ticks, then a @p burstGap pause. */
    unsigned opGap = 2;
    unsigned burstLen = 16;
    unsigned burstGap = 200;

    /** Even agents write / odd agents read a shared mailbox slice. */
    bool producerConsumer = false;
};

/** Derive a full config from one seed (the scenario fleet's axis). */
ScenarioConfig scenarioFromSeed(std::uint64_t seed);

/** One line: "seed=7 cpu=4 gpu=2x4 ws=16K zipf=0.9 ...". */
std::string describeScenario(const ScenarioConfig &cfg);

/** Emit the scenario as an hsct trace on @p os. */
void generateScenarioTrace(const ScenarioConfig &cfg, std::ostream &os);

/** Generate in memory and wrap in a TraceWorkload, ready to run. */
std::unique_ptr<Workload> makeScenarioWorkload(const ScenarioConfig &cfg,
                                               const WorkloadParams &p);

} // namespace hsc

#endif // HSC_TRACE_SCENARIO_HH
