/**
 * @file
 * Streaming reader/writer for the hsct binary trace format.
 *
 * The writer appends records as agents issue operations, patching the
 * header (counts, checksums, reference outcome) with one seek at
 * finalize; the reader pulls records per agent stream with a bounded
 * read-ahead window, so neither side ever holds a whole trace in
 * memory.  Both sides work over std::iostream, so tests and the
 * scenario soaks can round-trip traces through a string without
 * touching the filesystem.
 */

#ifndef HSC_TRACE_TRACE_IO_HH
#define HSC_TRACE_TRACE_IO_HH

#include <deque>
#include <functional>
#include <istream>
#include <memory>
#include <ostream>
#include <unordered_map>

#include "sim/hash.hh"
#include "trace/trace_format.hh"

namespace hsc
{

/**
 * Appends records to a trace.  Records must arrive in nondecreasing
 * tick order *per stream* (issue order of one agent); cross-stream
 * interleave is free.  MemInit records form a prologue: appending one
 * after any stream record is an error.
 */
class TraceWriter
{
  public:
    /** Write through @p os (not owned; must be seekable). */
    explicit TraceWriter(std::ostream &os);

    /** Own an output file stream at @p path (fatal if unwritable). */
    explicit TraceWriter(const std::string &path);

    /** Functional word initialisation (prologue). */
    void memInit(Addr addr, unsigned size, std::uint64_t value);

    /** Append one stream record; @p r.agent and @p r.tick route it.
     *  Emits the stream's AgentDef on first use. */
    void append(const TraceRecord &r);

    /** Convenience: append AgentEnd for @p agent at @p tick. */
    void agentEnd(std::uint64_t agent, Tick tick);

    /** Patch the header and flush.  Idempotent. */
    void finalize(std::uint32_t num_cpu_threads, Addr heap_base,
                  Addr heap_end, bool has_reference, Cycles ref_cycles,
                  std::uint64_t ref_image_hash);

    std::uint64_t recordCount() const { return count; }

  private:
    struct StreamState
    {
        std::uint32_t index = 0;
        Tick lastTick = 0;
    };

    void emit(const std::string &bytes);
    StreamState &streamFor(std::uint64_t agent, Tick tick);

    std::unique_ptr<std::ostream> owned;
    std::ostream &os;
    std::unordered_map<std::uint64_t, StreamState> streams;
    std::uint32_t nextStream = 0;
    std::uint64_t count = 0;
    std::uint64_t hash;
    bool sawStreamRecord = false;
    bool finalized = false;
};

/**
 * Pulls records from a trace, demultiplexed per agent stream.
 *
 * The header and the MemInit prologue are decoded eagerly at
 * construction; everything after streams through a read-ahead window:
 * next() scans forward only until the requested stream's next record
 * appears, queueing what it passes.  The window is bounded
 * (@p max_pending records) — a trace whose stream interleave strays
 * further from consumption order than that is rejected rather than
 * buffered without limit.
 *
 * All integrity failures (bad magic/version/checksums, truncation,
 * tick-delta overflow, malformed varints, trailing bytes) raise
 * SimError with category "trace".
 */
class TraceReader
{
  public:
    /** Read from @p is (not owned). */
    explicit TraceReader(std::istream &is, std::size_t max_pending = 65536);

    /** Own an input file stream at @p path (fatal if unreadable). */
    explicit TraceReader(const std::string &path,
                         std::size_t max_pending = 65536);

    const TraceHeader &header() const { return hdr; }

    /** The decoded MemInit prologue. */
    const std::vector<TraceRecord> &memInits() const { return inits; }

    /**
     * Next record of @p agent's stream.  Returns false once the
     * stream's AgentEnd is reached.  Throws if the trace ends without
     * terminating the stream (or never defines the agent at all).
     */
    bool next(std::uint64_t agent, TraceRecord &out);

    /** Every stream ended and the file validated to its last byte. */
    bool fullyConsumed() const;

    /**
     * Decode and validate the whole trace in one pass (no windowing),
     * invoking @p cb (when set) on every stream record.  For tools
     * and the corruption-corpus tests.
     */
    void validateAll(const std::function<void(const TraceRecord &)> &cb =
                         nullptr);

  private:
    void readHeader();
    void readPrologue();
    /** Decode one record after the prologue; false at a clean EOF. */
    bool readRecord(TraceRecord &out);
    void finishFile();
    [[noreturn]] void fail(const std::string &why) const;

    std::uint8_t nextByte();
    std::uint64_t readVarint();

    std::unique_ptr<std::istream> owned;
    std::istream &is;
    const std::size_t maxPending;
    TraceHeader hdr;
    std::vector<TraceRecord> inits;

    struct Stream
    {
        std::deque<TraceRecord> queue;
        Tick lastTick = 0;
        bool ended = false;
    };
    std::unordered_map<std::uint64_t, std::uint32_t> agentIndex;
    std::vector<std::uint64_t> indexAgent;
    std::vector<Stream> streams;
    std::size_t pendingTotal = 0;

    std::uint64_t decoded = 0; ///< records consumed from the file
    std::uint64_t hash = FnvOffsetBasis;
    /** Bytes of the record currently being decoded (for the hash). */
    std::string curBytes;
    bool atEnd = false;
};

} // namespace hsc

#endif // HSC_TRACE_TRACE_IO_HH
