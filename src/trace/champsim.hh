/**
 * @file
 * Importer for ChampSim-style text memory traces.
 *
 * Accepts the common textual interchange shape — one access per line,
 * `<tid> R|W <hex-addr> [size]`, `#` comments — and converts it to an
 * hsct binary trace: thread ids become CPU agent streams, addresses
 * fold into a configurable working-set window of the simulated heap
 * (preserving relative locality), and ticks advance synthetically per
 * thread.  The output replays through TraceWorkload like any capture.
 */

#ifndef HSC_TRACE_CHAMPSIM_HH
#define HSC_TRACE_CHAMPSIM_HH

#include <iosfwd>

#include "sim/types.hh"

namespace hsc
{

struct ChampSimOptions
{
    /** Foreign addresses fold into [heapBase, heapBase + this). */
    std::uint64_t workingSetBytes = 1ull << 20;

    /** Synthetic ticks between a thread's consecutive accesses. */
    unsigned opGap = 2;

    /** Default access size when a line omits it. */
    unsigned defaultSize = 8;
};

/**
 * Convert the text trace on @p in to an hsct trace on @p out.
 * Malformed input raises SimError (category "trace") naming the line.
 * @return number of accesses converted.
 */
std::uint64_t convertChampSim(std::istream &in, std::ostream &out,
                              const ChampSimOptions &opts = {});

} // namespace hsc

#endif // HSC_TRACE_CHAMPSIM_HH
