#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{

// --------------------------------------------------------------------
// TraceWriter
// --------------------------------------------------------------------

namespace
{

std::unique_ptr<std::ostream>
openOut(const std::string &path)
{
    auto f = std::make_unique<std::ofstream>(
        path, std::ios::binary | std::ios::trunc);
    fatal_if(!*f, "cannot write trace file '%s'", path.c_str());
    return f;
}

std::unique_ptr<std::istream>
openIn(const std::string &path)
{
    auto f = std::make_unique<std::ifstream>(path, std::ios::binary);
    fatal_if(!*f, "cannot read trace file '%s'", path.c_str());
    return f;
}

} // namespace

TraceWriter::TraceWriter(std::ostream &out)
    : os(out), hash(FnvOffsetBasis)
{
    // Placeholder header: all-zero checksum fields, so a capture that
    // dies before finalize() is rejected by every reader.
    os.write(std::string(TraceHeaderBytes, '\0').data(),
             TraceHeaderBytes);
}

TraceWriter::TraceWriter(const std::string &path)
    : owned(openOut(path)), os(*owned), hash(FnvOffsetBasis)
{
    os.write(std::string(TraceHeaderBytes, '\0').data(),
             TraceHeaderBytes);
}

void
TraceWriter::emit(const std::string &bytes)
{
    panic_if(finalized, "trace writer: append after finalize");
    hash = fnvBytes(bytes.data(), bytes.size(), hash);
    os.write(bytes.data(), std::streamsize(bytes.size()));
    ++count;
}

void
TraceWriter::memInit(Addr addr, unsigned size, std::uint64_t value)
{
    if (sawStreamRecord) {
        throw SimError("MemInit after the first stream record (all "
                       "functional initialisation must precede the "
                       "simulated run)",
                       "trace");
    }
    std::string b;
    b.push_back(char(TraceOp::MemInit));
    appendVarint(b, addr);
    b.push_back(char(std::uint8_t(size)));
    appendVarint(b, value);
    emit(b);
}

TraceWriter::StreamState &
TraceWriter::streamFor(std::uint64_t agent, Tick tick)
{
    auto it = streams.find(agent);
    if (it == streams.end()) {
        std::string def;
        def.push_back(char(TraceOp::AgentDef));
        appendVarint(def, agent);
        emit(def);
        // lastTick starts at 0 (matching the reader), so the first
        // record's delta carries its absolute tick.
        it = streams.emplace(agent, StreamState{nextStream++, 0})
                 .first;
        return it->second;
    }
    if (tick < it->second.lastTick) {
        throw SimError("trace writer: tick regression on agent stream "
                       "(records must arrive in issue order)",
                       "trace");
    }
    return it->second;
}

void
TraceWriter::append(const TraceRecord &r)
{
    sawStreamRecord = true;
    StreamState &st = streamFor(r.agent, r.tick);
    Tick delta = r.tick - st.lastTick;
    st.lastTick = r.tick;

    std::string b;
    b.push_back(char(r.op));
    appendVarint(b, st.index);
    appendVarint(b, delta);
    switch (r.op) {
      case TraceOp::CpuLoad:
        appendVarint(b, r.addr);
        b.push_back(char(std::uint8_t(r.size)));
        break;
      case TraceOp::CpuStore:
        appendVarint(b, r.addr);
        b.push_back(char(std::uint8_t(r.size)));
        appendVarint(b, r.value);
        break;
      case TraceOp::CpuAmo:
        appendVarint(b, r.addr);
        b.push_back(char(std::uint8_t(r.size)));
        b.push_back(char(std::uint8_t(r.amo)));
        appendVarint(b, r.value);
        appendVarint(b, r.value2);
        break;
      case TraceOp::CpuCompute:
      case TraceOp::GpuCompute:
        appendVarint(b, r.value);
        break;
      case TraceOp::KernelLaunch:
        appendVarint(b, r.value);  // ordinal
        appendVarint(b, r.value2); // workgroups
        b.push_back(char(r.flag ? 1 : 0));
        break;
      case TraceOp::KernelWait:
      case TraceOp::GpuAcquire:
      case TraceOp::GpuRelease:
      case TraceOp::AgentEnd:
        break;
      case TraceOp::GpuVload:
        appendVarint(b, r.addr);
        appendVarint(b, r.value); // stride
        b.push_back(char(std::uint8_t(r.size)));
        break;
      case TraceOp::GpuVstore:
        appendVarint(b, r.addr);
        appendVarint(b, r.value); // stride
        b.push_back(char(std::uint8_t(r.size)));
        appendVarint(b, r.lanes.size());
        for (std::uint64_t v : r.lanes)
            appendVarint(b, v);
        break;
      case TraceOp::GpuLoad:
        appendVarint(b, r.addr);
        b.push_back(char(std::uint8_t(r.size)));
        b.push_back(char(std::uint8_t(r.scope)));
        break;
      case TraceOp::GpuStore:
        appendVarint(b, r.addr);
        appendVarint(b, r.value);
        b.push_back(char(std::uint8_t(r.size)));
        b.push_back(char(std::uint8_t(r.scope)));
        break;
      case TraceOp::GpuAmo:
        appendVarint(b, r.addr);
        b.push_back(char(std::uint8_t(r.size)));
        b.push_back(char(std::uint8_t(r.scope)));
        b.push_back(char(std::uint8_t(r.amo)));
        appendVarint(b, r.value);
        appendVarint(b, r.value2);
        break;
      case TraceOp::DmaRead:
        appendVarint(b, r.addr);
        break;
      case TraceOp::DmaWrite:
        appendVarint(b, r.addr);
        appendVarint(b, r.mask);
        b.append(reinterpret_cast<const char *>(r.data.data()),
                 r.data.size());
        break;
      case TraceOp::DmaCopy:
        appendVarint(b, r.addr);
        appendVarint(b, r.addr2);
        appendVarint(b, r.value2);
        break;
      case TraceOp::MemInit:
      case TraceOp::AgentDef:
        panic("trace writer: %s is not a stream record",
              traceOpName(r.op));
    }
    emit(b);
}

void
TraceWriter::agentEnd(std::uint64_t agent, Tick tick)
{
    TraceRecord r;
    r.op = TraceOp::AgentEnd;
    r.agent = agent;
    r.tick = tick;
    append(r);
}

void
TraceWriter::finalize(std::uint32_t num_cpu_threads, Addr heap_base,
                      Addr heap_end, bool has_reference,
                      Cycles ref_cycles, std::uint64_t ref_image_hash)
{
    if (finalized)
        return;
    finalized = true;
    TraceHeader h;
    h.flags = has_reference ? TraceFlagHasReference : 0;
    h.numCpuThreads = num_cpu_threads;
    h.heapBase = heap_base;
    h.heapEnd = heap_end;
    h.refCycles = ref_cycles;
    h.refImageHash = ref_image_hash;
    h.recordCount = count;
    h.recordHash = hash;
    std::string bytes = encodeTraceHeader(h);
    os.seekp(0);
    os.write(bytes.data(), std::streamsize(bytes.size()));
    os.seekp(0, std::ios::end);
    os.flush();
    fatal_if(!os, "trace writer: output stream failed at finalize");
}

// --------------------------------------------------------------------
// TraceReader
// --------------------------------------------------------------------

TraceReader::TraceReader(std::istream &in, std::size_t max_pending)
    : is(in), maxPending(max_pending)
{
    readHeader();
    readPrologue();
}

TraceReader::TraceReader(const std::string &path, std::size_t max_pending)
    : owned(openIn(path)), is(*owned), maxPending(max_pending)
{
    readHeader();
    readPrologue();
}

void
TraceReader::fail(const std::string &why) const
{
    throw SimError("trace: " + why, "trace");
}

void
TraceReader::readHeader()
{
    char raw[TraceHeaderBytes];
    is.read(raw, TraceHeaderBytes);
    if (std::size_t(is.gcount()) != TraceHeaderBytes)
        fail("file shorter than the 80-byte header");
    if (std::memcmp(raw, TraceMagic, sizeof(TraceMagic)) != 0)
        fail("bad magic (not an hsct trace)");

    auto le32 = [&](std::size_t off) {
        std::uint32_t v = 0;
        for (unsigned i = 0; i < 4; ++i)
            v |= std::uint32_t(std::uint8_t(raw[off + i])) << (8 * i);
        return v;
    };
    auto le64 = [&](std::size_t off) {
        std::uint64_t v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= std::uint64_t(std::uint8_t(raw[off + i])) << (8 * i);
        return v;
    };
    std::uint64_t want = le64(TraceHeaderHashOffset);
    std::uint64_t got = fnvBytes(raw, TraceHeaderHashOffset);
    if (want != got) {
        fail("header checksum mismatch (corrupt or torn capture that "
             "never finalized)");
    }
    hdr.version = le32(8);
    if (hdr.version != TraceVersion) {
        fail("version skew: file is v" + std::to_string(hdr.version) +
             ", this reader understands v" +
             std::to_string(TraceVersion));
    }
    hdr.flags = le32(12);
    hdr.numCpuThreads = le32(16);
    hdr.heapBase = le64(24);
    hdr.heapEnd = le64(32);
    hdr.refCycles = le64(40);
    hdr.refImageHash = le64(48);
    hdr.recordCount = le64(56);
    hdr.recordHash = le64(TraceHeaderHashOffset - 8);
}

std::uint8_t
TraceReader::nextByte()
{
    int c = is.get();
    if (c == std::char_traits<char>::eof())
        fail("truncated mid-record");
    curBytes.push_back(char(c));
    return std::uint8_t(c);
}

std::uint64_t
TraceReader::readVarint()
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    for (unsigned i = 0; i < TraceVarintMaxBytes; ++i) {
        std::uint8_t b = nextByte();
        if (shift == 63 && (b & 0x7E))
            fail("varint overflows 64 bits");
        v |= std::uint64_t(b & 0x7F) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
    }
    fail("varint longer than 10 bytes");
}

void
TraceReader::finishFile()
{
    if (atEnd)
        return;
    atEnd = true;
    if (decoded != hdr.recordCount) {
        fail("record count mismatch: header says " +
             std::to_string(hdr.recordCount) + ", file holds " +
             std::to_string(decoded));
    }
    if (hash != hdr.recordHash)
        fail("record checksum mismatch (corrupt record bytes)");
    if (is.get() != std::char_traits<char>::eof())
        fail("trailing bytes after the final record");
}

bool
TraceReader::readRecord(TraceRecord &out)
{
    if (atEnd)
        return false;
    if (decoded == hdr.recordCount) {
        finishFile();
        return false;
    }
    int first = is.get();
    if (first == std::char_traits<char>::eof()) {
        // Fewer records than the header promised.
        finishFile();
        return false;
    }
    curBytes.clear();
    curBytes.push_back(char(first));
    auto op = std::uint8_t(first);
    if (op > std::uint8_t(TraceOp::AgentEnd))
        fail("unknown opcode " + std::to_string(op));
    out = TraceRecord{};
    out.op = TraceOp(op);

    if (out.op == TraceOp::MemInit) {
        out.addr = readVarint();
        out.size = nextByte();
        out.value = readVarint();
    } else if (out.op == TraceOp::AgentDef) {
        std::uint64_t key = readVarint();
        if (agentIndex.count(key))
            fail("duplicate AgentDef");
        agentIndex.emplace(key, std::uint32_t(indexAgent.size()));
        indexAgent.push_back(key);
        streams.emplace_back();
    } else {
        std::uint64_t idx = readVarint();
        if (idx >= streams.size())
            fail("record references undefined stream");
        Stream &st = streams[std::size_t(idx)];
        if (st.ended)
            fail("record after the stream's AgentEnd");
        std::uint64_t delta = readVarint();
        if (delta > std::uint64_t(-1) - st.lastTick)
            fail("delta tick overflows the 64-bit timeline");
        st.lastTick += delta;
        out.agent = indexAgent[std::size_t(idx)];
        out.tick = st.lastTick;
        switch (out.op) {
          case TraceOp::CpuLoad:
            out.addr = readVarint();
            out.size = nextByte();
            break;
          case TraceOp::CpuStore:
            out.addr = readVarint();
            out.size = nextByte();
            out.value = readVarint();
            break;
          case TraceOp::CpuAmo:
            out.addr = readVarint();
            out.size = nextByte();
            out.amo = AtomicOp(nextByte());
            out.value = readVarint();
            out.value2 = readVarint();
            break;
          case TraceOp::CpuCompute:
          case TraceOp::GpuCompute:
            out.value = readVarint();
            break;
          case TraceOp::KernelLaunch:
            out.value = readVarint();
            out.value2 = readVarint();
            out.flag = nextByte() != 0;
            break;
          case TraceOp::KernelWait:
          case TraceOp::GpuAcquire:
          case TraceOp::GpuRelease:
            break;
          case TraceOp::AgentEnd:
            st.ended = true;
            break;
          case TraceOp::GpuVload:
            out.addr = readVarint();
            out.value = readVarint();
            out.size = nextByte();
            break;
          case TraceOp::GpuVstore: {
            out.addr = readVarint();
            out.value = readVarint();
            out.size = nextByte();
            std::uint64_t n = readVarint();
            if (n > 1024)
                fail("GpuVstore lane count " + std::to_string(n) +
                     " is implausible");
            out.lanes.resize(std::size_t(n));
            for (auto &v : out.lanes)
                v = readVarint();
            break;
          }
          case TraceOp::GpuLoad:
            out.addr = readVarint();
            out.size = nextByte();
            out.scope = Scope(nextByte());
            break;
          case TraceOp::GpuStore:
            out.addr = readVarint();
            out.value = readVarint();
            out.size = nextByte();
            out.scope = Scope(nextByte());
            break;
          case TraceOp::GpuAmo:
            out.addr = readVarint();
            out.size = nextByte();
            out.scope = Scope(nextByte());
            out.amo = AtomicOp(nextByte());
            out.value = readVarint();
            out.value2 = readVarint();
            break;
          case TraceOp::DmaRead:
            out.addr = readVarint();
            break;
          case TraceOp::DmaWrite:
            out.addr = readVarint();
            out.mask = readVarint();
            for (auto &byte : out.data)
                byte = nextByte();
            break;
          case TraceOp::DmaCopy:
            out.addr = readVarint();
            out.addr2 = readVarint();
            out.value2 = readVarint();
            break;
          case TraceOp::MemInit:
          case TraceOp::AgentDef:
            break; // handled above
        }
    }
    hash = fnvBytes(curBytes.data(), curBytes.size(), hash);
    ++decoded;
    if (decoded == hdr.recordCount)
        finishFile(); // validate the tail eagerly: hash + no trailing bytes
    return true;
}

void
TraceReader::readPrologue()
{
    // MemInit records are required to be contiguous at the front, so
    // the prologue is the only part read eagerly.  Peek-driven: stop
    // at the first non-MemInit opcode.
    while (decoded < hdr.recordCount) {
        int c = is.peek();
        if (c == std::char_traits<char>::eof())
            break; // count mismatch surfaces on the first next()
        if (std::uint8_t(c) != std::uint8_t(TraceOp::MemInit))
            break;
        TraceRecord r;
        if (!readRecord(r))
            break;
        inits.push_back(std::move(r));
    }
    if (decoded == hdr.recordCount)
        finishFile();
}

bool
TraceReader::next(std::uint64_t agent, TraceRecord &out)
{
    while (true) {
        auto it = agentIndex.find(agent);
        if (it != agentIndex.end()) {
            Stream &st = streams[it->second];
            if (!st.queue.empty()) {
                TraceRecord r = std::move(st.queue.front());
                st.queue.pop_front();
                --pendingTotal;
                if (r.op == TraceOp::AgentEnd)
                    return false;
                out = std::move(r);
                return true;
            }
            if (st.ended)
                return false;
        }
        TraceRecord r;
        if (!readRecord(r)) {
            if (it == agentIndex.end()) {
                fail("agent 0x" + std::to_string(agent) +
                     " has no stream in this trace");
            }
            fail("stream for agent " + std::to_string(agent) +
                 " is not terminated (truncated capture?)");
        }
        if (r.op == TraceOp::AgentDef)
            continue;
        if (r.op == TraceOp::MemInit)
            fail("MemInit after the first stream record");
        if (r.agent == agent && r.op != TraceOp::AgentEnd &&
            streams[agentIndex.at(agent)].queue.empty()) {
            out = std::move(r);
            return true;
        }
        std::uint32_t idx = agentIndex.at(r.agent);
        if (r.op == TraceOp::AgentEnd)
            streams[idx].ended = true;
        streams[idx].queue.push_back(std::move(r));
        ++pendingTotal;
        if (pendingTotal > maxPending) {
            fail("read-ahead window exceeded " +
                 std::to_string(maxPending) +
                 " records (stream interleave strays too far from "
                 "consumption order)");
        }
        if (r.op == TraceOp::AgentEnd && r.agent == agent)
            continue; // next loop pass pops it and returns false
    }
}

bool
TraceReader::fullyConsumed() const
{
    if (!atEnd || pendingTotal != 0)
        return false;
    for (const Stream &st : streams) {
        if (!st.ended || !st.queue.empty())
            return false;
    }
    return true;
}

void
TraceReader::validateAll(
    const std::function<void(const TraceRecord &)> &cb)
{
    if (cb) {
        for (const TraceRecord &r : inits)
            cb(r);
    }
    TraceRecord r;
    while (readRecord(r)) {
        if (cb && r.op != TraceOp::AgentDef)
            cb(r);
    }
}

} // namespace hsc
