#include "trace/trace_workload.hh"

#include <cstdio>
#include <cstring>

#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "workloads/registry.hh"

namespace hsc
{

namespace
{

/** Wavefront coroutine replaying one recorded stream.  Every launched
 *  kernel shares this body; the wavefront's agent key (assigned by
 *  the dispatcher from the launch ordinal, exactly as at capture)
 *  selects its stream. */
std::function<SimTask(WaveCtx &)>
waveBody(std::shared_ptr<TraceReader> rd)
{
    return [rd](WaveCtx &wf) -> SimTask {
        TraceRecord r;
        while (rd->next(wf.agentKey(), r)) {
            switch (r.op) {
              case TraceOp::GpuVload:
                co_await wf.vload(r.addr, unsigned(r.value), r.size);
                break;
              case TraceOp::GpuVstore:
                co_await wf.vstore(r.addr, unsigned(r.value), r.size,
                                   r.lanes);
                break;
              case TraceOp::GpuLoad:
                co_await wf.load(r.addr, r.size, r.scope);
                break;
              case TraceOp::GpuStore:
                co_await wf.store(r.addr, r.value, r.size, r.scope);
                break;
              case TraceOp::GpuAmo:
                co_await wf.atomic(r.addr, r.amo, r.value, r.value2,
                                   r.size, r.scope);
                break;
              case TraceOp::GpuCompute:
                co_await wf.compute(Cycles(r.value));
                break;
              case TraceOp::GpuAcquire:
                co_await wf.acquire();
                break;
              case TraceOp::GpuRelease:
                co_await wf.release();
                break;
              default:
                throw SimError(
                    std::string("trace replay: ") + traceOpName(r.op) +
                        " on a wavefront stream",
                    "trace");
            }
        }
    };
}

SimTask
cpuBody(CpuCtx &cpu, HsaSystem *sys, std::shared_ptr<TraceReader> rd)
{
    TraceRecord r;
    while (rd->next(cpu.agentKey(), r)) {
        switch (r.op) {
          case TraceOp::CpuLoad:
            co_await cpu.load(r.addr, r.size);
            break;
          case TraceOp::CpuStore:
            co_await cpu.store(r.addr, r.value, r.size);
            break;
          case TraceOp::CpuAmo:
            co_await cpu.atomic(r.addr, r.amo, r.value, r.value2,
                                r.size);
            break;
          case TraceOp::CpuCompute:
            co_await cpu.compute(Cycles(r.value));
            break;
          case TraceOp::KernelLaunch: {
            GpuKernel k;
            k.name = "trace#" + std::to_string(r.value);
            k.numWorkgroups = unsigned(r.value2);
            k.body = waveBody(rd);
            if (r.flag)
                cpu.launchKernelAsync(k);
            else
                co_await cpu.launchKernel(k);
            break;
          }
          case TraceOp::KernelWait:
            co_await cpu.waitKernels();
            break;
          case TraceOp::DmaRead:
            co_await sys->dma().readBlock(cpu, r.addr);
            break;
          case TraceOp::DmaWrite: {
            DataBlock blk;
            std::memcpy(blk.raw(), r.data.data(), BlockSizeBytes);
            co_await sys->dma().writeBlock(cpu, r.addr, blk, r.mask);
            break;
          }
          case TraceOp::DmaCopy:
            co_await sys->dma().copyAsync(cpu, r.addr, r.addr2,
                                          r.value2);
            break;
          default:
            throw SimError(std::string("trace replay: ") +
                               traceOpName(r.op) + " on a CPU stream",
                           "trace");
        }
    }
}

} // namespace

TraceWorkload::TraceWorkload(const WorkloadParams &p,
                             const std::string &path)
    : Workload(p), reader(std::make_shared<TraceReader>(path))
{
}

TraceWorkload::TraceWorkload(const WorkloadParams &p,
                             std::shared_ptr<std::istream> in_)
    : Workload(p), in(std::move(in_)),
      reader(std::make_shared<TraceReader>(*in))
{
}

void
TraceWorkload::setup(HsaSystem &sys)
{
    const TraceHeader &h = reader->header();

    for (const TraceRecord &r : reader->memInits()) {
        switch (r.size) {
          case 1:
            sys.writeWord<std::uint8_t>(r.addr,
                                        std::uint8_t(r.value));
            break;
          case 2:
            sys.writeWord<std::uint16_t>(r.addr,
                                         std::uint16_t(r.value));
            break;
          case 4:
            sys.writeWord<std::uint32_t>(r.addr,
                                         std::uint32_t(r.value));
            break;
          case 8:
            sys.writeWord<std::uint64_t>(r.addr, r.value);
            break;
          default:
            throw SimError("trace replay: MemInit of size " +
                               std::to_string(r.size),
                           "trace");
        }
    }

    // Reserve the capture's heap span so a re-capture of this replay
    // stamps the same heapEnd (and the image hash covers it).
    if (h.heapEnd > h.heapBase)
        sys.alloc(h.heapEnd - h.heapBase);

    HsaSystem *sysp = &sys;
    auto rd = reader;
    for (std::uint32_t t = 0; t < h.numCpuThreads; ++t) {
        sys.addCpuThread([sysp, rd](CpuCtx &cpu) {
            return cpuBody(cpu, sysp, rd);
        });
    }
}

bool
TraceWorkload::verify(HsaSystem &sys)
{
    bool ok = true;
    if (!reader->fullyConsumed()) {
        std::printf("trace replay: trace not fully consumed\n");
        ok = false;
    }
    const TraceHeader &h = reader->header();
    if (h.hasReference()) {
        Cycles cycles = sys.cpuCycles();
        std::uint64_t image = sys.imageHash(h.heapBase, h.heapEnd);
        bool cyclesOk = cycles == h.refCycles;
        bool imageOk = image == h.refImageHash;
        std::printf("trace replay: cycles %llu (ref %llu) image %016llx "
                    "(ref %016llx) -> %s\n",
                    (unsigned long long)cycles,
                    (unsigned long long)h.refCycles,
                    (unsigned long long)image,
                    (unsigned long long)h.refImageHash,
                    cyclesOk && imageOk ? "bit-identical"
                                        : "MISMATCH");
        ok = ok && cyclesOk && imageOk;
    }
    return ok;
}

HSC_WORKLOAD_TU(trace)
{
    WorkloadInfo info;
    info.id = "trace";
    info.description =
        "Replay an hsct memory trace (set --trace-in PATH)";
    info.tags = TagFrontend;
    info.make = [](const WorkloadParams &p) {
        fatal_if(p.tracePath.empty(),
                 "workload 'trace' needs a trace file (--trace-in)");
        return std::unique_ptr<Workload>(new TraceWorkload(p, p.tracePath));
    };
    reg.addInfo(std::move(info));
}

} // namespace hsc
