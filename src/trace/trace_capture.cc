#include "trace/trace_capture.hh"

#include <cstring>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace hsc
{

TraceRecorder::TraceRecorder()
    : mem(std::make_unique<std::ostringstream>(
          std::ios::binary | std::ios::out)),
      writer(std::make_unique<TraceWriter>(*mem))
{
}

TraceRecorder::TraceRecorder(const std::string &path)
    : writer(std::make_unique<TraceWriter>(path))
{
}

Tick
TraceRecorder::now() const
{
    panic_if(!clock, "trace recorder used before bindClock()");
    return clock->curTick();
}

TraceRecord
TraceRecorder::stamp(TraceOp op, std::uint64_t agent) const
{
    TraceRecord r;
    r.op = op;
    r.agent = agent;
    r.tick = now();
    return r;
}

void
TraceRecorder::memInit(Addr addr, unsigned size, std::uint64_t value)
{
    writer->memInit(addr, size, value);
}

void
TraceRecorder::cpuLoad(std::uint64_t agent, Addr addr, unsigned size)
{
    TraceRecord r = stamp(TraceOp::CpuLoad, agent);
    r.addr = addr;
    r.size = size;
    writer->append(r);
}

void
TraceRecorder::cpuStore(std::uint64_t agent, Addr addr, unsigned size,
                        std::uint64_t value)
{
    TraceRecord r = stamp(TraceOp::CpuStore, agent);
    r.addr = addr;
    r.size = size;
    r.value = value;
    writer->append(r);
}

void
TraceRecorder::cpuAmo(std::uint64_t agent, Addr addr, unsigned size,
                      AtomicOp op, std::uint64_t operand,
                      std::uint64_t operand2)
{
    TraceRecord r = stamp(TraceOp::CpuAmo, agent);
    r.addr = addr;
    r.size = size;
    r.amo = op;
    r.value = operand;
    r.value2 = operand2;
    writer->append(r);
}

void
TraceRecorder::cpuCompute(std::uint64_t agent, Cycles cycles)
{
    TraceRecord r = stamp(TraceOp::CpuCompute, agent);
    r.value = cycles;
    writer->append(r);
}

void
TraceRecorder::kernelLaunch(std::uint64_t agent, std::uint64_t ordinal,
                            std::uint64_t workgroups, bool async)
{
    TraceRecord r = stamp(TraceOp::KernelLaunch, agent);
    r.value = ordinal;
    r.value2 = workgroups;
    r.flag = async;
    writer->append(r);
}

void
TraceRecorder::kernelWait(std::uint64_t agent)
{
    writer->append(stamp(TraceOp::KernelWait, agent));
}

void
TraceRecorder::gpuVload(std::uint64_t agent, Addr base, Addr stride,
                        unsigned size)
{
    TraceRecord r = stamp(TraceOp::GpuVload, agent);
    r.addr = base;
    r.value = stride;
    r.size = size;
    writer->append(r);
}

void
TraceRecorder::gpuVstore(std::uint64_t agent, Addr base, Addr stride,
                         unsigned size,
                         const std::vector<std::uint64_t> &lanes)
{
    TraceRecord r = stamp(TraceOp::GpuVstore, agent);
    r.addr = base;
    r.value = stride;
    r.size = size;
    r.lanes = lanes;
    writer->append(r);
}

void
TraceRecorder::gpuLoad(std::uint64_t agent, Addr addr, unsigned size,
                       Scope scope)
{
    TraceRecord r = stamp(TraceOp::GpuLoad, agent);
    r.addr = addr;
    r.size = size;
    r.scope = scope;
    writer->append(r);
}

void
TraceRecorder::gpuStore(std::uint64_t agent, Addr addr, unsigned size,
                        std::uint64_t value, Scope scope)
{
    TraceRecord r = stamp(TraceOp::GpuStore, agent);
    r.addr = addr;
    r.size = size;
    r.value = value;
    r.scope = scope;
    writer->append(r);
}

void
TraceRecorder::gpuAmo(std::uint64_t agent, Addr addr, unsigned size,
                      Scope scope, AtomicOp op, std::uint64_t operand,
                      std::uint64_t operand2)
{
    TraceRecord r = stamp(TraceOp::GpuAmo, agent);
    r.addr = addr;
    r.size = size;
    r.scope = scope;
    r.amo = op;
    r.value = operand;
    r.value2 = operand2;
    writer->append(r);
}

void
TraceRecorder::gpuCompute(std::uint64_t agent, Cycles cycles)
{
    TraceRecord r = stamp(TraceOp::GpuCompute, agent);
    r.value = cycles;
    writer->append(r);
}

void
TraceRecorder::gpuAcquire(std::uint64_t agent)
{
    writer->append(stamp(TraceOp::GpuAcquire, agent));
}

void
TraceRecorder::gpuRelease(std::uint64_t agent)
{
    writer->append(stamp(TraceOp::GpuRelease, agent));
}

void
TraceRecorder::dmaRead(std::uint64_t agent, Addr addr)
{
    TraceRecord r = stamp(TraceOp::DmaRead, agent);
    r.addr = addr;
    writer->append(r);
}

void
TraceRecorder::dmaWrite(std::uint64_t agent, Addr addr,
                        const DataBlock &data, ByteMask mask)
{
    TraceRecord r = stamp(TraceOp::DmaWrite, agent);
    r.addr = addr;
    std::memcpy(r.data.data(), data.raw(), BlockSizeBytes);
    r.mask = mask;
    writer->append(r);
}

void
TraceRecorder::dmaCopy(std::uint64_t agent, Addr dst, Addr src,
                       std::uint64_t bytes)
{
    TraceRecord r = stamp(TraceOp::DmaCopy, agent);
    r.addr = dst;
    r.addr2 = src;
    r.value2 = bytes;
    writer->append(r);
}

void
TraceRecorder::agentEnd(std::uint64_t agent)
{
    writer->agentEnd(agent, now());
}

void
TraceRecorder::finalize(std::uint32_t num_cpu_threads, Addr heap_base,
                        Addr heap_end, bool has_reference,
                        Cycles ref_cycles, std::uint64_t ref_image_hash)
{
    writer->finalize(num_cpu_threads, heap_base, heap_end,
                     has_reference, ref_cycles, ref_image_hash);
}

std::string
TraceRecorder::buffer() const
{
    panic_if(!mem, "buffer() on a file-backed trace recorder");
    return mem->str();
}

} // namespace hsc
