/**
 * @file
 * The hsct binary memory-trace format (DESIGN.md §13).
 *
 * A trace is a fixed 80-byte little-endian header followed by a flat
 * sequence of variable-length records.  Each agent (CPU thread, GPU
 * wavefront, attributed DMA issuer) owns one record *stream*; streams
 * are interleaved in issue order in the file and demultiplexed by a
 * compact stream index established by AgentDef records.  Per-stream
 * ticks are delta-encoded LEB128 varints, so a record for a hot agent
 * is typically 4–8 bytes.
 *
 * Integrity: the header carries an FNV-1a checksum of itself and of
 * the full record region (plus the record count), so any truncation
 * or single-byte corruption is detected — a torn capture that never
 * finalized has an all-zero header tail and is rejected the same way.
 */

#ifndef HSC_TRACE_TRACE_FORMAT_HH
#define HSC_TRACE_TRACE_FORMAT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/data_block.hh"
#include "mem/message.hh"
#include "protocol/types.hh"
#include "sim/types.hh"

namespace hsc
{

/** File magic: eight bytes at offset 0. */
constexpr char TraceMagic[8] = {'H', 'S', 'C', 'T',
                                'R', 'A', 'C', 'E'};

/** Bump on any encoding change; readers reject other versions. */
constexpr std::uint32_t TraceVersion = 1;

/** Total size of the fixed header, bytes. */
constexpr std::size_t TraceHeaderBytes = 80;

/** Offset of the trailing header checksum (FNV-1a of bytes [0,72)). */
constexpr std::size_t TraceHeaderHashOffset = 72;

/** Header flag: refCycles/refImageHash hold the capture's outcome. */
constexpr std::uint32_t TraceFlagHasReference = 1u << 0;

/** Decoded fixed header. */
struct TraceHeader
{
    std::uint32_t version = TraceVersion;
    std::uint32_t flags = 0;
    std::uint32_t numCpuThreads = 0;
    Addr heapBase = 0;
    Addr heapEnd = 0;
    Cycles refCycles = 0;       ///< valid iff hasReference()
    std::uint64_t refImageHash = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t recordHash = 0;

    bool
    hasReference() const
    {
        return (flags & TraceFlagHasReference) != 0;
    }
};

/**
 * Record opcodes.  Stable ABI: append only, never renumber (the
 * version field exists for incompatible changes).
 */
enum class TraceOp : std::uint8_t
{
    MemInit = 0,      ///< functional word init (prologue only)
    AgentDef = 1,     ///< agent key -> next sequential stream index
    CpuLoad = 2,
    CpuStore = 3,
    CpuAmo = 4,
    CpuCompute = 5,
    KernelLaunch = 6, ///< ordinal + workgroups (+ async flag)
    KernelWait = 7,
    GpuVload = 8,
    GpuVstore = 9,
    GpuLoad = 10,
    GpuStore = 11,
    GpuAmo = 12,
    GpuCompute = 13,
    GpuAcquire = 14,
    GpuRelease = 15,
    DmaRead = 16,
    DmaWrite = 17,
    DmaCopy = 18,
    AgentEnd = 19,    ///< the agent's stream is complete
};

const char *traceOpName(TraceOp op);

/** One decoded record.  Field use depends on the opcode:
 *  addr   = address / vector base / DMA destination
 *  addr2  = DMA copy source
 *  value  = store value / AMO operand / cycles / launch ordinal /
 *           vector stride
 *  value2 = AMO operand2 / launch workgroup count / DMA copy bytes
 */
struct TraceRecord
{
    TraceOp op = TraceOp::AgentEnd;
    std::uint64_t agent = 0;    ///< resolved agent key (not MemInit)
    Tick tick = 0;              ///< absolute issue tick
    Addr addr = 0;
    Addr addr2 = 0;
    std::uint64_t value = 0;
    std::uint64_t value2 = 0;
    unsigned size = 0;
    AtomicOp amo = AtomicOp::None;
    Scope scope = Scope::System;
    bool flag = false;          ///< KernelLaunch: async
    std::vector<std::uint64_t> lanes{};          ///< GpuVstore values
    std::array<std::uint8_t, BlockSizeBytes> data{}; ///< DmaWrite
    std::uint64_t mask = 0;                          ///< DmaWrite
};

/** @{ LEB128 varints (at most 10 bytes for a 64-bit value). */
constexpr unsigned TraceVarintMaxBytes = 10;
void appendVarint(std::string &out, std::uint64_t v);
/** @} */

/** Encode @p h as the 80 header bytes (computes the header hash). */
std::string encodeTraceHeader(const TraceHeader &h);

} // namespace hsc

#endif // HSC_TRACE_TRACE_FORMAT_HH
