#include "trace/trace_format.hh"

#include "sim/hash.hh"

namespace hsc
{

const char *
traceOpName(TraceOp op)
{
    switch (op) {
      case TraceOp::MemInit: return "MemInit";
      case TraceOp::AgentDef: return "AgentDef";
      case TraceOp::CpuLoad: return "CpuLoad";
      case TraceOp::CpuStore: return "CpuStore";
      case TraceOp::CpuAmo: return "CpuAmo";
      case TraceOp::CpuCompute: return "CpuCompute";
      case TraceOp::KernelLaunch: return "KernelLaunch";
      case TraceOp::KernelWait: return "KernelWait";
      case TraceOp::GpuVload: return "GpuVload";
      case TraceOp::GpuVstore: return "GpuVstore";
      case TraceOp::GpuLoad: return "GpuLoad";
      case TraceOp::GpuStore: return "GpuStore";
      case TraceOp::GpuAmo: return "GpuAmo";
      case TraceOp::GpuCompute: return "GpuCompute";
      case TraceOp::GpuAcquire: return "GpuAcquire";
      case TraceOp::GpuRelease: return "GpuRelease";
      case TraceOp::DmaRead: return "DmaRead";
      case TraceOp::DmaWrite: return "DmaWrite";
      case TraceOp::DmaCopy: return "DmaCopy";
      case TraceOp::AgentEnd: return "AgentEnd";
    }
    return "?";
}

void
appendVarint(std::string &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(char(std::uint8_t(v) | 0x80));
        v >>= 7;
    }
    out.push_back(char(std::uint8_t(v)));
}

namespace
{

void
appendLe32(std::string &out, std::uint32_t v)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(char(std::uint8_t(v >> (8 * i))));
}

void
appendLe64(std::string &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(char(std::uint8_t(v >> (8 * i))));
}

} // namespace

std::string
encodeTraceHeader(const TraceHeader &h)
{
    std::string out;
    out.reserve(TraceHeaderBytes);
    out.append(TraceMagic, sizeof(TraceMagic));
    appendLe32(out, h.version);
    appendLe32(out, h.flags);
    appendLe32(out, h.numCpuThreads);
    appendLe32(out, 0); // reserved
    appendLe64(out, h.heapBase);
    appendLe64(out, h.heapEnd);
    appendLe64(out, h.refCycles);
    appendLe64(out, h.refImageHash);
    appendLe64(out, h.recordCount);
    appendLe64(out, h.recordHash);
    appendLe64(out, fnvBytes(out.data(), TraceHeaderHashOffset));
    return out;
}

} // namespace hsc
