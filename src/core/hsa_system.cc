#include "core/hsa_system.hh"

#include <algorithm>
#include <ostream>

#include "core/coherence_checker.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "sim/hash.hh"
#include "sim/sharded_checker.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"
#include "trace/trace_capture.hh"

namespace hsc
{

namespace
{

/** fromMHz divides by the frequency, so reject zero before the clock
 *  members initialise (they are built in the ctor init list). */
ClockDomain
checkedClock(const std::string &sys, const char *which, std::uint64_t mhz)
{
    fatal_if(mhz == 0, "%s: %s clock frequency must be nonzero",
             sys.c_str(), which);
    return ClockDomain::fromMHz(mhz);
}

/**
 * Build the shard container (DESIGN.md §14).  Sequential mode is one
 * shard whose queue is the classic global queue.  PDES mode is one
 * shard per directory bank, one per CorePair, one for the GPU complex
 * and one for DMA, with a conservative lookahead of one cross-shard
 * link latency.  Runs in the ctor init list, before the clock members
 * exist and before validateConfig — so the zero cases are only guarded
 * here (validateConfig reports them with a proper message right after).
 */
std::unique_ptr<ShardGroup>
makeShards(const SystemConfig &cfg)
{
    if (!cfg.pdes.enabled)
        return std::make_unique<ShardGroup>(1, 0);
    unsigned banks = std::max(1u, cfg.numDirBanks);
    unsigned n = banks + cfg.topo.numCorePairs + 2;
    Tick lookahead = 1;
    if (cfg.cpuMHz != 0 && cfg.linkLatency != 0) {
        lookahead =
            ClockDomain::fromMHz(cfg.cpuMHz).toTicks(cfg.linkLatency);
    }
    return std::make_unique<ShardGroup>(n, lookahead);
}

} // namespace

void
HsaSystem::validateConfig() const
{
    fatal_if(cfg.topo.numCorePairs == 0,
             "%s: at least one CorePair is required", cfg.name.c_str());
    fatal_if(cfg.watchdogCycles == 0,
             "%s: watchdogCycles must be nonzero (the watchdog is the "
             "only way a wedged run terminates)", cfg.name.c_str());
    fatal_if(cfg.fault.enabled && cfg.fault.spikePercent > 100,
             "%s: fault.spikePercent is a percentage (got %u)",
             cfg.name.c_str(), cfg.fault.spikePercent);
    fatal_if(cfg.fault.dropPer10k > 10000 ||
                 cfg.fault.dupPer10k > 10000 ||
                 cfg.fault.corruptPer10k > 10000,
             "%s: fault drop/dup/corrupt rates are per-10k "
             "probabilities (max 10000)", cfg.name.c_str());
    fatal_if(cfg.fault.enabled && cfg.fault.lossy() &&
                 !cfg.transport.enabled,
             "%s: lossy link faults (drop/dup/corrupt) need the "
             "reliable transport (SystemConfig::transport.enabled) — "
             "the legacy delivery path cannot recover lost messages",
             cfg.name.c_str());
    fatal_if(cfg.transport.enabled && cfg.transport.timeoutCycles == 0,
             "%s: transport.timeoutCycles must be nonzero",
             cfg.name.c_str());
    fatal_if(cfg.storageFault.flipPer10kAccesses > 10000 ||
                 cfg.storageFault.doublePer10k > 10000,
             "%s: storage flip/double rates are per-10k probabilities "
             "(max 10000)", cfg.name.c_str());
    fatal_if(cfg.storageFault.enabled && !cfg.storageFault.ecc &&
                 !cfg.check,
             "%s: storageFault.ecc=false corrupts silently — only the "
             "coherence checker can catch it, so SystemConfig::check "
             "must stay on", cfg.name.c_str());
    fatal_if(cfg.trace.enabled() && !cfg.ckpt.restorePath.empty(),
             "%s: trace capture cannot start from a checkpoint restore "
             "(the replayed prefix would be re-recorded); capture a "
             "fresh run instead", cfg.name.c_str());

    unsigned banks = std::max(1u, cfg.numDirBanks);
    unsigned channels = std::max(1u, cfg.memChannels);
    fatal_if(banks % channels != 0,
             "%s: memChannels (%u) must divide numDirBanks (%u) so "
             "each bank maps to exactly one channel",
             cfg.name.c_str(), channels, banks);
    fatal_if(cfg.dir.tracking == DirTracking::Sharers &&
                 cfg.topo.numClients() > 64,
             "%s: full-map sharer tracking stores a 64-bit bitmap and "
             "this machine has %u coherence clients; use owner "
             "tracking for big machines",
             cfg.name.c_str(), cfg.topo.numClients());

    // PDES (DESIGN.md §14): the checker, the transport, fault
    // injection, the storage-fault model and the seeded bugs all
    // shard with the kernel now.  What remains rejected genuinely
    // needs one global event order, and each rejection says why —
    // "needs the sequential kernel" is not an answer.
    if (cfg.pdes.enabled) {
        fatal_if(cfg.obs.enabled || cfg.obs.samplingInterval != 0,
                 "%s: the observability subsystem (SystemConfig::obs) "
                 "is incompatible with pdes.enabled — spans are "
                 "appended to one totally-ordered log and the interval "
                 "sampler reads instantaneous cross-shard state, both "
                 "of which presume a single global event order",
                 cfg.name.c_str());
        fatal_if(cfg.trace.enabled(),
                 "%s: memory-trace capture is incompatible with "
                 "pdes.enabled — the recorder interleaves every "
                 "agent's operations into one globally-ordered tape, "
                 "which PDES does not define", cfg.name.c_str());
        fatal_if(cfg.ckpt.enabled(),
                 "%s: checkpoint/restore is incompatible with "
                 "pdes.enabled — drain-quiesce snapshots cut the run "
                 "at one global event-order point, and shard clocks "
                 "cannot rewind for restore", cfg.name.c_str());
        fatal_if(cfg.storageFault.enabled &&
                     cfg.storageFault.flipAtTick != 0,
                 "%s: storageFault.flipAtTick is incompatible with "
                 "pdes.enabled — its 'first access at or after tick "
                 "T' trigger reads the global access order that PDES "
                 "does not define; use the probabilistic flip modes",
                 cfg.name.c_str());
        fatal_if(cfg.linkLatency == 0,
                 "%s: pdes requires linkLatency > 0 — it is the "
                 "conservative lookahead window", cfg.name.c_str());
        fatal_if(channels != banks,
                 "%s: pdes requires memChannels == numDirBanks (got "
                 "%u channels, %u banks) so each bank shard owns its "
                 "DRAM channel outright",
                 cfg.name.c_str(), channels, banks);
    }
}

HsaSystem::HsaSystem(const SystemConfig &config)
    : cfg(config), shards(makeShards(cfg)), eq(shards->queue(0)),
      cpuClk(checkedClock(cfg.name, "cpu", cfg.cpuMHz)),
      gpuClk(checkedClock(cfg.name, "gpu", cfg.gpuMHz))
{
    validateConfig();

    const Topology &topo = cfg.topo;
    Tick link_lat = cpuClk.toTicks(cfg.linkLatency);

    // §VII banking and DESIGN.md §14 sharding both need the bank
    // count up front.  Shard layout under PDES: bank b => shard b,
    // then one shard per client in machine-id order (CorePairs, the
    // GPU complex behind the TCC, DMA).  Sequential mode maps
    // everything to shard 0 — the classic global queue.
    unsigned banks = std::max(1u, cfg.numDirBanks);
    fatal_if(banks & (banks - 1), "numDirBanks must be a power of two");
    unsigned bank_shift = 0;
    while ((1u << bank_shift) < banks)
        ++bank_shift;

    pdesOn = cfg.pdes.enabled;
    gpuShardIdx = pdesOn ? banks + unsigned(topo.tccId(0)) : 0;
    dmaShardIdx = pdesOn ? banks + unsigned(topo.dmaId()) : 0;
    auto bankShard = [&](unsigned b) { return pdesOn ? b : 0u; };
    auto clientShard = [&](unsigned c) {
        return pdesOn ? banks + c : 0u;
    };
    auto qOfBank = [&](unsigned b) -> EventQueue & {
        return shards->queue(bankShard(b));
    };
    auto qOfClient = [&](unsigned c) -> EventQueue & {
        return shards->queue(clientShard(c));
    };

    if (cfg.fault.any()) {
        faultInjector = std::make_unique<FaultInjector>(
            cfg.fault, cpuClk.periodTicks());
    }

    if (cfg.ckpt.enabled()) {
        snapCoord = std::make_unique<SnapshotCoordinator>();
        registry.addCounter(cfg.name + ".ckpt.checkpoints", &statCkpts);
        registry.addCounter(cfg.name + ".ckpt.loggedOps", &statCkptOps);
    }

    if (cfg.check) {
        if (pdesOn) {
            // One checker bank per directory bank, living on the
            // bank's shard; cross-shard observations ride note rings
            // and are merged deterministically (DESIGN.md §14).
            std::vector<unsigned> bank_shards;
            for (unsigned b = 0; b < banks; ++b)
                bank_shards.push_back(bankShard(b));
            checkerPtr = std::make_unique<ShardedCoherenceChecker>(
                cfg.name + ".checker", *shards, std::move(bank_shards));
        } else {
            checkerPtr = std::make_unique<CoherenceChecker>(
                cfg.name + ".checker", eq);
        }
        checkerPtr->regStats(registry);
    }

    // Observability: a sampling interval implies the subsystem.
    if (cfg.obs.samplingInterval)
        cfg.obs.enabled = true;
    if (cfg.obs.enabled) {
        tracerPtr = std::make_unique<ObsTracer>(cfg.obs);
        tracerPtr->setCyclePeriod(cpuClk.periodTicks());
        tracerPtr->regStats(registry);
    }

    // Storage-fault model: arrays register below in construction
    // order, so array ids (which key the flip streams) are a pure
    // function of the topology.
    if (cfg.storageFault.enabled) {
        storagePtr =
            std::make_unique<StorageFaultInjector>(cfg.storageFault);
        storagePtr->regStats(registry, cfg.name);
        storagePtr->attachTracer(tracerPtr.get());
    }

    // DRAM channels: bank b is served by channel (b % channels).  One
    // channel keeps the classic ".mem" stat name, bit-identical to the
    // golden; under PDES channels == banks, so channel ch lives on
    // bank ch's shard.
    unsigned channels = std::max(1u, cfg.memChannels);
    for (unsigned ch = 0; ch < channels; ++ch) {
        std::string mem_name = channels == 1
            ? cfg.name + ".mem"
            : cfg.name + ".mem" + std::to_string(ch);
        mems.push_back(std::make_unique<MainMemory>(
            mem_name, qOfBank(ch), cpuClk.toTicks(cfg.memLatency),
            cpuClk.toTicks(cfg.memServicePeriod)));
        mems.back()->regStats(registry);
        if (storagePtr) {
            mems.back()->attachStorageFault(
                storagePtr.get(),
                storagePtr->registerArray(mems.back()->name(),
                                          bankShard(ch)));
        }
    }

    // §VII: the directory may be banked (address-interleaved).  Each
    // bank owns 1/N of the directory entries and the LLC, skipping the
    // bank-select bits when indexing its arrays.
    DirParams dp;
    dp.topo = topo;
    dp.cfg = cfg.dir;
    dp.bug = cfg.bug;
    dp.llc = cfg.llc;
    dp.dirLatency = cfg.dirLatency;
    dp.llcLatency = cfg.llcLatency;
    dp.servicePeriod = cfg.dirServicePeriod;
    dp.tccWriteBack = cfg.gpuWriteBack;
    dp.cfg.dirEntries = std::max(dp.cfg.dirAssoc,
                                 dp.cfg.dirEntries / banks);
    dp.llc.geom.numSets = std::max(1u, dp.llc.geom.numSets / banks);
    dp.llc.geom.indexShift = bank_shift;
    dp.bankIndexShift = bank_shift;

    for (unsigned b = 0; b < banks; ++b) {
        std::string dir_name = banks == 1
            ? cfg.name + ".dir"
            : cfg.name + ".dir" + std::to_string(b);
        dirs.push_back(std::make_unique<DirectoryController>(
            dir_name, qOfBank(b), cpuClk, dp, *mems[b % channels]));
        dirs.back()->attachChecker(checkerPtr.get());
        dirs.back()->attachTracer(tracerPtr.get());
        if (storagePtr) {
            dirs.back()->attachStorageFault(
                storagePtr.get(),
                storagePtr->registerMetaArray(dir_name + ".meta",
                                              bankShard(b)),
                storagePtr->registerArray(dir_name + ".llc",
                                          bankShard(b)));
        }
    }

    // One channel pair per (bank, client); each client sends through a
    // per-client bank router.  Link ids are assigned densely in
    // construction order — they key the per-link fault RNG streams,
    // so fault schedules are a function of topology, never of link
    // names or host threading.
    unsigned next_link_id = 0;
    for (unsigned b = 0; b < banks; ++b) {
        for (unsigned i = 0; i < topo.numClients(); ++i) {
            std::string suffix =
                "b" + std::to_string(b) + "c" + std::to_string(i);
            toDir.push_back(std::make_unique<MessageBuffer>(
                cfg.name + ".toDir." + suffix, qOfBank(b), link_lat,
                next_link_id++));
            fromDir.push_back(std::make_unique<MessageBuffer>(
                cfg.name + ".fromDir." + suffix, qOfClient(i), link_lat,
                next_link_id++));
            MessageBuffer *up = toDir.back().get();
            MessageBuffer *down = fromDir.back().get();
            if (faultInjector) {
                up->attachFaultInjector(faultInjector.get());
                down->attachFaultInjector(faultInjector.get());
            }
            if (cfg.transport.enabled) {
                up->enableTransport(cfg.transport,
                                    cpuClk.periodTicks());
                down->enableTransport(cfg.transport,
                                      cpuClk.periodTicks());
                up->transport()->pairWith(down->transport());
                down->transport()->pairWith(up->transport());
                auto on_degraded = [this] { degradedTripped = true; };
                up->transport()->setOnDegraded(on_degraded);
                down->transport()->setOnDegraded(on_degraded);
                up->transport()->regStats(registry);
                down->transport()->regStats(registry);
                if (tracerPtr) {
                    up->transport()->attachTracer(
                        tracerPtr.get(),
                        tracerPtr->internCtrl(up->name(),
                                              ObsCtrlKind::Other));
                    down->transport()->attachTracer(
                        tracerPtr.get(),
                        tracerPtr->internCtrl(down->name(),
                                              ObsCtrlKind::Other));
                }
            }
            if (pdesOn) {
                // A bank and a client never share a shard, so every
                // directory link crosses a boundary.  Bind *last* so
                // the buffer can delegate to its transport (whose
                // sender/receiver halves split across the two shards)
                // and the fault injector is visible for sender-side
                // jitter draws.
                up->bindCrossShard(*shards, clientShard(i),
                                   bankShard(b));
                down->bindCrossShard(*shards, bankShard(b),
                                     clientShard(i));
            }
            dirs[b]->bindFromClient(*up);
            dirs[b]->bindToClient(static_cast<MachineId>(i), *down);
        }
    }
    // Wire-fate RNG streams are lazily grown per link id sequentially;
    // under PDES concurrent senders would race that growth, so build
    // every stream up front (pure function of seed and link id).
    if (pdesOn && faultInjector)
        faultInjector->preallocateStreams(next_link_id);
    for (unsigned i = 0; i < topo.numClients(); ++i) {
        std::vector<MessageBuffer *> links;
        for (unsigned b = 0; b < banks; ++b)
            links.push_back(toDir[b * topo.numClients() + i].get());
        clientSinks.push_back(std::make_unique<BankedSink>(links));
    }
    for (auto &d : dirs)
        d->regStats(registry);

    auto bind_from_dir = [&](unsigned client, auto &&binder) {
        for (unsigned b = 0; b < banks; ++b)
            binder(*fromDir[b * topo.numClients() + client]);
    };

    // CPU clusters.
    CorePairParams cp_params = cfg.corePair;
    cp_params.bug = cfg.bug;
    for (unsigned i = 0; i < topo.numCorePairs; ++i) {
        MachineId id = topo.l2Id(i);
        corePairs.push_back(std::make_unique<CorePairController>(
            cfg.name + ".corepair" + std::to_string(i),
            qOfClient(unsigned(id)), cpuClk, id, cp_params,
            *clientSinks[id]));
        bind_from_dir(unsigned(id), [&](MessageBuffer &buf) {
            corePairs.back()->bindFromDir(buf);
        });
        corePairs.back()->attachChecker(checkerPtr.get());
        corePairs.back()->attachTracer(tracerPtr.get());
        if (storagePtr) {
            corePairs.back()->attachStorageFault(
                storagePtr.get(),
                storagePtr->registerArray(corePairs.back()->name() +
                                              ".l2",
                                          clientShard(unsigned(id))));
        }
        corePairs.back()->regStats(registry);
    }

    // GPU cluster: one TCC + SQC shared by the CUs.
    {
        MachineId id = topo.tccId(0);
        TccParams tcc_params = cfg.tcc;
        tcc_params.writeBack = cfg.gpuWriteBack || tcc_params.writeBack;
        tccCtrl = std::make_unique<TccController>(
            cfg.name + ".tcc", qOfClient(unsigned(id)), gpuClk, id,
            tcc_params, *clientSinks[id]);
        bind_from_dir(unsigned(id), [&](MessageBuffer &buf) {
            tccCtrl->bindFromDir(buf);
        });
        tccCtrl->attachChecker(checkerPtr.get());
        tccCtrl->attachTracer(tracerPtr.get());
        if (storagePtr) {
            tccCtrl->attachStorageFault(
                storagePtr.get(),
                storagePtr->registerArray(tccCtrl->name() + ".array",
                                          clientShard(unsigned(id))));
        }
        tccCtrl->regStats(registry);
    }
    sqcCtrl = std::make_unique<SqcController>(
        cfg.name + ".sqc", shards->queue(gpuShardIdx), gpuClk, cfg.sqc,
        *tccCtrl);
    sqcCtrl->attachChecker(checkerPtr.get());
    sqcCtrl->attachTracer(tracerPtr.get());
    sqcCtrl->regStats(registry);

    TcpParams tcp_params = cfg.tcp;
    tcp_params.writeBack = cfg.gpuWriteBack || tcp_params.writeBack;
    std::vector<GpuCu *> cu_ptrs;
    for (unsigned i = 0; i < cfg.numCus; ++i) {
        cus.push_back(std::make_unique<GpuCu>(
            cfg.name + ".cu" + std::to_string(i),
            shards->queue(gpuShardIdx), gpuClk, tcp_params, *tccCtrl,
            *sqcCtrl, cfg.wavefrontsPerCu, cfg.lanesPerWavefront,
            cfg.injectIfetches));
        cus.back()->tcp().attachChecker(checkerPtr.get());
        cus.back()->tcp().attachTracer(tracerPtr.get());
        // TCP lines are clean/write-through (unprotected), but lanes
        // consuming a poisoned fill must still contain.
        cus.back()->tcp().attachStorageFault(storagePtr.get());
        cus.back()->tcp().regStats(registry);
        cu_ptrs.push_back(cus.back().get());
    }
    kernelDispatcher =
        std::make_unique<KernelDispatcher>(std::move(cu_ptrs), registry);
    if (snapCoord) {
        kernelDispatcher->setSnapshot(snapCoord.get());
        for (auto &cu : cus)
            cu->setSnapshot(snapCoord.get());
    }

    // DMA.
    {
        MachineId id = topo.dmaId();
        dmaCtrl = std::make_unique<DmaController>(
            cfg.name + ".dma", qOfClient(unsigned(id)), cpuClk, id,
            *clientSinks[id], cfg.dmaMaxOutstanding);
        bind_from_dir(unsigned(id), [&](MessageBuffer &buf) {
            dmaCtrl->bindFromDir(buf);
        });
        dmaCtrl->attachChecker(checkerPtr.get());
        dmaCtrl->attachTracer(tracerPtr.get());
        dmaCtrl->attachStorageFault(storagePtr.get());
        dmaCtrl->regStats(registry);
        dmaEngine = std::make_unique<DmaEngine>(*dmaCtrl);
        if (snapCoord)
            dmaEngine->setSnapshot(snapCoord.get());
        if (pdesOn)
            dmaEngine->setPdesRouting(shards.get(), dmaShardIdx);
    }

    // Trace capture: attach after every recordable subsystem exists
    // and before any thread registration or heap initialisation.
    if (cfg.trace.enabled()) {
        traceRec = std::make_unique<TraceRecorder>(cfg.trace.outPath);
        attachTraceRecorder(traceRec.get());
    }

    registry.addCounter(cfg.name + ".simTicks", &statSimTicks);
    registry.addCounter(cfg.name + ".cpuCycles", &statCpuCycles);

    // Interval sampler: gauges read instantaneous state (queue
    // depths, array occupancies); every registry counter is sampled
    // as a per-interval delta.
    if (cfg.obs.samplingInterval) {
        samplerPtr = std::make_unique<ObsSampler>(
            registry, cpuClk.toTicks(cfg.obs.samplingInterval),
            cpuClk.periodTicks());
        samplerPtr->addGauge(cfg.name + ".toDir.depth", [this] {
            std::uint64_t d = 0;
            for (const auto &mb : toDir)
                d += mb->queueDepth();
            return d;
        });
        samplerPtr->addGauge(cfg.name + ".fromDir.depth", [this] {
            std::uint64_t d = 0;
            for (const auto &mb : fromDir)
                d += mb->queueDepth();
            return d;
        });
        for (const auto &d : dirs) {
            DirectoryController *dir = d.get();
            samplerPtr->addGauge(dir->name() + ".inFlight", [dir] {
                return std::uint64_t(dir->inFlightCount());
            });
            samplerPtr->addGauge(dir->name() + ".tracked", [dir] {
                return std::uint64_t(dir->trackedEntries());
            });
            samplerPtr->addGauge(dir->name() + ".llcLines", [dir] {
                return std::uint64_t(dir->llc().occupancy());
            });
        }
    }

    // Everything the watchdog interrogates when building a HangReport.
    for (const auto &d : dirs) {
        introspectables.push_back(d.get());
        introspectables.push_back(&d->llc());
    }
    for (const auto &cp : corePairs)
        introspectables.push_back(cp.get());
    introspectables.push_back(tccCtrl.get());
    introspectables.push_back(sqcCtrl.get());
    for (const auto &cu : cus)
        introspectables.push_back(&cu->tcp());
    introspectables.push_back(dmaCtrl.get());

    // Every protected array is registered; switch the storage-fault
    // model to per-shard counters and containment slots.
    if (pdesOn && storagePtr)
        storagePtr->enterPdesMode(shards->numShards());
}

HsaSystem::~HsaSystem()
{
    // A run that failed (or was never run) still leaves a readable
    // trace — just one without a reference outcome to assert against.
    try {
        sealTrace(/*with_reference=*/false);
    } catch (const SimError &) {
        // Destructor: a torn capture is detectable by the reader.
    }
}

void
HsaSystem::attachTraceRecorder(TraceRecorder *r)
{
    traceRecPtr = r;
    if (!r)
        return;
    r->bindClock(&eq);
    for (auto &c : cpuCtxs)
        c->setTraceRecorder(r);
    for (auto &cu : cus)
        cu->setTraceRecorder(r);
    dmaEngine->setTraceRecorder(r);
}

void
HsaSystem::noteMemInit(Addr addr, unsigned size, std::uint64_t value)
{
    if (traceRecPtr)
        traceRecPtr->memInit(addr, size, value);
}

void
HsaSystem::sealTrace(bool with_reference)
{
    if (!traceRecPtr || traceSealed)
        return;
    traceSealed = true;
    std::uint64_t image =
        with_reference ? imageHash(HeapBase, heapNext) : 0;
    traceRecPtr->finalize(numCpuThreads(), HeapBase, heapNext,
                          with_reference, cyclesElapsed, image);
}

std::uint64_t
HsaSystem::imageHash(Addr lo, Addr hi)
{
    // Same precedence as coherentPeek: an L2 copy (unique, or any of
    // several identical shared copies) over the LLC copy over DRAM.
    std::uint64_t h = FnvOffsetBasis;
    for (Addr a = lo; a + 8 <= hi; a += 8) {
        std::uint64_t w = 0;
        bool found = false;
        for (const auto &cp : corePairs) {
            if (cp->hasLine(a)) {
                w = cp->peekWord(a, 8);
                found = true;
                break;
            }
        }
        if (!found) {
            if (const DataBlock *b = dirFor(a).llc().peek(a)) {
                w = b->get<std::uint64_t>(blockOffset(a));
                found = true;
            }
        }
        if (!found) {
            w = memFor(a).functionalRead(blockAlign(a))
                    .get<std::uint64_t>(blockOffset(a));
        }
        std::uint8_t bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = std::uint8_t(w >> (8 * i));
        h = fnvBytes(bytes, 8, h);
    }
    return h;
}

void
HsaSystem::dumpConfig(std::ostream &os) const
{
    auto cache_line = [&](const char *name, const CacheGeometry &g,
                          Cycles lat) {
        os << "  " << name << ": " << (g.numSets * g.assoc * 64 / 1024)
           << " KB, " << g.assoc << "-way, " << lat << " cy\n";
    };
    os << "[system]\n";
    os << "  corePairs=" << cfg.topo.numCorePairs
       << " cpus=" << cfg.topo.numCorePairs * 2 << " cus=" << cfg.numCus
       << " wavefrontsPerCu=" << cfg.wavefrontsPerCu
       << " lanes=" << cfg.lanesPerWavefront << "\n";
    os << "  cpuClk=" << cfg.cpuMHz << " MHz gpuClk=" << cfg.gpuMHz
       << " MHz memLatency=" << cfg.memLatency << " cy\n";
    os << "[caches]\n";
    cache_line("L1D", cfg.corePair.l1dGeom, cfg.corePair.l2Latency);
    cache_line("L1I", cfg.corePair.l1iGeom, cfg.corePair.l2Latency);
    cache_line("L2", cfg.corePair.l2Geom, cfg.corePair.l2Latency);
    cache_line("TCP", cfg.tcp.geom, cfg.tcp.latency);
    cache_line("TCC", cfg.tcc.geom, cfg.tcc.latency);
    cache_line("SQC", cfg.sqc.geom, cfg.sqc.latency);
    cache_line("LLC", cfg.llc.geom, cfg.llcLatency);
    os << "[directory]\n";
    os << "  tracking=" << dirTrackingName(cfg.dir.tracking)
       << " banks=" << dirs.size()
       << " entries=" << cfg.dir.dirEntries
       << " assoc=" << cfg.dir.dirAssoc << "\n";
    os << "  earlyDirtyResp=" << cfg.dir.earlyDirtyResp
       << " noCleanVicToMem=" << cfg.dir.noCleanVicToMem
       << " noCleanVicToLlc=" << cfg.dir.noCleanVicToLlc
       << " llcWriteBack=" << cfg.dir.llcWriteBack
       << " useL3OnWT=" << cfg.dir.useL3OnWT << "\n";
    os << "  gpuWriteBack=" << cfg.gpuWriteBack
       << " maxSharerPointers=" << cfg.dir.maxSharerPointers << "\n";
}

void
HsaSystem::addCpuThread(CpuThreadFn fn)
{
    unsigned tid = static_cast<unsigned>(threadFns.size());
    unsigned total_cores = cfg.topo.numCorePairs * 2;
    unsigned core = tid % total_cores;
    CorePairController &cp = *corePairs[core / 2];
    // The context schedules on its CorePair's queue: the home shard
    // under PDES, the global queue otherwise.
    cpuCtxs.push_back(std::make_unique<CpuCtx>(
        tid, cp, core % 2, cp.eventQueue(), cpuClk,
        kernelDispatcher.get(), cfg.injectIfetches));
    if (pdesOn)
        cpuCtxs.back()->setPdesRouting(shards.get(), gpuShardIdx);
    if (snapCoord)
        cpuCtxs.back()->setSnapshot(snapCoord.get());
    if (traceRecPtr)
        cpuCtxs.back()->setTraceRecorder(traceRecPtr);
    threadFns.push_back(std::move(fn));
}

Addr
HsaSystem::alloc(std::uint64_t bytes)
{
    Addr base = heapNext;
    heapNext += (bytes + BlockSizeBytes - 1) & ~Addr(BlockSizeBytes - 1);
    return base;
}

HangReport
HsaSystem::buildHangReport(HangReport::Kind kind) const
{
    HangReport r;
    r.kind = kind;
    // Under PDES the shards stop at (nearly) the same window edge;
    // report the most advanced one.  Sequential mode: shard 0 == eq.
    Tick now = 0;
    Tick progress = 0;
    for (unsigned s = 0; s < shards->numShards(); ++s) {
        now = std::max(now, shards->queue(s).curTick());
        progress = std::max(progress, shards->queue(s).lastProgress());
    }
    r.atTick = now;
    r.lastProgressTick = progress;
    r.liveTasks = liveTasks.load();
    r.lastCheckpointTick = lastCkptTick;
    if (pdesOn) {
        for (unsigned s = 0; s < shards->numShards(); ++s) {
            r.shardProgress.push_back(
                "shard " + std::to_string(s) + ": tick " +
                std::to_string(shards->queue(s).curTick()) + ", " +
                std::to_string(shards->queue(s).numExecuted()) +
                " events");
        }
    }
    for (const ProtocolIntrospect *pi : introspectables) {
        pi->inFlightTransactions(now, r.stalledTxns);
        r.controllerSummaries.push_back(pi->stateSummary());
        r.progressCounters.push_back(
            pi->introspectName() + ": " +
            std::to_string(pi->progressCount()) + " ops done");
        pi->diagnostics(r.diagnostics);
    }
    std::stable_sort(r.stalledTxns.begin(), r.stalledTxns.end(),
                     [](const TxnInfo &a, const TxnInfo &b) {
                         return a.age > b.age;
                     });

    auto scan_links = [&](const auto &bufs) {
        for (const auto &mb : bufs) {
            LinkInfo li = mb->linkInfo(now);
            if (li.depth > 0)
                r.stalledLinks.push_back(std::move(li));
        }
    };
    scan_links(toDir);
    scan_links(fromDir);
    std::stable_sort(r.stalledLinks.begin(), r.stalledLinks.end(),
                     [](const LinkInfo &a, const LinkInfo &b) {
                         return a.oldestAge > b.oldestAge;
                     });
    return r;
}

void
HsaSystem::armWatchdog()
{
    Tick interval = cpuClk.toTicks(cfg.watchdogCycles);
    eq.schedule(eq.curTick() + interval,
                [this, interval] {
                    if (!running)
                        return;
                    if (eq.curTick() - eq.lastProgress() >= interval) {
                        watchdogTripped = true;
                        warn("watchdog: no progress for %llu ticks "
                             "(%u live tasks)",
                             (unsigned long long)interval,
                             liveTasks.load());
                        return; // stop rearming; run() exits via check
                    }
                    armWatchdog();
                },
                EventPriority::Late);
}

void
HsaSystem::armSampler()
{
    if (!samplerPtr)
        return;
    // Passive and Late-priority: sampling reads state only and never
    // counts as progress, so it can neither reorder protocol events
    // nor keep a wedged run alive past the watchdog.
    eq.schedule(eq.curTick() + samplerPtr->interval(),
                [this] {
                    if (!running)
                        return;
                    samplerPtr->sample(eq.curTick());
                    armSampler();
                },
                EventPriority::Late);
}

void
HsaSystem::armScrubber()
{
    if (!storagePtr || cfg.storageFault.scrubIntervalCycles == 0)
        return;
    // Like the sampler: Late-priority and not progress-tagged, so the
    // scrub cadence can neither reorder protocol events nor keep a
    // wedged run alive past the watchdog.
    Tick interval = cpuClk.toTicks(cfg.storageFault.scrubIntervalCycles);
    if (pdesOn) {
        // One scrubber per shard, each sweeping only the arrays its
        // shard owns — no cross-shard array access, and each cadence
        // is deterministic in its own shard's virtual time.
        for (unsigned s = 0; s < shards->numShards(); ++s)
            armShardScrubber(s, interval);
        return;
    }
    eq.schedule(eq.curTick() + interval,
                [this] {
                    if (!running)
                        return;
                    storagePtr->scrubSweep(eq.curTick());
                    armScrubber();
                },
                EventPriority::Late);
}

void
HsaSystem::armShardScrubber(unsigned s, Tick interval)
{
    // Self-rearming aux event: stops at quiesce (ShardGroup raises
    // `quiescing` once the done predicate first holds) so the drain
    // terminates; not progress-tagged, so it cannot keep a wedged run
    // alive past the watchdog.
    EventQueue &q = shards->queue(s);
    q.schedule(q.curTick() + interval,
               [this, s, interval] {
                   if (shards->quiescing())
                       return;
                   storagePtr->scrubSweepShard(
                       s, shards->queue(s).curTick());
                   armShardScrubber(s, interval);
               },
               EventPriority::Late);
}

void
HsaSystem::notePoisonRead(Addr addr, const DataBlock &blk)
{
    if (storagePtr)
        storagePtr->noteConsumption("verify-read", addr, blk,
                                    eq.curTick());
}

StorageSummary
HsaSystem::storageSummary() const
{
    return storagePtr ? storagePtr->summary() : StorageSummary{};
}

void
HsaSystem::collectObs()
{
    if (tracerPtr)
        tracerPtr->collect();
}

bool
HsaSystem::run(Cycles max_cycles)
{
    if (cfg.pdes.enabled)
        return runPdes(max_cycles);
    running = true;
    watchdogTripped = false;
    degradedTripped = false;
    crashTripped = false;
    lastHang = HangReport{};
    lastDegraded = DegradedReport{};
    lastContainment = ContainmentReport{};
    lastError.clear();

    if (snapCoord && !cfg.ckpt.restorePath.empty() && !restoredOnce) {
        // Restore path: rebuild component state from the snapshot,
        // replay each registered thread's op log synchronously to its
        // quiesce point, and resume the event loop from the
        // checkpointed tick (runStartTick stays the *original* run's
        // start, so cycle accounting matches the uninterrupted run).
        restoredOnce = true;
        if (!restoreFrom(cfg.ckpt.restorePath)) {
            running = false;
            return false;
        }
    } else {
        runStartTick = eq.curTick();
        liveTasks = static_cast<unsigned>(threadFns.size());
        for (std::size_t i = 0; i < threadFns.size(); ++i) {
            // Stagger thread starts by a cycle for determinism without
            // artificial convoying.  Progress-tagged so a checkpoint
            // drain can never declare quiesce while a thread is still
            // waiting to start.
            eq.schedule(eq.curTick() + cpuClk.toTicks(Cycles(i)),
                        [this, i] {
                            SimTask task = threadFns[i](*cpuCtxs[i]);
                            task.start([this, i] {
                                if (traceRecPtr) {
                                    traceRecPtr->agentEnd(
                                        cpuCtxs[i]->agentKey());
                                }
                                --liveTasks;
                            });
                        },
                        EventPriority::Default, /*progress=*/true);
        }
        armCheckpoints();
    }
    Tick start = runStartTick;
    armWatchdog();
    armSampler();
    armScrubber();

    Tick limit = start + cpuClk.toTicks(max_cycles);
    auto stop_pred = [this] {
        return liveTasks == 0 || watchdogTripped || degradedTripped ||
               (checkerPtr && checkerPtr->violated()) || crashNow() ||
               (storagePtr && storagePtr->tripped()) ||
               (snapCoord && snapCoord->draining() && quiescedNow());
    };
    bool done = false;
    try {
        while (true) {
            done = eq.runUntil(stop_pred, limit);
            if (snapCoord && snapCoord->draining()) {
                bool failing = watchdogTripped || degradedTripped ||
                               crashNow() ||
                               (storagePtr && storagePtr->tripped()) ||
                               (checkerPtr && checkerPtr->violated());
                if (!failing && liveTasks > 0 && quiescedNow()) {
                    doCheckpoint();
                    snapCoord->endDrain();
                    snapCoord->releaseGates(eq);
                    scheduleCkptTrigger();
                    continue;
                }
                if (!failing && liveTasks == 0) {
                    // The workload retired before the drain could
                    // quiesce; nothing is parked, so just cancel.
                    snapCoord->endDrain();
                }
            }
            break;
        }
    } catch (const SimError &e) {
        // fatal() inside a scheduled event: surface as a structured
        // failure instead of tearing down the process.
        running = false;
        collectObs();
        lastError = e.what();
        warn("%s: run aborted by fatal error: %s", cfg.name.c_str(),
             e.what());
        writeLastGasp();
        return false;
    }

    if (checkerPtr && checkerPtr->violated()) {
        running = false;
        collectObs();
        warn("%s: run aborted by coherence checker: %s", cfg.name.c_str(),
             checkerPtr->brief().c_str());
        return false;
    }
    if (degradedTripped) {
        // A link exhausted its retry budget: escalate as a structured
        // DegradedReport instead of waiting for the watchdog.
        running = false;
        collectObs();
        lastDegraded = buildDegradedReport();
        warn("%s: run aborted by link degradation: %s",
             cfg.name.c_str(), lastDegraded.brief().c_str());
        writeLastGasp();
        return false;
    }
    if (storagePtr && storagePtr->tripped()) {
        // Machine-check containment: a poisoned line was consumed (or
        // directory metadata took an uncorrectable).  The fault never
        // escaped silently — stop cleanly with a structured report.
        running = false;
        collectObs();
        lastContainment = storagePtr->containmentReport();
        lastContainment.lastCheckpointTick = lastCkptTick;
        warn("%s: run aborted by storage-fault containment: %s",
             cfg.name.c_str(), lastContainment.brief().c_str());
        writeLastGasp();
        return false;
    }
    if (crashNow()) {
        // Crash fate (FaultConfig): stop dead like a SIGKILL — no
        // drain, no further checkpoints; only previously written
        // checkpoint files (plus the last-gasp re-emit) survive.
        crashTripped = true;
        running = false;
        collectObs();
        lastError = "crash fault: simulated process kill at tick " +
                    std::to_string(eq.curTick());
        warn("%s: %s", cfg.name.c_str(), lastError.c_str());
        writeLastGasp();
        return false;
    }
    if (!done || watchdogTripped || liveTasks != 0) {
        running = false;
        collectObs();
        lastHang = buildHangReport(watchdogTripped
                                       ? HangReport::Kind::Watchdog
                                       : HangReport::Kind::CycleLimit);
        warn("%s: run did not complete: %s",
             cfg.name.c_str(), lastHang.brief().c_str());
        writeLastGasp();
        return false;
    }

    // The headline metric is the tick at which the last task retired.
    cyclesElapsed = cpuClk.toCycles(eq.curTick() - start);
    statSimTicks += eq.curTick() - start;
    statCpuCycles += cyclesElapsed;

    // Drain in-flight write-backs and asynchronous traffic (the
    // watchdog and sampler stop rearming once `running` is false).
    running = false;
    try {
        eq.run();
    } catch (const SimError &e) {
        collectObs();
        lastError = e.what();
        warn("%s: drain aborted by fatal error: %s", cfg.name.c_str(),
             e.what());
        return false;
    }
    threadFns.clear();
    collectObs();
    if (checkerPtr && checkerPtr->violated()) {
        warn("%s: drain flagged a coherence violation: %s",
             cfg.name.c_str(), checkerPtr->brief().c_str());
        return false;
    }
    if (storagePtr && storagePtr->tripped()) {
        lastContainment = storagePtr->containmentReport();
        lastContainment.lastCheckpointTick = lastCkptTick;
        warn("%s: drain tripped storage-fault containment: %s",
             cfg.name.c_str(), lastContainment.brief().c_str());
        return false;
    }
    for (const auto &d : dirs) {
        if (!d->idle()) {
            lastHang = buildHangReport(HangReport::Kind::DrainIncomplete);
            warn("%s: post-run drain incomplete: %s",
                 cfg.name.c_str(), lastHang.brief().c_str());
            return false;
        }
    }

    // Quiescent sweep: with everything drained, cross-check the stable
    // cache/directory states and the memory image once more.
    if (checkerPtr) {
        CheckResult qr = checkCoherenceInvariants(*this);
        if (storagePtr && storagePtr->tripped()) {
            // The sweep's verification reads consumed a poisoned line
            // that the workload itself never touched: containment, not
            // a protocol violation.
            lastContainment = storagePtr->containmentReport();
            lastContainment.lastCheckpointTick = lastCkptTick;
            warn("%s: quiescent sweep tripped storage-fault "
                 "containment: %s",
                 cfg.name.c_str(), lastContainment.brief().c_str());
            return false;
        }
        if (!qr.ok) {
            lastError = "quiescent coherence check: " + qr.violations[0];
            warn("%s: %s", cfg.name.c_str(), lastError.c_str());
            return false;
        }
    }

    // Seal the capture with this run's reference outcome, so a replay
    // of the trace can assert bit-identity against it.
    sealTrace(/*with_reference=*/true);
    return true;
}

std::string
HsaSystem::failReason() const
{
    if (checkerPtr && checkerPtr->violated())
        return checkerPtr->brief();
    if (!lastError.empty())
        return lastError;
    if (lastDegraded.degraded())
        return lastDegraded.brief();
    if (lastContainment.contained())
        return lastContainment.brief();
    if (lastHang.hung())
        return lastHang.brief();
    return {};
}

Tick
HsaSystem::maxShardTick() const
{
    // Sequentially there is one shard, so this is just eq.curTick().
    Tick now = 0;
    for (unsigned s = 0; s < shards->numShards(); ++s)
        now = std::max(now, shards->queue(s).curTick());
    return now;
}

bool
HsaSystem::pdesCrashNow() const
{
    // PDES analogue of crashNow(): the tick trigger reads the most
    // advanced shard clock and the event trigger the group-wide
    // executed count, both of which are exact at window barriers —
    // where the fail predicate runs.
    if (!faultInjector)
        return false;
    const FaultConfig &fc = faultInjector->config();
    if (fc.crashAtTick &&
        maxShardTick() - runStartTick >= fc.crashAtTick)
        return true;
    if (fc.crashAfterEvents &&
        shards->totalExecuted() >= fc.crashAfterEvents)
        return true;
    return false;
}

DegradedReport
HsaSystem::buildDegradedReport() const
{
    DegradedReport r;
    r.atTick = maxShardTick();
    r.lastCheckpointTick = lastCkptTick;
    for (const ProtocolIntrospect *pi : introspectables) {
        r.progressSummaries.push_back(
            pi->introspectName() + ": " +
            std::to_string(pi->progressCount()) + " ops done");
    }
    if (pdesOn) {
        for (unsigned s = 0; s < shards->numShards(); ++s) {
            r.shardProgress.push_back(
                "shard " + std::to_string(s) + ": tick " +
                std::to_string(shards->queue(s).curTick()) + ", " +
                std::to_string(shards->queue(s).numExecuted()) +
                " events");
        }
    }
    auto scan = [&](const auto &bufs) {
        for (const auto &mb : bufs) {
            if (mb->transportEnabled() &&
                mb->transport()->isDegraded()) {
                r.links.push_back(mb->transport()->degradedInfo());
            }
        }
    };
    scan(toDir);
    scan(fromDir);
    return r;
}

TransportSummary
HsaSystem::transportSummary() const
{
    TransportSummary s;
    auto scan = [&](const auto &bufs) {
        for (const auto &mb : bufs) {
            const LinkTransport *tp = mb->transport();
            if (!tp)
                continue;
            s.enabled = true;
            s.retransmits += tp->retransmitCount();
            s.ackFrames += tp->ackFrameCount();
            s.dupDrops += tp->dupDropCount();
            s.corruptDrops += tp->corruptDropCount();
            s.wireDrops += tp->wireDropCount();
            s.degradedLinks += tp->isDegraded() ? 1 : 0;
        }
    };
    scan(toDir);
    scan(fromDir);
    return s;
}

} // namespace hsc
