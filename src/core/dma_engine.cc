#include "core/dma_engine.hh"

#include <memory>

namespace hsc
{

void
DmaEngine::copy(Addr dst, Addr src, std::uint64_t bytes,
                std::function<void()> cb)
{
    panic_if(blockOffset(dst) || blockOffset(src) ||
                 bytes % BlockSizeBytes != 0,
             "DMA copy must be block-aligned");
    std::uint64_t blocks = bytes / BlockSizeBytes;
    if (blocks == 0) {
        cb();
        return;
    }
    auto pending = std::make_shared<std::uint64_t>(blocks);
    auto done = std::make_shared<std::function<void()>>(std::move(cb));
    for (std::uint64_t i = 0; i < blocks; ++i) {
        Addr s = src + i * BlockSizeBytes;
        Addr d = dst + i * BlockSizeBytes;
        ctrl.readBlock(s, [this, d, pending, done](const DataBlock &data) {
            ctrl.writeBlock(d, data, FullMask, [pending, done] {
                if (--*pending == 0)
                    (*done)();
            });
        });
    }
}

} // namespace hsc
