#include "core/dma_engine.hh"

#include <memory>

#include "core/cpu_core.hh"
#include "sim/shard.hh"
#include "sim/snapshot.hh"
#include "trace/trace_capture.hh"

namespace hsc
{

void
DmaEngine::routeRead(Addr addr, std::function<void(DataBlock)> cb)
{
    if (pdesShards && ShardGroup::currentShard() != pdesDmaShard) {
        unsigned home = ShardGroup::currentShard();
        pdesShards->postCall(
            pdesDmaShard,
            [this, addr, home, cb = std::move(cb)]() mutable {
                ctrl.readBlock(
                    addr, [this, home, cb = std::move(cb)](
                              const DataBlock &b) mutable {
                        pdesShards->postCall(
                            home, [b, cb = std::move(cb)]() mutable {
                                cb(b);
                            });
                    });
            });
        return;
    }
    ctrl.readBlock(addr, std::move(cb));
}

void
DmaEngine::routeWrite(Addr addr, const DataBlock &data, ByteMask mask,
                      std::function<void()> cb)
{
    if (pdesShards && ShardGroup::currentShard() != pdesDmaShard) {
        unsigned home = ShardGroup::currentShard();
        pdesShards->postCall(
            pdesDmaShard,
            [this, addr, data, mask, home,
             cb = std::move(cb)]() mutable {
                ctrl.writeBlock(
                    addr, data, mask,
                    [this, home, cb = std::move(cb)]() mutable {
                        pdesShards->postCall(home, std::move(cb));
                    });
            });
        return;
    }
    ctrl.writeBlock(addr, data, mask, std::move(cb));
}

void
DmaEngine::copy(Addr dst, Addr src, std::uint64_t bytes,
                std::function<void()> cb)
{
    panic_if(blockOffset(dst) || blockOffset(src) ||
                 bytes % BlockSizeBytes != 0,
             "DMA copy must be block-aligned");
    if (pdesShards && ShardGroup::currentShard() != pdesDmaShard) {
        // Hop once for the whole copy: the per-block read/write chain
        // below then runs entirely on the DMA shard, and only the
        // final completion doorbells back to the issuing shard.
        unsigned home = ShardGroup::currentShard();
        pdesShards->postCall(
            pdesDmaShard,
            [this, dst, src, bytes, home,
             cb = std::move(cb)]() mutable {
                copy(dst, src, bytes,
                     [this, home, cb = std::move(cb)]() mutable {
                         pdesShards->postCall(home, std::move(cb));
                     });
            });
        return;
    }
    std::uint64_t blocks = bytes / BlockSizeBytes;
    if (blocks == 0) {
        cb();
        return;
    }
    auto pending = std::make_shared<std::uint64_t>(blocks);
    auto done = std::make_shared<std::function<void()>>(std::move(cb));
    for (std::uint64_t i = 0; i < blocks; ++i) {
        Addr s = src + i * BlockSizeBytes;
        Addr d = dst + i * BlockSizeBytes;
        ctrl.readBlock(s, [this, d, pending, done](const DataBlock &data) {
            ctrl.writeBlock(d, data, FullMask, [pending, done] {
                if (--*pending == 0)
                    (*done)();
            });
        });
    }
}

void
DmaEngine::requireUnattributedOk(const char *what) const
{
    panic_if(snap != nullptr,
             "DmaEngine::%s without thread attribution while "
             "checkpointing is enabled (use the CpuCtx& overload)",
             what);
    panic_if(rec != nullptr,
             "DmaEngine::%s without thread attribution while trace "
             "capture is enabled (use the CpuCtx& overload)",
             what);
}

void
DmaEngine::readLive(SnapshotCoordinator *s, std::uint64_t key, Addr addr,
                    std::function<void(DataBlock)> cb)
{
    routeRead(addr, [s, key, cb = std::move(cb)](const DataBlock &b) {
        if (s) {
            std::uint64_t words[BlockSizeBytes / 8];
            for (unsigned i = 0; i < BlockSizeBytes / 8; ++i)
                words[i] = b.get<std::uint64_t>(i * 8);
            s->record(key, OpKind::DmaRead, words, BlockSizeBytes / 8);
        }
        cb(b);
    });
}

void
DmaEngine::writeLive(SnapshotCoordinator *s, std::uint64_t key, Addr addr,
                     const DataBlock &data, ByteMask mask,
                     std::function<void()> cb)
{
    routeWrite(addr, data, mask, [s, key, cb = std::move(cb)] {
        if (s)
            s->record(key, OpKind::DmaWrite, {});
        cb();
    });
}

void
DmaEngine::copyLive(SnapshotCoordinator *s, std::uint64_t key, Addr dst,
                    Addr src, std::uint64_t bytes, std::function<void()> cb)
{
    copy(dst, src, bytes, [s, key, cb = std::move(cb)] {
        if (s)
            s->record(key, OpKind::DmaCopy, {});
        cb();
    });
}

Await<DataBlock>
DmaEngine::readBlock(CpuCtx &cpu, Addr addr)
{
    return Await<DataBlock>(
        [this, &cpu, addr](std::function<void(DataBlock)> cb) {
            SnapshotCoordinator *s = cpu.snapshot();
            std::uint64_t key = cpu.agentKey();
            if (rec)
                rec->dmaRead(key, addr);
            if (s && s->replaying()) {
                if (const OpRecord *r = s->replayNext(key, OpKind::DmaRead)) {
                    DataBlock b;
                    for (unsigned i = 0; i < BlockSizeBytes / 8; ++i)
                        b.set<std::uint64_t>(i * 8, r->word(i));
                    cb(b);
                } else {
                    s->park(key, [this, s, key, addr,
                                  cb = std::move(cb)]() mutable {
                        readLive(s, key, addr, std::move(cb));
                    });
                }
                return;
            }
            if (s && s->draining()) {
                s->park(key, [this, s, key, addr,
                              cb = std::move(cb)]() mutable {
                    readLive(s, key, addr, std::move(cb));
                });
                return;
            }
            readLive(s, key, addr, std::move(cb));
        });
}

AwaitVoid
DmaEngine::writeBlock(CpuCtx &cpu, Addr addr, const DataBlock &data,
                      ByteMask mask)
{
    return AwaitVoid(
        [this, &cpu, addr, data, mask](std::function<void()> cb) {
            SnapshotCoordinator *s = cpu.snapshot();
            std::uint64_t key = cpu.agentKey();
            if (rec)
                rec->dmaWrite(key, addr, data, mask);
            if (s && s->replaying()) {
                if (s->replayNext(key, OpKind::DmaWrite)) {
                    cb();
                } else {
                    s->park(key, [this, s, key, addr, data, mask,
                                  cb = std::move(cb)]() mutable {
                        writeLive(s, key, addr, data, mask, std::move(cb));
                    });
                }
                return;
            }
            if (s && s->draining()) {
                s->park(key, [this, s, key, addr, data, mask,
                              cb = std::move(cb)]() mutable {
                    writeLive(s, key, addr, data, mask, std::move(cb));
                });
                return;
            }
            writeLive(s, key, addr, data, mask, std::move(cb));
        });
}

AwaitVoid
DmaEngine::copyAsync(CpuCtx &cpu, Addr dst, Addr src, std::uint64_t bytes)
{
    return AwaitVoid(
        [this, &cpu, dst, src, bytes](std::function<void()> cb) {
            SnapshotCoordinator *s = cpu.snapshot();
            std::uint64_t key = cpu.agentKey();
            if (rec)
                rec->dmaCopy(key, dst, src, bytes);
            if (s && s->replaying()) {
                if (s->replayNext(key, OpKind::DmaCopy)) {
                    cb();
                } else {
                    s->park(key, [this, s, key, dst, src, bytes,
                                  cb = std::move(cb)]() mutable {
                        copyLive(s, key, dst, src, bytes, std::move(cb));
                    });
                }
                return;
            }
            if (s && s->draining()) {
                s->park(key, [this, s, key, dst, src, bytes,
                              cb = std::move(cb)]() mutable {
                    copyLive(s, key, dst, src, bytes, std::move(cb));
                });
                return;
            }
            copyLive(s, key, dst, src, bytes, std::move(cb));
        });
}

} // namespace hsc
