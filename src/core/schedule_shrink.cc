#include "core/schedule_shrink.hh"

#include <algorithm>
#include <functional>

#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"

namespace hsc
{

namespace
{

/** Run @p sched on a fresh system; true when it fails. */
bool
stillFails(const SystemConfig &sys_cfg,
           const RandomTesterConfig &tester_cfg,
           const TesterSchedule &sched, std::string *reason)
{
    HsaSystem sys(sys_cfg);
    RandomTester tester(sys, tester_cfg, sched);
    bool ok = tester.run();
    if (!ok && reason) {
        *reason = sys.failReason();
        if (reason->empty() && !tester.failures().empty())
            *reason = tester.failures().front();
    }
    return !ok;
}

TesterSchedule
slice(const TesterSchedule &s, std::size_t lo, std::size_t hi)
{
    TesterSchedule out;
    out.ops.assign(s.ops.begin() + long(lo), s.ops.begin() + long(hi));
    return out;
}

/**
 * The ddmin chunk-removal loop over @p res.minimal, with the failure
 * oracle abstracted so anchored shrinking can substitute
 * restore-and-resume candidates for full reruns.
 */
void
ddminLoop(ShrinkResult &res,
          const std::function<bool(const TesterSchedule &,
                                   std::string *)> &fails,
          std::size_t max_tests)
{
    // ddmin: try removing chunks of size n, halving n each time no
    // removal sticks, until n == 1 makes a full pass with no change.
    std::size_t chunk = std::max<std::size_t>(1, res.minimal.size() / 2);
    for (;;) {
        bool removed_any = false;
        for (std::size_t start = 0;
             start < res.minimal.size() && res.testsRun < max_tests;) {
            TesterSchedule candidate;
            std::size_t end =
                std::min(start + chunk, res.minimal.size());
            candidate.ops.reserve(res.minimal.size() - (end - start));
            for (std::size_t i = 0; i < res.minimal.size(); ++i) {
                if (i < start || i >= end)
                    candidate.ops.push_back(res.minimal.ops[i]);
            }
            ++res.testsRun;
            std::string reason;
            if (!candidate.empty() && fails(candidate, &reason)) {
                res.minimal = std::move(candidate);
                res.failReason = reason;
                removed_any = true;
                // Retry the same start: the next chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if (res.testsRun >= max_tests)
            break;
        if (chunk == 1) {
            if (!removed_any)
                break;
            continue;
        }
        if (!removed_any)
            chunk = std::max<std::size_t>(1, chunk / 2);
    }
}

} // namespace

ShrinkResult
shrinkSchedule(const SystemConfig &sys_cfg,
               const RandomTesterConfig &tester_cfg,
               const TesterSchedule &schedule, std::size_t max_tests)
{
    ShrinkResult res;
    res.originalOps = schedule.size();

    ++res.testsRun;
    res.originalFailed =
        stillFails(sys_cfg, tester_cfg, schedule, &res.failReason);
    res.minimal = schedule;
    if (!res.originalFailed)
        return res;

    ddminLoop(res,
              [&](const TesterSchedule &cand, std::string *reason) {
                  return stillFails(sys_cfg, tester_cfg, cand, reason);
              },
              max_tests);
    return res;
}

ShrinkResult
shrinkScheduleAnchored(const SystemConfig &sys_cfg,
                       const RandomTesterConfig &tester_cfg,
                       const TesterSchedule &schedule,
                       const std::string &anchor_path,
                       std::size_t max_tests)
{
    ShrinkResult res;
    res.originalOps = schedule.size();

    ++res.testsRun;
    res.originalFailed =
        stillFails(sys_cfg, tester_cfg, schedule, &res.failReason);
    res.minimal = schedule;
    if (!res.originalFailed)
        return res;

    // Find the anchor: the largest halving prefix that passes on its
    // own.  The failure then lives in the suffix, and every ddmin
    // candidate replays the prefix from a snapshot instead of
    // re-simulating it from tick 0.
    std::size_t anchor = schedule.size() / 2;
    while (anchor > 0 && res.testsRun < max_tests) {
        ++res.testsRun;
        std::string ignored;
        if (!stillFails(sys_cfg, tester_cfg, slice(schedule, 0, anchor),
                        &ignored))
            break;
        anchor /= 2;
    }

    auto fall_back = [&]() {
        std::size_t left =
            max_tests > res.testsRun ? max_tests - res.testsRun : 0;
        ShrinkResult plain =
            shrinkSchedule(sys_cfg, tester_cfg, schedule, left);
        plain.testsRun += res.testsRun;
        return plain;
    };
    if (anchor == 0) {
        // The failure starts at op 0; nothing to anchor on.
        return fall_back();
    }
    res.anchorOps = anchor;

    // Capture the anchor once: run the prefix without the verify pass
    // (so the op logs end exactly at the schedule boundary) and seal
    // the quiesced state.
    TesterSchedule prefix = slice(schedule, 0, anchor);
    SystemConfig cap_cfg = sys_cfg;
    cap_cfg.ckpt = CheckpointConfig{};
    cap_cfg.ckpt.manual = true;
    TesterResumeState anchor_state;
    {
        HsaSystem sys(cap_cfg);
        RandomTester pre(sys, tester_cfg, prefix);
        if (!pre.runSchedule() || !pre.failures().empty()) {
            warn("anchored shrink: prefix stopped passing during "
                 "capture; falling back to plain ddmin");
            return fall_back();
        }
        try {
            writeSnapshotFile(anchor_path, sys.checkpointNow());
        } catch (const SimError &e) {
            warn("anchored shrink: cannot write anchor %s: %s",
                 anchor_path.c_str(), e.what());
            return fall_back();
        }
        anchor_state = pre.resumeState();
    }

    SystemConfig resume_cfg = sys_cfg;
    resume_cfg.ckpt = CheckpointConfig{};
    resume_cfg.ckpt.manual = true;
    resume_cfg.ckpt.restorePath = anchor_path;

    // A candidate suffix fails iff resuming it on the restored anchor
    // fails.  The prefix "run" here is a synchronous log replay.
    auto suffix_fails = [&](const TesterSchedule &cand,
                            std::string *reason) {
        HsaSystem sys(resume_cfg);
        RandomTester pre(sys, tester_cfg, prefix);
        if (!pre.runSchedule()) {
            warn("anchored shrink: anchor restore failed (%s); "
                 "candidate skipped",
                 sys.failReason().c_str());
            return false;
        }
        RandomTester suf(sys, tester_cfg, cand, anchor_state);
        bool ok = suf.run();
        if (!ok && reason) {
            *reason = sys.failReason();
            if (reason->empty() && !suf.failures().empty())
                *reason = suf.failures().front();
        }
        return !ok;
    };

    // ddmin the suffix alone, then report prefix + minimal suffix —
    // still a valid standalone failing schedule.
    ShrinkResult suffix_res;
    suffix_res.minimal = slice(schedule, anchor, schedule.size());
    suffix_res.failReason = res.failReason;
    suffix_res.testsRun = res.testsRun;
    ddminLoop(suffix_res, suffix_fails, max_tests);

    res.testsRun = suffix_res.testsRun;
    res.failReason = suffix_res.failReason;
    res.minimal = prefix;
    res.minimal.ops.insert(res.minimal.ops.end(),
                           suffix_res.minimal.ops.begin(),
                           suffix_res.minimal.ops.end());
    return res;
}

} // namespace hsc
