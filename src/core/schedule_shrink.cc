#include "core/schedule_shrink.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hsc
{

namespace
{

/** Run @p sched on a fresh system; true when it fails. */
bool
stillFails(const SystemConfig &sys_cfg,
           const RandomTesterConfig &tester_cfg,
           const TesterSchedule &sched, std::string *reason)
{
    HsaSystem sys(sys_cfg);
    RandomTester tester(sys, tester_cfg, sched);
    bool ok = tester.run();
    if (!ok && reason) {
        *reason = sys.failReason();
        if (reason->empty() && !tester.failures().empty())
            *reason = tester.failures().front();
    }
    return !ok;
}

} // namespace

ShrinkResult
shrinkSchedule(const SystemConfig &sys_cfg,
               const RandomTesterConfig &tester_cfg,
               const TesterSchedule &schedule, std::size_t max_tests)
{
    ShrinkResult res;
    res.originalOps = schedule.size();

    ++res.testsRun;
    res.originalFailed =
        stillFails(sys_cfg, tester_cfg, schedule, &res.failReason);
    res.minimal = schedule;
    if (!res.originalFailed)
        return res;

    // ddmin: try removing chunks of size n, halving n each time no
    // removal sticks, until n == 1 makes a full pass with no change.
    std::size_t chunk = std::max<std::size_t>(1, res.minimal.size() / 2);
    for (;;) {
        bool removed_any = false;
        for (std::size_t start = 0;
             start < res.minimal.size() && res.testsRun < max_tests;) {
            TesterSchedule candidate;
            std::size_t end =
                std::min(start + chunk, res.minimal.size());
            candidate.ops.reserve(res.minimal.size() - (end - start));
            for (std::size_t i = 0; i < res.minimal.size(); ++i) {
                if (i < start || i >= end)
                    candidate.ops.push_back(res.minimal.ops[i]);
            }
            ++res.testsRun;
            std::string reason;
            if (!candidate.empty() &&
                stillFails(sys_cfg, tester_cfg, candidate, &reason)) {
                res.minimal = std::move(candidate);
                res.failReason = reason;
                removed_any = true;
                // Retry the same start: the next chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if (res.testsRun >= max_tests)
            break;
        if (chunk == 1) {
            if (!removed_any)
                break;
            continue;
        }
        if (!removed_any)
            chunk = std::max<std::size_t>(1, chunk / 2);
    }
    return res;
}

} // namespace hsc
