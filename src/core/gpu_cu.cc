#include "core/gpu_cu.hh"

#include <map>

namespace hsc
{

namespace
{
constexpr Addr KernelCodeBase = 0x80000;
constexpr Addr KernelCodeBytes = 0x4000;
} // namespace

// --------------------------------------------------------------------
// WaveCtx
// --------------------------------------------------------------------

WaveCtx::WaveCtx(GpuCu &cu, unsigned workgroup_id, unsigned lanes)
    : cu(cu), wgId(workgroup_id), lanes(lanes),
      codePc(KernelCodeBase + (workgroup_id % 4) * 0x100)
{
}

void
WaveCtx::maybeIfetch(std::function<void()> then)
{
    if (!cu.injectIfetches || (opCount++ % 8) != 0) {
        then();
        return;
    }
    Addr pc = codePc;
    codePc = KernelCodeBase + ((codePc + BlockSizeBytes) % KernelCodeBytes);
    cu._sqc.fetch(pc, std::move(then));
}

Await<std::vector<std::uint64_t>>
WaveCtx::vload(Addr base, unsigned stride, unsigned size)
{
    return Await<std::vector<std::uint64_t>>(
        [this, base, stride,
         size](std::function<void(std::vector<std::uint64_t>)> cb) {
            maybeIfetch([this, base, stride, size, cb = std::move(cb)] {
                // Coalesce lane addresses into unique blocks.
                struct State
                {
                    std::map<Addr, DataBlock> blocks;
                    unsigned pendingBlocks = 0;
                    std::function<void(std::vector<std::uint64_t>)> cb;
                };
                auto st = std::make_shared<State>();
                st->cb = std::move(cb);
                for (unsigned i = 0; i < lanes; ++i)
                    st->blocks[blockAlign(base + Addr(i) * stride)];
                st->pendingBlocks = st->blocks.size();

                auto finish = [this, base, stride, size, st] {
                    std::vector<std::uint64_t> vals(lanes);
                    for (unsigned i = 0; i < lanes; ++i) {
                        Addr a = base + Addr(i) * stride;
                        const DataBlock &blk = st->blocks[blockAlign(a)];
                        vals[i] = size == 4
                            ? blk.get<std::uint32_t>(blockOffset(a))
                            : blk.get<std::uint64_t>(blockOffset(a));
                    }
                    st->cb(std::move(vals));
                };
                for (auto &[blk_addr, slot] : st->blocks) {
                    cu._tcp.loadBlock(
                        blk_addr, [st, finish, a = blk_addr](
                                      const DataBlock &data) {
                            st->blocks[a] = data;
                            if (--st->pendingBlocks == 0)
                                finish();
                        });
                }
            });
        });
}

AwaitVoid
WaveCtx::vstore(Addr base, unsigned stride, unsigned size,
                std::vector<std::uint64_t> values)
{
    return AwaitVoid([this, base, stride, size,
                      values = std::move(values)](std::function<void()> cb) {
        maybeIfetch([this, base, stride, size, values, cb = std::move(cb)] {
            struct Blk
            {
                DataBlock data;
                ByteMask mask = 0;
            };
            auto blocks = std::make_shared<std::map<Addr, Blk>>();
            for (unsigned i = 0; i < lanes && i < values.size(); ++i) {
                Addr a = base + Addr(i) * stride;
                Blk &b = (*blocks)[blockAlign(a)];
                unsigned off = blockOffset(a);
                if (size == 4)
                    b.data.set<std::uint32_t>(off,
                                              std::uint32_t(values[i]));
                else
                    b.data.set<std::uint64_t>(off, values[i]);
                b.mask |= makeMask(off, size);
            }
            auto pending = std::make_shared<unsigned>(blocks->size());
            auto done = std::make_shared<std::function<void()>>(
                std::move(cb));
            for (auto &[blk_addr, b] : *blocks) {
                cu._tcp.storeBlock(blk_addr, b.data, b.mask,
                                   [blocks, pending, done] {
                                       if (--*pending == 0)
                                           (*done)();
                                   });
            }
        });
    });
}

Await<std::uint64_t>
WaveCtx::load(Addr addr, unsigned size, Scope scope)
{
    return Await<std::uint64_t>(
        [this, addr, size, scope](std::function<void(std::uint64_t)> cb) {
            maybeIfetch([this, addr, size, scope, cb = std::move(cb)] {
                cu._tcp.load(addr, size, scope, cb);
            });
        });
}

AwaitVoid
WaveCtx::store(Addr addr, std::uint64_t value, unsigned size, Scope scope)
{
    return AwaitVoid(
        [this, addr, value, size, scope](std::function<void()> cb) {
            maybeIfetch([this, addr, value, size, scope,
                         cb = std::move(cb)] {
                cu._tcp.store(addr, size, value, scope, cb);
            });
        });
}

Await<std::uint64_t>
WaveCtx::atomic(Addr addr, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2, unsigned size, Scope scope)
{
    return Await<std::uint64_t>(
        [this, addr, op, operand, operand2, size,
         scope](std::function<void(std::uint64_t)> cb) {
            maybeIfetch([this, addr, op, operand, operand2, size, scope,
                         cb = std::move(cb)] {
                cu._tcp.atomic(addr, op, operand, operand2, size, scope,
                               cb);
            });
        });
}

AwaitVoid
WaveCtx::compute(Cycles cycles)
{
    return AwaitVoid([this, cycles](std::function<void()> cb) {
        cu.scheduleCycles(cycles, [&eq = cu.eventQueue(),
                                   cb = std::move(cb)] {
            eq.notifyProgress();
            cb();
        });
    });
}

AwaitVoid
WaveCtx::acquire()
{
    return AwaitVoid([this](std::function<void()> cb) {
        cu._tcp.acquire(std::move(cb));
    });
}

AwaitVoid
WaveCtx::release()
{
    return AwaitVoid([this](std::function<void()> cb) {
        cu._tcp.release(std::move(cb));
    });
}

// --------------------------------------------------------------------
// GpuCu
// --------------------------------------------------------------------

GpuCu::GpuCu(std::string name, EventQueue &eq, ClockDomain clk,
             const TcpParams &tcp_params, TccController &tcc,
             SqcController &sqc, unsigned num_slots, unsigned lanes,
             bool inject_ifetches)
    : Clocked(std::move(name), eq, clk),
      _tcp(this->name() + ".tcp", eq, clk, tcp_params, tcc), _sqc(sqc),
      numSlots(num_slots), lanes(lanes), injectIfetches(inject_ifetches),
      _freeSlots(num_slots)
{
}

void
GpuCu::runWavefront(unsigned wg_id,
                    const std::function<SimTask(WaveCtx &)> &body,
                    std::function<void()> on_done)
{
    panic_if(_freeSlots == 0, "%s: no free wavefront slot",
             name().c_str());
    --_freeSlots;
    auto ctx = std::make_unique<WaveCtx>(*this, wg_id, lanes);
    WaveCtx *raw = ctx.get();
    live.push_back(std::move(ctx));

    SimTask task = body(*raw);
    task.start([this, raw, on_done = std::move(on_done)] {
        ++_freeSlots;
        for (auto it = live.begin(); it != live.end(); ++it) {
            if (it->get() == raw) {
                live.erase(it);
                break;
            }
        }
        on_done();
    });
}

} // namespace hsc
