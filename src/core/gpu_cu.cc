#include "core/gpu_cu.hh"

#include <map>

namespace hsc
{

namespace
{
constexpr Addr KernelCodeBase = 0x80000;
constexpr Addr KernelCodeBytes = 0x4000;
} // namespace

// --------------------------------------------------------------------
// WaveCtx
// --------------------------------------------------------------------

WaveCtx::WaveCtx(GpuCu &cu, unsigned workgroup_id, unsigned lanes)
    : cu(cu), wgId(workgroup_id), lanes(lanes),
      codePc(KernelCodeBase + (workgroup_id % 4) * 0x100)
{
}

void
WaveCtx::maybeIfetch(std::function<void()> then)
{
    if (!cu.injectIfetches || (opCount++ % 8) != 0) {
        then();
        return;
    }
    Addr pc = codePc;
    codePc = KernelCodeBase + ((codePc + BlockSizeBytes) % KernelCodeBytes);
    cu._sqc.fetch(pc, std::move(then));
}

TcpController &
WaveCtx::tcp()
{
    return cu._tcp;
}

void
WaveCtx::VloadOp::start()
{
    ctx->maybeIfetch([this] { issue(); });
}

void
WaveCtx::VloadOp::issue()
{
    // Coalesce lane addresses into unique blocks.
    for (unsigned i = 0; i < ctx->lanes; ++i)
        blocks[blockAlign(base + Addr(i) * stride)];
    pendingBlocks = unsigned(blocks.size());
    for (auto &[blk_addr, slot] : blocks) {
        ctx->tcp().loadBlock(blk_addr,
                             [this, a = blk_addr](const DataBlock &data) {
                                 blocks[a] = data;
                                 if (--pendingBlocks == 0)
                                     finish();
                             });
    }
}

void
WaveCtx::VloadOp::finish()
{
    std::vector<std::uint64_t> vals(ctx->lanes);
    for (unsigned i = 0; i < ctx->lanes; ++i) {
        Addr a = base + Addr(i) * stride;
        const DataBlock &blk = blocks[blockAlign(a)];
        vals[i] = size == 4 ? blk.get<std::uint32_t>(blockOffset(a))
                            : blk.get<std::uint64_t>(blockOffset(a));
    }
    complete(std::move(vals));
}

void
WaveCtx::VstoreOp::start()
{
    ctx->maybeIfetch([this] { issue(); });
}

void
WaveCtx::VstoreOp::issue()
{
    for (unsigned i = 0; i < ctx->lanes && i < values.size(); ++i) {
        Addr a = base + Addr(i) * stride;
        Blk &b = blocks[blockAlign(a)];
        unsigned off = blockOffset(a);
        if (size == 4)
            b.data.set<std::uint32_t>(off, std::uint32_t(values[i]));
        else
            b.data.set<std::uint64_t>(off, values[i]);
        b.mask |= makeMask(off, size);
    }
    pendingBlocks = unsigned(blocks.size());
    for (auto &[blk_addr, b] : blocks) {
        ctx->tcp().storeBlock(blk_addr, b.data, b.mask, [this] {
            if (--pendingBlocks == 0)
                complete();
        });
    }
}

void
WaveCtx::LoadOp::start()
{
    ctx->maybeIfetch([this] {
        ctx->tcp().load(addr, size, scope,
                        [this](std::uint64_t v) { complete(v); });
    });
}

void
WaveCtx::StoreOp::start()
{
    ctx->maybeIfetch([this] {
        ctx->tcp().store(addr, size, value, scope,
                         [this] { complete(); });
    });
}

void
WaveCtx::AmoOp::start()
{
    ctx->maybeIfetch([this] {
        ctx->tcp().atomic(addr, op, operand, operand2, size, scope,
                          [this](std::uint64_t v) { complete(v); });
    });
}

AwaitVoid
WaveCtx::compute(Cycles cycles)
{
    return AwaitVoid([this, cycles](std::function<void()> cb) {
        cu.scheduleCycles(cycles, [&eq = cu.eventQueue(),
                                   cb = std::move(cb)] {
            eq.notifyProgress();
            cb();
        });
    });
}

AwaitVoid
WaveCtx::acquire()
{
    return AwaitVoid([this](std::function<void()> cb) {
        cu._tcp.acquire(std::move(cb));
    });
}

AwaitVoid
WaveCtx::release()
{
    return AwaitVoid([this](std::function<void()> cb) {
        cu._tcp.release(std::move(cb));
    });
}

// --------------------------------------------------------------------
// GpuCu
// --------------------------------------------------------------------

GpuCu::GpuCu(std::string name, EventQueue &eq, ClockDomain clk,
             const TcpParams &tcp_params, TccController &tcc,
             SqcController &sqc, unsigned num_slots, unsigned lanes,
             bool inject_ifetches)
    : Clocked(std::move(name), eq, clk),
      _tcp(this->name() + ".tcp", eq, clk, tcp_params, tcc), _sqc(sqc),
      numSlots(num_slots), lanes(lanes), injectIfetches(inject_ifetches),
      _freeSlots(num_slots)
{
}

void
GpuCu::runWavefront(unsigned wg_id,
                    const std::function<SimTask(WaveCtx &)> &body,
                    std::function<void()> on_done)
{
    panic_if(_freeSlots == 0, "%s: no free wavefront slot",
             name().c_str());
    --_freeSlots;
    auto ctx = std::make_unique<WaveCtx>(*this, wg_id, lanes);
    WaveCtx *raw = ctx.get();
    live.push_back(std::move(ctx));

    SimTask task = body(*raw);
    task.start([this, raw, on_done = std::move(on_done)] {
        ++_freeSlots;
        for (auto it = live.begin(); it != live.end(); ++it) {
            if (it->get() == raw) {
                live.erase(it);
                break;
            }
        }
        on_done();
    });
}

} // namespace hsc
