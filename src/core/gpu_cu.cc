#include "core/gpu_cu.hh"

#include <map>

#include "sim/snapshot.hh"
#include "trace/trace_capture.hh"

namespace hsc
{

namespace
{
constexpr Addr KernelCodeBase = 0x80000;
constexpr Addr KernelCodeBytes = 0x4000;
} // namespace

// --------------------------------------------------------------------
// WaveCtx
// --------------------------------------------------------------------

WaveCtx::WaveCtx(GpuCu &cu, unsigned workgroup_id, unsigned lanes)
    : cu(cu), wgId(workgroup_id), lanes(lanes),
      codePc(KernelCodeBase + (workgroup_id % 4) * 0x100)
{
}

void
WaveCtx::maybeIfetch(std::function<void()> then)
{
    if (!cu.injectIfetches || (opCount++ % 8) != 0) {
        then();
        return;
    }
    Addr pc = codePc;
    codePc = KernelCodeBase + ((codePc + BlockSizeBytes) % KernelCodeBytes);
    cu._sqc.fetch(pc, std::move(then));
}

void
WaveCtx::advanceIfetchReplay()
{
    if (!cu.injectIfetches || (opCount++ % 8) != 0)
        return;
    codePc = KernelCodeBase + ((codePc + BlockSizeBytes) % KernelCodeBytes);
}

TcpController &
WaveCtx::tcp()
{
    return cu._tcp;
}

void
WaveCtx::VloadOp::start()
{
    if (ctx->rec)
        ctx->rec->gpuVload(ctx->agent, base, stride, size);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (const OpRecord *r =
                snap->replayNext(ctx->agent, OpKind::GpuVload)) {
            ctx->advanceIfetchReplay();
            complete(std::vector<std::uint64_t>(r->words));
        } else {
            snap->park(ctx->agent, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->agent, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
WaveCtx::VloadOp::issueLive()
{
    ctx->maybeIfetch([this] { issue(); });
}

void
WaveCtx::VloadOp::issue()
{
    // Coalesce lane addresses into unique blocks.
    for (unsigned i = 0; i < ctx->lanes; ++i)
        blocks[blockAlign(base + Addr(i) * stride)];
    pendingBlocks = unsigned(blocks.size());
    for (auto &[blk_addr, slot] : blocks) {
        ctx->tcp().loadBlock(blk_addr,
                             [this, a = blk_addr](const DataBlock &data) {
                                 blocks[a] = data;
                                 if (--pendingBlocks == 0)
                                     finish();
                             });
    }
}

void
WaveCtx::VloadOp::finish()
{
    std::vector<std::uint64_t> vals(ctx->lanes);
    for (unsigned i = 0; i < ctx->lanes; ++i) {
        Addr a = base + Addr(i) * stride;
        const DataBlock &blk = blocks[blockAlign(a)];
        vals[i] = size == 4 ? blk.get<std::uint32_t>(blockOffset(a))
                            : blk.get<std::uint64_t>(blockOffset(a));
    }
    if (ctx->snap)
        ctx->snap->record(ctx->agent, OpKind::GpuVload, vals.data(),
                          vals.size());
    complete(std::move(vals));
}

void
WaveCtx::VstoreOp::start()
{
    if (ctx->rec)
        ctx->rec->gpuVstore(ctx->agent, base, stride, size, values);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (snap->replayNext(ctx->agent, OpKind::GpuVstore)) {
            ctx->advanceIfetchReplay();
            complete();
        } else {
            snap->park(ctx->agent, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->agent, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
WaveCtx::VstoreOp::issueLive()
{
    ctx->maybeIfetch([this] { issue(); });
}

void
WaveCtx::VstoreOp::issue()
{
    for (unsigned i = 0; i < ctx->lanes && i < values.size(); ++i) {
        Addr a = base + Addr(i) * stride;
        Blk &b = blocks[blockAlign(a)];
        unsigned off = blockOffset(a);
        if (size == 4)
            b.data.set<std::uint32_t>(off, std::uint32_t(values[i]));
        else
            b.data.set<std::uint64_t>(off, values[i]);
        b.mask |= makeMask(off, size);
    }
    pendingBlocks = unsigned(blocks.size());
    for (auto &[blk_addr, b] : blocks) {
        ctx->tcp().storeBlock(blk_addr, b.data, b.mask, [this] {
            if (--pendingBlocks == 0) {
                if (ctx->snap)
                    ctx->snap->record(ctx->agent, OpKind::GpuVstore, {});
                complete();
            }
        });
    }
}

void
WaveCtx::LoadOp::start()
{
    if (ctx->rec)
        ctx->rec->gpuLoad(ctx->agent, addr, size, scope);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (const OpRecord *r =
                snap->replayNext(ctx->agent, OpKind::GpuLoad)) {
            ctx->advanceIfetchReplay();
            complete(r->word(0));
        } else {
            snap->park(ctx->agent, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->agent, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
WaveCtx::LoadOp::issueLive()
{
    ctx->maybeIfetch([this] {
        ctx->tcp().load(addr, size, scope, [this](std::uint64_t v) {
            if (ctx->snap)
                ctx->snap->record(ctx->agent, OpKind::GpuLoad, {v});
            complete(v);
        });
    });
}

void
WaveCtx::StoreOp::start()
{
    if (ctx->rec)
        ctx->rec->gpuStore(ctx->agent, addr, size, value, scope);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (snap->replayNext(ctx->agent, OpKind::GpuStore)) {
            ctx->advanceIfetchReplay();
            complete();
        } else {
            snap->park(ctx->agent, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->agent, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
WaveCtx::StoreOp::issueLive()
{
    ctx->maybeIfetch([this] {
        ctx->tcp().store(addr, size, value, scope, [this] {
            if (ctx->snap)
                ctx->snap->record(ctx->agent, OpKind::GpuStore, {});
            complete();
        });
    });
}

void
WaveCtx::AmoOp::start()
{
    if (ctx->rec)
        ctx->rec->gpuAmo(ctx->agent, addr, size, scope, op, operand,
                         operand2);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (const OpRecord *r =
                snap->replayNext(ctx->agent, OpKind::GpuAmo)) {
            ctx->advanceIfetchReplay();
            complete(r->word(0));
        } else {
            snap->park(ctx->agent, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->agent, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
WaveCtx::AmoOp::issueLive()
{
    ctx->maybeIfetch([this] {
        ctx->tcp().atomic(addr, op, operand, operand2, size, scope,
                          [this](std::uint64_t v) {
                              if (ctx->snap)
                                  ctx->snap->record(ctx->agent,
                                                    OpKind::GpuAmo, {v});
                              complete(v);
                          });
    });
}

void
WaveCtx::computeLive(Cycles cycles, std::function<void()> cb)
{
    // progress-tagged: see CpuCtx::computeLive.
    cu.scheduleCycles(cycles, [this, cb = std::move(cb)] {
        cu.eventQueue().notifyProgress();
        if (snap)
            snap->record(agent, OpKind::GpuCompute, {});
        cb();
    }, EventPriority::Default, /*progress=*/true);
}

AwaitVoid
WaveCtx::compute(Cycles cycles)
{
    return AwaitVoid([this, cycles](std::function<void()> cb) {
        if (rec)
            rec->gpuCompute(agent, cycles);
        if (snap && snap->replaying()) {
            if (snap->replayNext(agent, OpKind::GpuCompute)) {
                cb();
            } else {
                snap->park(agent,
                           [this, cycles, cb = std::move(cb)]() mutable {
                               computeLive(cycles, std::move(cb));
                           });
            }
            return;
        }
        if (snap && snap->draining()) {
            snap->park(agent, [this, cycles, cb = std::move(cb)]() mutable {
                computeLive(cycles, std::move(cb));
            });
            return;
        }
        computeLive(cycles, std::move(cb));
    });
}

void
WaveCtx::acquireLive(std::function<void()> cb)
{
    cu._tcp.acquire([this, cb = std::move(cb)] {
        if (snap)
            snap->record(agent, OpKind::GpuAcquire, {});
        cb();
    });
}

AwaitVoid
WaveCtx::acquire()
{
    return AwaitVoid([this](std::function<void()> cb) {
        if (rec)
            rec->gpuAcquire(agent);
        if (snap && snap->replaying()) {
            if (snap->replayNext(agent, OpKind::GpuAcquire)) {
                cb();
            } else {
                snap->park(agent, [this, cb = std::move(cb)]() mutable {
                    acquireLive(std::move(cb));
                });
            }
            return;
        }
        if (snap && snap->draining()) {
            snap->park(agent, [this, cb = std::move(cb)]() mutable {
                acquireLive(std::move(cb));
            });
            return;
        }
        acquireLive(std::move(cb));
    });
}

void
WaveCtx::releaseLive(std::function<void()> cb)
{
    cu._tcp.release([this, cb = std::move(cb)] {
        if (snap)
            snap->record(agent, OpKind::GpuRelease, {});
        cb();
    });
}

AwaitVoid
WaveCtx::release()
{
    return AwaitVoid([this](std::function<void()> cb) {
        if (rec)
            rec->gpuRelease(agent);
        if (snap && snap->replaying()) {
            if (snap->replayNext(agent, OpKind::GpuRelease)) {
                cb();
            } else {
                snap->park(agent, [this, cb = std::move(cb)]() mutable {
                    releaseLive(std::move(cb));
                });
            }
            return;
        }
        if (snap && snap->draining()) {
            snap->park(agent, [this, cb = std::move(cb)]() mutable {
                releaseLive(std::move(cb));
            });
            return;
        }
        releaseLive(std::move(cb));
    });
}

// --------------------------------------------------------------------
// GpuCu
// --------------------------------------------------------------------

GpuCu::GpuCu(std::string name, EventQueue &eq, ClockDomain clk,
             const TcpParams &tcp_params, TccController &tcc,
             SqcController &sqc, unsigned num_slots, unsigned lanes,
             bool inject_ifetches)
    : Clocked(std::move(name), eq, clk),
      _tcp(this->name() + ".tcp", eq, clk, tcp_params, tcc), _sqc(sqc),
      numSlots(num_slots), lanes(lanes), injectIfetches(inject_ifetches),
      _freeSlots(num_slots)
{
}

void
GpuCu::runWavefront(unsigned wg_id,
                    const std::function<SimTask(WaveCtx &)> &body,
                    std::function<void()> on_done,
                    std::uint64_t agent_key)
{
    panic_if(_freeSlots == 0, "%s: no free wavefront slot",
             name().c_str());
    --_freeSlots;
    auto ctx = std::make_unique<WaveCtx>(*this, wg_id, lanes);
    ctx->setSnapshot(snap, agent_key);
    ctx->setTraceRecorder(rec);
    WaveCtx *raw = ctx.get();
    live.push_back(std::move(ctx));

    SimTask task = body(*raw);
    task.start([this, raw, agent_key, on_done = std::move(on_done)] {
        if (rec)
            rec->agentEnd(agent_key);
        ++_freeSlots;
        for (auto it = live.begin(); it != live.end(); ++it) {
            if (it->get() == raw) {
                live.erase(it);
                break;
            }
        }
        on_done();
    });
}

void
GpuCu::replayWavefront(unsigned wg_id,
                       const std::function<SimTask(WaveCtx &)> &body,
                       std::uint64_t agent_key, bool live_slot,
                       std::function<void()> on_done)
{
    panic_if(!snap || !snap->replaying(),
             "%s: replayWavefront outside snapshot replay",
             name().c_str());
    if (!live_slot) {
        // The workgroup completed before the snapshot: its log is
        // complete, so the coroutine replays to completion here and
        // now, never touching a slot or the caches.
        auto ctx = std::make_unique<WaveCtx>(*this, wg_id, lanes);
        ctx->setSnapshot(snap, agent_key);
        bool done = false;
        SimTask task = body(*ctx);
        task.start([&done] { done = true; });
        panic_if(!done,
                 "%s: wg %u did not replay to completion although its "
                 "log was recorded as complete",
                 name().c_str(), wg_id);
        if (on_done)
            on_done();
        return;
    }

    // In-flight at the snapshot: occupy the recorded slot, consume the
    // partial log synchronously, park at the gate for releaseGates().
    panic_if(_freeSlots == 0, "%s: no free slot replaying wg %u",
             name().c_str(), wg_id);
    --_freeSlots;
    auto ctx = std::make_unique<WaveCtx>(*this, wg_id, lanes);
    ctx->setSnapshot(snap, agent_key);
    WaveCtx *raw = ctx.get();
    live.push_back(std::move(ctx));

    SimTask task = body(*raw);
    task.start([this, raw, on_done = std::move(on_done)] {
        ++_freeSlots;
        for (auto it = live.begin(); it != live.end(); ++it) {
            if (it->get() == raw) {
                live.erase(it);
                break;
            }
        }
        on_done();
    });
}

} // namespace hsc
