/**
 * @file
 * Run-metric extraction and table formatting shared by examples and
 * the benchmark harnesses.
 */

#ifndef HSC_CORE_RUN_REPORT_HH
#define HSC_CORE_RUN_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/hsa_system.hh"

namespace hsc
{

/** The metrics the paper's figures are built from. */
struct RunMetrics
{
    std::string config;     ///< SystemConfig::label
    std::string workload;
    bool ok = false;        ///< ran to completion and verified
    Cycles cycles = 0;      ///< simulated CPU cycles (Figs. 4 & 6)
    std::uint64_t memReads = 0;   ///< directory->memory reads (Fig. 5)
    std::uint64_t memWrites = 0;  ///< directory->memory writes (Fig. 5)
    std::uint64_t probes = 0;     ///< probes sent by the directory (Fig. 7)
    std::uint64_t llcHits = 0;
    std::uint64_t llcReads = 0;
    std::uint64_t dirRequests = 0;
    std::uint64_t dirEvictions = 0;
    std::uint64_t earlyResponses = 0;
    std::uint64_t readOnlyElided = 0;
    /** @{ CoherenceChecker activity (0 when the checker is off). */
    std::uint64_t transitionsChecked = 0;
    std::uint64_t blocksShadowed = 0;
    /** @} */
    /** One-line failure diagnosis when !ok (HsaSystem::failReason():
     *  checker violation, caught fatal error, or hang report). */
    std::string failReason;
    /** @{ Host-performance observations (DESIGN.md §9): wall-clock of
     *  run+verify and events executed.  Not simulation results — they
     *  jitter with the host — but the bench CSVs mirror them so event-
     *  kernel regressions show up next to the figures they slow down. */
    double hostMs = 0;
    std::uint64_t hostEvents = 0;
    /** @} */
    /** @{ PDES kernel info (zero when pdes is off): host worker
     *  threads the run used and the shard count it was split into. */
    unsigned pdesThreads = 0;
    unsigned pdesShards = 0;
    /** @} */
};

/** Collect the metrics of a completed run. */
RunMetrics collectMetrics(HsaSystem &sys, const std::string &workload,
                          bool ok);

/** Percentage saved vs a baseline value (positive = improvement). */
double pctSaved(double baseline, double value);

/**
 * Fixed-width table writer for the bench harnesses (prints the same
 * rows/series as the paper's figures).
 */
class TableWriter
{
  public:
    explicit TableWriter(std::ostream &os) : os(os) {}

    void header(const std::vector<std::string> &cols);
    void row(const std::vector<std::string> &cells);
    void rule();

    static std::string fmt(double v, int precision = 2);
    static std::string fmt(std::uint64_t v);

  private:
    std::ostream &os;
    std::vector<std::size_t> widths;
};

/** Dump a one-line summary of a run. */
void printRunSummary(std::ostream &os, const RunMetrics &m);

} // namespace hsc

#endif // HSC_CORE_RUN_REPORT_HH
