/**
 * @file
 * Whole-system configuration (Tables II and III of the paper) plus
 * the enhancement knobs, and the named presets used by the benches.
 */

#ifndef HSC_CORE_SYSTEM_CONFIG_HH
#define HSC_CORE_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "obs/obs_config.hh"
#include "protocol/cpu/core_pair.hh"
#include "protocol/dir/directory.hh"
#include "protocol/gpu/sqc.hh"
#include "protocol/gpu/tcc.hh"
#include "protocol/gpu/tcp.hh"
#include "mem/storage_fault.hh"
#include "mem/transport.hh"
#include "protocol/types.hh"
#include "sim/fault_injector.hh"

namespace hsc
{

/**
 * Checkpoint/restore (sim/snapshot.hh).  When enabled() the system
 * owns a SnapshotCoordinator: every agent operation is logged, each
 * trigger drains the system to quiesce and serializes it, and a run
 * may instead begin by restoring a snapshot file and resuming
 * bit-identically.
 */
struct CheckpointConfig
{
    /** Periodic checkpoint interval in CPU cycles (0 = none). */
    Cycles everyCycles = 0;

    /** One-shot checkpoint points, in CPU cycles from run start. */
    std::vector<Cycles> atCycles;

    /** File each checkpoint is written to, atomically (tmp + rename);
     *  "" keeps snapshots in memory only (lastSnapshotText()). */
    std::string outPath;

    /** When non-empty, run() restores this snapshot and resumes it
     *  instead of starting the registered threads fresh. */
    std::string restorePath;

    /** Re-emit the most recent successful checkpoint to
     *  outPath + ".lastgasp" when the run fails (watchdog trip, link
     *  degradation, crash fate), so post-mortem restore starts from
     *  the freshest state even if the main file was mid-cadence. */
    bool lastGasp = true;

    /** Create the coordinator with no automatic cadence, for
     *  HsaSystem::checkpointNow() users (checkpoint-anchored
     *  shrinking, tests). */
    bool manual = false;

    bool
    enabled() const
    {
        return everyCycles != 0 || !atCycles.empty() ||
               !restorePath.empty() || manual;
    }
};

/**
 * Full configuration of one simulated APU.
 * Defaults reproduce Tables II and III.
 */
/**
 * Memory-trace capture (src/trace).  When outPath is set, HsaSystem
 * owns a TraceRecorder writing there; a successful run() seals the
 * trace with its reference outcome (cycles + final heap image hash)
 * so replay can assert bit-identity.  Incompatible with restoring
 * from a checkpoint (a restored run would re-record replayed ops).
 */
struct TraceCaptureConfig
{
    std::string outPath;

    bool enabled() const { return !outPath.empty(); }
};

/**
 * Shard-per-thread parallel simulation (sim/shard.hh, DESIGN.md §14).
 * OFF by default — the sequential kernel stays bit-identical to the
 * committed golden.  ON partitions the system into one shard per
 * directory bank (with its memory channel), one per CorePair, one
 * for the whole GPU complex and one for DMA, each owning a private
 * calendar EventQueue, synchronized with conservative lookahead
 * windows of one cross-shard link latency.  Results are
 * deterministic and independent of the host thread count.
 *
 * The safety net shards with the kernel: the coherence checker runs
 * one bank per directory shard (cross-shard observations ride note
 * rings, merged deterministically), the link transport splits its
 * sender/receiver halves across the shard boundary, and wire-level
 * and storage fault injection draw from per-(seed, id) streams owned
 * by one shard each.  Only features that genuinely observe a single
 * global event order still reject PDES with a structured SimError:
 * observability/sampling, memory-trace capture, checkpoint/restore,
 * and storageFault.flipAtTick.
 */
struct PdesConfig
{
    bool enabled = false;

    /** Host worker threads; 0 = take HSC_PDES_THREADS from the
     *  environment, else hardware concurrency.  Clamped to the
     *  shard count at run time. */
    unsigned threads = 0;
};

struct SystemConfig
{
    std::string name = "system";

    // Table III.
    Topology topo{4, 1};          ///< 4 CorePairs (8 CPUs), 1 TCC
    unsigned numCus = 8;          ///< 8 CUs
    unsigned wavefrontsPerCu = 4; ///< 4 SIMDs per CU
    unsigned lanesPerWavefront = 16;
    std::uint64_t cpuMHz = 3500;
    std::uint64_t gpuMHz = 1100;

    // Table II cache configurations.
    CorePairParams corePair{};
    TcpParams tcp{};
    TccParams tcc{};
    SqcParams sqc{};
    LlcParams llc{};
    Cycles dirLatency = 20;
    Cycles llcLatency = 20;

    // Uncore timing (CPU cycles).
    Cycles linkLatency = 10;       ///< each directory link hop
    Cycles memLatency = 150;       ///< DRAM access
    Cycles memServicePeriod = 10;  ///< DRAM channel occupancy

    /** gem5 WB_L1 / WB_L2: GPU caches in write-back mode. */
    bool gpuWriteBack = false;

    /** The paper's enhancement knobs. */
    DirConfig dir{};

    /**
     * §VII future-work: number of address-interleaved directory banks
     * (distributed directory).  Power of two; 1 = the paper's single
     * monolithic directory.  Directory entries and LLC capacity are
     * split across the banks.
     */
    unsigned numDirBanks = 1;

    /**
     * Independent main-memory channels; directory bank b uses channel
     * (b % memChannels).  1 = the paper's single channel (stat name
     * ".mem" unchanged — bit-identical to golden); must divide
     * numDirBanks.  PDES requires memChannels == numDirBanks so each
     * bank shard owns its DRAM channel outright.
     */
    unsigned memChannels = 1;

    /** Directory occupancy: min cycles between transaction starts. */
    Cycles dirServicePeriod = 1;

    unsigned dmaMaxOutstanding = 8;

    /** Inject periodic instruction fetches to exercise L1I/SQC. */
    bool injectIfetches = true;

    std::uint64_t seed = 1;

    /** Watchdog: give up (with a HangReport) if nothing progresses
     *  for this many CPU cycles while work is outstanding. */
    Cycles watchdogCycles = 3'000'000;

    /** Fault injection: deterministic link jitter/spikes/dead links
     *  plus probabilistic drop/duplicate/corrupt (transport only). */
    FaultConfig fault{};

    /** Checkpoint/restore: drain-quiesce snapshots + kill-resume. */
    CheckpointConfig ckpt{};

    /**
     * Storage-fault model (mem/storage_fault.hh): deterministic bit
     * flips at rest, SECDED ECC, poison propagation, background
     * scrubbing and containment.  Off by default — when off, no
     * injector object exists and the run is bit-identical to golden.
     */
    StorageFaultConfig storageFault{};

    /**
     * Reliable link transport (mem/transport.hh): seq numbers,
     * checksums, cumulative acks, timeout retransmission with a
     * bounded retry budget, duplicate suppression.  Off by default —
     * when off, every wire-header field stays zero and the legacy
     * delivery path is bit-identical.
     */
    TransportConfig transport{};

    /**
     * Runtime coherence sanitizer (CoherenceChecker): observes every
     * transition and data transfer, enforcing SWMR, data-value,
     * permission and legal-event invariants.  Default ON (tests);
     * benches turn it off to measure unperturbed timing.
     */
    bool check = true;

    /** Test-only seeded protocol bug (propagated to controllers). */
    SeededBug bug{};

    /**
     * Memory-trace capture (src/trace, DESIGN.md §13): record every
     * CPU/GPU/DMA operation as it issues into an hsct binary trace,
     * replayable via TraceWorkload.  Off by default — when off, no
     * recorder object exists and the run is bit-identical to golden.
     */
    TraceCaptureConfig trace{};

    /**
     * Observability subsystem (src/obs): transaction-lifetime spans,
     * latency attribution, Chrome-trace export, interval sampling.
     * Off by default — when off, no tracer object exists and cycle
     * counts are bit-identical to a build without the subsystem.
     */
    ObsConfig obs{};

    /** Parallel (shard-per-thread) simulation kernel. */
    PdesConfig pdes{};

    /** Short human-readable tag for bench tables. */
    std::string label = "baseline";
};

/** @{ Named configurations used throughout the evaluation. */

/** The unmodified gem5 HSC model: stateless directory, WT LLC. */
SystemConfig baselineConfig();

/** §III-A early response on dirty probe acknowledgment. */
SystemConfig earlyRespConfig();

/** §III-B no write-back of clean victims to memory. */
SystemConfig noCleanVicToMemConfig();

/** §III-B1 variant: clean victims not cached in the LLC either. */
SystemConfig noCleanVicToLlcConfig();

/** §III-C write-back LLC. */
SystemConfig llcWriteBackConfig();

/** §III-C + gem5 useL3OnWT (TCC write-throughs go to the LLC). */
SystemConfig llcWriteBackUseL3Config();

/** §IV-A owner-tracking directory (on top of the §III stack). */
SystemConfig ownerTrackingConfig();

/** §IV-B full-map sharer-tracking directory. */
SystemConfig sharerTrackingConfig();

/** §IV-B limited-pointer sharer tracking with @p pointers entries. */
SystemConfig limitedPointerConfig(unsigned pointers);

/** @{ Big-machine presets (DESIGN.md §14): configurations far past
 *  the paper's 4 CorePairs / 8 CUs, sized for the PDES kernel.
 *  Owner tracking (the full-map sharer bitmap caps at 64 clients),
 *  one DRAM channel per directory bank, million-line directories. */

/** 64 CorePairs (128 CPU threads), 256 CUs, 8 banks, 1M-line dir. */
SystemConfig big64Config();

/** 128 CorePairs (256 CPU threads), 512 CUs, 16 banks, 2M-line dir. */
SystemConfig big128Config();
/** @} */

/** @} */

/** One row of the named-configuration table. */
struct NamedConfig
{
    const char *name;    ///< CLI name (hsc_run --config / -c)
    const char *summary; ///< one-liner for --list-configs
    SystemConfig (*make)();
};

/** Every named configuration, in CLI/bench order. */
const std::vector<NamedConfig> &namedConfigs();

/** Look up a preset by CLI name; throws SimError on unknown names. */
SystemConfig configByName(const std::string &name);

/**
 * Shrink every cache/directory so replacements and back-invalidations
 * happen in seconds-long tests (a torture configuration).
 */
void shrinkForTorture(SystemConfig &cfg);

} // namespace hsc

#endif // HSC_CORE_SYSTEM_CONFIG_HH
