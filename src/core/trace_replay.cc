#include "core/trace_replay.hh"

#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hh"
#include "obs/tracer.hh"
#include "sim/logging.hh"

namespace hsc
{

SystemConfig
configPresetByName(const std::string &preset, unsigned limited_pointers)
{
    if (preset == "baseline")
        return baselineConfig();
    if (preset == "earlyResp")
        return earlyRespConfig();
    if (preset == "noCleanVicToMem")
        return noCleanVicToMemConfig();
    if (preset == "noCleanVicToLlc")
        return noCleanVicToLlcConfig();
    if (preset == "llcWriteBack")
        return llcWriteBackConfig();
    if (preset == "llcWriteBackUseL3")
        return llcWriteBackUseL3Config();
    if (preset == "ownerTracking")
        return ownerTrackingConfig();
    if (preset == "sharerTracking")
        return sharerTrackingConfig();
    if (preset == "limitedPointer")
        return limitedPointerConfig(limited_pointers ? limited_pointers : 4);
    fatal("unknown config preset \"%s\"", preset.c_str());
}

SystemConfig
traceSystemConfig(const FailureTrace &trace)
{
    SystemConfig cfg =
        configPresetByName(trace.preset, trace.limitedPointers);
    if (trace.torture)
        shrinkForTorture(cfg);
    cfg.seed = trace.sysSeed;
    cfg.numDirBanks = trace.numDirBanks;
    cfg.gpuWriteBack = trace.gpuWriteBack;
    cfg.check = trace.check;
    cfg.watchdogCycles = trace.watchdogCycles;
    cfg.fault = trace.fault;
    cfg.transport = trace.transport;
    cfg.storageFault = trace.storage;
    cfg.bug = trace.bug;
    return cfg;
}

FailureTrace
captureFailureTrace(const std::string &preset, bool torture,
                    const SystemConfig &cfg,
                    const RandomTesterConfig &tester_cfg,
                    const TesterSchedule &schedule, const HsaSystem *sys,
                    const std::string &fail_reason)
{
    FailureTrace t;
    t.preset = preset;
    t.torture = torture;
    t.sysSeed = cfg.seed;
    t.numDirBanks = cfg.numDirBanks;
    t.gpuWriteBack = cfg.gpuWriteBack;
    t.check = cfg.check;
    t.watchdogCycles = cfg.watchdogCycles;
    t.fault = cfg.fault;
    t.transport = cfg.transport;
    t.storage = cfg.storageFault;
    t.bug = cfg.bug;
    if (cfg.dir.tracking == DirTracking::Sharers &&
        cfg.dir.maxSharerPointers) {
        t.limitedPointers = cfg.dir.maxSharerPointers;
    }
    t.tester = tester_cfg;
    t.schedule = schedule;
    t.failReason = fail_reason;
    if (sys && sys->checker())
        t.events = sys->checker()->traceTail(256);
    return t;
}

namespace
{

CheckerCtrl
checkerCtrlFromName(const std::string &name)
{
    for (CheckerCtrl c :
         {CheckerCtrl::CorePair, CheckerCtrl::Directory, CheckerCtrl::Llc,
          CheckerCtrl::Tcc, CheckerCtrl::Tcp, CheckerCtrl::Sqc,
          CheckerCtrl::Dma}) {
        if (name == checkerCtrlName(c))
            return c;
    }
    fatal("unknown checker controller kind \"%s\"", name.c_str());
}

JsonValue
faultToJson(const FaultConfig &f)
{
    JsonValue v = JsonValue::makeObject();
    v.set("enabled", JsonValue(f.enabled));
    v.set("seed", JsonValue(f.seed));
    v.set("maxJitter", JsonValue(std::uint64_t(f.maxJitter)));
    v.set("spikePercent", JsonValue(unsigned(f.spikePercent)));
    v.set("spikeCycles", JsonValue(std::uint64_t(f.spikeCycles)));
    v.set("dropPer10k", JsonValue(f.dropPer10k));
    v.set("dupPer10k", JsonValue(f.dupPer10k));
    v.set("corruptPer10k", JsonValue(f.corruptPer10k));
    JsonValue dead = JsonValue::makeArray();
    for (const std::string &l : f.deadLinks)
        dead.push(JsonValue(l));
    v.set("deadLinks", std::move(dead));
    return v;
}

FaultConfig
faultFromJson(const JsonValue &v)
{
    FaultConfig f;
    f.enabled = v.at("enabled").asBool();
    f.seed = v.at("seed").asUInt();
    f.maxJitter = Cycles(v.at("maxJitter").asUInt());
    f.spikePercent = unsigned(v.at("spikePercent").asUInt());
    f.spikeCycles = Cycles(v.at("spikeCycles").asUInt());
    // Lossy-wire knobs postdate the v1 format; absent keys mean 0.
    if (const JsonValue *d = v.find("dropPer10k"))
        f.dropPer10k = unsigned(d->asUInt());
    if (const JsonValue *d = v.find("dupPer10k"))
        f.dupPer10k = unsigned(d->asUInt());
    if (const JsonValue *c = v.find("corruptPer10k"))
        f.corruptPer10k = unsigned(c->asUInt());
    for (const JsonValue &l : v.at("deadLinks").items())
        f.deadLinks.push_back(l.asString());
    return f;
}

JsonValue
transportToJson(const TransportConfig &t)
{
    JsonValue v = JsonValue::makeObject();
    v.set("enabled", JsonValue(t.enabled));
    v.set("timeoutCycles", JsonValue(std::uint64_t(t.timeoutCycles)));
    v.set("backoffShiftCap", JsonValue(t.backoffShiftCap));
    v.set("retryBudget", JsonValue(t.retryBudget));
    v.set("ackDelayCycles", JsonValue(std::uint64_t(t.ackDelayCycles)));
    v.set("maxReorder", JsonValue(std::uint64_t(t.maxReorder)));
    return v;
}

TransportConfig
transportFromJson(const JsonValue &v)
{
    TransportConfig t;
    t.enabled = v.at("enabled").asBool();
    t.timeoutCycles = Cycles(v.at("timeoutCycles").asUInt());
    t.backoffShiftCap = unsigned(v.at("backoffShiftCap").asUInt());
    t.retryBudget = unsigned(v.at("retryBudget").asUInt());
    t.ackDelayCycles = Cycles(v.at("ackDelayCycles").asUInt());
    t.maxReorder = std::size_t(v.at("maxReorder").asUInt());
    return t;
}

JsonValue
storageToJson(const StorageFaultConfig &s)
{
    JsonValue v = JsonValue::makeObject();
    v.set("enabled", JsonValue(s.enabled));
    v.set("seed", JsonValue(s.seed));
    v.set("flipPer10kAccesses", JsonValue(s.flipPer10kAccesses));
    v.set("doublePer10k", JsonValue(s.doublePer10k));
    v.set("flipAtTick", JsonValue(std::uint64_t(s.flipAtTick)));
    v.set("ecc", JsonValue(s.ecc));
    v.set("scrubIntervalCycles",
          JsonValue(std::uint64_t(s.scrubIntervalCycles)));
    return v;
}

StorageFaultConfig
storageFromJson(const JsonValue &v)
{
    StorageFaultConfig s;
    s.enabled = v.at("enabled").asBool();
    s.seed = v.at("seed").asUInt();
    s.flipPer10kAccesses = unsigned(v.at("flipPer10kAccesses").asUInt());
    s.doublePer10k = unsigned(v.at("doublePer10k").asUInt());
    s.flipAtTick = Tick(v.at("flipAtTick").asUInt());
    s.ecc = v.at("ecc").asBool();
    s.scrubIntervalCycles = Cycles(v.at("scrubIntervalCycles").asUInt());
    return s;
}

JsonValue
bugToJson(const SeededBug &b)
{
    JsonValue v = JsonValue::makeObject();
    v.set("kind", JsonValue(std::string(seededBugKindName(b.kind))));
    v.set("addr", JsonValue(std::uint64_t(b.addr)));
    v.set("agent", JsonValue(std::int64_t(b.agent)));
    return v;
}

SeededBug
bugFromJson(const JsonValue &v)
{
    SeededBug b;
    b.kind = seededBugKindFromName(v.at("kind").asString());
    b.addr = Addr(v.at("addr").asUInt());
    b.agent = MachineId(v.at("agent").asInt());
    return b;
}

JsonValue
testerToJson(const RandomTesterConfig &t)
{
    JsonValue v = JsonValue::makeObject();
    v.set("numLocations", JsonValue(t.numLocations));
    v.set("roundsPerLocation", JsonValue(t.roundsPerLocation));
    v.set("numCpuThreads", JsonValue(t.numCpuThreads));
    v.set("numGpuWorkgroups", JsonValue(t.numGpuWorkgroups));
    v.set("useGpu", JsonValue(t.useGpu));
    v.set("useDma", JsonValue(t.useDma));
    v.set("allowDeviceScope", JsonValue(t.allowDeviceScope));
    v.set("seed", JsonValue(t.seed));
    return v;
}

RandomTesterConfig
testerFromJson(const JsonValue &v)
{
    RandomTesterConfig t;
    t.numLocations = unsigned(v.at("numLocations").asUInt());
    t.roundsPerLocation = unsigned(v.at("roundsPerLocation").asUInt());
    t.numCpuThreads = unsigned(v.at("numCpuThreads").asUInt());
    t.numGpuWorkgroups = unsigned(v.at("numGpuWorkgroups").asUInt());
    t.useGpu = v.at("useGpu").asBool();
    t.useDma = v.at("useDma").asBool();
    t.allowDeviceScope = v.at("allowDeviceScope").asBool();
    t.seed = v.at("seed").asUInt();
    return t;
}

JsonValue
opToJson(const TesterOp &op)
{
    JsonValue v = JsonValue::makeObject();
    v.set("loc", JsonValue(op.loc));
    v.set("agent", JsonValue(testerAgentName(op.agent)));
    v.set("ai", JsonValue(op.agentIndex));
    v.set("w", JsonValue(op.isWrite));
    if (op.isWrite)
        v.set("v", JsonValue(op.value));
    if (op.deviceScope)
        v.set("glc", JsonValue(true));
    return v;
}

TesterOp
opFromJson(const JsonValue &v)
{
    TesterOp op;
    op.loc = unsigned(v.at("loc").asUInt());
    op.agent = testerAgentFromName(v.at("agent").asString());
    op.agentIndex = unsigned(v.at("ai").asUInt());
    op.isWrite = v.at("w").asBool();
    if (const JsonValue *val = v.find("v"))
        op.value = val->asUInt();
    if (const JsonValue *glc = v.find("glc"))
        op.deviceScope = glc->asBool();
    return op;
}

JsonValue
eventToJson(const CheckerEvent &ev)
{
    JsonValue v = JsonValue::makeObject();
    v.set("tick", JsonValue(std::uint64_t(ev.tick)));
    v.set("kind", JsonValue(std::string(checkerCtrlName(ev.kind))));
    v.set("ctrl", JsonValue(ev.ctrl));
    v.set("addr", JsonValue(std::uint64_t(ev.addr)));
    v.set("state", JsonValue(ev.state));
    v.set("event", JsonValue(ev.event));
    return v;
}

CheckerEvent
eventFromJson(const JsonValue &v)
{
    CheckerEvent ev;
    ev.tick = Tick(v.at("tick").asUInt());
    ev.kind = checkerCtrlFromName(v.at("kind").asString());
    ev.ctrl = v.at("ctrl").asString();
    ev.addr = Addr(v.at("addr").asUInt());
    ev.state = v.at("state").asString();
    ev.event = v.at("event").asString();
    return ev;
}

} // namespace

JsonValue
failureTraceToJson(const FailureTrace &trace)
{
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue("hsc-failure-trace-v1"));
    JsonValue sys = JsonValue::makeObject();
    sys.set("preset", JsonValue(trace.preset));
    sys.set("limitedPointers", JsonValue(trace.limitedPointers));
    sys.set("torture", JsonValue(trace.torture));
    sys.set("seed", JsonValue(trace.sysSeed));
    sys.set("numDirBanks", JsonValue(trace.numDirBanks));
    sys.set("gpuWriteBack", JsonValue(trace.gpuWriteBack));
    sys.set("check", JsonValue(trace.check));
    sys.set("watchdogCycles",
            JsonValue(std::uint64_t(trace.watchdogCycles)));
    sys.set("fault", faultToJson(trace.fault));
    sys.set("transport", transportToJson(trace.transport));
    sys.set("storage", storageToJson(trace.storage));
    sys.set("bug", bugToJson(trace.bug));
    v.set("system", std::move(sys));
    v.set("tester", testerToJson(trace.tester));
    JsonValue ops = JsonValue::makeArray();
    for (const TesterOp &op : trace.schedule.ops)
        ops.push(opToJson(op));
    v.set("schedule", std::move(ops));
    v.set("failReason", JsonValue(trace.failReason));
    JsonValue evs = JsonValue::makeArray();
    for (const CheckerEvent &ev : trace.events)
        evs.push(eventToJson(ev));
    v.set("events", std::move(evs));
    return v;
}

FailureTrace
failureTraceFromJson(const JsonValue &v)
{
    const JsonValue *fmt = v.find("format");
    fatal_if(!fmt || fmt->asString() != "hsc-failure-trace-v1",
             "not an hsc failure trace");
    FailureTrace t;
    const JsonValue &sys = v.at("system");
    t.preset = sys.at("preset").asString();
    t.limitedPointers = unsigned(sys.at("limitedPointers").asUInt());
    t.torture = sys.at("torture").asBool();
    t.sysSeed = sys.at("seed").asUInt();
    t.numDirBanks = unsigned(sys.at("numDirBanks").asUInt());
    t.gpuWriteBack = sys.at("gpuWriteBack").asBool();
    t.check = sys.at("check").asBool();
    t.watchdogCycles = Cycles(sys.at("watchdogCycles").asUInt());
    t.fault = faultFromJson(sys.at("fault"));
    // The transport block postdates the v1 format; absent = disabled.
    if (const JsonValue *tp = sys.find("transport"))
        t.transport = transportFromJson(*tp);
    // So does the storage-fault block.
    if (const JsonValue *st = sys.find("storage"))
        t.storage = storageFromJson(*st);
    t.bug = bugFromJson(sys.at("bug"));
    t.tester = testerFromJson(v.at("tester"));
    for (const JsonValue &op : v.at("schedule").items())
        t.schedule.ops.push_back(opFromJson(op));
    t.failReason = v.at("failReason").asString();
    for (const JsonValue &ev : v.at("events").items())
        t.events.push_back(eventFromJson(ev));
    return t;
}

void
writeFailureTrace(const FailureTrace &trace, const std::string &path)
{
    std::ofstream os(path);
    fatal_if(!os, "cannot open \"%s\" for writing", path.c_str());
    failureTraceToJson(trace).write(os, 2);
    os << '\n';
    fatal_if(!os, "write to \"%s\" failed", path.c_str());
}

FailureTrace
readFailureTrace(const std::string &path)
{
    std::ifstream is(path);
    fatal_if(!is, "cannot open \"%s\"", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return failureTraceFromJson(parseJson(buf.str()));
}

ReplayResult
replayTrace(const FailureTrace &trace)
{
    return replayTrace(trace, std::string());
}

ReplayResult
replayTrace(const FailureTrace &trace, const std::string &chrome_out)
{
    SystemConfig cfg = traceSystemConfig(trace);
    if (!chrome_out.empty())
        cfg.obs.enabled = true;
    HsaSystem sys(cfg);
    RandomTester tester(sys, trace.tester, trace.schedule);
    bool ok = tester.run();
    ReplayResult res;
    res.reproduced = !ok;
    res.failReason = sys.failReason();
    if (res.failReason.empty() && !tester.failures().empty())
        res.failReason = tester.failures().front();
    res.failures = tester.failures();
    if (sys.checker())
        res.transitionsChecked = sys.checker()->transitionsChecked();
    if (!chrome_out.empty() && sys.tracer()) {
        fatal_if(!writeChromeTrace(*sys.tracer(), sys.sampler(),
                                   chrome_out),
                 "cannot write chrome trace to \"%s\"",
                 chrome_out.c_str());
    }
    return res;
}

} // namespace hsc
