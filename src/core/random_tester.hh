/**
 * @file
 * RandomTester — a gem5-Ruby-random-tester-style protocol exerciser.
 *
 * Every test location gets a deterministic schedule of turns; each
 * turn is owned by one agent (a CPU thread, a GPU wavefront, or the
 * DMA engine driven by a host thread) and either writes a new expected
 * value or reads and verifies the current one.  Agents discover their
 * turns by polling the location's turn counter *through the coherence
 * protocol itself* (CPU loads, GPU system-scope atomics), so a
 * coherence bug shows up as a verification mismatch or a watchdog
 * deadlock.  Turn counter and data share a cache line, maximising
 * invalidation ping-pong across L2s, TCC and the directory.
 */

#ifndef HSC_CORE_RANDOM_TESTER_HH
#define HSC_CORE_RANDOM_TESTER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/hsa_system.hh"

namespace hsc
{

/** Tester parameters. */
struct RandomTesterConfig
{
    unsigned numLocations = 24;
    unsigned roundsPerLocation = 6;
    unsigned numCpuThreads = 6;
    unsigned numGpuWorkgroups = 4;
    bool useGpu = true;
    bool useDma = true;
    /** Allow device-scope (GLC) GPU ops — only sound with a
     *  write-through TCC. */
    bool allowDeviceScope = false;
    std::uint64_t seed = 12345;
};

/**
 * Drives one HsaSystem with randomized coherent traffic and verifies
 * every read plus the final memory image.
 */
class RandomTester
{
  public:
    RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg);
    ~RandomTester();

    /** Set up agents, run the system, verify.  True on full success. */
    bool run();

    const std::vector<std::string> &failures() const;

    /**
     * FNV-1a hash over every location's final (turn count, value) as
     * read coherently by the verification pass.  Two runs of the same
     * schedule must produce the same hash regardless of link timing —
     * the jitter sweep's invariant.  Valid after run().
     */
    std::uint64_t imageHash() const;

  private:
    struct State;
    HsaSystem &sys;
    RandomTesterConfig cfg;
    std::shared_ptr<State> st;
};

/** Result of a jitter sweep: one tester run per fault schedule. */
struct JitterSweepResult
{
    bool ok = false;                         ///< all runs passed + agreed
    std::vector<std::uint64_t> imageHashes;  ///< one per schedule
    std::vector<std::string> failures;       ///< aggregated diagnostics
};

/**
 * Run the same RandomTester schedule (same @p tcfg seed) on fresh
 * systems built from @p base, once per fault schedule in @p schedules,
 * asserting identical final memory images.  Link timing must never
 * change the protocol's outcome.
 */
JitterSweepResult runJitterSweep(const SystemConfig &base,
                                 const RandomTesterConfig &tcfg,
                                 const std::vector<FaultConfig> &schedules);

} // namespace hsc

#endif // HSC_CORE_RANDOM_TESTER_HH
