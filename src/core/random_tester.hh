/**
 * @file
 * RandomTester — a gem5-Ruby-random-tester-style protocol exerciser.
 *
 * Every test location gets a deterministic schedule of turns; each
 * turn is owned by one agent (a CPU thread, a GPU wavefront, or the
 * DMA engine driven by a host thread) and either writes a new expected
 * value or reads and verifies the current one.  Agents discover their
 * turns by polling the location's turn counter *through the coherence
 * protocol itself* (CPU loads, GPU system-scope atomics), so a
 * coherence bug shows up as a verification mismatch or a watchdog
 * deadlock.  Turn counter and data share a cache line, maximising
 * invalidation ping-pong across L2s, TCC and the directory.
 */

#ifndef HSC_CORE_RANDOM_TESTER_HH
#define HSC_CORE_RANDOM_TESTER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/hsa_system.hh"

namespace hsc
{

/** Tester parameters. */
struct RandomTesterConfig
{
    unsigned numLocations = 24;
    unsigned roundsPerLocation = 6;
    unsigned numCpuThreads = 6;
    unsigned numGpuWorkgroups = 4;
    bool useGpu = true;
    bool useDma = true;
    /** Allow device-scope (GLC) GPU ops — only sound with a
     *  write-through TCC. */
    bool allowDeviceScope = false;
    std::uint64_t seed = 12345;
};

/**
 * Drives one HsaSystem with randomized coherent traffic and verifies
 * every read plus the final memory image.
 */
class RandomTester
{
  public:
    RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg);
    ~RandomTester();

    /** Set up agents, run the system, verify.  True on full success. */
    bool run();

    const std::vector<std::string> &failures() const;

  private:
    struct State;
    HsaSystem &sys;
    RandomTesterConfig cfg;
    std::shared_ptr<State> st;
};

} // namespace hsc

#endif // HSC_CORE_RANDOM_TESTER_HH
