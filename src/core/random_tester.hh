/**
 * @file
 * RandomTester — a gem5-Ruby-random-tester-style protocol exerciser.
 *
 * Every test location gets a deterministic schedule of turns; each
 * turn is owned by one agent (a CPU thread, a GPU wavefront, or the
 * DMA engine driven by a host thread) and either writes a new expected
 * value or reads and verifies the current one.  Agents discover their
 * turns by polling the location's turn counter *through the coherence
 * protocol itself* (CPU loads, GPU system-scope atomics), so a
 * coherence bug shows up as a verification mismatch or a watchdog
 * deadlock.  Turn counter and data share a cache line, maximising
 * invalidation ping-pong across L2s, TCC and the directory.
 *
 * The op schedule is an explicit first-class value (TesterSchedule):
 * it can be generated from a seed, dumped into a failure trace,
 * delta-minimized (schedule_shrink.hh) and replayed.  Read
 * expectations, turn indices and the final image are all *derived*
 * from op order, so any subsequence of a schedule is itself a valid,
 * self-consistent schedule — the property shrinking relies on.
 */

#ifndef HSC_CORE_RANDOM_TESTER_HH
#define HSC_CORE_RANDOM_TESTER_HH

#include <memory>
#include <string>
#include <vector>

#include "core/hsa_system.hh"

namespace hsc
{

/** Tester parameters. */
struct RandomTesterConfig
{
    unsigned numLocations = 24;
    unsigned roundsPerLocation = 6;
    unsigned numCpuThreads = 6;
    unsigned numGpuWorkgroups = 4;
    bool useGpu = true;
    bool useDma = true;
    /** Allow device-scope (GLC) GPU ops — only sound with a
     *  write-through TCC. */
    bool allowDeviceScope = false;
    std::uint64_t seed = 12345;
};

/** Which engine executes a tester op. */
enum class TesterAgent : std::uint8_t
{
    Cpu,  ///< CPU thread @c agentIndex
    Gpu,  ///< GPU workgroup @c agentIndex
    Dma,  ///< the DMA engine (driven by the host thread)
};

const char *testerAgentName(TesterAgent a);
TesterAgent testerAgentFromName(const std::string &name);

/**
 * One operation of a tester schedule.  Reads carry no expected value:
 * expectations are derived from the most recent write to the same
 * location *within the schedule being run*, so shrunk subsequences
 * stay self-consistent.
 */
struct TesterOp
{
    unsigned loc = 0;
    TesterAgent agent = TesterAgent::Cpu;
    unsigned agentIndex = 0;       ///< CPU thread / GPU workgroup
    bool isWrite = false;
    std::uint64_t value = 0;       ///< written value (writes only)
    bool deviceScope = false;      ///< GPU GLC instead of system scope
};

/** An explicit, ordered (per location) op schedule. */
struct TesterSchedule
{
    std::vector<TesterOp> ops;

    bool empty() const { return ops.empty(); }
    std::size_t size() const { return ops.size(); }
};

/** Generate the schedule @p cfg's seed deterministically expands to. */
TesterSchedule buildTesterSchedule(const RandomTesterConfig &cfg);

/**
 * Per-location state left behind by a completed schedule — the anchor
 * a resumed (suffix) schedule continues from.  Captured with
 * RandomTester::resumeState() after a successful runSchedule(); a
 * tester constructed with one derives turn indices and read
 * expectations as absolute continuations instead of from zero, and
 * reuses the anchor's location addresses rather than allocating.
 */
struct TesterResumeState
{
    Addr base = 0;                         ///< location array base
    std::vector<unsigned> turnBase;        ///< executed turns per loc
    std::vector<std::uint64_t> valueBase;  ///< current value per loc

    bool valid() const { return base != 0; }
};

/**
 * Drives one HsaSystem with randomized coherent traffic and verifies
 * every read plus the final memory image.
 */
class RandomTester
{
  public:
    /** Run the schedule derived from @p cfg's seed. */
    RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg);

    /** Run an explicit (e.g. shrunk or replayed) schedule. */
    RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg,
                 TesterSchedule schedule);

    /** Resume @p schedule on top of the state @p resume describes
     *  (checkpoint-anchored shrinking, sim/snapshot.hh). */
    RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg,
                 TesterSchedule schedule, TesterResumeState resume);

    ~RandomTester();

    /** Set up agents, run the system, verify.  True on full success. */
    bool run();

    /** run() minus the final-image pass: set up agents and run the
     *  schedule, leaving the system quiesced right at the schedule
     *  boundary — where a checkpoint anchors it.  Inline read checks
     *  still land in failures(). */
    bool runSchedule();

    /** The final-image verification pass (a second system run).  Only
     *  meaningful after a successful runSchedule().  True when no
     *  failure — inline or final — was recorded. */
    bool verifyImage();

    /** The per-location end state of the schedule just run — valid
     *  after a successful runSchedule(). */
    TesterResumeState resumeState() const;

    const std::vector<std::string> &failures() const;

    /** The schedule this tester executes. */
    const TesterSchedule &schedule() const { return sched; }

    /**
     * FNV-1a hash over every location's final (turn count, value) as
     * read coherently by the verification pass.  Two runs of the same
     * schedule must produce the same hash regardless of link timing —
     * the jitter sweep's invariant.  Valid after run().
     */
    std::uint64_t imageHash() const;

  private:
    struct State;
    HsaSystem &sys;
    RandomTesterConfig cfg;
    TesterSchedule sched;
    TesterResumeState resume;
    std::shared_ptr<State> st;
};

/** Result of a jitter sweep: one tester run per fault schedule. */
struct JitterSweepResult
{
    bool ok = false;                         ///< all runs passed + agreed
    std::vector<std::uint64_t> imageHashes;  ///< one per schedule
    std::vector<std::string> failures;       ///< aggregated diagnostics
};

/**
 * Run the same RandomTester schedule (same @p tcfg seed) on fresh
 * systems built from @p base, once per fault schedule in @p schedules,
 * asserting identical final memory images.  Link timing must never
 * change the protocol's outcome.
 */
JitterSweepResult runJitterSweep(const SystemConfig &base,
                                 const RandomTesterConfig &tcfg,
                                 const std::vector<FaultConfig> &schedules);

} // namespace hsc

#endif // HSC_CORE_RANDOM_TESTER_HH
