/**
 * @file
 * GpuCu and WaveCtx — the compute-unit and wavefront execution model.
 *
 * A CU hosts wavefront slots (one per SIMD, Table III) fronted by its
 * TCP.  GPU kernels are coroutines over WaveCtx: vector memory
 * operations coalesce the 16 lanes' addresses into unique 64-byte
 * blocks before they reach the TCP, scoped atomics ride the GLC/SLC
 * paths, and acquire/release map to the VIPER scoped-synchronisation
 * operations.
 */

#ifndef HSC_CORE_GPU_CU_HH
#define HSC_CORE_GPU_CU_HH

#include <map>
#include <memory>
#include <vector>

#include "core/task.hh"
#include "protocol/gpu/sqc.hh"
#include "protocol/gpu/tcp.hh"

namespace hsc
{

class GpuCu;
class SnapshotCoordinator;
class TraceRecorder;

/**
 * Execution context of one wavefront (= one workgroup in this model).
 */
class WaveCtx
{
  public:
    WaveCtx(GpuCu &cu, unsigned workgroup_id, unsigned lanes);

    unsigned workgroupId() const { return wgId; }
    unsigned laneCount() const { return lanes; }

    /**
     * The memory-operation awaiters hold their parameters — and, for
     * the vector ops, the per-block coalescing state that previously
     * lived in shared_ptr'd heap blocks — in the coroutine frame and
     * complete through pointer-sized callbacks, so issuing one never
     * heap-allocates (DESIGN.md §9).
     */
    struct VloadOp : AwaitOpBase<std::vector<std::uint64_t>, VloadOp>
    {
        WaveCtx *ctx;
        Addr base;
        unsigned stride;
        unsigned size;
        std::map<Addr, DataBlock> blocks{};
        unsigned pendingBlocks = 0;
        void start();
        void issueLive();
        void issue();
        void finish();
    };

    struct VstoreOp : AwaitVoidOpBase<VstoreOp>
    {
        struct Blk
        {
            DataBlock data;
            ByteMask mask = 0;
        };
        WaveCtx *ctx;
        Addr base;
        unsigned stride;
        unsigned size;
        std::vector<std::uint64_t> values;
        std::map<Addr, Blk> blocks{};
        unsigned pendingBlocks = 0;
        void start();
        void issueLive();
        void issue();
    };

    struct LoadOp : AwaitOpBase<std::uint64_t, LoadOp>
    {
        WaveCtx *ctx;
        Addr addr;
        unsigned size;
        Scope scope;
        void start();
        void issueLive();
    };

    struct StoreOp : AwaitVoidOpBase<StoreOp>
    {
        WaveCtx *ctx;
        Addr addr;
        std::uint64_t value;
        unsigned size;
        Scope scope;
        void start();
        void issueLive();
    };

    struct AmoOp : AwaitOpBase<std::uint64_t, AmoOp>
    {
        WaveCtx *ctx;
        Addr addr;
        AtomicOp op;
        std::uint64_t operand;
        std::uint64_t operand2;
        unsigned size;
        Scope scope;
        void start();
        void issueLive();
    };

    /**
     * Vector load: lane i reads @p size bytes at @p base + i*stride.
     * Lane addresses are coalesced into unique blocks.
     */
    VloadOp
    vload(Addr base, unsigned stride, unsigned size)
    {
        return {{}, this, base, stride, size};
    }

    /** Vector store of per-lane @p values. */
    VstoreOp
    vstore(Addr base, unsigned stride, unsigned size,
           std::vector<std::uint64_t> values)
    {
        return {{}, this, base, stride, size, std::move(values)};
    }

    /** @{ Scalar scoped operations. */
    LoadOp
    load(Addr addr, unsigned size = 4, Scope scope = Scope::Wave)
    {
        return {{}, this, addr, size, scope};
    }

    StoreOp
    store(Addr addr, std::uint64_t value, unsigned size = 4,
          Scope scope = Scope::Wave)
    {
        return {{}, this, addr, value, size, scope};
    }

    AmoOp
    atomic(Addr addr, AtomicOp op, std::uint64_t operand,
           std::uint64_t operand2 = 0, unsigned size = 4,
           Scope scope = Scope::System)
    {
        return {{}, this, addr, op, operand, operand2, size, scope};
    }
    /** @} */

    /** Spend @p cycles GPU cycles of local computation. */
    AwaitVoid compute(Cycles cycles);

    /** Scoped acquire: invalidate the TCP. */
    AwaitVoid acquire();

    /** Scoped release: drain TCP + TCC dirty data to system scope. */
    AwaitVoid release();

    /** Checkpoint wiring: coordinator + this wavefront's agent key
     *  (waveAgentKey of the kernel's launch ordinal and this
     *  workgroup).  Set by GpuCu when the wavefront starts. */
    void
    setSnapshot(SnapshotCoordinator *s, std::uint64_t key)
    {
        snap = s;
        agent = key;
    }

    /** This wavefront's agent key: waveAgentKey(launch ordinal, wg).
     *  Also the trace stream the wavefront records to / replays from. */
    std::uint64_t agentKey() const { return agent; }

    /** Trace capture wiring (null = off); set by GpuCu. */
    void setTraceRecorder(TraceRecorder *r) { rec = r; }

  private:
    void maybeIfetch(std::function<void()> then);

    /** Advance the ifetch cadence during log replay without issuing. */
    void advanceIfetchReplay();

    /** @{ Live (non-replay) paths of the gated std::function ops. */
    void computeLive(Cycles cycles, std::function<void()> cb);
    void acquireLive(std::function<void()> cb);
    void releaseLive(std::function<void()> cb);
    /** @} */

    /** The CU's TCP (GpuCu befriends WaveCtx, not its awaiters). */
    TcpController &tcp();

    GpuCu &cu;
    const unsigned wgId;
    const unsigned lanes;
    SnapshotCoordinator *snap = nullptr;
    TraceRecorder *rec = nullptr;
    std::uint64_t agent = 0;
    Addr codePc;
    std::uint64_t opCount = 0;
};

/**
 * One compute unit: wavefront slots + TCP, sharing the TCC and SQC.
 */
class GpuCu : public Clocked
{
  public:
    GpuCu(std::string name, EventQueue &eq, ClockDomain clk,
          const TcpParams &tcp_params, TccController &tcc,
          SqcController &sqc, unsigned num_slots, unsigned lanes,
          bool inject_ifetches);

    unsigned freeSlots() const { return _freeSlots; }
    unsigned totalSlots() const { return numSlots; }

    /**
     * Run @p body as workgroup @p wg_id in a free slot.  @p on_done
     * fires when the wavefront coroutine completes.  @p agent_key is
     * the wavefront's snapshot agent key (unused when checkpointing
     * is off).
     */
    void runWavefront(unsigned wg_id,
                      const std::function<SimTask(WaveCtx &)> &body,
                      std::function<void()> on_done,
                      std::uint64_t agent_key = 0);

    /**
     * Snapshot restore: re-run @p body consuming its recorded op log.
     * With @p live_slot false the log is complete (the workgroup had
     * finished before the snapshot) and the coroutine must run to
     * completion synchronously, touching no slot.  With @p live_slot
     * true the workgroup was in flight at the snapshot: it takes a
     * slot on THIS CU (the one recorded in the checkpoint), consumes
     * its partial log, and parks at the coordinator's gate.
     */
    void replayWavefront(unsigned wg_id,
                         const std::function<SimTask(WaveCtx &)> &body,
                         std::uint64_t agent_key, bool live_slot,
                         std::function<void()> on_done);

    /** Checkpoint wiring (null = disabled). */
    void setSnapshot(SnapshotCoordinator *s) { snap = s; }

    /** Trace capture wiring (null = off): every wavefront this CU
     *  starts records its ops, and an AgentEnd at completion. */
    void setTraceRecorder(TraceRecorder *r) { rec = r; }

    TcpController &tcp() { return _tcp; }
    SqcController &sqc() { return _sqc; }

  private:
    friend class WaveCtx;

    TcpController _tcp;
    SqcController &_sqc;
    const unsigned numSlots;
    const unsigned lanes;
    const bool injectIfetches;
    SnapshotCoordinator *snap = nullptr;
    TraceRecorder *rec = nullptr;
    unsigned _freeSlots;

    /** Contexts of in-flight wavefronts (freed on completion). */
    std::vector<std::unique_ptr<WaveCtx>> live;
};

} // namespace hsc

#endif // HSC_CORE_GPU_CU_HH
