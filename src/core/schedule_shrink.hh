/**
 * @file
 * Delta-minimization of failing RandomTester schedules.
 *
 * Given a (SystemConfig, RandomTesterConfig, TesterSchedule) triple
 * whose run fails, shrinkSchedule() applies the classic ddmin
 * chunk-removal loop: repeatedly try dropping contiguous chunks of
 * ops (halving chunk size on a fixed point) and keep any subsequence
 * that still fails.  Because the tester derives read expectations and
 * the final image from op order, every subsequence is a valid
 * schedule, so "still fails" really isolates the bug rather than a
 * self-inflicted inconsistency.  Each candidate runs on a fresh
 * HsaSystem — runs are deterministic, so the result is too.
 *
 * shrinkScheduleAnchored() adds the checkpoint anchor (DESIGN.md §11):
 * when a long schedule fails late, it finds the largest passing
 * prefix, seals that prefix's quiesced state into a snapshot once,
 * and then ddmins only the suffix — every candidate restores the
 * snapshot (a synchronous coroutine replay, no event simulation)
 * instead of re-simulating the prefix from tick 0.
 */

#ifndef HSC_CORE_SCHEDULE_SHRINK_HH
#define HSC_CORE_SCHEDULE_SHRINK_HH

#include <string>

#include "core/random_tester.hh"

namespace hsc
{

/** Outcome of one shrink. */
struct ShrinkResult
{
    bool originalFailed = false;   ///< the full schedule did fail
    TesterSchedule minimal;        ///< smallest failing subsequence found
    std::string failReason;        ///< diagnosis of the minimal run
    std::size_t originalOps = 0;
    std::size_t testsRun = 0;      ///< candidate schedules executed
    std::size_t anchorOps = 0;     ///< anchored: prefix ops replayed
                                   ///< from the snapshot (0 = none)
};

/**
 * ddmin @p schedule against fresh systems built from @p sys_cfg.
 * "Failing" means RandomTester::run() returns false (verification
 * mismatch, checker violation, caught fatal, or hang).
 *
 * @param max_tests safety valve on candidate runs.
 */
ShrinkResult shrinkSchedule(const SystemConfig &sys_cfg,
                            const RandomTesterConfig &tester_cfg,
                            const TesterSchedule &schedule,
                            std::size_t max_tests = 600);

/**
 * Checkpoint-anchored ddmin: isolate the failure to the suffix after
 * the largest passing prefix, snapshot that prefix once to
 * @p anchor_path, and shrink only the suffix with every candidate
 * resuming from the snapshot.  The result's minimal schedule is the
 * (unshrunk) prefix plus the minimized suffix — still a valid,
 * standalone failing schedule.  Falls back to plain shrinkSchedule()
 * when no prefix passes (the failure starts at op 0).
 */
ShrinkResult shrinkScheduleAnchored(const SystemConfig &sys_cfg,
                                    const RandomTesterConfig &tester_cfg,
                                    const TesterSchedule &schedule,
                                    const std::string &anchor_path,
                                    std::size_t max_tests = 600);

} // namespace hsc

#endif // HSC_CORE_SCHEDULE_SHRINK_HH
