/**
 * @file
 * Minimal C++20 coroutine machinery for workload threads.
 *
 * CPU threads and GPU wavefronts are written as coroutines that
 * co_await asynchronous memory operations; the event-driven
 * controllers resume them from completion callbacks.  This keeps the
 * ten CHAI-like workloads readable as straight-line code while the
 * timing is fully event-driven.
 */

#ifndef HSC_CORE_TASK_HH
#define HSC_CORE_TASK_HH

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace hsc
{

/**
 * A fire-and-forget coroutine.  Created suspended; start() installs a
 * completion callback and resumes it.  The frame self-destructs at
 * completion, so the handle must not be touched after start().
 */
class SimTask
{
  public:
    struct promise_type
    {
        std::function<void()> onComplete;

        SimTask
        get_return_object()
        {
            return SimTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }

        void
        return_void()
        {
            if (onComplete)
                onComplete();
        }

        void
        unhandled_exception()
        {
            // Propagate out of resume(): surfaces through the event
            // loop as a test/bench failure.
            std::rethrow_exception(std::current_exception());
        }
    };

    explicit SimTask(std::coroutine_handle<promise_type> h) : h(h) {}

    /** Install the completion hook and begin execution. */
    void
    start(std::function<void()> on_complete = nullptr)
    {
        h.promise().onComplete = std::move(on_complete);
        h.resume();
    }

  private:
    std::coroutine_handle<promise_type> h;
};

/**
 * Awaitable adapter over a callback-style asynchronous operation
 * returning a T.  Safe against operations that complete synchronously.
 */
template <typename T>
class Await
{
  public:
    using Starter = std::function<void(std::function<void(T)>)>;

    explicit Await(Starter s) : starter(std::move(s)) {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        // The awaiter lives in the coroutine frame, so its address is
        // stable until resumption: the completion callback captures
        // [this] only and fits std::function's small-object buffer (no
        // heap allocation per awaited operation).
        handle = h;
        inStart = true;
        starter([this](T v) { complete(std::move(v)); });
        inStart = false;
        return !firedSync; // false => completed synchronously, resume now
    }

    T await_resume() { return std::move(result); }

  private:
    void
    complete(T v)
    {
        result = std::move(v);
        if (inStart)
            firedSync = true;
        else
            handle.resume();
    }

    Starter starter;
    std::coroutine_handle<> handle;
    T result{};
    bool inStart = false;
    bool firedSync = false;
};

/** Awaitable adapter for void-returning asynchronous operations. */
class AwaitVoid
{
  public:
    using Starter = std::function<void(std::function<void()>)>;

    explicit AwaitVoid(Starter s) : starter(std::move(s)) {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        // See Await: [this]-only capture, inline in std::function.
        handle = h;
        inStart = true;
        starter([this] { complete(); });
        inStart = false;
        return !firedSync;
    }

    void await_resume() {}

  private:
    void
    complete()
    {
        if (inStart)
            firedSync = true;
        else
            handle.resume();
    }

    Starter starter;
    std::coroutine_handle<> handle;
    bool inStart = false;
    bool firedSync = false;
};

/**
 * CRTP base for allocation-free awaiters over callback-style
 * operations returning a T.
 *
 * Await/AwaitVoid type-erase their starter through std::function,
 * which heap-allocates whenever the operation's parameters exceed the
 * 16-byte small-object buffer — two allocations per CPU/GPU memory
 * operation on the simulation hot path (DESIGN.md §9).  Hot-path
 * operations instead derive an aggregate that holds its parameters
 * directly in the awaiter — which lives in the coroutine frame — and
 * implement start(), issuing the operation with completion callbacks
 * that capture only the awaiter pointer and therefore stay inside the
 * small-object buffer.
 *
 * Derived must be an aggregate whose first (base) initializer is {}
 * and must define void start() arranging for complete(v) to be called
 * exactly once; synchronous completion from inside start() is safe.
 */
template <typename T, typename Derived>
struct AwaitOpBase
{
    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        handle = h;
        inStart = true;
        static_cast<Derived *>(this)->start();
        inStart = false;
        return !firedSync;
    }

    T await_resume() { return std::move(result); }

    void
    complete(T v)
    {
        result = std::move(v);
        if (inStart)
            firedSync = true;
        else
            handle.resume();
    }

    std::coroutine_handle<> handle;
    T result{};
    bool inStart = false;
    bool firedSync = false;
};

/** AwaitOpBase for void-returning operations. */
template <typename Derived>
struct AwaitVoidOpBase
{
    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        handle = h;
        inStart = true;
        static_cast<Derived *>(this)->start();
        inStart = false;
        return !firedSync;
    }

    void await_resume() {}

    void
    complete()
    {
        if (inStart)
            firedSync = true;
        else
            handle.resume();
    }

    std::coroutine_handle<> handle;
    bool inStart = false;
    bool firedSync = false;
};

} // namespace hsc

#endif // HSC_CORE_TASK_HH
