/**
 * @file
 * Minimal C++20 coroutine machinery for workload threads.
 *
 * CPU threads and GPU wavefronts are written as coroutines that
 * co_await asynchronous memory operations; the event-driven
 * controllers resume them from completion callbacks.  This keeps the
 * ten CHAI-like workloads readable as straight-line code while the
 * timing is fully event-driven.
 */

#ifndef HSC_CORE_TASK_HH
#define HSC_CORE_TASK_HH

#include <coroutine>
#include <exception>
#include <functional>
#include <utility>

namespace hsc
{

/**
 * A fire-and-forget coroutine.  Created suspended; start() installs a
 * completion callback and resumes it.  The frame self-destructs at
 * completion, so the handle must not be touched after start().
 */
class SimTask
{
  public:
    struct promise_type
    {
        std::function<void()> onComplete;

        SimTask
        get_return_object()
        {
            return SimTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_never final_suspend() noexcept { return {}; }

        void
        return_void()
        {
            if (onComplete)
                onComplete();
        }

        void
        unhandled_exception()
        {
            // Propagate out of resume(): surfaces through the event
            // loop as a test/bench failure.
            std::rethrow_exception(std::current_exception());
        }
    };

    explicit SimTask(std::coroutine_handle<promise_type> h) : h(h) {}

    /** Install the completion hook and begin execution. */
    void
    start(std::function<void()> on_complete = nullptr)
    {
        h.promise().onComplete = std::move(on_complete);
        h.resume();
    }

  private:
    std::coroutine_handle<promise_type> h;
};

/**
 * Awaitable adapter over a callback-style asynchronous operation
 * returning a T.  Safe against operations that complete synchronously.
 */
template <typename T>
class Await
{
  public:
    using Starter = std::function<void(std::function<void(T)>)>;

    explicit Await(Starter s) : starter(std::move(s)) {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        bool *in_start = &inStart;
        bool *fired = &firedSync;
        inStart = true;
        starter([this, h, in_start, fired](T v) {
            result = std::move(v);
            if (*in_start)
                *fired = true;
            else
                h.resume();
        });
        inStart = false;
        return !firedSync; // false => completed synchronously, resume now
    }

    T await_resume() { return std::move(result); }

  private:
    Starter starter;
    T result{};
    bool inStart = false;
    bool firedSync = false;
};

/** Awaitable adapter for void-returning asynchronous operations. */
class AwaitVoid
{
  public:
    using Starter = std::function<void(std::function<void()>)>;

    explicit AwaitVoid(Starter s) : starter(std::move(s)) {}

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h)
    {
        bool *in_start = &inStart;
        bool *fired = &firedSync;
        inStart = true;
        starter([h, in_start, fired]() {
            if (*in_start)
                *fired = true;
            else
                h.resume();
        });
        inStart = false;
        return !firedSync;
    }

    void await_resume() {}

  private:
    Starter starter;
    bool inStart = false;
    bool firedSync = false;
};

} // namespace hsc

#endif // HSC_CORE_TASK_HH
