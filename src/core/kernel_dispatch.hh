/**
 * @file
 * GPU kernel dispatcher.
 *
 * Kernels are dispatched one at a time (a single HSA queue, as the
 * CHAI benchmarks use); each kernel's workgroups are assigned to free
 * wavefront slots across the CUs as they drain.  Kernel boundaries
 * carry the HSA memory-scope semantics: acquire (TCP invalidate + SQC
 * flush) at launch, release (TCP/TCC write-back drain) at completion.
 */

#ifndef HSC_CORE_KERNEL_DISPATCH_HH
#define HSC_CORE_KERNEL_DISPATCH_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/gpu_cu.hh"

namespace hsc
{

/** A GPU kernel: a wavefront coroutine body and a grid size. */
struct GpuKernel
{
    std::string name;
    unsigned numWorkgroups;
    std::function<SimTask(WaveCtx &)> body;
};

/**
 * Single-queue kernel dispatcher over a set of CUs.
 */
class KernelDispatcher
{
  public:
    KernelDispatcher(std::vector<GpuCu *> cus, StatRegistry &reg);

    /** Enqueue @p kernel; @p on_complete fires after its release. */
    void launch(GpuKernel kernel, std::function<void()> on_complete);

    bool idle() const { return !running && pending.empty(); }
    std::uint64_t kernelsLaunched() const { return statKernels.value(); }

  private:
    struct Active
    {
        GpuKernel kernel;
        std::function<void()> onComplete;
        unsigned nextWg = 0;
        unsigned doneWgs = 0;
        bool finishing = false;
    };

    void startNext();
    void fill();
    void finishKernel();

    std::vector<GpuCu *> cus;
    std::deque<Active> pending;
    bool running = false;
    Active current;

    Counter statKernels, statWorkgroups;
};

} // namespace hsc

#endif // HSC_CORE_KERNEL_DISPATCH_HH
