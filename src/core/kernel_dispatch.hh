/**
 * @file
 * GPU kernel dispatcher.
 *
 * Kernels are dispatched one at a time (a single HSA queue, as the
 * CHAI benchmarks use); each kernel's workgroups are assigned to free
 * wavefront slots across the CUs as they drain.  Kernel boundaries
 * carry the HSA memory-scope semantics: acquire (TCP invalidate + SQC
 * flush) at launch, release (TCP/TCC write-back drain) at completion.
 */

#ifndef HSC_CORE_KERNEL_DISPATCH_HH
#define HSC_CORE_KERNEL_DISPATCH_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/gpu_cu.hh"

namespace hsc
{

class JsonValue;
class SnapshotCoordinator;

/** A GPU kernel: a wavefront coroutine body and a grid size. */
struct GpuKernel
{
    std::string name;
    unsigned numWorkgroups;
    std::function<SimTask(WaveCtx &)> body;
};

/**
 * Single-queue kernel dispatcher over a set of CUs.
 */
class KernelDispatcher
{
  public:
    KernelDispatcher(std::vector<GpuCu *> cus, StatRegistry &reg);

    /**
     * Enqueue @p kernel; @p on_complete fires after its release.
     * @p agent_key identifies the launching agent for checkpoint
     * replay (unused when checkpointing is off).
     * @return the kernel's global launch ordinal (the basis of its
     *         wavefronts' agent keys, and what trace capture records).
     */
    std::uint64_t launch(GpuKernel kernel,
                         std::function<void()> on_complete,
                         std::uint64_t agent_key = 0);

    bool idle() const { return !running && pending.empty(); }
    std::uint64_t kernelsLaunched() const { return statKernels.value(); }

    /** Checkpoint wiring (null = disabled). */
    void setSnapshot(SnapshotCoordinator *s) { snap = s; }

    /** @{ Snapshot hooks.  serialize requires quiesce (no release in
     *  flight); restore loads the dispatch cursor consulted by the
     *  replay-path launches. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    struct Active
    {
        GpuKernel kernel;
        std::function<void()> onComplete;
        std::uint64_t ordinal = 0;    ///< global launch ordinal
        unsigned nextWg = 0;
        unsigned doneWgs = 0;
        std::vector<bool> wgDone;     ///< per-workgroup completion
        std::vector<std::uint8_t> wgCu; ///< CU index per started wg
        bool finishing = false;
    };

    void startNext();
    void fill();
    void finishKernel();

    /** Replay-mode launch: consult the restored dispatch cursor. */
    std::uint64_t replayLaunch(GpuKernel kernel,
                               std::function<void()> on_complete,
                               std::uint64_t agent_key);

    std::vector<GpuCu *> cus;
    std::deque<Active> pending;
    bool running = false;
    Active current;

    SnapshotCoordinator *snap = nullptr;
    std::uint64_t localNextOrdinal = 0; ///< used when snap is null

    /** @{ Restored dispatch cursor (valid during replay only). */
    bool repRunning = false;
    std::uint64_t repCompleted = 0;  ///< kernels fully done pre-snapshot
    std::uint64_t repOrdinal = 0;    ///< ordinal of the in-flight kernel
    unsigned repNextWg = 0;
    std::vector<bool> repWgDone;
    std::vector<std::uint8_t> repWgCu;
    std::vector<std::uint64_t> repPending;
    /** @} */

    Counter statKernels, statWorkgroups;
};

} // namespace hsc

#endif // HSC_CORE_KERNEL_DISPATCH_HH
