/**
 * @file
 * DmaEngine: block-copy convenience layer over the DMA controller.
 */

#ifndef HSC_CORE_DMA_ENGINE_HH
#define HSC_CORE_DMA_ENGINE_HH

#include "core/task.hh"
#include "protocol/dma/dma_controller.hh"

namespace hsc
{

class CpuCtx;
class ShardGroup;
class SnapshotCoordinator;
class TraceRecorder;

/**
 * memcpy-style engine issuing pipelined block reads/writes through the
 * DMA controller (which keeps coherence via the directory, Fig. 3).
 *
 * When checkpointing is enabled every awaited DMA operation must be
 * attributed to the CPU thread that awaits it (the CpuCtx& overloads)
 * so the op lands in that agent's replay log; the unattributed
 * variants panic in that configuration.
 */
class DmaEngine
{
  public:
    explicit DmaEngine(DmaController &ctrl) : ctrl(ctrl) {}

    /**
     * Copy @p bytes (block-aligned) from @p src to @p dst; @p cb fires
     * when every write has completed.
     */
    void copy(Addr dst, Addr src, std::uint64_t bytes,
              std::function<void()> cb);

    /** Awaitable variant for coroutine hosts. */
    AwaitVoid
    copyAsync(Addr dst, Addr src, std::uint64_t bytes)
    {
        return AwaitVoid([this, dst, src, bytes](std::function<void()> cb) {
            requireUnattributedOk("copyAsync");
            copy(dst, src, bytes, std::move(cb));
        });
    }

    /** Awaitable single-block read. */
    Await<DataBlock>
    readBlock(Addr addr)
    {
        return Await<DataBlock>(
            [this, addr](std::function<void(DataBlock)> cb) {
                requireUnattributedOk("readBlock");
                routeRead(addr, [cb = std::move(cb)](
                                    const DataBlock &b) { cb(b); });
            });
    }

    /** Awaitable single-block write. */
    AwaitVoid
    writeBlock(Addr addr, const DataBlock &data, ByteMask mask = FullMask)
    {
        return AwaitVoid(
            [this, addr, data, mask](std::function<void()> cb) {
                requireUnattributedOk("writeBlock");
                routeWrite(addr, data, mask, std::move(cb));
            });
    }

    /** @{ Attributed variants: the op is logged against (and replayed
     *  from) @p cpu's agent log when checkpointing is enabled.  These
     *  behave exactly like the unattributed forms otherwise. */
    Await<DataBlock> readBlock(CpuCtx &cpu, Addr addr);
    AwaitVoid writeBlock(CpuCtx &cpu, Addr addr, const DataBlock &data,
                         ByteMask mask = FullMask);
    AwaitVoid copyAsync(CpuCtx &cpu, Addr dst, Addr src,
                        std::uint64_t bytes);
    /** @} */

    /** Checkpoint wiring (null = disabled). */
    void setSnapshot(SnapshotCoordinator *s) { snap = s; }

    /** Trace capture wiring (null = off).  Like checkpointing, the
     *  capture needs every DMA op attributed to its issuing thread,
     *  so the unattributed variants panic while it's on. */
    void setTraceRecorder(TraceRecorder *r) { rec = r; }

    /** PDES doorbell wiring (DESIGN.md §14): the DMA controller lives
     *  on its own shard, so every operation issued from another shard
     *  hops there and its completion hops back — one lookahead window
     *  of latency each way, deterministically.  Null = direct calls
     *  (sequential mode). */
    void setPdesRouting(ShardGroup *g, unsigned dma_shard)
    {
        pdesShards = g;
        pdesDmaShard = dma_shard;
    }

    DmaController &controller() { return ctrl; }

  private:
    void requireUnattributedOk(const char *what) const;

    /** @{ Shard-routing choke points: forward to the controller on
     *  this shard, or doorbell to the DMA shard under PDES. */
    void routeRead(Addr addr, std::function<void(DataBlock)> cb);
    void routeWrite(Addr addr, const DataBlock &data, ByteMask mask,
                    std::function<void()> cb);
    /** @} */

    /** @{ Live (non-replay) paths of the attributed operations. */
    void readLive(SnapshotCoordinator *s, std::uint64_t key, Addr addr,
                  std::function<void(DataBlock)> cb);
    void writeLive(SnapshotCoordinator *s, std::uint64_t key, Addr addr,
                   const DataBlock &data, ByteMask mask,
                   std::function<void()> cb);
    void copyLive(SnapshotCoordinator *s, std::uint64_t key, Addr dst,
                  Addr src, std::uint64_t bytes, std::function<void()> cb);
    /** @} */

    DmaController &ctrl;
    SnapshotCoordinator *snap = nullptr;
    TraceRecorder *rec = nullptr;
    ShardGroup *pdesShards = nullptr;
    unsigned pdesDmaShard = 0;
};

} // namespace hsc

#endif // HSC_CORE_DMA_ENGINE_HH
