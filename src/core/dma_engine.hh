/**
 * @file
 * DmaEngine: block-copy convenience layer over the DMA controller.
 */

#ifndef HSC_CORE_DMA_ENGINE_HH
#define HSC_CORE_DMA_ENGINE_HH

#include "core/task.hh"
#include "protocol/dma/dma_controller.hh"

namespace hsc
{

/**
 * memcpy-style engine issuing pipelined block reads/writes through the
 * DMA controller (which keeps coherence via the directory, Fig. 3).
 */
class DmaEngine
{
  public:
    explicit DmaEngine(DmaController &ctrl) : ctrl(ctrl) {}

    /**
     * Copy @p bytes (block-aligned) from @p src to @p dst; @p cb fires
     * when every write has completed.
     */
    void copy(Addr dst, Addr src, std::uint64_t bytes,
              std::function<void()> cb);

    /** Awaitable variant for coroutine hosts. */
    AwaitVoid
    copyAsync(Addr dst, Addr src, std::uint64_t bytes)
    {
        return AwaitVoid([this, dst, src, bytes](std::function<void()> cb) {
            copy(dst, src, bytes, std::move(cb));
        });
    }

    /** Awaitable single-block read. */
    Await<DataBlock>
    readBlock(Addr addr)
    {
        return Await<DataBlock>(
            [this, addr](std::function<void(DataBlock)> cb) {
                ctrl.readBlock(addr, [cb = std::move(cb)](
                                         const DataBlock &b) { cb(b); });
            });
    }

    /** Awaitable single-block write. */
    AwaitVoid
    writeBlock(Addr addr, const DataBlock &data, ByteMask mask = FullMask)
    {
        return AwaitVoid(
            [this, addr, data, mask](std::function<void()> cb) {
                ctrl.writeBlock(addr, data, mask, std::move(cb));
            });
    }

    DmaController &controller() { return ctrl; }

  private:
    DmaController &ctrl;
};

} // namespace hsc

#endif // HSC_CORE_DMA_ENGINE_HH
