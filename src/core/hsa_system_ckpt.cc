/**
 * @file
 * HsaSystem checkpoint/restore machinery (DESIGN.md §11): trigger
 * scheduling, the quiesce predicate, payload assembly, and the
 * restore-and-replay sequence.  Split from hsa_system.cc to keep the
 * construction/run logic readable.
 */

#include "core/hsa_system.hh"

#include <algorithm>
#include <string>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"

namespace hsc
{

void
HsaSystem::armCheckpoints()
{
    if (!snapCoord)
        return;
    if (ckptArmedOnce) {
        // The cadence belongs to the first (main) run only:
        // verification passes and reruns on the same system must not
        // overwrite outPath with post-run state.
        ckptActive = false;
        return;
    }
    ckptArmedOnce = true;
    ckptActive = true;
    ckptPeriodTicks =
        cfg.ckpt.everyCycles ? cpuClk.toTicks(cfg.ckpt.everyCycles) : 0;
    ckptNextPeriodic =
        ckptPeriodTicks ? runStartTick + ckptPeriodTicks : 0;
    ckptPendingTicks.clear();
    for (Cycles c : cfg.ckpt.atCycles)
        ckptPendingTicks.push_back(runStartTick + cpuClk.toTicks(c));
    std::sort(ckptPendingTicks.begin(), ckptPendingTicks.end());
    scheduleCkptTrigger();
}

void
HsaSystem::scheduleCkptTrigger()
{
    if (!snapCoord)
        return;
    Tick t = MaxTick;
    if (!ckptPendingTicks.empty())
        t = std::min(t, ckptPendingTicks.front());
    if (ckptPeriodTicks)
        t = std::min(t, ckptNextPeriodic);
    if (t == MaxTick)
        return;
    t = std::max(t, eq.curTick());
    // Late priority, no progress flag: the trigger neither perturbs
    // same-tick protocol ordering nor keeps a wedged run alive.
    eq.schedule(t,
                [this] {
                    if (!running || !ckptActive || !snapCoord ||
                        snapCoord->draining() || snapCoord->replaying())
                        return;
                    snapCoord->beginDrain();
                },
                EventPriority::Late);
}

bool
HsaSystem::quiescedNow() const
{
    // Progress-tagged events cover every in-flight memory operation;
    // the transports additionally owe delayed acks through
    // non-progress timer events, so both must be clear before the
    // persistent state is truly self-contained.
    if (eq.progressPending() != 0)
        return false;
    auto links_idle = [](const auto &bufs) {
        for (const auto &mb : bufs) {
            if (mb->transportEnabled() && !mb->transport()->idle())
                return false;
        }
        return true;
    };
    return links_idle(toDir) && links_idle(fromDir);
}

bool
HsaSystem::crashNow() const
{
    if (!faultInjector)
        return false;
    const FaultConfig &f = faultInjector->config();
    if (f.crashAtTick && eq.curTick() - runStartTick >= f.crashAtTick)
        return true;
    return f.crashAfterEvents != 0 &&
           eq.numExecuted() >= f.crashAfterEvents;
}

void
HsaSystem::serializeStats(JsonValue &out) const
{
    JsonValue counters = JsonValue::makeObject();
    for (const auto &kv : registry.snapshot())
        counters.set(kv.first, JsonValue(kv.second));
    out.set("counters", std::move(counters));

    JsonValue hists = JsonValue::makeObject();
    for (const auto &nh : registry.histogramList()) {
        const Histogram *h = nh.second;
        JsonValue hj = JsonValue::makeObject();
        JsonValue buckets = JsonValue::makeArray();
        for (std::uint64_t b : h->raw())
            buckets.push(JsonValue(b));
        hj.set("buckets", std::move(buckets));
        hj.set("count", JsonValue(h->samples()));
        hj.set("sum", JsonValue(h->sum()));
        hj.set("max", JsonValue(h->max()));
        hists.set(nh.first, std::move(hj));
    }
    out.set("histograms", std::move(hists));
}

void
HsaSystem::restoreStats(const JsonValue &in)
{
    StatRegistry::Snapshot values;
    for (const auto &kv : in.at("counters").members())
        values[kv.first] = kv.second.asUInt();
    registry.restoreCounters(values);

    auto hists = registry.histogramList();
    const JsonValue &hj = in.at("histograms");
    if (hj.members().size() != hists.size()) {
        throw SimError("snapshot histogram set does not match this "
                       "configuration",
                       "snapshot");
    }
    for (auto &nh : hists) {
        const JsonValue *e = hj.find(nh.first);
        if (!e) {
            throw SimError("snapshot is missing histogram '" +
                               nh.first + "'",
                           "snapshot");
        }
        std::vector<std::uint64_t> buckets;
        for (const JsonValue &b : e->at("buckets").items())
            buckets.push_back(b.asUInt());
        nh.second->restore(buckets, e->at("count").asUInt(),
                           e->at("sum").asUInt(), e->at("max").asUInt());
    }
}

std::string
HsaSystem::buildSnapshotText() const
{
    JsonValue p = JsonValue::makeObject();

    // Config fingerprint: enough structure to reject a restore into a
    // differently-shaped system before any component chokes on it.
    JsonValue conf = JsonValue::makeObject();
    conf.set("name", JsonValue(cfg.name));
    conf.set("corePairs", JsonValue(cfg.topo.numCorePairs));
    conf.set("cus", JsonValue(cfg.numCus));
    conf.set("dirBanks", JsonValue(std::uint64_t(dirs.size())));
    // cpuCtxs, not threadFns: a post-run checkpoint (anchored
    // shrinking) outlives the run's threadFns.clear().
    conf.set("threads", JsonValue(std::uint64_t(cpuCtxs.size())));
    conf.set("seed", JsonValue(cfg.seed));
    p.set("config", std::move(conf));

    p.set("tick", JsonValue(eq.curTick()));
    p.set("runStart", JsonValue(runStartTick));
    p.set("liveTasks", JsonValue(std::uint64_t(liveTasks)));

    auto section = [](const auto &component) {
        JsonValue j = JsonValue::makeObject();
        component.serialize(j);
        return j;
    };

    // One channel keeps the legacy flat "mem" key, so old snapshots
    // stay readable; extra channels get numbered siblings.
    p.set("mem", section(*mems[0]));
    for (std::size_t ch = 1; ch < mems.size(); ++ch)
        p.set("mem" + std::to_string(ch), section(*mems[ch]));
    JsonValue dirsj = JsonValue::makeArray();
    for (const auto &d : dirs)
        dirsj.push(section(*d));
    p.set("dirs", std::move(dirsj));
    JsonValue cpj = JsonValue::makeArray();
    for (const auto &cp : corePairs)
        cpj.push(section(*cp));
    p.set("corePairs", std::move(cpj));
    p.set("tcc", section(*tccCtrl));
    p.set("sqc", section(*sqcCtrl));
    JsonValue tcps = JsonValue::makeArray();
    for (const auto &cu : cus)
        tcps.push(section(cu->tcp()));
    p.set("tcps", std::move(tcps));
    p.set("dma", section(*dmaCtrl));
    p.set("dispatcher", section(*kernelDispatcher));

    JsonValue links = JsonValue::makeObject();
    auto link_arr = [&](const auto &bufs) {
        JsonValue a = JsonValue::makeArray();
        for (const auto &mb : bufs)
            a.push(section(*mb));
        return a;
    };
    links.set("toDir", link_arr(toDir));
    links.set("fromDir", link_arr(fromDir));
    p.set("links", std::move(links));

    if (checkerPtr)
        p.set("checker", section(*checkerPtr));
    if (faultInjector)
        p.set("fault", section(*faultInjector));
    if (storagePtr)
        p.set("storage", section(*storagePtr));

    JsonValue logs = JsonValue::makeObject();
    snapCoord->serializeLogs(logs);
    p.set("logs", std::move(logs));

    JsonValue cs = JsonValue::makeObject();
    cs.set("nextPeriodic", JsonValue(ckptNextPeriodic));
    JsonValue pend = JsonValue::makeArray();
    for (Tick t : ckptPendingTicks)
        pend.push(JsonValue(t));
    cs.set("pending", std::move(pend));
    p.set("ckpt", std::move(cs));

    JsonValue stats = JsonValue::makeObject();
    serializeStats(stats);
    p.set("stats", std::move(stats));

    return wrapSnapshot(p);
}

void
HsaSystem::doCheckpoint()
{
    // Advance the trigger schedule first: the serialized cursor must
    // describe the checkpoints still to come, so a restored run
    // re-arms the identical cadence.
    while (!ckptPendingTicks.empty() &&
           ckptPendingTicks.front() <= eq.curTick())
        ckptPendingTicks.erase(ckptPendingTicks.begin());
    if (ckptPeriodTicks) {
        while (ckptNextPeriodic <= eq.curTick())
            ckptNextPeriodic += ckptPeriodTicks;
    }
    // Stats are serialized *inside* the snapshot, so bump the
    // checkpoint counters before sealing: a resumed run then continues
    // the count exactly where the uninterrupted one had it.
    ++statCkpts;
    statCkptOps.restore(snapCoord->loggedOps());
    lastCkptTick = eq.curTick();
    lastSnapText = buildSnapshotText();
    if (!cfg.ckpt.outPath.empty())
        writeSnapshotFile(cfg.ckpt.outPath, lastSnapText);
}

std::string
HsaSystem::checkpointNow()
{
    fatal_if(!snapCoord,
             "%s: checkpointNow with checkpointing disabled",
             cfg.name.c_str());
    // A just-finished run may still owe transport acks; run those
    // timer events out before sealing.
    if (!quiescedNow()) {
        eq.runUntil([this] { return quiescedNow(); },
                    eq.curTick() + cpuClk.toTicks(Cycles(1'000'000)));
    }
    panic_if(!quiescedNow(), "%s: checkpointNow outside quiesce",
             cfg.name.c_str());
    doCheckpoint();
    return lastSnapText;
}

void
HsaSystem::writeLastGasp()
{
    if (!snapCoord || !cfg.ckpt.lastGasp || lastSnapText.empty() ||
        cfg.ckpt.outPath.empty())
        return;
    try {
        writeSnapshotFile(cfg.ckpt.outPath + ".lastgasp", lastSnapText);
    } catch (const SimError &e) {
        warn("%s: last-gasp checkpoint write failed: %s",
             cfg.name.c_str(), e.what());
    }
}

bool
HsaSystem::restoreFrom(const std::string &path)
{
    try {
        std::string text = readSnapshotFile(path);
        JsonValue p = openSnapshot(text);

        const JsonValue &conf = p.at("config");
        auto require = [&](const char *key, std::uint64_t want) {
            std::uint64_t got = conf.at(key).asUInt();
            if (got != want) {
                throw SimError(std::string("snapshot ") + key + " = " +
                                   std::to_string(got) +
                                   " does not match this system (" +
                                   std::to_string(want) + ")",
                               "snapshot");
            }
        };
        require("corePairs", cfg.topo.numCorePairs);
        require("cus", cfg.numCus);
        require("dirBanks", dirs.size());
        require("threads", threadFns.size());

        mems[0]->restore(p.at("mem"));
        for (std::size_t ch = 1; ch < mems.size(); ++ch)
            mems[ch]->restore(p.at("mem" + std::to_string(ch)));
        const JsonValue &dirsj = p.at("dirs");
        for (std::size_t b = 0; b < dirs.size(); ++b)
            dirs[b]->restore(dirsj.at(b));
        const JsonValue &cpj = p.at("corePairs");
        for (std::size_t i = 0; i < corePairs.size(); ++i)
            corePairs[i]->restore(cpj.at(i));
        tccCtrl->restore(p.at("tcc"));
        sqcCtrl->restore(p.at("sqc"));
        const JsonValue &tcps = p.at("tcps");
        for (std::size_t i = 0; i < cus.size(); ++i)
            cus[i]->tcp().restore(tcps.at(i));
        dmaCtrl->restore(p.at("dma"));
        kernelDispatcher->restore(p.at("dispatcher"));

        const JsonValue &links = p.at("links");
        auto restore_links = [&](const char *key, auto &bufs) {
            const JsonValue &a = links.at(key);
            if (a.size() != bufs.size()) {
                throw SimError(std::string("snapshot has ") +
                                   std::to_string(a.size()) + " " + key +
                                   " links, this system has " +
                                   std::to_string(bufs.size()),
                               "snapshot");
            }
            for (std::size_t i = 0; i < bufs.size(); ++i)
                bufs[i]->restore(a.at(i));
        };
        restore_links("toDir", toDir);
        restore_links("fromDir", fromDir);

        if (checkerPtr) {
            const JsonValue *c = p.find("checker");
            if (!c) {
                throw SimError("snapshot has no checker section but "
                               "the coherence checker is enabled",
                               "snapshot");
            }
            checkerPtr->restore(*c);
        }
        if (faultInjector) {
            const JsonValue *f = p.find("fault");
            if (!f) {
                throw SimError("snapshot has no fault-injector section "
                               "but fault injection is enabled",
                               "snapshot");
            }
            faultInjector->restore(*f);
        }
        if (storagePtr) {
            const JsonValue *s = p.find("storage");
            if (!s) {
                throw SimError("snapshot has no storage-fault section "
                               "but the storage-fault model is enabled",
                               "snapshot");
            }
            storagePtr->restore(*s);
        }

        // Replay: re-register the same coroutines and run each one
        // against its op log, synchronously and in tid order.  No
        // events are scheduled — every logged op completes inline —
        // so the clock may legally still be behind the checkpoint
        // tick here.
        snapCoord->beginReplay(p.at("logs"));
        liveTasks = static_cast<unsigned>(threadFns.size());
        for (std::size_t i = 0; i < threadFns.size(); ++i) {
            SimTask task = threadFns[i](*cpuCtxs[i]);
            task.start([this] { --liveTasks; });
        }
        snapCoord->endReplay();

        std::uint64_t live = p.at("liveTasks").asUInt();
        if (liveTasks != live) {
            throw SimError("replay finished with " +
                               std::to_string(liveTasks) +
                               " live tasks, snapshot recorded " +
                               std::to_string(live),
                           "snapshot");
        }

        // Stats last: any counter poked during replay is overwritten
        // by the checkpointed values.
        restoreStats(p.at("stats"));

        ckptPeriodTicks = cfg.ckpt.everyCycles
                              ? cpuClk.toTicks(cfg.ckpt.everyCycles)
                              : 0;
        const JsonValue &cs = p.at("ckpt");
        ckptNextPeriodic = cs.at("nextPeriodic").asUInt();
        ckptPendingTicks.clear();
        for (const JsonValue &t : cs.at("pending").items())
            ckptPendingTicks.push_back(t.asUInt());

        runStartTick = p.at("runStart").asUInt();
        lastCkptTick = p.at("tick").asUInt();
        lastSnapText = std::move(text);
        ckptArmedOnce = true;
        ckptActive = true;

        eq.jumpTo(lastCkptTick);
        snapCoord->releaseGates(eq);
        scheduleCkptTrigger();
        return true;
    } catch (const SimError &e) {
        lastError = e.what();
        warn("%s: snapshot restore failed: %s", cfg.name.c_str(),
             e.what());
        return false;
    }
}

} // namespace hsc
