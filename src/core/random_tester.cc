#include "core/random_tester.hh"

#include <sstream>

#include "sim/hash.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace hsc
{

const char *
testerAgentName(TesterAgent a)
{
    switch (a) {
      case TesterAgent::Cpu: return "cpu";
      case TesterAgent::Gpu: return "gpu";
      case TesterAgent::Dma: return "dma";
    }
    return "?";
}

TesterAgent
testerAgentFromName(const std::string &name)
{
    for (TesterAgent a :
         {TesterAgent::Cpu, TesterAgent::Gpu, TesterAgent::Dma}) {
        if (name == testerAgentName(a))
            return a;
    }
    fatal("unknown tester agent \"%s\"", name.c_str());
}

TesterSchedule
buildTesterSchedule(const RandomTesterConfig &cfg)
{
    Rng rng(cfg.seed);
    TesterSchedule sched;
    unsigned n_wgs = cfg.useGpu ? cfg.numGpuWorkgroups : 0;

    // Every round is one write by a random agent followed by 1-2
    // verifying reads by random agents.
    for (unsigned loc = 0; loc < cfg.numLocations; ++loc) {
        // Device-scope (GLC) operations are only sound among GPU
        // agents sharing the TCC: a CPU store can upgrade E->M
        // silently and never probe the TCC, so a GLC poll of
        // CPU-written data may legitimately spin on stale data
        // (VIPER scoped semantics).  Some locations are therefore
        // GPU-only and exercised entirely at device scope.
        bool device_loc = cfg.allowDeviceScope && cfg.useGpu &&
                          n_wgs > 0 && rng.chance(25);
        for (unsigned round = 0; round < cfg.roundsPerLocation; ++round) {
            unsigned n_reads = 1 + unsigned(rng.below(2));
            for (unsigned op = 0; op < 1 + n_reads; ++op) {
                TesterOp t;
                t.loc = loc;
                t.isWrite = (op == 0);
                if (t.isWrite)
                    t.value = rng.next() | 1; // nonzero
                t.deviceScope = device_loc;

                if (device_loc) {
                    t.agent = TesterAgent::Gpu;
                    t.agentIndex = unsigned(rng.below(n_wgs));
                    sched.ops.push_back(t);
                    continue;
                }
                // Pick the owning agent.
                unsigned kinds = 1 + (cfg.useGpu ? 1 : 0) +
                                 (cfg.useDma ? 1 : 0);
                unsigned pick = unsigned(rng.below(kinds));
                if (pick == 1 && cfg.useGpu) {
                    t.agent = TesterAgent::Gpu;
                    t.agentIndex = unsigned(rng.below(n_wgs));
                } else if (pick >= 1 && cfg.useDma &&
                           (pick == 2 || !cfg.useGpu)) {
                    t.agent = TesterAgent::Dma;
                } else {
                    t.agent = TesterAgent::Cpu;
                    t.agentIndex = unsigned(rng.below(cfg.numCpuThreads));
                }
                sched.ops.push_back(t);
            }
        }
    }
    return sched;
}

namespace
{

/** One op bound to its derived turn index and expected value. */
struct Turn
{
    unsigned loc;
    unsigned idx;          ///< position in the location's sequence
    bool isWrite;
    std::uint64_t value;   ///< value to write / expected on read
    bool deviceScope;      ///< GPU only: GLC instead of SLC
};

constexpr unsigned TurnOffset = 0;  ///< u32 turn counter
constexpr unsigned DataOffset = 8;  ///< u64 test word

} // namespace

struct RandomTester::State
{
    Addr base = 0;
    unsigned numLocations = 0;
    std::vector<std::vector<Turn>> cpuWork;  ///< per CPU thread
    std::vector<std::vector<Turn>> gpuWork;  ///< per GPU workgroup
    std::vector<Turn> dmaWork;               ///< driven by thread 0
    std::vector<std::uint64_t> finalValue;
    std::vector<unsigned> turnsPerLoc;
    std::vector<std::string> failures;
    std::uint64_t imageHash = 0;

    Addr locAddr(unsigned loc) const { return base + Addr(loc) * 128; }

    void
    hashWord(std::uint64_t v)
    {
        // Canonical FNV-1a over the value's little-endian bytes;
        // explicit byte extraction keeps the digest host-independent.
        unsigned char b[8];
        for (unsigned i = 0; i < 8; ++i)
            b[i] = (v >> (8 * i)) & 0xff;
        imageHash = fnvBytes(b, sizeof(b), imageHash);
    }

    void
    fail(const std::string &msg)
    {
        if (failures.size() < 32)
            failures.push_back(msg);
    }

    void
    checkRead(unsigned loc, unsigned idx, std::uint64_t got,
              std::uint64_t want, const char *agent)
    {
        if (got != want) {
            std::ostringstream os;
            os << agent << " read mismatch loc=" << loc << " turn=" << idx
               << " got=" << got << " want=" << want;
            fail(os.str());
        }
    }
};

RandomTester::RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg)
    : RandomTester(sys, cfg, buildTesterSchedule(cfg))
{
}

RandomTester::RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg,
                           TesterSchedule schedule)
    : sys(sys), cfg(cfg), sched(std::move(schedule)),
      st(std::make_shared<State>())
{
}

RandomTester::RandomTester(HsaSystem &sys, const RandomTesterConfig &cfg,
                           TesterSchedule schedule,
                           TesterResumeState resume)
    : sys(sys), cfg(cfg), sched(std::move(schedule)),
      resume(std::move(resume)), st(std::make_shared<State>())
{
}

RandomTester::~RandomTester() = default;

const std::vector<std::string> &
RandomTester::failures() const
{
    return st->failures;
}

std::uint64_t
RandomTester::imageHash() const
{
    return st->imageHash;
}

bool
RandomTester::run()
{
    return runSchedule() && verifyImage();
}

TesterResumeState
RandomTester::resumeState() const
{
    TesterResumeState rs;
    rs.base = st->base;
    rs.turnBase = st->turnsPerLoc;
    rs.valueBase = st->finalValue;
    return rs;
}

bool
RandomTester::runSchedule()
{
    State &s = *st;
    s.numLocations = cfg.numLocations;
    s.cpuWork.resize(cfg.numCpuThreads);
    s.gpuWork.resize(cfg.useGpu ? cfg.numGpuWorkgroups : 0);
    s.finalValue.resize(cfg.numLocations, 0);

    // Derive turn indices and read expectations from op order, then
    // deal each op to its agent.  Every subsequence of a schedule is
    // self-consistent under this derivation (shrinking's invariant).
    // A resumed schedule continues the anchor's absolute turn counts
    // and values instead of starting from zero.
    std::vector<std::uint64_t> current(cfg.numLocations, 0);
    if (resume.valid()) {
        fatal_if(resume.turnBase.size() != cfg.numLocations ||
                     resume.valueBase.size() != cfg.numLocations,
                 "tester resume state covers %zu locations, config "
                 "has %u",
                 resume.turnBase.size(), cfg.numLocations);
        s.base = resume.base;
        s.turnsPerLoc = resume.turnBase;
        current = resume.valueBase;
    } else {
        s.base = sys.alloc(std::uint64_t(cfg.numLocations) * 128);
        s.turnsPerLoc.resize(cfg.numLocations, 0);
    }
    for (const TesterOp &op : sched.ops) {
        fatal_if(op.loc >= cfg.numLocations,
                 "tester op loc %u out of range", op.loc);
        Turn t;
        t.loc = op.loc;
        t.idx = s.turnsPerLoc[op.loc]++;
        t.isWrite = op.isWrite;
        if (op.isWrite)
            current[op.loc] = op.value;
        t.value = current[op.loc];
        t.deviceScope = op.deviceScope;
        switch (op.agent) {
          case TesterAgent::Cpu:
            s.cpuWork[op.agentIndex % cfg.numCpuThreads].push_back(t);
            break;
          case TesterAgent::Gpu:
            fatal_if(s.gpuWork.empty(),
                     "schedule has GPU ops but useGpu is off");
            s.gpuWork[op.agentIndex % s.gpuWork.size()].push_back(t);
            break;
          case TesterAgent::Dma:
            s.dmaWork.push_back(t);
            break;
        }
    }
    for (unsigned loc = 0; loc < cfg.numLocations; ++loc) {
        s.finalValue[loc] = current[loc];
        // Initial memory image — a resumed run inherits the anchor's.
        if (!resume.valid()) {
            sys.writeWord<std::uint32_t>(s.locAddr(loc) + TurnOffset, 0);
            sys.writeWord<std::uint64_t>(s.locAddr(loc) + DataOffset, 0);
        }
    }

    auto state = st;

    // CPU agent body: cooperative polling over its pending turns.
    auto cpu_body = [state](CpuCtx &cpu,
                            std::vector<Turn> work) -> SimTask {
        while (!work.empty()) {
            bool progressed = false;
            for (std::size_t i = 0; i < work.size();) {
                const Turn &t = work[i];
                Addr turn_addr = state->locAddr(t.loc) + TurnOffset;
                Addr data_addr = state->locAddr(t.loc) + DataOffset;
                std::uint64_t cur = co_await cpu.load(turn_addr, 4);
                if (cur != t.idx) {
                    ++i;
                    continue;
                }
                if (t.isWrite) {
                    co_await cpu.store(data_addr, t.value, 8);
                } else {
                    std::uint64_t got = co_await cpu.load(data_addr, 8);
                    state->checkRead(t.loc, t.idx, got, t.value, "cpu");
                }
                co_await cpu.store(turn_addr, t.idx + 1, 4);
                work.erase(work.begin() + long(i));
                progressed = true;
            }
            if (!progressed)
                co_await cpu.compute(500);
        }
    };

    // GPU wavefront body: the same loop through scoped atomics.
    auto gpu_body = [state](WaveCtx &wf,
                            std::vector<Turn> work) -> SimTask {
        while (!work.empty()) {
            bool progressed = false;
            for (std::size_t i = 0; i < work.size();) {
                const Turn &t = work[i];
                Scope scope =
                    t.deviceScope ? Scope::Device : Scope::System;
                Addr turn_addr = state->locAddr(t.loc) + TurnOffset;
                Addr data_addr = state->locAddr(t.loc) + DataOffset;
                std::uint64_t cur = co_await wf.atomic(
                    turn_addr, AtomicOp::Load, 0, 0, 4, scope);
                if (cur != t.idx) {
                    ++i;
                    continue;
                }
                if (t.isWrite) {
                    co_await wf.atomic(data_addr, AtomicOp::Exch, t.value,
                                       0, 8, scope);
                } else {
                    std::uint64_t got = co_await wf.atomic(
                        data_addr, AtomicOp::Load, 0, 0, 8, scope);
                    state->checkRead(t.loc, t.idx, got, t.value, "gpu");
                }
                co_await wf.atomic(turn_addr, AtomicOp::Add, 1, 0, 4,
                                   scope);
                work.erase(work.begin() + long(i));
                progressed = true;
            }
            if (!progressed)
                co_await wf.compute(200);
        }
    };

    // Thread 0 drives DMA turns and hosts the GPU kernel.
    HsaSystem *sysp = &sys;
    bool use_gpu = cfg.useGpu && !s.gpuWork.empty();
    unsigned num_wgs = unsigned(s.gpuWork.size());
    auto host_body = [state, sysp, use_gpu, num_wgs,
                      gpu_body](CpuCtx &cpu) -> SimTask {
        if (use_gpu) {
            GpuKernel k;
            k.name = "tester";
            k.numWorkgroups = num_wgs;
            k.body = [state, gpu_body](WaveCtx &wf) -> SimTask {
                return gpu_body(wf, state->gpuWork[wf.workgroupId()]);
            };
            cpu.launchKernelAsync(k);
        }
        std::vector<Turn> work = state->dmaWork;
        while (!work.empty()) {
            bool progressed = false;
            for (std::size_t i = 0; i < work.size();) {
                const Turn &t = work[i];
                Addr loc_addr = state->locAddr(t.loc);
                DataBlock blk =
                    co_await sysp->dma().readBlock(cpu, loc_addr);
                std::uint64_t cur = blk.get<std::uint32_t>(TurnOffset);
                if (cur != t.idx) {
                    ++i;
                    continue;
                }
                if (t.isWrite) {
                    DataBlock upd;
                    upd.set<std::uint64_t>(DataOffset, t.value);
                    co_await sysp->dma().writeBlock(
                        cpu, loc_addr, upd, makeMask(DataOffset, 8));
                } else {
                    state->checkRead(t.loc, t.idx,
                                     blk.get<std::uint64_t>(DataOffset),
                                     t.value, "dma");
                }
                DataBlock tupd;
                tupd.set<std::uint32_t>(TurnOffset, std::uint32_t(t.idx + 1));
                co_await sysp->dma().writeBlock(cpu, loc_addr, tupd,
                                                makeMask(TurnOffset, 4));
                work.erase(work.begin() + long(i));
                progressed = true;
            }
            if (!progressed)
                co_await cpu.compute(500);
        }
        co_await cpu.waitKernels();
    };

    sys.addCpuThread(host_body);
    for (unsigned i = 0; i < cfg.numCpuThreads; ++i) {
        auto work = s.cpuWork[i];
        sys.addCpuThread([cpu_body, work](CpuCtx &cpu) -> SimTask {
            return cpu_body(cpu, work);
        });
    }

    if (!sys.run()) {
        s.fail("system run failed: " + sys.failReason());
        const HangReport &hr = sys.hangReport();
        for (const std::string &d : hr.diagnostics)
            s.fail(d);
        for (std::size_t i = 0; i < hr.stalledTxns.size() && i < 4; ++i)
            s.fail("  " + hr.stalledTxns[i].toString());
        return false;
    }
    return true;
}

bool
RandomTester::verifyImage()
{
    State &s = *st;
    auto state = st;

    // Final image verification *through the protocol*: the current
    // values may legitimately live dirty in an L2, so plain memory
    // reads would see stale data.  A fresh verifier thread loads every
    // location coherently.
    sys.addCpuThread([state](CpuCtx &cpu) -> SimTask {
        state->imageHash = FnvOffsetBasis;
        for (unsigned loc = 0; loc < state->numLocations; ++loc) {
            std::uint64_t turns =
                co_await cpu.load(state->locAddr(loc) + TurnOffset, 4);
            if (turns != state->turnsPerLoc[loc]) {
                std::ostringstream os;
                os << "loc " << loc << " executed " << turns << "/"
                   << state->turnsPerLoc[loc] << " turns";
                state->fail(os.str());
            }
            std::uint64_t v =
                co_await cpu.load(state->locAddr(loc) + DataOffset, 8);
            if (v != state->finalValue[loc]) {
                std::ostringstream os;
                os << "loc " << loc << " final value " << v << " != "
                   << state->finalValue[loc];
                state->fail(os.str());
            }
            state->hashWord(turns);
            state->hashWord(v);
        }
    });
    if (!sys.run()) {
        s.fail("verification pass failed to complete: " +
               sys.failReason());
        return false;
    }
    return s.failures.empty();
}

JitterSweepResult
runJitterSweep(const SystemConfig &base, const RandomTesterConfig &tcfg,
               const std::vector<FaultConfig> &schedules)
{
    JitterSweepResult res;
    res.ok = true;
    for (std::size_t i = 0; i < schedules.size(); ++i) {
        SystemConfig cfg = base;
        cfg.fault = schedules[i];
        HsaSystem sys(cfg);
        RandomTester tester(sys, tcfg);
        bool ok = tester.run();
        res.imageHashes.push_back(tester.imageHash());
        if (!ok) {
            res.ok = false;
            for (const std::string &f : tester.failures()) {
                res.failures.push_back(
                    "schedule " + std::to_string(i) + ": " + f);
            }
        }
    }
    for (std::size_t i = 1; i < res.imageHashes.size(); ++i) {
        if (res.imageHashes[i] != res.imageHashes[0]) {
            res.ok = false;
            std::ostringstream os;
            os << "schedule " << i << " final image hash " << std::hex
               << res.imageHashes[i] << " != schedule 0 hash "
               << res.imageHashes[0]
               << " (fault injection changed the outcome)";
            res.failures.push_back(os.str());
        }
    }
    return res;
}

} // namespace hsc
