#include "core/kernel_dispatch.hh"

namespace hsc
{

KernelDispatcher::KernelDispatcher(std::vector<GpuCu *> cus,
                                   StatRegistry &reg)
    : cus(std::move(cus))
{
    reg.addCounter("gpu.kernels", &statKernels);
    reg.addCounter("gpu.workgroups", &statWorkgroups);
}

void
KernelDispatcher::launch(GpuKernel kernel, std::function<void()> on_complete)
{
    Active a;
    a.kernel = std::move(kernel);
    a.onComplete = std::move(on_complete);
    pending.push_back(std::move(a));
    if (!running)
        startNext();
}

void
KernelDispatcher::startNext()
{
    if (pending.empty())
        return;
    running = true;
    current = std::move(pending.front());
    pending.pop_front();
    ++statKernels;

    // Kernel-launch acquire semantics: invalidate the instruction
    // cache and every TCP so the kernel observes host-visible data.
    auto pending_acq = std::make_shared<unsigned>(unsigned(cus.size()));
    for (GpuCu *cu : cus) {
        cu->sqc().invalidateAll();
        cu->tcp().acquire([this, pending_acq] {
            if (--*pending_acq == 0)
                fill();
        });
    }
}

void
KernelDispatcher::fill()
{
    if (current.doneWgs == current.kernel.numWorkgroups) {
        finishKernel();
        return;
    }
    for (GpuCu *cu : cus) {
        while (cu->freeSlots() > 0 &&
               current.nextWg < current.kernel.numWorkgroups) {
            unsigned wg = current.nextWg++;
            ++statWorkgroups;
            cu->runWavefront(wg, current.kernel.body, [this] {
                ++current.doneWgs;
                fill();
            });
        }
    }
    if (current.doneWgs == current.kernel.numWorkgroups)
        finishKernel();
}

void
KernelDispatcher::finishKernel()
{
    if (current.finishing)
        return;
    current.finishing = true;
    // Kernel-completion release semantics: drain every TCP and the
    // TCC so the host observes the kernel's writes.
    auto pending_rel = std::make_shared<unsigned>(unsigned(cus.size()));
    auto on_complete =
        std::make_shared<std::function<void()>>(std::move(current.onComplete));
    for (GpuCu *cu : cus) {
        cu->tcp().release([this, pending_rel, on_complete] {
            if (--*pending_rel != 0)
                return;
            running = false;
            (*on_complete)();
            startNext();
        });
    }
}

} // namespace hsc
