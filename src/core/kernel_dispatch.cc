#include "core/kernel_dispatch.hh"

#include <algorithm>

#include "sim/json.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"

namespace hsc
{

KernelDispatcher::KernelDispatcher(std::vector<GpuCu *> cus,
                                   StatRegistry &reg)
    : cus(std::move(cus))
{
    reg.addCounter("gpu.kernels", &statKernels);
    reg.addCounter("gpu.workgroups", &statWorkgroups);
}

std::uint64_t
KernelDispatcher::launch(GpuKernel kernel,
                         std::function<void()> on_complete,
                         std::uint64_t agent_key)
{
    if (snap && snap->replaying()) {
        return replayLaunch(std::move(kernel), std::move(on_complete),
                            agent_key);
    }
    Active a;
    a.kernel = std::move(kernel);
    a.onComplete = std::move(on_complete);
    a.ordinal =
        snap ? snap->assignLaunchOrdinal(agent_key) : localNextOrdinal++;
    std::uint64_t ordinal = a.ordinal;
    a.wgDone.assign(a.kernel.numWorkgroups, false);
    a.wgCu.assign(a.kernel.numWorkgroups, 0);
    pending.push_back(std::move(a));
    if (!running)
        startNext();
    return ordinal;
}

void
KernelDispatcher::startNext()
{
    if (pending.empty())
        return;
    running = true;
    current = std::move(pending.front());
    pending.pop_front();
    ++statKernels;

    // Kernel-launch acquire semantics: invalidate the instruction
    // cache and every TCP so the kernel observes host-visible data.
    auto pending_acq = std::make_shared<unsigned>(unsigned(cus.size()));
    for (GpuCu *cu : cus) {
        cu->sqc().invalidateAll();
        cu->tcp().acquire([this, pending_acq] {
            if (--*pending_acq == 0)
                fill();
        });
    }
}

void
KernelDispatcher::fill()
{
    if (current.doneWgs == current.kernel.numWorkgroups) {
        finishKernel();
        return;
    }
    for (std::size_t ci = 0; ci < cus.size(); ++ci) {
        GpuCu *cu = cus[ci];
        while (cu->freeSlots() > 0 &&
               current.nextWg < current.kernel.numWorkgroups) {
            unsigned wg = current.nextWg++;
            current.wgCu[wg] = std::uint8_t(ci);
            ++statWorkgroups;
            cu->runWavefront(wg, current.kernel.body,
                             [this, wg] {
                                 current.wgDone[wg] = true;
                                 ++current.doneWgs;
                                 fill();
                             },
                             waveAgentKey(current.ordinal, wg));
        }
    }
    if (current.doneWgs == current.kernel.numWorkgroups)
        finishKernel();
}

void
KernelDispatcher::finishKernel()
{
    if (current.finishing)
        return;
    current.finishing = true;
    // Kernel-completion release semantics: drain every TCP and the
    // TCC so the host observes the kernel's writes.
    auto pending_rel = std::make_shared<unsigned>(unsigned(cus.size()));
    auto on_complete =
        std::make_shared<std::function<void()>>(std::move(current.onComplete));
    for (GpuCu *cu : cus) {
        cu->tcp().release([this, pending_rel, on_complete] {
            if (--*pending_rel != 0)
                return;
            running = false;
            (*on_complete)();
            startNext();
        });
    }
}

void
KernelDispatcher::serialize(JsonValue &out) const
{
    panic_if(running && current.finishing,
             "kernel dispatcher: serialize while a release is in flight");
    std::uint64_t started = statKernels.value();
    out.set("running", JsonValue(running));
    out.set("completed", JsonValue(started - (running ? 1 : 0)));
    if (running) {
        out.set("ordinal", JsonValue(current.ordinal));
        out.set("nextWg", JsonValue(std::uint64_t(current.nextWg)));
        JsonValue done = JsonValue::makeArray();
        for (bool d : current.wgDone)
            done.push(JsonValue(d));
        out.set("wgDone", std::move(done));
        JsonValue wgcu = JsonValue::makeArray();
        for (std::uint8_t c : current.wgCu)
            wgcu.push(JsonValue(std::uint64_t(c)));
        out.set("wgCu", std::move(wgcu));
    }
    JsonValue pend = JsonValue::makeArray();
    for (const Active &a : pending)
        pend.push(JsonValue(a.ordinal));
    out.set("pending", std::move(pend));
}

void
KernelDispatcher::restore(const JsonValue &in)
{
    repRunning = in.at("running").asBool();
    repCompleted = in.at("completed").asUInt();
    if (repRunning) {
        repOrdinal = in.at("ordinal").asUInt();
        repNextWg = static_cast<unsigned>(in.at("nextWg").asUInt());
        repWgDone.clear();
        for (const JsonValue &d : in.at("wgDone").items())
            repWgDone.push_back(d.asBool());
        repWgCu.clear();
        for (const JsonValue &c : in.at("wgCu").items()) {
            std::uint64_t ci = c.asUInt();
            if (ci >= cus.size()) {
                throw SimError("dispatcher wgCu index " +
                                   std::to_string(ci) +
                                   " out of range (config drift?)",
                               "snapshot");
            }
            repWgCu.push_back(std::uint8_t(ci));
        }
    }
    repPending.clear();
    for (const JsonValue &o : in.at("pending").items())
        repPending.push_back(o.asUInt());
}

std::uint64_t
KernelDispatcher::replayLaunch(GpuKernel kernel,
                               std::function<void()> on_complete,
                               std::uint64_t agent_key)
{
    std::uint64_t ord = snap->takeLaunchOrdinal(agent_key);
    if (ord < repCompleted) {
        // Completed before the snapshot: every workgroup's log is
        // complete, so the whole kernel replays synchronously.
        for (unsigned wg = 0; wg < kernel.numWorkgroups; ++wg) {
            cus[0]->replayWavefront(wg, kernel.body,
                                    waveAgentKey(ord, wg),
                                    /*live_slot=*/false, nullptr);
        }
        on_complete();
        return ord;
    }

    if (repRunning && ord == repOrdinal) {
        // The kernel in flight at the snapshot.
        panic_if(running,
                 "snapshot replay produced two in-flight kernels");
        if (repWgDone.size() != kernel.numWorkgroups ||
            repWgCu.size() != kernel.numWorkgroups) {
            throw SimError("dispatcher workgroup count mismatch "
                           "(config drift?)",
                           "snapshot");
        }
        running = true;
        current = Active{};
        current.kernel = std::move(kernel);
        current.onComplete = std::move(on_complete);
        current.ordinal = ord;
        current.nextWg = repNextWg;
        current.wgDone = repWgDone;
        current.wgCu = repWgCu;
        current.doneWgs = unsigned(std::count(repWgDone.begin(),
                                              repWgDone.end(), true));
        for (unsigned wg = 0; wg < repNextWg; ++wg) {
            if (current.wgDone[wg]) {
                cus[0]->replayWavefront(wg, current.kernel.body,
                                        waveAgentKey(ord, wg),
                                        /*live_slot=*/false, nullptr);
            } else {
                cus[current.wgCu[wg]]->replayWavefront(
                    wg, current.kernel.body, waveAgentKey(ord, wg),
                    /*live_slot=*/true, [this, wg] {
                        current.wgDone[wg] = true;
                        ++current.doneWgs;
                        fill();
                    });
            }
        }
        return ord;
    }

    // Not yet started at the snapshot: re-queue in ordinal order
    // (launches replay per launching agent, so the global arrival
    // order here need not match the recorded launch order).
    if (std::find(repPending.begin(), repPending.end(), ord) ==
        repPending.end()) {
        throw SimError("dispatcher replay saw launch ordinal " +
                           std::to_string(ord) +
                           " that was neither completed, in flight, "
                           "nor pending in the snapshot",
                       "snapshot");
    }
    Active a;
    a.kernel = std::move(kernel);
    a.onComplete = std::move(on_complete);
    a.ordinal = ord;
    a.wgDone.assign(a.kernel.numWorkgroups, false);
    a.wgCu.assign(a.kernel.numWorkgroups, 0);
    auto it = pending.begin();
    while (it != pending.end() && it->ordinal < ord)
        ++it;
    pending.insert(it, std::move(a));
    return ord;
}

} // namespace hsc
