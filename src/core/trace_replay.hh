/**
 * @file
 * Failure-trace capture and deterministic replay.
 *
 * When a checked run fails (checker violation, verification mismatch,
 * caught fatal, hang), everything needed to re-execute it is bundled
 * into a FailureTrace and written as JSON: how to rebuild the
 * SystemConfig (named preset + the knobs tests/CLI override), the
 * fault schedule, the seeded bug, the tester config, the explicit op
 * schedule, the diagnosis, and the tail of the checker's global event
 * ring.  Because the simulator is fully deterministic, replaying the
 * trace (hsc_replay, or replayTrace() in tests) reproduces the exact
 * failing execution — integers round-trip bit-exactly through the
 * JSON layer (sim/json.hh).
 */

#ifndef HSC_CORE_TRACE_REPLAY_HH
#define HSC_CORE_TRACE_REPLAY_HH

#include <string>
#include <vector>

#include "core/random_tester.hh"
#include "core/system_config.hh"
#include "sim/coherence_checker.hh"
#include "sim/json.hh"

namespace hsc
{

/** A replayable snapshot of one failing tester run. */
struct FailureTrace
{
    /** @{ SystemConfig reconstruction: a named preset plus the knobs
     *  the harnesses override on top of it. */
    std::string preset = "baseline";  ///< see configPresetByName()
    unsigned limitedPointers = 0;     ///< for preset "limitedPointer"
    bool torture = false;             ///< shrinkForTorture() applied
    std::uint64_t sysSeed = 1;
    unsigned numDirBanks = 1;
    bool gpuWriteBack = false;
    bool check = true;
    Cycles watchdogCycles = 3'000'000;
    FaultConfig fault{};
    TransportConfig transport{};
    StorageFaultConfig storage{};
    SeededBug bug{};
    /** @} */

    RandomTesterConfig tester{};
    TesterSchedule schedule{};

    std::string failReason;
    std::vector<CheckerEvent> events;  ///< checker global-ring tail
};

/** Look up a named preset ("baseline", "sharerTracking", ...). */
SystemConfig configPresetByName(const std::string &preset,
                                unsigned limited_pointers = 0);

/** Rebuild the SystemConfig a trace ran under. */
SystemConfig traceSystemConfig(const FailureTrace &trace);

/**
 * Snapshot a failing run.  @p preset / @p torture describe how @p cfg
 * was built; the overridable knobs are copied out of @p cfg itself.
 * @p sys may be null (no event tail is captured then).
 */
FailureTrace captureFailureTrace(const std::string &preset, bool torture,
                                 const SystemConfig &cfg,
                                 const RandomTesterConfig &tester_cfg,
                                 const TesterSchedule &schedule,
                                 const HsaSystem *sys,
                                 const std::string &fail_reason);

/** @{ JSON (de)serialisation. */
JsonValue failureTraceToJson(const FailureTrace &trace);
FailureTrace failureTraceFromJson(const JsonValue &v);

/** Write @p trace to @p path (pretty-printed); fatal() on I/O error. */
void writeFailureTrace(const FailureTrace &trace, const std::string &path);

/** Read and parse @p path; fatal() on I/O or format error. */
FailureTrace readFailureTrace(const std::string &path);
/** @} */

/** Outcome of replaying a trace. */
struct ReplayResult
{
    bool reproduced = false;           ///< the run failed again
    std::string failReason;            ///< diagnosis of the replay
    std::vector<std::string> failures; ///< tester diagnostics
    std::uint64_t transitionsChecked = 0;
};

/** Re-execute @p trace on a fresh system. */
ReplayResult replayTrace(const FailureTrace &trace);

/**
 * Re-execute @p trace with observability tracing enabled and write the
 * spans of the replayed run to @p chrome_out as a Chrome trace
 * (empty path = plain replay).  fatal() if the file cannot be written.
 */
ReplayResult replayTrace(const FailureTrace &trace,
                         const std::string &chrome_out);

} // namespace hsc

#endif // HSC_CORE_TRACE_REPLAY_HH
