/**
 * @file
 * The parallel (shard-per-thread) run loop — DESIGN.md §14.
 *
 * Only entered when SystemConfig::pdes.enabled; the sequential
 * kernel in hsa_system.cc is untouched and stays bit-identical to
 * the committed golden.  validateConfig has already rejected every
 * feature that needs a single global event order (checker, obs,
 * trace capture, checkpoints, transport, fault injection), so this
 * loop only deals in start events, the shard barrier, and the
 * end-of-run bookkeeping.
 */

#include "core/hsa_system.hh"

#include "sim/sim_error.hh"

namespace hsc
{

bool
HsaSystem::runPdes(Cycles max_cycles)
{
    fatal_if(pdesRanOnce,
             "%s: a PDES system runs exactly once (shard clocks do not "
             "rewind); construct a fresh system instead",
             cfg.name.c_str());
    pdesRanOnce = true;
    running = true;
    watchdogTripped = false;
    lastHang = HangReport{};
    lastError.clear();
    runStartTick = 0;

    liveTasks = static_cast<unsigned>(threadFns.size());
    retireTick = 0;
    for (std::size_t i = 0; i < threadFns.size(); ++i) {
        unsigned total_cores = cfg.topo.numCorePairs * 2;
        unsigned core = unsigned(i) % total_cores;
        EventQueue *q = &corePairs[core / 2]->eventQueue();
        // Same per-thread staggering as the sequential kernel; each
        // start event lands on its context's home shard.
        q->schedule(cpuClk.toTicks(Cycles(unsigned(i))),
                    [this, i, q] {
                        SimTask task = threadFns[i](*cpuCtxs[i]);
                        task.start([this, q] {
                            // cyclesElapsed is the tick at which the
                            // last task retired, exactly as in the
                            // sequential kernel: take an atomic max.
                            Tick t = q->curTick();
                            Tick cur = retireTick.load(
                                std::memory_order_relaxed);
                            while (t > cur &&
                                   !retireTick.compare_exchange_weak(
                                       cur, t,
                                       std::memory_order_relaxed)) {
                            }
                            liveTasks.fetch_sub(
                                1, std::memory_order_relaxed);
                        });
                    },
                    EventPriority::Default, /*progress=*/true);
    }

    unsigned threads = ShardGroup::resolveThreads(cfg.pdes.threads);
    pdesThreads_ = std::min(threads, shards->numShards());
    ShardGroup::Outcome oc = shards->run(
        pdesThreads_, cpuClk.toTicks(max_cycles),
        cpuClk.toTicks(cfg.watchdogCycles), [this] {
            return liveTasks.load(std::memory_order_relaxed) == 0;
        });
    running = false;

    switch (oc.kind) {
    case ShardGroup::Outcome::Kind::Error:
        lastError = oc.error;
        warn("%s: run aborted by fatal error: %s", cfg.name.c_str(),
             oc.error.c_str());
        return false;
    case ShardGroup::Outcome::Kind::Watchdog:
        watchdogTripped = true;
        lastHang = buildHangReport(HangReport::Kind::Watchdog);
        warn("%s: run did not complete: %s", cfg.name.c_str(),
             lastHang.brief().c_str());
        return false;
    case ShardGroup::Outcome::Kind::Hang:
        // Every queue and channel ran dry with tasks still live: a
        // deadlock the sequential kernel would also report as a hang.
        lastHang = buildHangReport(HangReport::Kind::Watchdog);
        warn("%s: run deadlocked (no pending events, %u live tasks): "
             "%s",
             cfg.name.c_str(), liveTasks.load(),
             lastHang.brief().c_str());
        return false;
    case ShardGroup::Outcome::Kind::CycleLimit:
        lastHang = buildHangReport(HangReport::Kind::CycleLimit);
        warn("%s: run did not complete: %s", cfg.name.c_str(),
             lastHang.brief().c_str());
        return false;
    case ShardGroup::Outcome::Kind::Completed:
        break;
    }

    // Completed means every shard queue and every cross-shard channel
    // ran dry — the post-run drain the sequential kernel does with
    // eq.run() has already happened inside the window loop.
    cyclesElapsed = cpuClk.toCycles(retireTick.load());
    statSimTicks += retireTick.load();
    statCpuCycles += cyclesElapsed;
    threadFns.clear();
    for (const auto &d : dirs) {
        if (!d->idle()) {
            lastHang =
                buildHangReport(HangReport::Kind::DrainIncomplete);
            warn("%s: post-run drain incomplete: %s", cfg.name.c_str(),
                 lastHang.brief().c_str());
            return false;
        }
    }
    return true;
}

} // namespace hsc
