/**
 * @file
 * The parallel (shard-per-thread) run loop — DESIGN.md §14.
 *
 * Only entered when SystemConfig::pdes.enabled; the sequential
 * kernel in hsa_system.cc is untouched and stays bit-identical to
 * the committed golden.  The safety net runs here too: the sharded
 * coherence checker, the reliable link transport, wire-level fault
 * injection and the storage-fault model all shard with the kernel.
 * validateConfig has already rejected the features that genuinely
 * need a single global event order (obs, trace capture,
 * checkpoint/restore, storageFault.flipAtTick), so this loop deals
 * in start events, the shard barrier, the fail predicate, and the
 * end-of-run merge + bookkeeping.
 */

#include "core/hsa_system.hh"

#include "core/coherence_checker.hh"
#include "sim/sim_error.hh"

namespace hsc
{

bool
HsaSystem::runPdes(Cycles max_cycles)
{
    fatal_if(pdesRanOnce,
             "%s: a PDES system runs exactly once (shard clocks do not "
             "rewind); construct a fresh system instead",
             cfg.name.c_str());
    pdesRanOnce = true;
    running = true;
    watchdogTripped = false;
    degradedTripped = false;
    crashTripped = false;
    lastHang = HangReport{};
    lastDegraded = DegradedReport{};
    lastContainment = ContainmentReport{};
    lastError.clear();
    runStartTick = 0;

    liveTasks = static_cast<unsigned>(threadFns.size());
    retireTick = 0;
    for (std::size_t i = 0; i < threadFns.size(); ++i) {
        unsigned total_cores = cfg.topo.numCorePairs * 2;
        unsigned core = unsigned(i) % total_cores;
        EventQueue *q = &corePairs[core / 2]->eventQueue();
        // Same per-thread staggering as the sequential kernel; each
        // start event lands on its context's home shard.
        q->schedule(cpuClk.toTicks(Cycles(unsigned(i))),
                    [this, i, q] {
                        SimTask task = threadFns[i](*cpuCtxs[i]);
                        task.start([this, q] {
                            // cyclesElapsed is the tick at which the
                            // last task retired, exactly as in the
                            // sequential kernel: take an atomic max.
                            Tick t = q->curTick();
                            Tick cur = retireTick.load(
                                std::memory_order_relaxed);
                            while (t > cur &&
                                   !retireTick.compare_exchange_weak(
                                       cur, t,
                                       std::memory_order_relaxed)) {
                            }
                            liveTasks.fetch_sub(
                                1, std::memory_order_relaxed);
                        });
                    },
                    EventPriority::Default, /*progress=*/true);
    }
    armScrubber();

    unsigned threads = ShardGroup::resolveThreads(cfg.pdes.threads);
    pdesThreads_ = std::min(threads, shards->numShards());
    ShardGroup::Outcome oc = shards->run(
        pdesThreads_, cpuClk.toTicks(max_cycles),
        cpuClk.toTicks(cfg.watchdogCycles),
        [this] {
            return liveTasks.load(std::memory_order_relaxed) == 0;
        },
        // Fail predicate, evaluated at window barriers (all workers
        // parked — every shard-local flag is safely readable): the
        // same abort conditions the sequential stop_pred checks.
        [this] {
            return (checkerPtr && checkerPtr->violated()) ||
                   degradedTripped.load(std::memory_order_relaxed) ||
                   (storagePtr && storagePtr->tripped()) ||
                   pdesCrashNow();
        });
    running = false;

    // The workers have joined: merge the per-bank checker state and
    // the per-shard storage-fault state *before* inspecting either,
    // whatever the outcome — reports and stats must reflect the whole
    // run even when it aborted.
    if (checkerPtr)
        checkerPtr->finalizeParallel();
    if (storagePtr)
        storagePtr->mergeParallel();

    switch (oc.kind) {
    case ShardGroup::Outcome::Kind::Error:
        lastError = oc.error;
        warn("%s: run aborted by fatal error: %s", cfg.name.c_str(),
             oc.error.c_str());
        return false;
    case ShardGroup::Outcome::Kind::Failed:
        // The fail predicate tripped; report with the sequential
        // kernel's priority order so failReason() is stable across
        // kernels.
        if (checkerPtr && checkerPtr->violated()) {
            warn("%s: run aborted by coherence checker: %s",
                 cfg.name.c_str(), checkerPtr->brief().c_str());
            return false;
        }
        if (degradedTripped) {
            lastDegraded = buildDegradedReport();
            warn("%s: run aborted by link degradation: %s",
                 cfg.name.c_str(), lastDegraded.brief().c_str());
            return false;
        }
        if (storagePtr && storagePtr->tripped()) {
            lastContainment = storagePtr->containmentReport();
            lastContainment.lastCheckpointTick = lastCkptTick;
            warn("%s: run aborted by storage-fault containment: %s",
                 cfg.name.c_str(), lastContainment.brief().c_str());
            return false;
        }
        crashTripped = true;
        lastError = "crash fault: simulated process kill at tick " +
                    std::to_string(maxShardTick());
        warn("%s: %s", cfg.name.c_str(), lastError.c_str());
        return false;
    case ShardGroup::Outcome::Kind::Watchdog:
        watchdogTripped = true;
        lastHang = buildHangReport(HangReport::Kind::Watchdog);
        warn("%s: run did not complete: %s", cfg.name.c_str(),
             lastHang.brief().c_str());
        return false;
    case ShardGroup::Outcome::Kind::Hang:
        // Every queue and channel ran dry with tasks still live: a
        // deadlock the sequential kernel would also report as a hang.
        lastHang = buildHangReport(HangReport::Kind::Watchdog);
        warn("%s: run deadlocked (no pending events, %u live tasks): "
             "%s",
             cfg.name.c_str(), liveTasks.load(),
             lastHang.brief().c_str());
        return false;
    case ShardGroup::Outcome::Kind::CycleLimit:
        lastHang = buildHangReport(HangReport::Kind::CycleLimit);
        warn("%s: run did not complete: %s", cfg.name.c_str(),
             lastHang.brief().c_str());
        return false;
    case ShardGroup::Outcome::Kind::Completed:
        break;
    }

    // Completed means every shard queue and every cross-shard channel
    // ran dry — the post-run drain the sequential kernel does with
    // eq.run() has already happened inside the window loop.  The
    // drain may still have flagged a late violation or consumed a
    // poisoned line; mirror the sequential post-drain checks.
    cyclesElapsed = cpuClk.toCycles(retireTick.load());
    statSimTicks += retireTick.load();
    statCpuCycles += cyclesElapsed;
    threadFns.clear();
    if (checkerPtr && checkerPtr->violated()) {
        warn("%s: drain flagged a coherence violation: %s",
             cfg.name.c_str(), checkerPtr->brief().c_str());
        return false;
    }
    if (storagePtr && storagePtr->tripped()) {
        lastContainment = storagePtr->containmentReport();
        lastContainment.lastCheckpointTick = lastCkptTick;
        warn("%s: drain tripped storage-fault containment: %s",
             cfg.name.c_str(), lastContainment.brief().c_str());
        return false;
    }
    for (const auto &d : dirs) {
        if (!d->idle()) {
            lastHang =
                buildHangReport(HangReport::Kind::DrainIncomplete);
            warn("%s: post-run drain incomplete: %s", cfg.name.c_str(),
                 lastHang.brief().c_str());
            return false;
        }
    }

    // Quiescent sweep, single-threaded on the joined state: with
    // everything drained, cross-check the stable cache/directory
    // states and the memory image exactly as the sequential kernel
    // does.
    if (checkerPtr) {
        CheckResult qr = checkCoherenceInvariants(*this);
        if (storagePtr && storagePtr->tripped()) {
            // The sweep's verification reads consumed a poisoned line
            // the workload never touched: containment, not a protocol
            // violation.
            lastContainment = storagePtr->containmentReport();
            lastContainment.lastCheckpointTick = lastCkptTick;
            warn("%s: quiescent sweep tripped storage-fault "
                 "containment: %s",
                 cfg.name.c_str(), lastContainment.brief().c_str());
            return false;
        }
        if (!qr.ok) {
            lastError = "quiescent coherence check: " + qr.violations[0];
            warn("%s: %s", cfg.name.c_str(), lastError.c_str());
            return false;
        }
    }
    return true;
}

} // namespace hsc
