#include "core/coherence_checker.hh"

#include <map>
#include <sstream>

namespace hsc
{

namespace
{

struct Copy
{
    unsigned pair;
    L2State state;
};

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << std::hex << "0x" << a;
    return os.str();
}

} // namespace

CheckResult
checkCoherenceInvariants(HsaSystem &sys)
{
    CheckResult result;
    auto violate = [&](const std::string &msg) {
        result.ok = false;
        result.violations.push_back(msg);
    };

    // Gather every L2 copy per line.
    std::map<Addr, std::vector<Copy>> lines;
    for (unsigned i = 0; i < sys.numCorePairs(); ++i) {
        sys.corePair(i).forEachLine([&](Addr a, L2State s) {
            lines[a].push_back({i, s});
        });
    }

    bool tracked = sys.config().dir.stateful();
    bool full_map = sys.config().dir.tracking == DirTracking::Sharers &&
                    sys.config().dir.maxSharerPointers == 0;

    for (auto &[addr, copies] : lines) {
        // (1) single-writer.
        unsigned writers = 0;
        int owner_pair = -1;
        bool any_dirty_owner = false;
        for (const Copy &c : copies) {
            if (c.state == L2State::Modified || c.state == L2State::Exclusive)
                ++writers;
            if (c.state == L2State::Modified || c.state == L2State::Owned ||
                c.state == L2State::Exclusive) {
                owner_pair = int(c.pair);
                any_dirty_owner |= c.state != L2State::Exclusive;
            }
        }
        if (writers > 1)
            violate("multiple M/E owners of " + hex(addr));

        // (2) single-value.
        std::uint64_t ref = sys.corePair(copies[0].pair).peekWord(addr, 8);
        for (const Copy &c : copies) {
            if (sys.corePair(c.pair).peekWord(addr, 8) != ref) {
                violate("divergent copies of " + hex(addr));
                break;
            }
        }

        // (3) clean copies match the system-visible value.
        if (!any_dirty_owner) {
            std::uint64_t backing = sys.readWord<std::uint64_t>(addr);
            if (ref != backing)
                violate("clean copy of " + hex(addr) +
                        " differs from backing value");
        }

        // (4) tracked-directory inclusion and ownership.
        if (tracked) {
            DirectoryController &dir = sys.dirFor(addr);
            if (!dir.tracks(addr)) {
                violate("cached line " + hex(addr) +
                        " untracked by the directory");
                continue;
            }
            if (owner_pair >= 0) {
                if (dir.trackedState(addr) != DirState::O) {
                    violate("line " + hex(addr) +
                            " has an owner but directory state is S");
                } else if (dir.trackedOwner(addr) !=
                           MachineId(owner_pair)) {
                    violate("directory owner mismatch for " + hex(addr));
                }
            }
            if (full_map && dir.trackedState(addr) == DirState::S) {
                for (const Copy &c : copies) {
                    if (!dir.isSharer(addr, MachineId(c.pair)))
                        violate("sharer " + std::to_string(c.pair) +
                                " of " + hex(addr) + " untracked");
                }
            }
        }
    }

    // Directory S-state entries must have no M/E L2 owner.
    if (tracked) {
        for (auto &[addr, copies] : lines) {
            DirectoryController &dir = sys.dirFor(addr);
            if (!dir.tracks(addr) ||
                dir.trackedState(addr) != DirState::S) {
                continue;
            }
            for (const Copy &c : copies) {
                if (c.state == L2State::Modified ||
                    c.state == L2State::Exclusive) {
                    violate("S-state directory entry but L2 holds M/E: " +
                            hex(addr));
                }
            }
        }
    }

    return result;
}

} // namespace hsc
