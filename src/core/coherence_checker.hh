/**
 * @file
 * Whole-system coherence invariant checker.
 *
 * Walks every cache and the directory and asserts the MOESI /
 * tracking invariants the protocol must maintain:
 *   1. single-writer: at most one L2 holds a line in M or E;
 *   2. single-value: every valid L2 copy of a line holds identical
 *      data (S copies may be dirty-shared but match the owner);
 *   3. clean lines (E, or S with no M/O owner) match the
 *      system-visible backing value (LLC if present, else memory);
 *   4. tracked directories are inclusive: every L2-cached line is
 *      tracked, owners are recorded correctly, and full-map sharer
 *      sets are supersets of the true sharers.
 *
 * Intended to run when the system is quiescent (after run()).
 */

#ifndef HSC_CORE_COHERENCE_CHECKER_HH
#define HSC_CORE_COHERENCE_CHECKER_HH

#include <string>
#include <vector>

#include "core/hsa_system.hh"

namespace hsc
{

/** Result of one invariant sweep. */
struct CheckResult
{
    bool ok = true;
    std::vector<std::string> violations;

    explicit operator bool() const { return ok; }
};

/** Run a full invariant sweep over @p sys. */
CheckResult checkCoherenceInvariants(HsaSystem &sys);

} // namespace hsc

#endif // HSC_CORE_COHERENCE_CHECKER_HH
