/**
 * @file
 * CpuCtx — the coroutine-facing CPU core model.
 *
 * One CpuCtx represents a CPU hardware thread pinned to one core of a
 * CorePair.  Workload threads co_await its memory operations; the
 * in-order core issues one operation at a time (the memory system
 * below provides all the concurrency the paper's evaluation is
 * sensitive to).  Periodic instruction fetches through the shared L1I
 * exercise the RdBlkS path.
 */

#ifndef HSC_CORE_CPU_CORE_HH
#define HSC_CORE_CPU_CORE_HH

#include "core/task.hh"
#include "protocol/cpu/core_pair.hh"
#include "sim/clocked.hh"

namespace hsc
{

class KernelDispatcher;
class ShardGroup;
class SnapshotCoordinator;
class TraceRecorder;
struct GpuKernel;

/**
 * Execution context of one CPU hardware thread.
 */
class CpuCtx
{
  public:
    CpuCtx(unsigned thread_id, CorePairController &core_pair,
           unsigned core_idx, EventQueue &eq, ClockDomain clk,
           KernelDispatcher *dispatcher, bool inject_ifetches);

    unsigned threadId() const { return tid; }

    /** @{ Checkpoint/restore wiring.  The coordinator is null unless
     *  checkpointing is enabled, so the per-op drain/replay gates
     *  reduce to one null check on the clean path.  The agent key of
     *  a CPU thread is its thread id; DMA operations issued by this
     *  thread attribute to the same key (see DmaEngine). */
    void setSnapshot(SnapshotCoordinator *s) { snap = s; }
    SnapshotCoordinator *snapshot() const { return snap; }
    std::uint64_t agentKey() const { return tid; }
    /** @} */

    /** Trace capture wiring (null = off).  Every op records at the
     *  top of its start so the capture sees per-thread program order
     *  exactly once, even across checkpoint drains. */
    void setTraceRecorder(TraceRecorder *r) { rec = r; }

    /** PDES doorbell wiring (DESIGN.md §14): the dispatcher lives on
     *  the GPU shard, so kernel launches hop there through a shard
     *  doorbell and completions hop back — one lookahead window of
     *  latency each way, deterministically.  Null = same-shard calls
     *  (sequential mode). */
    void setPdesRouting(ShardGroup *g, unsigned gpu_shard)
    {
        pdesShards = g;
        pdesGpuShard = gpu_shard;
    }

    /**
     * @{ Awaitable memory operations (sizes 1/2/4/8).  The returned
     * awaiters hold their parameters in the coroutine frame and
     * complete through pointer-sized callbacks, so issuing one never
     * heap-allocates (DESIGN.md §9).
     */
    struct LoadOp : AwaitOpBase<std::uint64_t, LoadOp>
    {
        CpuCtx *ctx;
        Addr addr;
        unsigned size;
        void start();
        void issueLive();
    };

    struct StoreOp : AwaitVoidOpBase<StoreOp>
    {
        CpuCtx *ctx;
        Addr addr;
        std::uint64_t value;
        unsigned size;
        void start();
        void issueLive();
    };

    struct AmoOp : AwaitOpBase<std::uint64_t, AmoOp>
    {
        CpuCtx *ctx;
        Addr addr;
        AtomicOp op;
        std::uint64_t operand;
        std::uint64_t operand2;
        unsigned size;
        void start();
        void issueLive();
    };

    LoadOp
    load(Addr addr, unsigned size = 8)
    {
        return {{}, this, addr, size};
    }

    StoreOp
    store(Addr addr, std::uint64_t value, unsigned size = 8)
    {
        return {{}, this, addr, value, size};
    }

    AmoOp
    atomic(Addr addr, AtomicOp op, std::uint64_t operand,
           std::uint64_t operand2 = 0, unsigned size = 8)
    {
        return {{}, this, addr, op, operand, operand2, size};
    }
    /** @} */

    /** Spend @p cycles CPU cycles of local computation. */
    AwaitVoid compute(Cycles cycles);

    /** Launch @p kernel on the GPU and wait for its completion. */
    AwaitVoid launchKernel(const GpuKernel &kernel);

    /** Enqueue @p kernel without waiting (pair with waitKernels()). */
    void launchKernelAsync(const GpuKernel &kernel);

    /** Wait until every kernel this thread launched has completed. */
    AwaitVoid waitKernels();

  private:
    /** Issue an instruction fetch every few operations. */
    void maybeIfetch(std::function<void()> then);

    /** Advance the ifetch cadence during log replay without issuing
     *  (the fetch's timing effect is already baked into the logged
     *  results; only the cursor must move identically). */
    void advanceIfetchReplay();

    /** Schedule the compute delay (the live, non-replay path). */
    void computeLive(Cycles cycles, std::function<void()> cb);

    /** Home-shard bookkeeping of one async kernel completion. */
    void kernelCompleted();

    const unsigned tid;
    CorePairController &corePair;
    const unsigned coreIdx;
    EventQueue &eq;
    ClockDomain clk;
    KernelDispatcher *dispatcher;
    const bool injectIfetches;

    SnapshotCoordinator *snap = nullptr;
    TraceRecorder *rec = nullptr;
    ShardGroup *pdesShards = nullptr;
    unsigned pdesGpuShard = 0;

    Addr codePc;
    std::uint64_t opCount = 0;
    unsigned kernelsInFlight = 0;
    std::function<void()> kernelWaiter;
};

} // namespace hsc

#endif // HSC_CORE_CPU_CORE_HH
