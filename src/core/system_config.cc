#include "core/system_config.hh"

namespace hsc
{

SystemConfig
baselineConfig()
{
    SystemConfig cfg;
    cfg.label = "baseline";
    return cfg;
}

SystemConfig
earlyRespConfig()
{
    SystemConfig cfg;
    cfg.dir.earlyDirtyResp = true;
    cfg.label = "earlyResp";
    return cfg;
}

SystemConfig
noCleanVicToMemConfig()
{
    SystemConfig cfg;
    cfg.dir.noCleanVicToMem = true;
    cfg.label = "noWBcleanVic";
    return cfg;
}

SystemConfig
noCleanVicToLlcConfig()
{
    SystemConfig cfg;
    cfg.dir.noCleanVicToMem = true;
    cfg.dir.noCleanVicToLlc = true;
    cfg.label = "noCleanVicLLC";
    return cfg;
}

SystemConfig
llcWriteBackConfig()
{
    SystemConfig cfg;
    cfg.dir.noCleanVicToMem = true;
    cfg.dir.llcWriteBack = true;
    cfg.label = "llcWB";
    return cfg;
}

SystemConfig
llcWriteBackUseL3Config()
{
    SystemConfig cfg = llcWriteBackConfig();
    cfg.dir.useL3OnWT = true;
    cfg.label = "llcWB+useL3OnWT";
    return cfg;
}

SystemConfig
ownerTrackingConfig()
{
    // State tracking is built on top of the §III enhancements
    // (write-back LLC with GPU write-throughs redirected to it, as
    // §III-C requires for correctness).
    SystemConfig cfg = llcWriteBackUseL3Config();
    cfg.dir.tracking = DirTracking::Owner;
    cfg.label = "ownerTracking";
    return cfg;
}

SystemConfig
sharerTrackingConfig()
{
    SystemConfig cfg = ownerTrackingConfig();
    cfg.dir.tracking = DirTracking::Sharers;
    cfg.label = "sharersTracking";
    return cfg;
}

SystemConfig
limitedPointerConfig(unsigned pointers)
{
    SystemConfig cfg = sharerTrackingConfig();
    cfg.dir.maxSharerPointers = pointers;
    cfg.label = "limitedPtr" + std::to_string(pointers);
    return cfg;
}

void
shrinkForTorture(SystemConfig &cfg)
{
    cfg.corePair.l2Geom = {16, 2};
    cfg.corePair.l1dGeom = {4, 2};
    cfg.corePair.l1iGeom = {4, 2};
    cfg.tcp.geom = {4, 2};
    cfg.tcc.geom = {8, 2};
    cfg.sqc.geom = {4, 2};
    cfg.llc.geom = {16, 2};
    cfg.dir.dirEntries = 64;
    cfg.dir.dirAssoc = 4;
    cfg.watchdogCycles = 10'000'000;
}

} // namespace hsc
