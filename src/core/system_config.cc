#include "core/system_config.hh"

#include "sim/sim_error.hh"

namespace hsc
{

SystemConfig
baselineConfig()
{
    SystemConfig cfg;
    cfg.label = "baseline";
    return cfg;
}

SystemConfig
earlyRespConfig()
{
    SystemConfig cfg;
    cfg.dir.earlyDirtyResp = true;
    cfg.label = "earlyResp";
    return cfg;
}

SystemConfig
noCleanVicToMemConfig()
{
    SystemConfig cfg;
    cfg.dir.noCleanVicToMem = true;
    cfg.label = "noWBcleanVic";
    return cfg;
}

SystemConfig
noCleanVicToLlcConfig()
{
    SystemConfig cfg;
    cfg.dir.noCleanVicToMem = true;
    cfg.dir.noCleanVicToLlc = true;
    cfg.label = "noCleanVicLLC";
    return cfg;
}

SystemConfig
llcWriteBackConfig()
{
    SystemConfig cfg;
    cfg.dir.noCleanVicToMem = true;
    cfg.dir.llcWriteBack = true;
    cfg.label = "llcWB";
    return cfg;
}

SystemConfig
llcWriteBackUseL3Config()
{
    SystemConfig cfg = llcWriteBackConfig();
    cfg.dir.useL3OnWT = true;
    cfg.label = "llcWB+useL3OnWT";
    return cfg;
}

SystemConfig
ownerTrackingConfig()
{
    // State tracking is built on top of the §III enhancements
    // (write-back LLC with GPU write-throughs redirected to it, as
    // §III-C requires for correctness).
    SystemConfig cfg = llcWriteBackUseL3Config();
    cfg.dir.tracking = DirTracking::Owner;
    cfg.label = "ownerTracking";
    return cfg;
}

SystemConfig
sharerTrackingConfig()
{
    SystemConfig cfg = ownerTrackingConfig();
    cfg.dir.tracking = DirTracking::Sharers;
    cfg.label = "sharersTracking";
    return cfg;
}

SystemConfig
limitedPointerConfig(unsigned pointers)
{
    SystemConfig cfg = sharerTrackingConfig();
    cfg.dir.maxSharerPointers = pointers;
    cfg.label = "limitedPtr" + std::to_string(pointers);
    return cfg;
}

SystemConfig
big64Config()
{
    // 64 CorePairs (128 CPU threads), 256 CUs, 8 directory banks
    // each owning a DRAM channel, a million-line directory and a
    // 64 MB LLC split across the banks.  Owner tracking rather than
    // full-map sharers: the sharer bitmap is 64 bits and this
    // machine has 66 coherence clients.
    SystemConfig cfg = ownerTrackingConfig();
    cfg.topo = Topology{64, 1};
    cfg.numCus = 256;
    cfg.numDirBanks = 8;
    cfg.memChannels = 8;
    cfg.dir.dirEntries = 1u << 20;
    cfg.llc.geom = {65536, 16};
    cfg.label = "big64";
    return cfg;
}

SystemConfig
big128Config()
{
    SystemConfig cfg = big64Config();
    cfg.topo = Topology{128, 1};
    cfg.numCus = 512;
    cfg.numDirBanks = 16;
    cfg.memChannels = 16;
    cfg.dir.dirEntries = 2u << 20;
    cfg.llc.geom = {131072, 16};
    cfg.label = "big128";
    return cfg;
}

const std::vector<NamedConfig> &
namedConfigs()
{
    static const std::vector<NamedConfig> table = {
        {"baseline", "unmodified gem5 HSC model (Tables II/III)",
         &baselineConfig},
        {"earlyResp", "§III-A early response on dirty probe ack",
         &earlyRespConfig},
        {"noCleanVicMem", "§III-B clean victims skip memory",
         &noCleanVicToMemConfig},
        {"noCleanVicLlc", "§III-B1 clean victims skip LLC too",
         &noCleanVicToLlcConfig},
        {"llcWB", "§III-C write-back LLC", &llcWriteBackConfig},
        {"llcWBuseL3", "§III-C + TCC write-throughs into the LLC",
         &llcWriteBackUseL3Config},
        {"owner", "§IV-A owner-tracking directory",
         &ownerTrackingConfig},
        {"sharers", "§IV-B full-map sharer tracking",
         &sharerTrackingConfig},
        {"big64", "64 CorePairs / 256 CUs / 8 banks, 1M-line dir",
         &big64Config},
        {"big128", "128 CorePairs / 512 CUs / 16 banks, 2M-line dir",
         &big128Config},
    };
    return table;
}

SystemConfig
configByName(const std::string &name)
{
    for (const NamedConfig &nc : namedConfigs())
        if (name == nc.name)
            return nc.make();
    std::string known;
    for (const NamedConfig &nc : namedConfigs())
        known += std::string(known.empty() ? "" : ", ") + nc.name;
    throw SimError("unknown config '" + name + "' (known: " + known +
                       ")",
                   "config");
}

void
shrinkForTorture(SystemConfig &cfg)
{
    cfg.corePair.l2Geom = {16, 2};
    cfg.corePair.l1dGeom = {4, 2};
    cfg.corePair.l1iGeom = {4, 2};
    cfg.tcp.geom = {4, 2};
    cfg.tcc.geom = {8, 2};
    cfg.sqc.geom = {4, 2};
    cfg.llc.geom = {16, 2};
    cfg.dir.dirEntries = 64;
    cfg.dir.dirAssoc = 4;
    cfg.watchdogCycles = 10'000'000;
}

} // namespace hsc
