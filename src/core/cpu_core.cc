#include "core/cpu_core.hh"

#include "core/kernel_dispatch.hh"

namespace hsc
{

namespace
{
/** Per-thread code segments, away from the data heap. */
constexpr Addr CodeBase = 0x10000;
constexpr Addr CodeSegBytes = 0x2000;
} // namespace

CpuCtx::CpuCtx(unsigned thread_id, CorePairController &core_pair,
               unsigned core_idx, EventQueue &eq, ClockDomain clk,
               KernelDispatcher *dispatcher, bool inject_ifetches)
    : tid(thread_id), corePair(core_pair), coreIdx(core_idx), eq(eq),
      clk(clk), dispatcher(dispatcher), injectIfetches(inject_ifetches),
      codePc(CodeBase + thread_id * CodeSegBytes)
{
}

void
CpuCtx::maybeIfetch(std::function<void()> then)
{
    if (!injectIfetches || (opCount++ % 8) != 0) {
        then();
        return;
    }
    Addr pc = codePc;
    codePc = CodeBase + tid * CodeSegBytes +
             ((codePc + BlockSizeBytes) % CodeSegBytes);
    corePair.ifetch(coreIdx, pc, std::move(then));
}

void
CpuCtx::LoadOp::start()
{
    // Both captures are a single pointer: no heap on the op path.
    ctx->maybeIfetch([this] {
        ctx->corePair.load(ctx->coreIdx, addr, size,
                           [this](std::uint64_t v) { complete(v); });
    });
}

void
CpuCtx::StoreOp::start()
{
    ctx->maybeIfetch([this] {
        ctx->corePair.store(ctx->coreIdx, addr, size, value,
                            [this] { complete(); });
    });
}

void
CpuCtx::AmoOp::start()
{
    ctx->maybeIfetch([this] {
        ctx->corePair.atomic(ctx->coreIdx, addr, op, operand, operand2,
                             size,
                             [this](std::uint64_t v) { complete(v); });
    });
}

AwaitVoid
CpuCtx::compute(Cycles cycles)
{
    return AwaitVoid([this, cycles](std::function<void()> cb) {
        eq.schedule(clk.clockEdge(eq.curTick(), cycles),
                    [this, cb = std::move(cb)] {
                        eq.notifyProgress();
                        cb();
                    });
    });
}

AwaitVoid
CpuCtx::launchKernel(const GpuKernel &kernel)
{
    panic_if(!dispatcher, "CpuCtx has no kernel dispatcher");
    return AwaitVoid([this, kernel](std::function<void()> cb) {
        dispatcher->launch(kernel, std::move(cb));
    });
}

void
CpuCtx::launchKernelAsync(const GpuKernel &kernel)
{
    panic_if(!dispatcher, "CpuCtx has no kernel dispatcher");
    ++kernelsInFlight;
    dispatcher->launch(kernel, [this] {
        if (--kernelsInFlight == 0 && kernelWaiter) {
            auto w = std::move(kernelWaiter);
            kernelWaiter = nullptr;
            w();
        }
    });
}

AwaitVoid
CpuCtx::waitKernels()
{
    return AwaitVoid([this](std::function<void()> cb) {
        if (kernelsInFlight == 0) {
            cb();
            return;
        }
        panic_if(kernelWaiter != nullptr, "concurrent waitKernels");
        kernelWaiter = std::move(cb);
    });
}

} // namespace hsc
