#include "core/cpu_core.hh"

#include "core/kernel_dispatch.hh"
#include "sim/shard.hh"
#include "sim/snapshot.hh"
#include "trace/trace_capture.hh"

namespace hsc
{

namespace
{
/** Per-thread code segments, away from the data heap. */
constexpr Addr CodeBase = 0x10000;
constexpr Addr CodeSegBytes = 0x2000;
} // namespace

CpuCtx::CpuCtx(unsigned thread_id, CorePairController &core_pair,
               unsigned core_idx, EventQueue &eq, ClockDomain clk,
               KernelDispatcher *dispatcher, bool inject_ifetches)
    : tid(thread_id), corePair(core_pair), coreIdx(core_idx), eq(eq),
      clk(clk), dispatcher(dispatcher), injectIfetches(inject_ifetches),
      codePc(CodeBase + thread_id * CodeSegBytes)
{
}

void
CpuCtx::maybeIfetch(std::function<void()> then)
{
    if (!injectIfetches || (opCount++ % 8) != 0) {
        then();
        return;
    }
    Addr pc = codePc;
    codePc = CodeBase + tid * CodeSegBytes +
             ((codePc + BlockSizeBytes) % CodeSegBytes);
    corePair.ifetch(coreIdx, pc, std::move(then));
}

void
CpuCtx::advanceIfetchReplay()
{
    if (!injectIfetches || (opCount++ % 8) != 0)
        return;
    codePc = CodeBase + tid * CodeSegBytes +
             ((codePc + BlockSizeBytes) % CodeSegBytes);
}

void
CpuCtx::LoadOp::issueLive()
{
    // Both captures are a single pointer: no heap on the op path.
    ctx->maybeIfetch([this] {
        ctx->corePair.load(ctx->coreIdx, addr, size,
                           [this](std::uint64_t v) {
                               if (ctx->snap)
                                   ctx->snap->record(ctx->tid,
                                                     OpKind::CpuLoad, {v});
                               complete(v);
                           });
    });
}

void
CpuCtx::LoadOp::start()
{
    if (ctx->rec)
        ctx->rec->cpuLoad(ctx->tid, addr, size);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (const OpRecord *r = snap->replayNext(ctx->tid, OpKind::CpuLoad)) {
            ctx->advanceIfetchReplay();
            complete(r->word(0));
        } else {
            snap->park(ctx->tid, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->tid, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
CpuCtx::StoreOp::issueLive()
{
    ctx->maybeIfetch([this] {
        ctx->corePair.store(ctx->coreIdx, addr, size, value, [this] {
            if (ctx->snap)
                ctx->snap->record(ctx->tid, OpKind::CpuStore, {});
            complete();
        });
    });
}

void
CpuCtx::StoreOp::start()
{
    if (ctx->rec)
        ctx->rec->cpuStore(ctx->tid, addr, size, value);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (snap->replayNext(ctx->tid, OpKind::CpuStore)) {
            ctx->advanceIfetchReplay();
            complete();
        } else {
            snap->park(ctx->tid, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->tid, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
CpuCtx::AmoOp::issueLive()
{
    ctx->maybeIfetch([this] {
        ctx->corePair.atomic(ctx->coreIdx, addr, op, operand, operand2,
                             size, [this](std::uint64_t v) {
                                 if (ctx->snap)
                                     ctx->snap->record(ctx->tid,
                                                       OpKind::CpuAmo, {v});
                                 complete(v);
                             });
    });
}

void
CpuCtx::AmoOp::start()
{
    if (ctx->rec)
        ctx->rec->cpuAmo(ctx->tid, addr, size, op, operand, operand2);
    SnapshotCoordinator *snap = ctx->snap;
    if (snap && snap->replaying()) {
        if (const OpRecord *r = snap->replayNext(ctx->tid, OpKind::CpuAmo)) {
            ctx->advanceIfetchReplay();
            complete(r->word(0));
        } else {
            snap->park(ctx->tid, [this] { issueLive(); });
        }
        return;
    }
    if (snap && snap->draining()) {
        snap->park(ctx->tid, [this] { issueLive(); });
        return;
    }
    issueLive();
}

void
CpuCtx::computeLive(Cycles cycles, std::function<void()> cb)
{
    // progress-tagged: a thread mid-compute is in-flight work — the
    // snapshot drain must let it retire so the op log stays aligned.
    eq.schedule(clk.clockEdge(eq.curTick(), cycles),
                [this, cb = std::move(cb)] {
                    eq.notifyProgress();
                    if (snap)
                        snap->record(tid, OpKind::CpuCompute, {});
                    cb();
                },
                EventPriority::Default, /*progress=*/true);
}

AwaitVoid
CpuCtx::compute(Cycles cycles)
{
    return AwaitVoid([this, cycles](std::function<void()> cb) {
        if (rec)
            rec->cpuCompute(tid, cycles);
        if (snap && snap->replaying()) {
            if (snap->replayNext(tid, OpKind::CpuCompute)) {
                cb();
            } else {
                snap->park(tid,
                           [this, cycles, cb = std::move(cb)]() mutable {
                               computeLive(cycles, std::move(cb));
                           });
            }
            return;
        }
        if (snap && snap->draining()) {
            snap->park(tid, [this, cycles, cb = std::move(cb)]() mutable {
                computeLive(cycles, std::move(cb));
            });
            return;
        }
        computeLive(cycles, std::move(cb));
    });
}

AwaitVoid
CpuCtx::launchKernel(const GpuKernel &kernel)
{
    panic_if(!dispatcher, "CpuCtx has no kernel dispatcher");
    if (pdesShards) {
        // Doorbell to the GPU shard; the completion doorbell rings
        // back on this context's home shard.  Trace capture (rec) is
        // rejected under PDES, so no recording here.
        return AwaitVoid([this, kernel](std::function<void()> cb) {
            unsigned home = ShardGroup::currentShard();
            pdesShards->postCall(
                pdesGpuShard,
                [this, kernel, home, cb = std::move(cb)]() mutable {
                    dispatcher->launch(
                        kernel,
                        [this, home, cb = std::move(cb)]() mutable {
                            pdesShards->postCall(home, std::move(cb));
                        },
                        agentKey());
                });
        });
    }
    return AwaitVoid([this, kernel](std::function<void()> cb) {
        std::uint64_t ord =
            dispatcher->launch(kernel, std::move(cb), agentKey());
        if (rec)
            rec->kernelLaunch(tid, ord, kernel.numWorkgroups,
                              /*async=*/false);
    });
}

void
CpuCtx::kernelCompleted()
{
    if (--kernelsInFlight == 0 && kernelWaiter) {
        auto w = std::move(kernelWaiter);
        kernelWaiter = nullptr;
        w();
    }
}

void
CpuCtx::launchKernelAsync(const GpuKernel &kernel)
{
    panic_if(!dispatcher, "CpuCtx has no kernel dispatcher");
    ++kernelsInFlight;
    if (pdesShards) {
        // kernelsInFlight and kernelWaiter stay home-shard state:
        // the count bumps here (synchronously, on the issuing shard)
        // and drops in a completion doorbell posted back home.
        unsigned home = ShardGroup::currentShard();
        pdesShards->postCall(pdesGpuShard, [this, kernel, home] {
            dispatcher->launch(kernel,
                               [this, home] {
                                   pdesShards->postCall(
                                       home,
                                       [this] { kernelCompleted(); });
                               },
                               agentKey());
        });
        return;
    }
    std::uint64_t ord =
        dispatcher->launch(kernel,
                           [this] {
                               if (--kernelsInFlight == 0 && kernelWaiter) {
                                   auto w = std::move(kernelWaiter);
                                   kernelWaiter = nullptr;
                                   w();
                               }
                           },
                           agentKey());
    if (rec)
        rec->kernelLaunch(tid, ord, kernel.numWorkgroups, /*async=*/true);
}

AwaitVoid
CpuCtx::waitKernels()
{
    return AwaitVoid([this](std::function<void()> cb) {
        if (rec)
            rec->kernelWait(tid);
        if (kernelsInFlight == 0) {
            cb();
            return;
        }
        panic_if(kernelWaiter != nullptr, "concurrent waitKernels");
        kernelWaiter = std::move(cb);
    });
}

} // namespace hsc
