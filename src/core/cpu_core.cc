#include "core/cpu_core.hh"

#include "core/kernel_dispatch.hh"

namespace hsc
{

namespace
{
/** Per-thread code segments, away from the data heap. */
constexpr Addr CodeBase = 0x10000;
constexpr Addr CodeSegBytes = 0x2000;
} // namespace

CpuCtx::CpuCtx(unsigned thread_id, CorePairController &core_pair,
               unsigned core_idx, EventQueue &eq, ClockDomain clk,
               KernelDispatcher *dispatcher, bool inject_ifetches)
    : tid(thread_id), corePair(core_pair), coreIdx(core_idx), eq(eq),
      clk(clk), dispatcher(dispatcher), injectIfetches(inject_ifetches),
      codePc(CodeBase + thread_id * CodeSegBytes)
{
}

void
CpuCtx::maybeIfetch(std::function<void()> then)
{
    if (!injectIfetches || (opCount++ % 8) != 0) {
        then();
        return;
    }
    Addr pc = codePc;
    codePc = CodeBase + tid * CodeSegBytes +
             ((codePc + BlockSizeBytes) % CodeSegBytes);
    corePair.ifetch(coreIdx, pc, std::move(then));
}

Await<std::uint64_t>
CpuCtx::load(Addr addr, unsigned size)
{
    return Await<std::uint64_t>(
        [this, addr, size](std::function<void(std::uint64_t)> cb) {
            maybeIfetch([this, addr, size, cb = std::move(cb)] {
                corePair.load(coreIdx, addr, size, cb);
            });
        });
}

AwaitVoid
CpuCtx::store(Addr addr, std::uint64_t value, unsigned size)
{
    return AwaitVoid([this, addr, value, size](std::function<void()> cb) {
        maybeIfetch([this, addr, value, size, cb = std::move(cb)] {
            corePair.store(coreIdx, addr, size, value, cb);
        });
    });
}

Await<std::uint64_t>
CpuCtx::atomic(Addr addr, AtomicOp op, std::uint64_t operand,
               std::uint64_t operand2, unsigned size)
{
    return Await<std::uint64_t>(
        [this, addr, op, operand, operand2,
         size](std::function<void(std::uint64_t)> cb) {
            maybeIfetch([this, addr, op, operand, operand2, size,
                         cb = std::move(cb)] {
                corePair.atomic(coreIdx, addr, op, operand, operand2, size,
                                cb);
            });
        });
}

AwaitVoid
CpuCtx::compute(Cycles cycles)
{
    return AwaitVoid([this, cycles](std::function<void()> cb) {
        eq.schedule(clk.clockEdge(eq.curTick(), cycles),
                    [this, cb = std::move(cb)] {
                        eq.notifyProgress();
                        cb();
                    });
    });
}

AwaitVoid
CpuCtx::launchKernel(const GpuKernel &kernel)
{
    panic_if(!dispatcher, "CpuCtx has no kernel dispatcher");
    return AwaitVoid([this, kernel](std::function<void()> cb) {
        dispatcher->launch(kernel, std::move(cb));
    });
}

void
CpuCtx::launchKernelAsync(const GpuKernel &kernel)
{
    panic_if(!dispatcher, "CpuCtx has no kernel dispatcher");
    ++kernelsInFlight;
    dispatcher->launch(kernel, [this] {
        if (--kernelsInFlight == 0 && kernelWaiter) {
            auto w = std::move(kernelWaiter);
            kernelWaiter = nullptr;
            w();
        }
    });
}

AwaitVoid
CpuCtx::waitKernels()
{
    return AwaitVoid([this](std::function<void()> cb) {
        if (kernelsInFlight == 0) {
            cb();
            return;
        }
        panic_if(kernelWaiter != nullptr, "concurrent waitKernels");
        kernelWaiter = std::move(cb);
    });
}

} // namespace hsc
