/**
 * @file
 * HsaSystem — the public entry point of the library.
 *
 * Builds the full heterogeneous unified-memory system of Fig. 1 (CPU
 * CorePairs, GPU CUs with TCP/TCC/SQC, DMA engine, system-level
 * directory + LLC, main memory) from a SystemConfig, hosts workload
 * coroutines, and runs the simulation with a deadlock watchdog.
 *
 * Typical use:
 * @code
 *   SystemConfig cfg = sharerTrackingConfig();
 *   HsaSystem sys(cfg);
 *   sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
 *       co_await cpu.store(0x100000, 42);
 *       co_await cpu.launchKernel(myKernel);
 *   });
 *   sys.run();
 * @endcode
 */

#ifndef HSC_CORE_HSA_SYSTEM_HH
#define HSC_CORE_HSA_SYSTEM_HH

#include <atomic>
#include <memory>
#include <ostream>
#include <vector>

#include "core/cpu_core.hh"
#include "core/dma_engine.hh"
#include "core/gpu_cu.hh"
#include "core/kernel_dispatch.hh"
#include "core/system_config.hh"
#include "mem/main_memory.hh"
#include "protocol/dir/directory.hh"
#include "sim/coherence_checker.hh"
#include "sim/fault_injector.hh"
#include "sim/introspect.hh"
#include "sim/shard.hh"

namespace hsc
{

class JsonValue;
class ObsTracer;
class ObsSampler;
class SnapshotCoordinator;
class TraceRecorder;

/** Aggregate reliable-transport activity across every link. */
struct TransportSummary
{
    bool enabled = false;
    std::uint64_t retransmits = 0;
    std::uint64_t ackFrames = 0;
    std::uint64_t dupDrops = 0;
    std::uint64_t corruptDrops = 0;
    std::uint64_t wireDrops = 0;
    unsigned degradedLinks = 0;
};

/**
 * A fully-assembled simulated APU.
 */
class HsaSystem
{
  public:
    using CpuThreadFn = std::function<SimTask(CpuCtx &)>;

    explicit HsaSystem(const SystemConfig &cfg);
    ~HsaSystem();

    HsaSystem(const HsaSystem &) = delete;
    HsaSystem &operator=(const HsaSystem &) = delete;

    /** @{ Workload construction. */

    /** Register a CPU thread; threads round-robin over the 8 cores. */
    void addCpuThread(CpuThreadFn fn);

    /** Bump-allocate @p bytes of the unified heap (block-aligned). */
    Addr alloc(std::uint64_t bytes);

    /** Functional word write for input initialisation. */
    template <typename T>
    void
    writeWord(Addr addr, T v)
    {
        memFor(addr).functionalWriteWord<T>(addr, v);
        noteMemInit(addr, unsigned(sizeof(T)), std::uint64_t(v));
    }

    /**
     * Functional word read of the *system-visible* value: a present
     * LLC copy wins over memory (it may be dirty in llcWB mode).
     */
    template <typename T>
    T
    readWord(Addr addr)
    {
        if (const DataBlock *blk = dirFor(addr).llc().peek(addr)) {
            notePoisonRead(addr, *blk);
            return blk->get<T>(blockOffset(addr));
        }
        DataBlock blk = memFor(addr).functionalRead(blockAlign(addr));
        notePoisonRead(addr, blk);
        return blk.get<T>(blockOffset(addr));
    }
    /** @} */

    /**
     * Run every registered thread to completion and drain the memory
     * system.
     *
     * @return true on success; false if the watchdog detected no
     *         forward progress (a deadlock) or @p max_cycles elapsed —
     *         in which case hangReport() describes what wedged.
     */
    bool run(Cycles max_cycles = 500'000'000);

    /**
     * Diagnosis of the last failed run(): the oldest stalled
     * transactions, links holding undelivered messages, controller
     * state summaries and livelock diagnostics.  kind == None after a
     * successful run.
     */
    const HangReport &hangReport() const { return lastHang; }

    /**
     * The runtime coherence sanitizer (null when SystemConfig::check
     * is off).  After a failed run, violations() has the reports.
     */
    CoherenceChecker *checker() { return checkerPtr.get(); }
    const CoherenceChecker *checker() const { return checkerPtr.get(); }

    /**
     * The observability tracer (null unless SystemConfig::obs is
     * enabled).  run() collects it before returning, so spans(),
     * report() and the Chrome-trace exporter are ready afterwards.
     */
    ObsTracer *tracer() { return tracerPtr.get(); }
    const ObsTracer *tracer() const { return tracerPtr.get(); }

    /** The interval sampler (null unless obs.samplingInterval > 0). */
    ObsSampler *sampler() { return samplerPtr.get(); }
    const ObsSampler *sampler() const { return samplerPtr.get(); }

    /**
     * One-line cause of the last failed run(), in priority order:
     * checker violation, caught SimError (fatal), hang report.
     * Empty after a successful run.
     */
    std::string failReason() const;

    /** The SimError message caught by run(), if any ("" otherwise). */
    const std::string &lastSimError() const { return lastError; }

    /**
     * Structured escalation of a link that exhausted its transport
     * retry budget during the last run() (DESIGN.md §10).
     * degraded() is false after a successful run.
     */
    const DegradedReport &degradedReport() const
    {
        return lastDegraded;
    }

    /** Reliable-transport activity totals (all-zero when disabled). */
    TransportSummary transportSummary() const;

    /** @{ Storage-fault model (SystemConfig::storageFault,
     *  DESIGN.md §12).  The injector exists iff enabled. */
    StorageFaultInjector *storageFault() { return storagePtr.get(); }
    const StorageFaultInjector *storageFault() const
    {
        return storagePtr.get();
    }

    /** Storage-fault counters (enabled == false when off). */
    StorageSummary storageSummary() const;

    /**
     * Structured containment outcome of the last run(): set when a
     * poisoned line was consumed or directory metadata took an
     * uncorrectable.  contained() is false after a successful run.
     */
    const ContainmentReport &containmentReport() const
    {
        return lastContainment;
    }
    /** @} */

    /** @{ Checkpoint/restore (SystemConfig::ckpt, DESIGN.md §11).
     *  The coordinator exists iff checkpointing is enabled. */
    SnapshotCoordinator *snapshot() { return snapCoord.get(); }

    /** Tick of the most recent successful checkpoint (0 = none). */
    Tick lastCheckpointTick() const { return lastCkptTick; }

    /** Checkpoints taken during run() so far. */
    std::uint64_t checkpointsTaken() const { return statCkpts.value(); }

    /** Sealed text of the most recent checkpoint ("" = none).  Kept
     *  even when ckpt.outPath is empty, and re-emitted as the
     *  last-gasp file when a run fails. */
    const std::string &lastSnapshotText() const { return lastSnapText; }

    /** Take a checkpoint *now*; only legal at quiesce (e.g. after a
     *  successful run()).  Returns the sealed snapshot text. */
    std::string checkpointNow();
    /** @} */

    /** @{ Memory-trace capture (SystemConfig::trace, DESIGN.md §13).
     *  The owned recorder exists iff trace.outPath is set; tests can
     *  attach an external (in-memory) recorder instead.  Attach
     *  before addCpuThread and before any writeWord so the MemInit
     *  prologue and every thread are captured. */
    void attachTraceRecorder(TraceRecorder *r);
    TraceRecorder *traceRecorder() { return traceRecPtr; }

    /** FNV-1a over the little-endian 8-byte words of [lo, hi): the
     *  system-visible heap image (L2 copy over LLC copy over memory).
     *  Quiescent-only; reads nothing through the timing paths. */
    std::uint64_t imageHash(Addr lo, Addr hi);

    /** The unified heap managed by alloc(). */
    Addr heapBase() const { return HeapBase; }
    Addr heapEnd() const { return heapNext; }

    unsigned numCpuThreads() const
    {
        return unsigned(cpuCtxs.size());
    }
    /** @} */

    /** Walk every introspectable controller and link *now*. */
    HangReport buildHangReport(HangReport::Kind kind) const;

    /** Collect every currently-degraded link *now*. */
    DegradedReport buildDegradedReport() const;

    /** CPU cycles elapsed during run() — the paper's headline metric. */
    Cycles cpuCycles() const { return cyclesElapsed; }

    /** Print the instantiated configuration (gem5 config.ini style). */
    void dumpConfig(std::ostream &os) const;

    /** @{ Component access. */
    EventQueue &eventQueue() { return eq; }
    StatRegistry &stats() { return registry; }

    /** The shard container; one shard (queue(0) == eventQueue())
     *  unless SystemConfig::pdes is enabled. */
    ShardGroup &shardGroup() { return *shards; }
    unsigned numShards() const { return shards->numShards(); }

    /** Host worker threads the last PDES run used (0 = never ran /
     *  sequential mode) — printed in the PASS line. */
    unsigned pdesThreadsUsed() const { return pdesThreads_; }

    /** Events executed so far, summed across every shard queue. */
    std::uint64_t eventsExecuted() const
    {
        return shards->totalExecuted();
    }

    /** Main memory (channel 0; see memoryFor for interleaving). */
    MainMemory &memory() { return *mems[0]; }

    /** The DRAM channel owning @p addr (block % memChannels). */
    MainMemory &memoryFor(Addr addr) { return memFor(addr); }
    unsigned numMemChannels() const { return unsigned(mems.size()); }
    DirectoryController &directory() { return *dirs[0]; }
    DirectoryController &dirBank(unsigned b) { return *dirs.at(b); }
    unsigned numDirBanks() const { return unsigned(dirs.size()); }

    /** The bank owning @p addr (bank = block index mod banks). */
    DirectoryController &
    dirFor(Addr addr)
    {
        return *dirs[std::size_t(addr >> BlockShift) % dirs.size()];
    }
    CorePairController &corePair(unsigned i) { return *corePairs.at(i); }
    unsigned numCorePairs() const { return cfg.topo.numCorePairs; }
    TccController &tcc() { return *tccCtrl; }
    GpuCu &cu(unsigned i) { return *cus.at(i); }
    unsigned numCus() const { return cfg.numCus; }
    SqcController &sqc() { return *sqcCtrl; }
    DmaEngine &dma() { return *dmaEngine; }
    KernelDispatcher &dispatcher() { return *kernelDispatcher; }
    const SystemConfig &config() const { return cfg; }
    ClockDomain cpuClock() const { return cpuClk; }
    ClockDomain gpuClock() const { return gpuClk; }
    /** @} */

  private:
    void armWatchdog();
    void armSampler();
    void armScrubber();
    void collectObs();
    void validateConfig() const;

    /** Parallel run loop (core/hsa_system_pdes.cc). */
    bool runPdes(Cycles max_cycles);

    MainMemory &
    memFor(Addr addr)
    {
        // memChannels divides numDirBanks, so the channel of a block
        // agrees with its directory bank's channel assignment.
        return *mems[std::size_t(addr >> BlockShift) % mems.size()];
    }

    /** Verification reads are a consumption boundary too: reading a
     *  poisoned result block must contain, not silently compare. */
    void notePoisonRead(Addr addr, const DataBlock &blk);

    /** Trace capture of a functional heap init (no-op when off). */
    void noteMemInit(Addr addr, unsigned size, std::uint64_t value);

    /** Seal the capture once (with the run's reference outcome on
     *  success; without one from the destructor after a failure). */
    void sealTrace(bool with_reference);

    /** @{ Checkpoint machinery (hsa_system_ckpt.cc). */
    void armCheckpoints();
    void scheduleCkptTrigger();
    bool quiescedNow() const;
    bool crashNow() const;
    /** crashNow() for PDES: max shard clock / group-wide event count,
     *  evaluated at window barriers via the fail predicate. */
    bool pdesCrashNow() const;
    /** Most advanced shard clock (== eq.curTick() sequentially). */
    Tick maxShardTick() const;
    /** Self-rearming per-shard scrub sweep (PDES armScrubber). */
    void armShardScrubber(unsigned s, Tick interval);
    void doCheckpoint();
    std::string buildSnapshotText() const;
    bool restoreFrom(const std::string &path);
    void writeLastGasp();
    void serializeStats(JsonValue &out) const;
    void restoreStats(const JsonValue &in);
    /** @} */

    SystemConfig cfg;
    /** The shard container: one shard in sequential mode (whose
     *  queue(0) is the classic global queue), one per directory
     *  bank / CorePair / GPU complex / DMA under PDES. */
    std::unique_ptr<ShardGroup> shards;
    /** Shard 0's queue — *the* event queue in sequential mode; under
     *  PDES only the shard-0 components schedule here. */
    EventQueue &eq;
    StatRegistry registry;
    ClockDomain cpuClk;
    ClockDomain gpuClk;

    /** @{ PDES shard layout (all 0 when pdes is off): directory bank
     *  b => shard b; CorePair i => banks + i; the GPU complex (TCC,
     *  SQC, CUs, dispatcher) => one shard; DMA => one shard. */
    bool pdesOn = false;
    unsigned bankShard0 = 0;   ///< shard of bank 0 (= 0)
    unsigned gpuShardIdx = 0;
    unsigned dmaShardIdx = 0;
    unsigned pdesThreads_ = 0; ///< threads used by the last runPdes()
    bool pdesRanOnce = false;
    /** Retirement tick of the latest task to finish (atomic max),
     *  defining cyclesElapsed exactly as the sequential kernel does:
     *  the tick at which the last task retired. */
    std::atomic<Tick> retireTick{0};
    /** @} */

    std::unique_ptr<FaultInjector> faultInjector;
    std::unique_ptr<TraceRecorder> traceRec; ///< owned capture sink
    TraceRecorder *traceRecPtr = nullptr;    ///< owned or attached
    bool traceSealed = false;
    std::unique_ptr<StorageFaultInjector> storagePtr;
    std::unique_ptr<SnapshotCoordinator> snapCoord;
    std::unique_ptr<CoherenceChecker> checkerPtr;
    std::unique_ptr<ObsTracer> tracerPtr;
    std::unique_ptr<ObsSampler> samplerPtr;

    /** DRAM channels; [b % memChannels] serves directory bank b.
     *  One channel (".mem") unless configured otherwise. */
    std::vector<std::unique_ptr<MainMemory>> mems;
    std::vector<std::unique_ptr<DirectoryController>> dirs;

    /** Channels, indexed [bank * numClients + client]. */
    std::vector<std::unique_ptr<MessageBuffer>> toDir;
    std::vector<std::unique_ptr<MessageBuffer>> fromDir;
    /** Per-client bank router used as the client's directory sink. */
    std::vector<std::unique_ptr<BankedSink>> clientSinks;

    std::vector<std::unique_ptr<CorePairController>> corePairs;
    std::unique_ptr<TccController> tccCtrl;
    std::unique_ptr<SqcController> sqcCtrl;
    std::vector<std::unique_ptr<GpuCu>> cus;
    std::unique_ptr<DmaController> dmaCtrl;
    std::unique_ptr<DmaEngine> dmaEngine;
    std::unique_ptr<KernelDispatcher> kernelDispatcher;

    /** Everything the watchdog can interrogate for a HangReport. */
    std::vector<const ProtocolIntrospect *> introspectables;

    std::vector<std::unique_ptr<CpuCtx>> cpuCtxs;
    std::vector<CpuThreadFn> threadFns;

    HangReport lastHang;
    DegradedReport lastDegraded;
    ContainmentReport lastContainment;
    std::string lastError;

    static constexpr Addr HeapBase = 0x100000;
    Addr heapNext = HeapBase;
    /** Atomic only for the PDES path (tasks retire on any shard);
     *  the sequential path is single-threaded as before. */
    std::atomic<unsigned> liveTasks{0};
    bool watchdogTripped = false;
    /** Atomic for the PDES path: set by a transport's onDegraded on
     *  whichever worker runs the sending shard, read by the fail
     *  predicate at window barriers.  Sequential code keeps using it
     *  as a plain bool. */
    std::atomic<bool> degradedTripped{false};
    bool crashTripped = false;
    bool running = false;
    Cycles cyclesElapsed = 0;

    /** @{ Checkpoint state. */
    Tick runStartTick = 0;
    Tick lastCkptTick = 0;       ///< 0 = no checkpoint yet
    std::string lastSnapText;    ///< sealed text of the latest snapshot
    Tick ckptPeriodTicks = 0;    ///< 0 = no periodic cadence
    Tick ckptNextPeriodic = 0;   ///< absolute tick of the next periodic
    std::vector<Tick> ckptPendingTicks; ///< one-shots, ascending
    bool restoredOnce = false;   ///< the restorePath was consumed
    bool ckptArmedOnce = false;  ///< cadence belongs to the first run
    bool ckptActive = false;     ///< triggers may fire in this run
    /** @} */

    Counter statSimTicks, statCpuCycles;
    /** Registered only when checkpointing is enabled, so the clean
     *  path's stats namespace (and statHash) is untouched. */
    Counter statCkpts, statCkptOps;
};

} // namespace hsc

#endif // HSC_CORE_HSA_SYSTEM_HH
