#include "core/run_report.hh"

#include <cstdio>
#include <iomanip>

namespace hsc
{

RunMetrics
collectMetrics(HsaSystem &sys, const std::string &workload, bool ok)
{
    RunMetrics m;
    const std::string &n = sys.config().name;
    StatRegistry &reg = sys.stats();
    m.config = sys.config().label;
    m.workload = workload;
    m.ok = ok;
    m.cycles = sys.cpuCycles();
    // One channel is the classic flat ".mem"; more are ".mem0..k" and
    // the prefix match sums them all.
    if (sys.numMemChannels() == 1) {
        m.memReads = reg.counter(n + ".mem.reads");
        m.memWrites = reg.counter(n + ".mem.writes");
    } else {
        m.memReads = reg.sumMatching(n + ".mem", ".reads");
        m.memWrites = reg.sumMatching(n + ".mem", ".writes");
    }
    if (sys.config().pdes.enabled) {
        m.pdesThreads = sys.pdesThreadsUsed();
        m.pdesShards = sys.numShards();
    }
    // Directory stats aggregate across banks ("system.dir" matches
    // both the single "system.dir.*" and the banked "system.dirK.*").
    m.probes = reg.sumMatching(n + ".dir", ".probesSent");
    m.llcHits = reg.sumMatching(n + ".dir", ".llc.readHits");
    m.llcReads = reg.sumMatching(n + ".dir", ".llc.reads");
    m.dirRequests = reg.sumMatching(n + ".dir", ".requests");
    m.dirEvictions = reg.sumMatching(n + ".dir", ".dirEvictions");
    m.earlyResponses = reg.sumMatching(n + ".dir", ".earlyResponses");
    m.readOnlyElided = reg.sumMatching(n + ".dir", ".readOnlyElided");
    if (!ok)
        m.failReason = sys.failReason();
    m.transitionsChecked = reg.counter(n + ".checker.transitionsChecked");
    m.blocksShadowed = reg.counter(n + ".checker.blocksShadowed");
    return m;
}

double
pctSaved(double baseline, double value)
{
    if (baseline == 0)
        return 0.0;
    return 100.0 * (baseline - value) / baseline;
}

void
TableWriter::header(const std::vector<std::string> &cols)
{
    widths.clear();
    for (const auto &c : cols)
        widths.push_back(std::max<std::size_t>(c.size() + 2, 14));
    row(cols);
    rule();
}

void
TableWriter::row(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::size_t w = i < widths.size() ? widths[i] : 12;
        os << std::left << std::setw(int(w)) << cells[i];
    }
    os << '\n';
}

void
TableWriter::rule()
{
    std::size_t total = 0;
    for (auto w : widths)
        total += w;
    os << std::string(total, '-') << '\n';
}

std::string
TableWriter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TableWriter::fmt(std::uint64_t v)
{
    return std::to_string(v);
}

void
printRunSummary(std::ostream &os, const RunMetrics &m)
{
    os << m.workload << " [" << m.config << "] "
       << (m.ok ? "OK" : "FAILED") << "  cycles=" << m.cycles
       << " memR=" << m.memReads << " memW=" << m.memWrites
       << " probes=" << m.probes << " llcHit=" << m.llcHits << "/"
       << m.llcReads;
    if (m.pdesShards)
        os << " pdes=" << m.pdesThreads << "thr/" << m.pdesShards
           << "sh";
    os << '\n';
    if (!m.ok && !m.failReason.empty())
        os << "  cause: " << m.failReason << '\n';
}

} // namespace hsc
