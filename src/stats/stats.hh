/**
 * @file
 * A small named-statistics framework.
 *
 * Controllers register scalar counters and histograms with a
 * StatRegistry owned by the system; benches and tests query them by
 * hierarchical name ("dir.probesSent") and the registry can dump a
 * formatted report, mirroring gem5's stats.txt.
 */

#ifndef HSC_STATS_STATS_HH
#define HSC_STATS_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace hsc
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    Counter() = default;

    void operator++() { ++val; }
    void operator++(int) { ++val; }
    void operator+=(std::uint64_t n) { val += n; }

    std::uint64_t value() const { return val; }
    void reset() { val = 0; }

    /** Snapshot restore: overwrite with a checkpointed value. */
    void restore(std::uint64_t v) { val = v; }

  private:
    std::uint64_t val = 0;
};

/** A fixed-bucket histogram with overflow bucket and running mean. */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket in sample units.
     * @param num_buckets Number of regular buckets before overflow.
     */
    explicit Histogram(std::uint64_t bucket_width = 16,
                       std::size_t num_buckets = 32)
        : width(bucket_width), buckets(num_buckets + 1, 0)
    {}

    void
    sample(std::uint64_t v)
    {
        std::size_t idx = v / width;
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        ++buckets[idx];
        ++count;
        total += v;
        if (v > maxSample)
            maxSample = v;
    }

    std::uint64_t samples() const { return count; }
    std::uint64_t sum() const { return total; }
    std::uint64_t max() const { return maxSample; }

    double
    mean() const
    {
        return count ? double(total) / double(count) : 0.0;
    }

    const std::vector<std::uint64_t> &raw() const { return buckets; }
    std::uint64_t bucketWidth() const { return width; }

    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        count = total = maxSample = 0;
    }

    /** Snapshot restore: overwrite the full histogram state.  The
     *  bucket vector must match this histogram's shape. */
    void restore(const std::vector<std::uint64_t> &raw_buckets,
                 std::uint64_t samples, std::uint64_t sum,
                 std::uint64_t max_sample);

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t total = 0;
    std::uint64_t maxSample = 0;
};

/**
 * Flat registry of named statistics.  Objects register pointers to
 * counters/histograms they own; the registry does not own the stats.
 *
 * Threading (DESIGN.md §14): counters are plain uint64 on purpose.
 * Registration happens at system construction (single-threaded), and
 * during a PDES run each counter is written only by the worker thread
 * executing its owning shard — no stat is shared between shards
 * (cross-shard MessageBuffers split their counters by writer side:
 * send counts on the sender shard, delivery counts on the receiver).
 * Registry reads (snapshot/dump/sum*) happen outside run(), after the
 * workers have joined, so the dump is a pure function of the
 * simulation — identical at 1 worker thread and at N, which
 * tests/core/pdes_identity_test.cc asserts byte-for-byte.
 */
class StatRegistry
{
  public:
    /** Register a counter under @p name; the name must be unique. */
    void addCounter(const std::string &name, Counter *c);

    /** Register a histogram under @p name; the name must be unique. */
    void addHistogram(const std::string &name, Histogram *h);

    /** Look up a counter value; returns 0 for unknown names. */
    std::uint64_t counter(const std::string &name) const;

    /** True when @p name is a registered counter. */
    bool hasCounter(const std::string &name) const;

    /** Look up a registered histogram; nullptr when unknown. */
    const Histogram *histogram(const std::string &name) const;

    /**
     * Sum of all counters whose name matches @p prefix followed by
     * anything, e.g. sumCounters("corepair") adds all CorePairs' stats.
     */
    std::uint64_t sumCounters(const std::string &prefix) const;

    /**
     * Sum counters whose name starts with @p prefix and ends with
     * @p suffix — aggregates one statistic across directory banks
     * ("system.dir" + ".probesSent" matches both "system.dir.*" and
     * "system.dir0.*").
     */
    std::uint64_t sumMatching(const std::string &prefix,
                              const std::string &suffix) const;

    /** Reset every registered statistic. */
    void resetAll();

    /** Point-in-time value of every registered counter, by name. */
    using Snapshot = std::map<std::string, std::uint64_t>;
    Snapshot snapshot() const;

    /**
     * Snapshot restore: overwrite every registered counter from
     * @p values.  The name sets must match exactly — a counter in only
     * one of the two means the restoring system was built from a
     * different configuration, which is a SimError, not a silent
     * partial restore.
     */
    void restoreCounters(const Snapshot &values);

    /** All registered histograms (sorted by name), for serialization. */
    std::vector<std::pair<std::string, Histogram *>> histogramList() const;

    /**
     * Per-counter increment since @p baseline, then advance
     * @p baseline to the current values.  Counters registered after
     * the baseline was taken appear with their full value.  Drives
     * the observability sampler's interval time series.
     */
    Snapshot snapshotDelta(Snapshot &baseline) const;

    /**
     * Dump "name value" lines sorted by name; when @p prefix is
     * non-empty only names starting with it are printed.
     */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** All registered counter names (sorted). */
    std::vector<std::string> counterNames() const;

  private:
    std::map<std::string, Counter *> counters;
    std::map<std::string, Histogram *> histograms;
};

} // namespace hsc

#endif // HSC_STATS_STATS_HH
