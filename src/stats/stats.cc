#include "stats/stats.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hsc
{

void
StatRegistry::addCounter(const std::string &name, Counter *c)
{
    auto [it, inserted] = counters.emplace(name, c);
    panic_if(!inserted, "duplicate counter name %s", name.c_str());
}

void
StatRegistry::addHistogram(const std::string &name, Histogram *h)
{
    auto [it, inserted] = histograms.emplace(name, h);
    panic_if(!inserted, "duplicate histogram name %s", name.c_str());
}

std::uint64_t
StatRegistry::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second->value();
}

bool
StatRegistry::hasCounter(const std::string &name) const
{
    return counters.count(name) != 0;
}

const Histogram *
StatRegistry::histogram(const std::string &name) const
{
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : it->second;
}

std::uint64_t
StatRegistry::sumCounters(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters.lower_bound(prefix);
         it != counters.end() && it->first.compare(0, prefix.size(),
                                                   prefix) == 0;
         ++it) {
        sum += it->second->value();
    }
    return sum;
}

std::uint64_t
StatRegistry::sumMatching(const std::string &prefix,
                          const std::string &suffix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters.lower_bound(prefix);
         it != counters.end() && it->first.compare(0, prefix.size(),
                                                   prefix) == 0;
         ++it) {
        const std::string &name = it->first;
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            sum += it->second->value();
        }
    }
    return sum;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, h] : histograms)
        h->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << ' ' << c->value() << '\n';
    for (const auto &[name, h] : histograms) {
        os << name << ".samples " << h->samples() << '\n';
        os << name << ".mean " << h->mean() << '\n';
        os << name << ".max " << h->max() << '\n';
    }
}

std::vector<std::string>
StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters.size());
    for (const auto &[name, c] : counters)
        names.push_back(name);
    return names;
}

} // namespace hsc
