#include "stats/stats.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{

void
Histogram::restore(const std::vector<std::uint64_t> &raw_buckets,
                   std::uint64_t samples, std::uint64_t sum,
                   std::uint64_t max_sample)
{
    if (raw_buckets.size() != buckets.size())
        throw SimError("histogram restore: bucket count mismatch",
                       "snapshot");
    buckets = raw_buckets;
    count = samples;
    total = sum;
    maxSample = max_sample;
}

void
StatRegistry::addCounter(const std::string &name, Counter *c)
{
    auto [it, inserted] = counters.emplace(name, c);
    panic_if(!inserted, "duplicate counter name %s", name.c_str());
}

void
StatRegistry::addHistogram(const std::string &name, Histogram *h)
{
    auto [it, inserted] = histograms.emplace(name, h);
    panic_if(!inserted, "duplicate histogram name %s", name.c_str());
}

std::uint64_t
StatRegistry::counter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second->value();
}

bool
StatRegistry::hasCounter(const std::string &name) const
{
    return counters.count(name) != 0;
}

const Histogram *
StatRegistry::histogram(const std::string &name) const
{
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : it->second;
}

std::uint64_t
StatRegistry::sumCounters(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters.lower_bound(prefix);
         it != counters.end() && it->first.compare(0, prefix.size(),
                                                   prefix) == 0;
         ++it) {
        sum += it->second->value();
    }
    return sum;
}

std::uint64_t
StatRegistry::sumMatching(const std::string &prefix,
                          const std::string &suffix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters.lower_bound(prefix);
         it != counters.end() && it->first.compare(0, prefix.size(),
                                                   prefix) == 0;
         ++it) {
        const std::string &name = it->first;
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            sum += it->second->value();
        }
    }
    return sum;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, h] : histograms)
        h->reset();
}

StatRegistry::Snapshot
StatRegistry::snapshot() const
{
    Snapshot snap;
    for (const auto &[name, c] : counters)
        snap.emplace_hint(snap.end(), name, c->value());
    return snap;
}

void
StatRegistry::restoreCounters(const Snapshot &values)
{
    if (values.size() != counters.size())
        throw SimError("snapshot restore: counter set mismatch (" +
                           std::to_string(values.size()) +
                           " checkpointed, " +
                           std::to_string(counters.size()) +
                           " registered — different configuration?)",
                       "snapshot");
    for (auto &[name, c] : counters) {
        auto it = values.find(name);
        if (it == values.end())
            throw SimError("snapshot restore: counter '" + name +
                               "' missing from checkpoint",
                           "snapshot");
        c->restore(it->second);
    }
}

std::vector<std::pair<std::string, Histogram *>>
StatRegistry::histogramList() const
{
    std::vector<std::pair<std::string, Histogram *>> out;
    out.reserve(histograms.size());
    for (const auto &[name, h] : histograms)
        out.emplace_back(name, h);
    return out;
}

StatRegistry::Snapshot
StatRegistry::snapshotDelta(Snapshot &baseline) const
{
    Snapshot delta;
    for (const auto &[name, c] : counters) {
        auto it = baseline.find(name);
        std::uint64_t prev = it == baseline.end() ? 0 : it->second;
        delta.emplace_hint(delta.end(), name, c->value() - prev);
    }
    baseline = snapshot();
    return delta;
}

void
StatRegistry::dump(std::ostream &os, const std::string &prefix) const
{
    auto matches = [&prefix](const std::string &name) {
        return prefix.empty() ||
               name.compare(0, prefix.size(), prefix) == 0;
    };
    for (const auto &[name, c] : counters) {
        if (matches(name))
            os << name << ' ' << c->value() << '\n';
    }
    for (const auto &[name, h] : histograms) {
        if (!matches(name))
            continue;
        os << name << ".samples " << h->samples() << '\n';
        os << name << ".mean " << h->mean() << '\n';
        os << name << ".max " << h->max() << '\n';
    }
}

std::vector<std::string>
StatRegistry::counterNames() const
{
    std::vector<std::string> names;
    names.reserve(counters.size());
    for (const auto &[name, c] : counters)
        names.push_back(name);
    return names;
}

} // namespace hsc
