#include "sim/introspect.hh"

#include <sstream>

namespace hsc
{

namespace
{

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

} // namespace

std::string
TxnInfo::toString() const
{
    std::ostringstream os;
    os << controller << ": " << hex(addr);
    if (txnId)
        os << " txn=" << txnId;
    os << " [" << state << "]";
    if (!waitingFor.empty())
        os << " waiting for " << waitingFor;
    os << ", age " << age << " ticks";
    return os.str();
}

std::string
LinkInfo::toString() const
{
    std::ostringstream os;
    os << name << ": " << depth << " undelivered, oldest " << oldestAge
       << " ticks";
    return os.str();
}

std::string_view
HangReport::kindName(Kind k)
{
    switch (k) {
      case Kind::None: return "none";
      case Kind::Watchdog: return "watchdog (no forward progress)";
      case Kind::CycleLimit: return "cycle limit reached";
      case Kind::DrainIncomplete: return "post-run drain incomplete";
    }
    return "?";
}

std::string
HangReport::brief() const
{
    if (!hung())
        return "run completed";
    std::ostringstream os;
    os << kindName(kind) << " at tick " << atTick << ", " << liveTasks
       << " live tasks";
    if (!diagnostics.empty()) {
        os << "; " << diagnostics.front();
    } else if (!stalledTxns.empty()) {
        os << "; oldest: " << stalledTxns.front().toString();
    } else if (!stalledLinks.empty()) {
        os << "; oldest link: " << stalledLinks.front().toString();
    }
    return os.str();
}

void
HangReport::print(std::ostream &os) const
{
    os << "==== hang report: " << kindName(kind) << " ====\n";
    os << "at tick " << atTick << " (last progress at "
       << lastProgressTick << "), " << liveTasks << " live tasks\n";
    if (lastCheckpointTick) {
        os << "last checkpoint at tick " << lastCheckpointTick << " ("
           << atTick - lastCheckpointTick << " ticks of work since)\n";
    }

    if (!diagnostics.empty()) {
        os << "-- diagnostics --\n";
        for (const std::string &d : diagnostics)
            os << "  " << d << '\n';
    }
    os << "-- in-flight transactions (oldest first, "
       << stalledTxns.size() << ") --\n";
    for (const TxnInfo &t : stalledTxns)
        os << "  " << t.toString() << '\n';
    if (stalledTxns.empty())
        os << "  (none)\n";

    os << "-- links with undelivered messages (" << stalledLinks.size()
       << ") --\n";
    for (const LinkInfo &l : stalledLinks)
        os << "  " << l.toString() << '\n';
    if (stalledLinks.empty())
        os << "  (none)\n";

    os << "-- controller state --\n";
    for (const std::string &s : controllerSummaries)
        os << "  " << s << '\n';
    if (!progressCounters.empty()) {
        os << "-- controller progress counters --\n";
        for (const std::string &s : progressCounters)
            os << "  " << s << '\n';
    }
    if (!shardProgress.empty()) {
        os << "-- shard progress --\n";
        for (const std::string &s : shardProgress)
            os << "  " << s << '\n';
    }
    os << "==== end hang report ====\n";
}

} // namespace hsc
