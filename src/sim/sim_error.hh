/**
 * @file
 * SimError — the exception type for user-reachable failures.
 *
 * Simulator code distinguishes two failure classes: programmer
 * invariants (panic(), std::logic_error — a protocol bug) and
 * user-reachable errors (bad configuration, an unbound link, a
 * watchdog-diagnosed hang).  The latter throw SimError so embedding
 * code — hsc_run, the benches, a test — can catch them, print the
 * context, and exit cleanly instead of aborting deep inside the event
 * loop.
 */

#ifndef HSC_SIM_SIM_ERROR_HH
#define HSC_SIM_SIM_ERROR_HH

#include <stdexcept>
#include <string>
#include <utility>

namespace hsc
{

/**
 * A user-reachable simulation error with an optional context tag
 * naming the subsystem or object that raised it.
 */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string &what, std::string context = "")
        : std::runtime_error(context.empty() ? what
                                             : context + ": " + what),
          ctx(std::move(context))
    {}

    /** Subsystem/object tag ("config", "link mem.toDir.b0c1", ...). */
    const std::string &context() const { return ctx; }

  private:
    std::string ctx;
};

} // namespace hsc

#endif // HSC_SIM_SIM_ERROR_HH
