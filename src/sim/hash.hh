/**
 * @file
 * Shared FNV-1a hashing.
 *
 * One definition of the FNV-1a constants and mixers for every user in
 * the tree: the reliable-transport frame checksum (mem/transport.cc),
 * snapshot-file integrity (sim/snapshot.cc), and the stat/image
 * hashes tests and benches reduce runs to.  Two flavours:
 *
 *  - fnvMix / word-wise: folds whole 64-bit values into the state,
 *    cheap on the transport hot path;
 *  - fnvBytes / byte-wise: the canonical FNV-1a over a byte string,
 *    used where the input is an opaque buffer (snapshot payloads).
 *
 * Both are pure functions of their input — hashes are stable across
 * platforms, processes and runs, which is what lets a checkpoint
 * written by one process be verified by another.
 */

#ifndef HSC_SIM_HASH_HH
#define HSC_SIM_HASH_HH

#include <cstddef>
#include <cstdint>

namespace hsc
{

inline constexpr std::uint64_t FnvOffsetBasis = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t FnvPrime = 0x100000001B3ull;

/** Fold one 64-bit word into the running hash (word-wise FNV-1a). */
inline void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    h ^= v;
    h *= FnvPrime;
}

/** Canonical byte-wise FNV-1a over @p n bytes, continuing from @p h. */
inline std::uint64_t
fnvBytes(const void *p, std::size_t n, std::uint64_t h = FnvOffsetBasis)
{
    const auto *b = static_cast<const unsigned char *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= FnvPrime;
    }
    return h;
}

} // namespace hsc

#endif // HSC_SIM_HASH_HH
