/**
 * @file
 * Error-reporting and debug-trace helpers in the gem5 style.
 *
 * panic() flags simulator bugs (throws std::logic_error); fatal()
 * flags user/config errors (throws SimError, catchable for a clean
 * exit).  Debug tracing is compiled in but gated on a runtime flag
 * set per category.
 */

#ifndef HSC_SIM_LOGGING_HH
#define HSC_SIM_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace hsc
{

/** Debug trace categories, enabled via Logger::enable(). */
enum class DebugFlag : std::uint32_t
{
    None = 0,
    Protocol = 1u << 0,
    Directory = 1u << 1,
    Cache = 1u << 2,
    Core = 1u << 3,
    Gpu = 1u << 4,
    Dma = 1u << 5,
    Workload = 1u << 6,
    All = ~0u,
};

/** Process-wide trace control; cheap to query, off by default. */
class Logger
{
  public:
    static void enable(DebugFlag f);
    static void disable(DebugFlag f);
    static bool enabled(DebugFlag f);

    /** printf-style trace line with tick prefix. */
    static void trace(DebugFlag f, std::uint64_t tick, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

  private:
    static std::uint32_t flags;
};

/** Throw std::logic_error: an internal simulator invariant failed. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Throw SimError: the user asked for something unsupported. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning and continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** panic() when @p cond holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) [[unlikely]]                                              \
            ::hsc::panic(__VA_ARGS__);                                      \
    } while (0)

/** fatal() when @p cond holds. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) [[unlikely]]                                              \
            ::hsc::fatal(__VA_ARGS__);                                      \
    } while (0)

#define HSC_TRACE(flag, tick, ...)                                          \
    do {                                                                    \
        if (::hsc::Logger::enabled(::hsc::DebugFlag::flag)) [[unlikely]]    \
            ::hsc::Logger::trace(::hsc::DebugFlag::flag, tick,              \
                                 __VA_ARGS__);                              \
    } while (0)

} // namespace hsc

#endif // HSC_SIM_LOGGING_HH
