#include "sim/clocked.hh"
