/**
 * @file
 * Clock-domain helper mixin.
 *
 * The simulator models two clock domains (CPU at 3.5 GHz, GPU at
 * 1.1 GHz) over a picosecond tick, per Table III of the paper.  The
 * uncore (directory, LLC, memory) runs on the CPU clock.
 */

#ifndef HSC_SIM_CLOCKED_HH
#define HSC_SIM_CLOCKED_HH

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace hsc
{

/** A clock domain described by its period in ticks (picoseconds). */
class ClockDomain
{
  public:
    explicit ClockDomain(Tick period_ps) : period(period_ps) {}

    /** Construct from a frequency in MHz (ticks are picoseconds). */
    static ClockDomain
    fromMHz(std::uint64_t mhz)
    {
        return ClockDomain(1'000'000 / mhz);
    }

    Tick periodTicks() const { return period; }

    /** Convert a cycle count in this domain to ticks. */
    Tick toTicks(Cycles c) const { return c * period; }

    /** Cycles elapsed in this domain at absolute tick @p t. */
    Cycles toCycles(Tick t) const { return t / period; }

    /**
     * First clock edge at or after tick @p now, plus @p c further
     * cycles.
     */
    Tick
    clockEdge(Tick now, Cycles c = 0) const
    {
        Tick edge = ((now + period - 1) / period) * period;
        return edge + c * period;
    }

  private:
    Tick period;
};

/**
 * A SimObject that lives in a clock domain and schedules itself on
 * cycle boundaries.
 */
class Clocked : public SimObject
{
  public:
    Clocked(std::string name, EventQueue &eq, ClockDomain domain)
        : SimObject(std::move(name), eq), domain(domain)
    {}

    const ClockDomain &clock() const { return domain; }

    /** Current cycle count of this object's domain. */
    Cycles curCycle() const { return domain.toCycles(curTick()); }

    /** Schedule @p cb at the clock edge @p c cycles from now.  When
     *  @p progress is set the event marks watchdog forward progress as
     *  it fires (see EventQueue::schedule). */
    void
    scheduleCycles(Cycles c, EventQueue::Callback cb,
                   EventPriority prio = EventPriority::Default,
                   bool progress = false)
    {
        eq.schedule(domain.clockEdge(curTick(), c), std::move(cb), prio,
                    progress);
    }

  private:
    ClockDomain domain;
};

} // namespace hsc

#endif // HSC_SIM_CLOCKED_HH
