#include "sim/snapshot.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/hash.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{

namespace
{
constexpr const char *SnapshotMagic = "hsc-snapshot";
constexpr std::uint64_t SnapshotVersion = 1;
} // namespace

const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::CpuLoad: return "cpu.load";
      case OpKind::CpuStore: return "cpu.store";
      case OpKind::CpuAmo: return "cpu.amo";
      case OpKind::CpuCompute: return "cpu.compute";
      case OpKind::GpuVload: return "gpu.vload";
      case OpKind::GpuVstore: return "gpu.vstore";
      case OpKind::GpuLoad: return "gpu.load";
      case OpKind::GpuStore: return "gpu.store";
      case OpKind::GpuAmo: return "gpu.amo";
      case OpKind::GpuCompute: return "gpu.compute";
      case OpKind::GpuAcquire: return "gpu.acquire";
      case OpKind::GpuRelease: return "gpu.release";
      case OpKind::DmaRead: return "dma.read";
      case OpKind::DmaWrite: return "dma.write";
      case OpKind::DmaCopy: return "dma.copy";
    }
    return "?";
}

std::uint64_t
OpRecord::word(std::size_t i) const
{
    panic_if(i >= words.size(),
             "op record %s has %zu result words, asked for word %zu",
             opKindName(kind), words.size(), i);
    return words[i];
}

void
SnapshotCoordinator::beginDrain()
{
    panic_if(draining_ || replaying_,
             "beginDrain in drain/replay mode");
    draining_ = true;
}

void
SnapshotCoordinator::endDrain()
{
    panic_if(!draining_, "endDrain outside a drain");
    draining_ = false;
}

void
SnapshotCoordinator::record(std::uint64_t agent, OpKind kind,
                            const std::uint64_t *words, std::size_t n)
{
    AgentLog &l = logs_[agent];
    OpRecord r;
    r.kind = kind;
    r.words.assign(words, words + n);
    l.ops.push_back(std::move(r));
    ++loggedOps_;
}

const OpRecord *
SnapshotCoordinator::replayNext(std::uint64_t agent, OpKind kind)
{
    panic_if(!replaying_, "replayNext outside replay");
    AgentLog &l = logs_[agent];
    if (l.replayPos == l.ops.size())
        return nullptr;
    const OpRecord &r = l.ops[l.replayPos];
    panic_if(r.kind != kind,
             "snapshot replay diverged: agent %#llx op %zu was "
             "recorded as %s but the coroutine awaited %s "
             "(corrupt snapshot or non-deterministic workload)",
             (unsigned long long)agent, l.replayPos,
             opKindName(r.kind), opKindName(kind));
    ++l.replayPos;
    return &r;
}

void
SnapshotCoordinator::park(std::uint64_t agent,
                          std::function<void()> resume)
{
    panic_if(!draining_ && !replaying_,
             "agent %#llx parked outside drain/replay",
             (unsigned long long)agent);
    auto ins = parked_.emplace(agent, std::move(resume));
    panic_if(!ins.second, "agent %#llx parked twice",
             (unsigned long long)agent);
}

void
SnapshotCoordinator::releaseGates(EventQueue &eq)
{
    // std::map iterates in ascending key order; one release event per
    // agent at the current tick, all Default priority, so the resumed
    // issue order is a pure function of the agent-key set.
    for (auto &kv : parked_) {
        eq.schedule(eq.curTick(), std::move(kv.second),
                    EventPriority::Default, /*progress=*/true);
    }
    parked_.clear();
}

std::uint64_t
SnapshotCoordinator::assignLaunchOrdinal(std::uint64_t agent)
{
    std::uint64_t ord = nextOrdinal_++;
    launches_[agent].ordinals.push_back(ord);
    return ord;
}

std::uint64_t
SnapshotCoordinator::takeLaunchOrdinal(std::uint64_t agent)
{
    panic_if(!replaying_, "takeLaunchOrdinal outside replay");
    LaunchSeq &s = launches_[agent];
    panic_if(s.replayPos == s.ordinals.size(),
             "snapshot replay diverged: agent %#llx launched more "
             "kernels than were recorded",
             (unsigned long long)agent);
    return s.ordinals[s.replayPos++];
}

void
SnapshotCoordinator::serializeLogs(JsonValue &out) const
{
    out.set("nextOrdinal", JsonValue(nextOrdinal_));
    JsonValue agents = JsonValue::makeArray();
    for (const auto &kv : logs_) {
        JsonValue a = JsonValue::makeObject();
        a.set("key", JsonValue(kv.first));
        JsonValue ops = JsonValue::makeArray();
        for (const OpRecord &r : kv.second.ops) {
            JsonValue row = JsonValue::makeArray();
            row.push(JsonValue(std::uint64_t(r.kind)));
            for (std::uint64_t w : r.words)
                row.push(JsonValue(w));
            ops.push(std::move(row));
        }
        a.set("ops", std::move(ops));
        agents.push(std::move(a));
    }
    out.set("agents", std::move(agents));
    JsonValue launches = JsonValue::makeArray();
    for (const auto &kv : launches_) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(kv.first));
        for (std::uint64_t ord : kv.second.ordinals)
            row.push(JsonValue(ord));
        launches.push(std::move(row));
    }
    out.set("launches", std::move(launches));
}

void
SnapshotCoordinator::beginReplay(const JsonValue &in)
{
    panic_if(draining_ || replaying_,
             "beginReplay in drain/replay mode");
    logs_.clear();
    launches_.clear();
    parked_.clear();
    loggedOps_ = 0;
    nextOrdinal_ = in.at("nextOrdinal").asUInt();
    for (const JsonValue &a : in.at("agents").items()) {
        AgentLog &l = logs_[a.at("key").asUInt()];
        for (const JsonValue &row : a.at("ops").items()) {
            const auto &cells = row.items();
            if (cells.empty())
                throw SimError("snapshot op log has an empty row",
                               "snapshot");
            std::uint64_t kind = cells[0].asUInt();
            if (kind > std::uint64_t(OpKind::DmaCopy))
                throw SimError("snapshot op log has unknown op kind " +
                                   std::to_string(kind),
                               "snapshot");
            OpRecord r;
            r.kind = OpKind(kind);
            for (std::size_t i = 1; i < cells.size(); ++i)
                r.words.push_back(cells[i].asUInt());
            l.ops.push_back(std::move(r));
            ++loggedOps_;
        }
    }
    for (const JsonValue &row : in.at("launches").items()) {
        const auto &cells = row.items();
        if (cells.empty())
            throw SimError("snapshot launch log has an empty row",
                           "snapshot");
        LaunchSeq &s = launches_[cells[0].asUInt()];
        for (std::size_t i = 1; i < cells.size(); ++i)
            s.ordinals.push_back(cells[i].asUInt());
    }
    replaying_ = true;
}

void
SnapshotCoordinator::endReplay()
{
    panic_if(!replaying_, "endReplay outside replay");
    for (const auto &kv : logs_) {
        panic_if(kv.second.replayPos != kv.second.ops.size(),
                 "agent %#llx replayed %zu of %zu logged ops — the "
                 "restored workload does not match the snapshot",
                 (unsigned long long)kv.first, kv.second.replayPos,
                 kv.second.ops.size());
    }
    for (const auto &kv : launches_) {
        panic_if(kv.second.replayPos != kv.second.ordinals.size(),
                 "agent %#llx replayed %zu of %zu kernel launches",
                 (unsigned long long)kv.first, kv.second.replayPos,
                 kv.second.ordinals.size());
    }
    replaying_ = false;
}

std::string
wrapSnapshot(const JsonValue &payload)
{
    std::string body = payload.dump();
    JsonValue env = JsonValue::makeObject();
    env.set("magic", JsonValue(SnapshotMagic));
    env.set("version", JsonValue(SnapshotVersion));
    env.set("checksum",
            JsonValue(fnvBytes(
                reinterpret_cast<const std::uint8_t *>(body.data()),
                body.size())));
    env.set("payload", payload);
    return env.dump(2) + "\n";
}

JsonValue
openSnapshot(const std::string &text)
{
    JsonValue env;
    try {
        env = parseJson(text);
    } catch (const SimError &e) {
        throw SimError(std::string("checkpoint is not valid JSON "
                                   "(truncated?): ") + e.what(),
                       "snapshot");
    }
    if (!env.isObject())
        throw SimError("checkpoint envelope is not an object",
                       "snapshot");
    const JsonValue *magic = env.find("magic");
    if (!magic || magic->kind() != JsonValue::Kind::String ||
        magic->asString() != SnapshotMagic)
        throw SimError("checkpoint magic mismatch (not an hsc "
                       "snapshot file)", "snapshot");
    std::uint64_t version = env.at("version").asUInt();
    if (version != SnapshotVersion)
        throw SimError("checkpoint format version " +
                           std::to_string(version) +
                           " unsupported (expected " +
                           std::to_string(SnapshotVersion) + ")",
                       "snapshot");
    const JsonValue &payload = env.at("payload");
    std::string body = payload.dump();
    std::uint64_t sum = fnvBytes(
        reinterpret_cast<const std::uint8_t *>(body.data()),
        body.size());
    if (sum != env.at("checksum").asUInt())
        throw SimError("checkpoint payload checksum mismatch "
                       "(corrupted file)", "snapshot");
    return payload;
}

void
writeSnapshotFile(const std::string &path, const std::string &text)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw SimError("cannot open checkpoint temp file '" + tmp +
                               "' for writing",
                           "snapshot");
        os << text;
        os.flush();
        if (!os)
            throw SimError("short write to checkpoint temp file '" +
                               tmp + "'",
                           "snapshot");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw SimError("cannot rename checkpoint into place at '" +
                           path + "'",
                       "snapshot");
}

std::string
readSnapshotFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw SimError("cannot open checkpoint file '" + path + "'",
                       "snapshot");
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

} // namespace hsc
