/**
 * @file
 * A deterministic discrete-event queue.
 *
 * The queue orders events by (tick, priority, insertion sequence) so
 * that simulations are reproducible run to run.  All controllers in a
 * system share one queue; there is deliberately no global singleton so
 * that tests can run many independent systems in one process.
 *
 * Host engineering (DESIGN.md §9): events are stored as a two-level
 * calendar queue — a ring of bucket lists covering the near future,
 * where schedule and pop are O(1) amortized, plus an overflow binary
 * heap for events beyond the ring horizon.  Ticks are picoseconds and
 * controllers schedule whole cache/link/memory latencies ahead
 * (hundreds to tens of thousands of ticks), so buckets span
 * 2^BucketShift ticks each and are kept sorted by (tick, prio, seq);
 * with the figure workloads a bucket holds a handful of events and
 * insertion is an append in the common case.  Callbacks are stored
 * inline (InlineFunction): the steady-state schedule/run path
 * performs no heap allocation at all.
 */

#ifndef HSC_SIM_EVENT_QUEUE_HH
#define HSC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/small_vec.hh"
#include "sim/types.hh"

namespace hsc
{

/**
 * Scheduling priority within a tick.  Lower values run first.
 * Controllers wake on Default; statistics and watchdog checks run
 * after all same-tick work with Late priority.
 */
enum class EventPriority : std::int8_t
{
    Early = -1,
    Default = 0,
    Late = 1,
};

/**
 * Discrete-event queue with deterministic ordering.
 */
class EventQueue
{
  public:
    /** Inline capture budget per event: enough for a [this]-style
     *  thunk, or a controller continuation carrying a DataBlock plus a
     *  std::function and a few scalars (the largest TCP/TCC latency
     *  lambdas are exactly 128 bytes).  Exceeding it is a compile
     *  error, never a malloc. */
    static constexpr std::size_t CallbackCapacity = 128;
    using Callback = InlineFunction<CallbackCapacity>;

    EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must not be in the past.
     * @param cb Callback to invoke.
     * @param prio Ordering within the tick.
     * @param progress When set, the event counts as memory-system
     *        forward progress (notifyProgress) as it fires — avoids a
     *        wrapping lambda on every controller continuation.
     */
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default,
                  bool progress = false);

    /** Schedule a callback @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(_curTick + delta, std::move(cb), prio);
    }

    /**
     * Run until the queue drains or @p limit is reached.
     *
     * @param limit Absolute tick bound (inclusive of events at limit).
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = MaxTick);

    /**
     * Run until @p done returns true, the queue drains, or @p limit is
     * reached.  The predicate is evaluated after each event.
     *
     * @return true iff the predicate fired.
     */
    bool runUntil(const std::function<bool()> &done, Tick limit = MaxTick);

    /** True when no events are pending. */
    bool empty() const { return ringCount == 0 && overflow.empty(); }

    /**
     * Tick of the earliest pending event, MaxTick when empty.  A pure
     * observer (no bucket reclamation or overflow migration) so the
     * PDES window driver (sim/shard.hh) can call it from the
     * synchronized barrier-completion step while the queue's owning
     * thread is parked.
     */
    Tick earliestPending() const;

    /** Number of pending events. */
    std::size_t size() const { return ringCount + overflow.size(); }

    /** Total events executed since construction. */
    std::uint64_t numExecuted() const { return executed; }

    /**
     * Pending events scheduled with progress == true.  Zero means all
     * remaining events are bookkeeping (watchdog, samplers, transport
     * retransmit/ack timers) — the quiesced condition the snapshot
     * drain protocol (sim/snapshot.hh) waits for.
     */
    std::size_t progressPending() const { return progressCount; }

    /**
     * Jump the clock to @p t.  Only legal on an empty queue — used by
     * snapshot restore to resume a reconstructed system at the
     * checkpointed tick before any event is scheduled.
     */
    void jumpTo(Tick t);

    /**
     * Record forward progress of the memory system; used by the
     * deadlock watchdog in HsaSystem.
     */
    void notifyProgress() { _lastProgress = _curTick; }

    /** Tick of the most recent notifyProgress() call. */
    Tick lastProgress() const { return _lastProgress; }

  private:
    /** log2 of the tick span of one ring bucket. */
    static constexpr unsigned BucketShift = 9;
    /** Ring length in buckets (power of two); the ring horizon is
     *  RingBuckets << BucketShift = 512 Ki ticks, comfortably past
     *  the largest modelled latency (DRAM, ~43 K ticks). */
    static constexpr std::size_t RingBuckets = 1024;

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::int8_t prio;
        bool progress;
        Callback cb;

        bool
        operator<(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (prio != o.prio)
                return prio < o.prio;
            return seq < o.seq;
        }
    };

    /** One calendar bucket: entries sorted by (when, prio, seq) with
     *  a consumed-prefix cursor; storage is reused tick after tick.
     *  Buckets hold a handful of events, so four live inline in the
     *  ring itself and constructing/warming a queue allocates nothing
     *  per bucket; deeper buckets spill to a heap block that clear()
     *  retains across horizon laps. */
    struct Bucket
    {
        // head first: drained() then reads only the leading cache
        // line (head + SmallVec bookkeeping) of a cold bucket.
        std::size_t head = 0;
        SmallVec<Entry, 4> entries;

        bool drained() const { return head == entries.size(); }
        void
        reset()
        {
            entries.clear(); // keeps capacity: steady state is alloc-free
            head = 0;
        }
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return b < a;
        }
    };

    static std::uint64_t bucketNo(Tick t) { return t >> BucketShift; }
    Bucket &bucketFor(std::uint64_t no)
    {
        return ring[no & (RingBuckets - 1)];
    }

    void insertSorted(Bucket &b, Entry e);
    /** Move overflow events whose bucket entered the ring horizon. */
    void migrateOverflow();
    /**
     * Position on the next pending event: advances _curBucket (and
     * migrates overflow) until bucketFor(_curBucket) has one.  The
     * cursor is never parked past @p limit_bucket — a bounded
     * (windowed) run resumes later, and events scheduled between two
     * windows into the skipped range must stay ahead of the cursor or
     * the ring's modular indexing loses them.
     * @return false when the queue is empty or every pending event is
     *         beyond the bound.
     */
    bool advanceToPending(std::uint64_t limit_bucket);
    /** Pop the globally next event; caller ensured one is pending. */
    Entry popNext();

    std::vector<Bucket> ring;
    std::size_t ringCount = 0;
    /** Bucket number the ring horizon starts at.  All ring events live
     *  in buckets [_curBucket, _curBucket + RingBuckets); overflow
     *  events live strictly beyond. */
    std::uint64_t _curBucket = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> overflow;

    Tick _curTick = 0;
    Tick _lastProgress = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    /** Pending events with the progress flag set (see progressPending). */
    std::size_t progressCount = 0;
};

} // namespace hsc

#endif // HSC_SIM_EVENT_QUEUE_HH
