/**
 * @file
 * A deterministic discrete-event queue.
 *
 * The queue orders events by (tick, priority, insertion sequence) so
 * that simulations are reproducible run to run.  All controllers in a
 * system share one queue; there is deliberately no global singleton so
 * that tests can run many independent systems in one process.
 */

#ifndef HSC_SIM_EVENT_QUEUE_HH
#define HSC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace hsc
{

/**
 * Scheduling priority within a tick.  Lower values run first.
 * Controllers wake on Default; statistics and watchdog checks run
 * after all same-tick work with Late priority.
 */
enum class EventPriority : std::int8_t
{
    Early = -1,
    Default = 0,
    Late = 1,
};

/**
 * Discrete-event queue with deterministic ordering.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must not be in the past.
     * @param cb Callback to invoke.
     * @param prio Ordering within the tick.
     */
    void schedule(Tick when, Callback cb,
                  EventPriority prio = EventPriority::Default);

    /** Schedule a callback @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        schedule(_curTick + delta, std::move(cb), prio);
    }

    /**
     * Run until the queue drains or @p limit is reached.
     *
     * @param limit Absolute tick bound (inclusive of events at limit).
     * @return Number of events executed.
     */
    std::uint64_t run(Tick limit = MaxTick);

    /**
     * Run until @p done returns true, the queue drains, or @p limit is
     * reached.  The predicate is evaluated after each event.
     *
     * @return true iff the predicate fired.
     */
    bool runUntil(const std::function<bool()> &done, Tick limit = MaxTick);

    /** True when no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events.size(); }

    /** Total events executed since construction. */
    std::uint64_t numExecuted() const { return executed; }

    /**
     * Record forward progress of the memory system; used by the
     * deadlock watchdog in HsaSystem.
     */
    void notifyProgress() { _lastProgress = _curTick; }

    /** Tick of the most recent notifyProgress() call. */
    Tick lastProgress() const { return _lastProgress; }

  private:
    struct Entry
    {
        Tick when;
        std::int8_t prio;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> events;
    Tick _curTick = 0;
    Tick _lastProgress = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace hsc

#endif // HSC_SIM_EVENT_QUEUE_HH
