/**
 * @file
 * Fundamental simulation types shared by every module.
 */

#ifndef HSC_SIM_TYPES_HH
#define HSC_SIM_TYPES_HH

#include <cstdint>

namespace hsc
{

/** Absolute simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A relative number of clock cycles of some clock domain. */
using Cycles = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick MaxTick = ~Tick(0);

/** Physical byte address in the unified memory space. */
using Addr = std::uint64_t;

/** Identifier of a coherence agent (L2s, TCCs, DMA, directory). */
using MachineId = std::int32_t;

/** Sentinel machine id. */
constexpr MachineId InvalidMachineId = -1;

} // namespace hsc

#endif // HSC_SIM_TYPES_HH
