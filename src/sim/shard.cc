#include "sim/shard.hh"

#include <algorithm>
#include <barrier>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "sim/logging.hh"

namespace hsc
{

thread_local unsigned ShardGroup::tlCurrentShard = ShardGroup::NoShard;

ShardGroup::ShardGroup(unsigned num_shards, Tick lookahead)
    : window(lookahead)
{
    panic_if(num_shards == 0, "ShardGroup needs at least one shard");
    panic_if(num_shards > 1 && lookahead == 0,
             "a parallel ShardGroup needs a nonzero lookahead");
    queues.reserve(num_shards);
    for (unsigned s = 0; s < num_shards; ++s)
        queues.push_back(std::make_unique<EventQueue>());
    inbound.resize(num_shards);
    if (num_shards > 1) {
        // Doorbell channels exist for every (from, to) pair so
        // postCall never takes a lock; their rings stay unallocated
        // until first use.  Registering them here, before any
        // MessageBuffer channel, pins them first in the per-window
        // drain order.
        calls.resize(std::size_t(num_shards) * num_shards);
        for (unsigned to = 0; to < num_shards; ++to)
            for (unsigned from = 0; from < num_shards; ++from) {
                auto ch = std::make_unique<CallChannel>(*queues[to]);
                inbound[to].push_back(ch.get());
                calls[std::size_t(to) * num_shards + from] =
                    std::move(ch);
            }
    }
}

void
ShardGroup::addChannel(unsigned to, ShardChannel *ch)
{
    panic_if(to >= numShards(), "channel to nonexistent shard %u", to);
    inbound[to].push_back(ch);
}

void
ShardGroup::CallChannel::push(Tick when, std::function<void()> fn)
{
    panic_if(!ring.push(CallEntry{when, std::move(fn)}),
             "doorbell channel overflow (%zu calls in one window)",
             CallCapacity);
}

void
ShardGroup::CallChannel::drain(Tick bound)
{
    // Arrival ticks are monotonic per channel (one sender shard with
    // a nondecreasing clock, fixed +window offset), so stopping at
    // the first at-or-past-bound entry drains exactly the window's
    // deliveries.
    while (CallEntry *e = ring.peekFront()) {
        if (e->when >= bound)
            break;
        sink.schedule(e->when,
                      [fn = std::move(e->fn)]() mutable { fn(); },
                      EventPriority::Default, true);
        ring.popFront();
    }
}

void
ShardGroup::postCall(unsigned to, std::function<void()> fn)
{
    unsigned from = tlCurrentShard;
    panic_if(from == NoShard,
             "postCall outside shard event execution");
    panic_if(to >= numShards(), "postCall to nonexistent shard %u", to);
    CallChannel &ch = *calls[std::size_t(to) * numShards() + from];
    ch.push(queues[from]->curTick() + window, std::move(fn));
}

std::uint64_t
ShardGroup::totalExecuted() const
{
    std::uint64_t n = 0;
    for (const auto &q : queues)
        n += q->numExecuted();
    return n;
}

unsigned
ShardGroup::resolveThreads(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("HSC_PDES_THREADS"))
        if (int n = std::atoi(env); n > 0)
            return unsigned(n);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ShardGroup::Outcome
ShardGroup::run(unsigned threads, Tick limitTick, Tick watchdogTicks,
                std::function<bool()> donePred,
                std::function<bool()> failPred)
{
    const unsigned n = numShards();
    panic_if(n > 1 && window == 0, "parallel run without lookahead");
    const unsigned T = std::min(std::max(threads, 1u), n);
    quiescing_ = false;

    // Everything below the barrier is single-writer: shard state is
    // touched only by the worker owning it (fixed s % T assignment),
    // and the control block only by the barrier-completion step.
    struct Ctl
    {
        Tick windowStart = 0, windowEnd = 0;
        int stop = 0; ///< 0 = keep going, else Outcome::Kind + 1
        std::uint64_t windows = 0;
        std::uint64_t prevExecuted = 0;
        std::atomic<bool> errored{false};
    } ctl;

    Tick start = 0;
    for (auto &q : queues)
        start = std::max(start, q->curTick());
    ctl.windowStart = (start / window) * window;
    ctl.windowEnd = ctl.windowStart + window;
    const std::uint64_t baseExecuted = totalExecuted();
    ctl.prevExecuted = baseExecuted;

    std::mutex errMu;
    std::string errMsg;
    auto recordError = [&](const char *what) {
        std::lock_guard<std::mutex> g(errMu);
        if (errMsg.empty())
            errMsg = what;
    };

    auto stopAs = [](Outcome::Kind k) { return int(k) + 1; };

    // Runs on the last thread to arrive at each barrier phase: the
    // only place that sees every shard's window-k state at once.
    // Kept O(shards) on the common path (events executed, not done);
    // the full queue/channel scans only run when a window went idle
    // or the done predicate holds.
    auto completion = [&]() noexcept {
        try {
            ++ctl.windows;
            if (ctl.errored.load(std::memory_order_relaxed)) {
                ctl.stop = stopAs(Outcome::Kind::Error);
                return;
            }
            // Trip flags raised during window k (checker violations,
            // link degradation, fault containment, crash fates) are
            // published by the barrier and observed here, at window
            // k's completion — the stop window is a function of
            // simulated state only, never of the thread count.
            if (failPred && failPred()) {
                ctl.stop = stopAs(Outcome::Kind::Failed);
                return;
            }
            std::uint64_t exec = 0;
            for (auto &q : queues)
                exec += q->numExecuted();
            const bool idle = exec == ctl.prevExecuted;
            ctl.prevExecuted = exec;
            const bool done = donePred();
            if (done)
                quiescing_ = true;
            Tick nextStart = ctl.windowEnd;
            if (idle || done) {
                Tick earliest = MaxTick;
                for (auto &q : queues)
                    earliest = std::min(earliest, q->earliestPending());
                for (auto &chans : inbound)
                    for (ShardChannel *ch : chans)
                        earliest = std::min(earliest,
                                            ch->earliestArrival());
                if (earliest == MaxTick) {
                    // Nothing anywhere: a clean finish, or a global
                    // deadlock with tasks still live.
                    ctl.stop = stopAs(done ? Outcome::Kind::Completed
                                           : Outcome::Kind::Hang);
                    return;
                }
                if (idle && earliest > nextStart)
                    nextStart = (earliest / window) * window;
            }
            if (!done && watchdogTicks &&
                (idle || (ctl.windows & 1023) == 0)) {
                Tick lp = 0;
                for (auto &q : queues)
                    lp = std::max(lp, q->lastProgress());
                if (ctl.windowEnd > lp + watchdogTicks) {
                    ctl.stop = stopAs(Outcome::Kind::Watchdog);
                    return;
                }
            }
            if (!done && nextStart > limitTick) {
                ctl.stop = stopAs(Outcome::Kind::CycleLimit);
                return;
            }
            ctl.windowStart = nextStart;
            ctl.windowEnd = nextStart + window;
        } catch (const std::exception &e) {
            recordError(e.what());
            ctl.errored.store(true, std::memory_order_relaxed);
            ctl.stop = stopAs(Outcome::Kind::Error);
        } catch (...) {
            recordError("unknown error in PDES completion step");
            ctl.errored.store(true, std::memory_order_relaxed);
            ctl.stop = stopAs(Outcome::Kind::Error);
        }
    };

    std::barrier bar(std::ptrdiff_t(T), completion);

    auto worker = [&](unsigned w) {
        try {
            for (;;) {
                const Tick end = ctl.windowEnd - 1;
                for (unsigned s = w; s < n; s += T) {
                    tlCurrentShard = s;
                    for (ShardChannel *ch : inbound[s])
                        ch->drain(end + 1);
                    queues[s]->run(end);
                }
                tlCurrentShard = NoShard;
                bar.arrive_and_wait();
                if (ctl.stop)
                    return;
            }
        } catch (const std::exception &e) {
            // Leaving via throw would strand the other workers at the
            // barrier forever; deregister instead and let the next
            // completion step broadcast the stop.
            tlCurrentShard = NoShard;
            recordError(e.what());
            ctl.errored.store(true, std::memory_order_release);
            bar.arrive_and_drop();
        } catch (...) {
            tlCurrentShard = NoShard;
            recordError("unknown error in PDES worker");
            ctl.errored.store(true, std::memory_order_release);
            bar.arrive_and_drop();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(T - 1);
    for (unsigned w = 1; w < T; ++w)
        pool.emplace_back(worker, w);
    worker(0);
    for (auto &t : pool)
        t.join();

    Outcome oc;
    oc.kind = Outcome::Kind(ctl.stop - 1);
    if (ctl.errored.load())
        oc.kind = Outcome::Kind::Error;
    oc.windows = ctl.windows;
    oc.executed = totalExecuted() - baseExecuted;
    for (auto &q : queues)
        oc.finalTick = std::max(oc.finalTick, q->curTick());
    oc.error = errMsg;
    if (oc.kind == Outcome::Kind::Error && oc.error.empty())
        oc.error = "PDES worker failed";
    return oc;
}

} // namespace hsc
