#include "sim/sim_object.hh"
