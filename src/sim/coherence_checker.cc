#include "sim/coherence_checker.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{

std::string_view
checkerCtrlName(CheckerCtrl c)
{
    switch (c) {
      case CheckerCtrl::CorePair: return "corepair";
      case CheckerCtrl::Directory: return "directory";
      case CheckerCtrl::Llc: return "llc";
      case CheckerCtrl::Tcc: return "tcc";
      case CheckerCtrl::Tcp: return "tcp";
      case CheckerCtrl::Sqc: return "sqc";
      case CheckerCtrl::Dma: return "dma";
    }
    return "?";
}

std::string
CheckerEvent::toString() const
{
    std::ostringstream os;
    os << "t=" << tick << " " << ctrl << " 0x" << std::hex << addr
       << std::dec << " [" << state << "] " << event;
    return os.str();
}

std::string
ViolationReport::brief() const
{
    std::ostringstream os;
    os << "coherence violation (" << kind << ") block 0x" << std::hex
       << addr << std::dec << " at tick " << atTick << ": " << detail;
    return os.str();
}

void
ViolationReport::print(std::ostream &os) const
{
    os << "=== ViolationReport ===\n" << brief() << '\n';
    if (!history.empty()) {
        os << "last " << history.size() << " events on block 0x"
           << std::hex << addr << std::dec << ":\n";
        for (const CheckerEvent &ev : history)
            os << "  " << ev.toString() << '\n';
    }
}

CoherenceChecker::CoherenceChecker(std::string name, EventQueue &eq,
                                   unsigned global_ring,
                                   unsigned per_block_ring)
    : checkerName(std::move(name)), eq(eq), globalRingCap(global_ring),
      perBlockRingCap(per_block_ring)
{
    globalRing.reserve(globalRingCap);
}

void
CoherenceChecker::regStats(StatRegistry &reg)
{
    reg.addCounter(checkerName + ".transitionsChecked",
                   &statTransitionsChecked);
    reg.addCounter(checkerName + ".blocksShadowed", &statBlocksShadowed);
    reg.addCounter(checkerName + ".violations", &statViolations);
}

CoherenceChecker::BlockState &
CoherenceChecker::blockOf(Addr addr)
{
    auto [it, inserted] = blocks.try_emplace(blockAlign(addr));
    if (inserted)
        ++statBlocksShadowed;
    return it->second;
}

void
CoherenceChecker::record(CheckerEvent ev)
{
    BlockState &b = blockOf(ev.addr);
    if (b.ring.size() >= perBlockRingCap)
        b.ring.erase(b.ring.begin());
    b.ring.push_back(ev);

    if (globalRing.size() < globalRingCap) {
        globalRing.push_back(std::move(ev));
    } else {
        globalRing[globalHead] = std::move(ev);
        globalHead = (globalHead + 1) % globalRingCap;
        globalWrapped = true;
    }
}

std::vector<CheckerEvent>
CoherenceChecker::traceTail(std::size_t max) const
{
    std::vector<CheckerEvent> out;
    out.reserve(globalRing.size());
    if (globalWrapped) {
        for (std::size_t i = 0; i < globalRing.size(); ++i)
            out.push_back(globalRing[(globalHead + i) % globalRing.size()]);
    } else {
        out = globalRing;
    }
    if (max && out.size() > max)
        out.erase(out.begin(), out.end() - long(max));
    return out;
}

void
CoherenceChecker::violationAt(Tick tick, std::string kind, Addr addr,
                              std::string detail)
{
    ++statViolations;
    if (violationList.size() >= MaxViolations)
        return;
    ViolationReport r;
    r.kind = std::move(kind);
    r.addr = blockAlign(addr);
    r.atTick = tick;
    r.detail = std::move(detail);
    r.history = blockOf(addr).ring;
    warn("%s: %s", checkerName.c_str(), r.brief().c_str());
    violationList.push_back(std::move(r));
}

std::string
CoherenceChecker::brief() const
{
    if (violationList.empty())
        return {};
    std::ostringstream os;
    os << violationList.front().brief();
    if (violationList.size() > 1)
        os << " (+" << violationList.size() - 1 << " more)";
    return os.str();
}

// --------------------------------------------------------------------
// Legal-event tables
// --------------------------------------------------------------------
//
// States are the small meta-state vocabulary the controllers pass in:
//   CorePair:  M E O S (line) | TBE (outstanding miss) | V (victim) | I
//   Tcc:       V (line) | Fill | A (pending atomic) | W (outstanding WT) | I
//   Directory: I S O (tracked) | U (stateless / untracked mode)
//   Dma:       Issued | I
// Probes may arrive in any client state (they race with everything);
// responses are only legal when the matching transaction exists.

bool
CoherenceChecker::legalEvent(CheckerCtrl kind, std::string_view state,
                             std::string_view event)
{
    switch (kind) {
      case CheckerCtrl::CorePair:
        if (event == "PrbInv" || event == "PrbDowngrade")
            return true;
        if (event == "SysResp")
            return state == "TBE";
        if (event == "WBAck")
            return state == "V";
        return false;
      case CheckerCtrl::Tcc:
        if (event == "PrbInv" || event == "PrbDowngrade")
            return true;
        if (event == "SysResp")
            return state == "Fill";
        if (event == "AtomicResp")
            return state == "A";
        if (event == "WBAck")
            return state == "W";
        return false;
      case CheckerCtrl::Dma:
        return event == "DmaResp" && state == "Issued";
      case CheckerCtrl::Directory:
        // Table I legality at request granularity: a dirty victim is
        // impossible while the directory believes every copy is clean.
        if (event == "VicDirty" && state == "S")
            return false;
        return true;
      case CheckerCtrl::Llc:
      case CheckerCtrl::Tcp:
      case CheckerCtrl::Sqc:
        return true;  // context-only events
    }
    return true;
}

bool
CoherenceChecker::noteEvent(CheckerCtrl kind, const std::string &ctrl,
                            Addr addr, std::string_view state,
                            std::string_view event)
{
    return applyEvent(eq.curTick(), kind, ctrl, addr, state, event);
}

bool
CoherenceChecker::applyEvent(Tick tick, CheckerCtrl kind,
                             const std::string &ctrl, Addr addr,
                             std::string_view state,
                             std::string_view event)
{
    ++statTransitionsChecked;
    CheckerEvent ev;
    ev.tick = tick;
    ev.kind = kind;
    ev.ctrl = ctrl;
    ev.addr = blockAlign(addr);
    ev.state = std::string(state);
    ev.event = std::string(event);
    record(std::move(ev));

    if (legalEvent(kind, state, event))
        return true;
    std::ostringstream os;
    os << ctrl << " received " << event << " in state " << state
       << " (no transition defined)";
    violationAt(tick, "illegal-event", addr, os.str());
    return false;
}

void
CoherenceChecker::notePermission(const std::string &ctrl, Addr addr,
                                 Perm perm, std::string_view state)
{
    applyPermission(eq.curTick(), ctrl, addr, perm, state);
}

void
CoherenceChecker::applyPermission(Tick tick, const std::string &ctrl,
                                  Addr addr, Perm perm,
                                  std::string_view state)
{
    ++statTransitionsChecked;
    BlockState &b = blockOf(addr);

    if (perm == Perm::Write) {
        for (const auto &[other, held] : b.perms) {
            if (other != ctrl && held.perm == Perm::Write) {
                std::ostringstream os;
                os << ctrl << " gained write permission (state " << state
                   << ") while " << other
                   << " already holds write permission (state "
                   << held.state << ")";
                violationAt(tick, "swmr", addr, os.str());
                break;
            }
        }
    }

    CheckerEvent ev;
    ev.tick = tick;
    ev.kind = CheckerCtrl::CorePair;
    ev.ctrl = ctrl;
    ev.addr = blockAlign(addr);
    ev.state = std::string(state);
    ev.event = perm == Perm::Write ? "gain-write"
               : perm == Perm::Read ? "hold-read"
                                    : "drop";
    record(std::move(ev));

    if (perm == Perm::None)
        b.perms.erase(ctrl);
    else
        b.perms[ctrl] = HeldPerm{perm, std::string(state)};
}

void
CoherenceChecker::noteStoreApplied(const std::string &ctrl, Addr addr,
                                   std::string_view state,
                                   bool had_write_perm)
{
    applyStoreApplied(eq.curTick(), ctrl, addr, state, had_write_perm);
}

void
CoherenceChecker::applyStoreApplied(Tick tick, const std::string &ctrl,
                                    Addr addr, std::string_view state,
                                    bool had_write_perm)
{
    ++statTransitionsChecked;
    if (had_write_perm)
        return;
    std::ostringstream os;
    os << ctrl << " applied a store against state " << state
       << " without write permission";
    violationAt(tick, "no-write-permission", addr, os.str());
}

void
CoherenceChecker::noteSystemWrite(const std::string &ctrl, Addr addr,
                                  const DataBlock &data, ByteMask mask)
{
    applySystemWrite(eq.curTick(), ctrl, addr, data, mask);
}

void
CoherenceChecker::applySystemWrite(Tick tick, const std::string &ctrl,
                                   Addr addr, const DataBlock &data,
                                   ByteMask mask)
{
    ++statTransitionsChecked;
    BlockState &b = blockOf(addr);
    b.shadow.merge(data, mask);
    b.known |= mask;

    CheckerEvent ev;
    ev.tick = tick;
    ev.kind = CheckerCtrl::Directory;
    ev.ctrl = ctrl;
    ev.addr = blockAlign(addr);
    ev.state = "-";
    {
        std::ostringstream os;
        os << "shadow-write b0=0x" << std::hex
           << unsigned(data.raw()[0]) << " b8=0x"
           << unsigned(data.raw()[8]);
        ev.event = os.str();
    }
    record(std::move(ev));
}

void
CoherenceChecker::noteCleanData(const std::string &ctrl, Addr addr,
                                const DataBlock &data, std::string_view what)
{
    applyCleanData(eq.curTick(), ctrl, addr, data, what);
}

void
CoherenceChecker::applyCleanData(Tick tick, const std::string &ctrl,
                                 Addr addr, const DataBlock &data,
                                 std::string_view what)
{
    ++statTransitionsChecked;
    BlockState &b = blockOf(addr);

    CheckerEvent ev;
    ev.tick = tick;
    ev.kind = CheckerCtrl::Directory;
    ev.ctrl = ctrl;
    ev.addr = blockAlign(addr);
    ev.state = "-";
    {
        std::ostringstream os;
        os << what << " b0=0x" << std::hex << unsigned(data.raw()[0])
           << " b8=0x" << unsigned(data.raw()[8]);
        ev.event = os.str();
    }
    record(std::move(ev));
    if (data.poisoned() || b.shadow.poisoned()) {
        // The bytes are corrupted by an *identified* ECC uncorrectable
        // — containment fires at the consumer; flagging it here would
        // misattribute a storage fault as a protocol bug.  Unmarked
        // corruption (ECC off) still falls through to the compare.
        ++poisonSkipCount;
        return;
    }
    for (unsigned i = 0; i < BlockSizeBytes; ++i) {
        ByteMask bit = ByteMask(1) << i;
        if (!(b.known & bit)) {
            b.shadow.raw()[i] = data.raw()[i];
            b.known |= bit;
            continue;
        }
        if (b.shadow.raw()[i] != data.raw()[i]) {
            std::ostringstream os;
            os << ctrl << " " << what << " diverges from the last "
               << "system-visible write at byte " << i << ": got 0x"
               << std::hex << unsigned(data.raw()[i]) << " expected 0x"
               << unsigned(b.shadow.raw()[i]) << std::dec;
            violationAt(tick, "stale-data", addr, os.str());
            return;
        }
    }
}

void
CoherenceChecker::reportViolation(std::string kind, const std::string &ctrl,
                                  Addr addr, std::string detail)
{
    violationAt(eq.curTick(), std::move(kind), addr,
                ctrl + ": " + std::move(detail));
}

void
CoherenceChecker::serialize(JsonValue &out) const
{
    panic_if(violated(), "%s: serialize after a violation",
             checkerName.c_str());

    // Sort by address so the snapshot (and its checksum) is
    // independent of unordered_map iteration order.
    std::vector<const std::pair<const Addr, BlockState> *> sorted;
    sorted.reserve(blocks.size());
    for (const auto &kv : blocks)
        sorted.push_back(&kv);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto *a, const auto *b) { return a->first < b->first; });

    JsonValue arr = JsonValue::makeArray();
    for (const auto *kv : sorted) {
        const BlockState &b = kv->second;
        JsonValue row = JsonValue::makeObject();
        row.set("addr", JsonValue(std::uint64_t(kv->first)));
        row.set("known", JsonValue(std::uint64_t(b.known)));
        row.set("shadow", JsonValue(blockToHex(b.shadow)));

        std::vector<const std::pair<const std::string, HeldPerm> *> perms;
        perms.reserve(b.perms.size());
        for (const auto &p : b.perms)
            perms.push_back(&p);
        std::sort(perms.begin(), perms.end(), [](const auto *a,
                                                 const auto *c) {
            return a->first < c->first;
        });
        JsonValue parr = JsonValue::makeArray();
        for (const auto *p : perms) {
            JsonValue prow = JsonValue::makeArray();
            prow.push(JsonValue(p->first));
            prow.push(JsonValue(std::uint64_t(p->second.perm)));
            prow.push(JsonValue(p->second.state));
            parr.push(std::move(prow));
        }
        row.set("perms", std::move(parr));
        arr.push(std::move(row));
    }
    out.set("blocks", std::move(arr));
}

void
CoherenceChecker::restore(const JsonValue &in)
{
    for (const JsonValue &row : in.at("blocks").items()) {
        Addr addr = row.at("addr").asUInt();
        BlockState &b = blockOf(addr);
        b.known = static_cast<ByteMask>(row.at("known").asUInt());
        b.shadow = blockFromHex(row.at("shadow").asString());
        for (const JsonValue &prow : row.at("perms").items()) {
            std::uint64_t perm = prow.at(1).asUInt();
            if (perm > std::uint64_t(Perm::Write)) {
                throw SimError("bad checker permission " +
                                   std::to_string(perm),
                               "snapshot");
            }
            b.perms[prow.at(0).asString()] =
                HeldPerm{static_cast<Perm>(perm), prow.at(2).asString()};
        }
    }
}

} // namespace hsc
