/**
 * @file
 * Shard-per-thread parallel discrete-event kernel (DESIGN.md §14).
 *
 * A ShardGroup partitions a system into shards, each owning a private
 * calendar EventQueue and executing on (at most) one host thread at a
 * time.  Shards advance in lockstep through fixed windows of length
 * `lookahead` — the minimum cross-shard link latency — so an event
 * executed anywhere in window k can only produce cross-shard work for
 * window k+1 or later.  That makes a window embarrassingly parallel:
 * inside one, a shard only ever touches its own queue and state.
 *
 * Cross-shard communication is restricted to timestamped SPSC channel
 * pushes (ShardChannel): the sender enqueues {arrival tick, payload}
 * into a lock-free single-producer/single-consumer ring, and the
 * receiver drains every channel registered to it at the top of each
 * window, scheduling the payloads into its own queue at their arrival
 * ticks.  Because arrival = send tick + latency ≥ window start + L,
 * every entry pushed during window k is drained before any window
 * k+1 event executes — conservative synchronization with no null
 * messages (latencies are static and known at construction).
 *
 * Determinism: the partition, the window sequence, the drain order
 * (channel registration order, then ring FIFO order) and the idle
 * fast-forward target are all pure functions of simulated state —
 * the host thread count appears nowhere.  Results are therefore
 * identical at 1 host thread and at N, which is what the 1-vs-N
 * identity matrix (tests/core/pdes_identity_test.cc) asserts — and
 * what makes missed cross-thread state stick out as a mismatch.
 *
 * The sequential mode is a ShardGroup of one shard whose queue(0) is
 * the classic global queue; none of the machinery here is on that
 * path, keeping it bit-identical to the committed golden.
 */

#ifndef HSC_SIM_SHARD_HH
#define HSC_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace hsc
{

/**
 * Fixed-capacity single-producer/single-consumer ring.
 *
 * The producer is the sending shard's worker thread; the consumer is
 * the receiving shard's worker thread (drain) or the synchronized
 * barrier-completion step (empty / peekFront).  Slot storage is
 * allocated lazily on the first push: a big-machine config has
 * thousands of potential channels and only the active ones should
 * cost memory.
 */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity_pow2) : cap(capacity_pow2) {}

    /** Producer side.  @return false when the ring is full. */
    bool
    push(T &&v)
    {
        std::size_t t = tail.load(std::memory_order_relaxed);
        std::size_t h = head.load(std::memory_order_acquire);
        if (t - h >= cap)
            return false;
        if (!slots)
            slots = std::make_unique<T[]>(cap);
        slots[t & (cap - 1)] = std::move(v);
        // Publishes both the slot write and the lazy allocation.
        tail.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side: pop everything currently visible into @p fn. */
    template <typename F>
    std::size_t
    drain(F &&fn)
    {
        std::size_t h = head.load(std::memory_order_relaxed);
        std::size_t t = tail.load(std::memory_order_acquire);
        std::size_t n = 0;
        for (; h != t; ++h, ++n) {
            fn(std::move(slots[h & (cap - 1)]));
            slots[h & (cap - 1)] = T{};
        }
        head.store(h, std::memory_order_release);
        return n;
    }

    /** Consumer side: drop the front entry (pair with peekFront). */
    void
    popFront()
    {
        std::size_t h = head.load(std::memory_order_relaxed);
        slots[h & (cap - 1)] = T{};
        head.store(h + 1, std::memory_order_release);
    }

    bool
    empty() const
    {
        return head.load(std::memory_order_acquire) ==
               tail.load(std::memory_order_acquire);
    }

    std::size_t
    size() const
    {
        return tail.load(std::memory_order_acquire) -
               head.load(std::memory_order_acquire);
    }

    /** Oldest undrained entry; consumer side or synchronized contexts
     *  (the barrier-completion step).  nullptr when empty. */
    T *
    peekFront()
    {
        std::size_t h = head.load(std::memory_order_relaxed);
        if (h == tail.load(std::memory_order_acquire))
            return nullptr;
        return &slots[h & (cap - 1)];
    }

    const T *
    peekFront() const
    {
        return const_cast<SpscRing *>(this)->peekFront();
    }

  private:
    std::size_t cap;
    std::unique_ptr<T[]> slots; ///< lazy; produced-before-published
    std::atomic<std::size_t> head{0}, tail{0};
};

/**
 * A timestamped cross-shard channel the ShardGroup drains into the
 * receiving shard's queue at the top of each window.  Concrete
 * implementations: MessageBuffer's MsgChannel (mem/message_buffer.hh)
 * and the ShardGroup's own doorbell CallChannel.
 */
class ShardChannel
{
  public:
    virtual ~ShardChannel() = default;

    /**
     * Deliver every entry arriving before @p bound (the current
     * window's end) into the receiver's queue, in push order.  Runs
     * on the receiving shard's thread at the top of each window.
     *
     * The timestamp cutoff — not mere visibility — decides what is
     * delivered: a worker that owns both endpoints of a channel can
     * see entries its sender shard pushed *this* window (arrival ≥
     * bound, by the lookahead argument), and popping those early
     * would make receiver-local tie-break sequence numbers depend on
     * the shard-to-thread assignment.  Entries at or past the bound
     * stay in the ring for a later window.
     */
    virtual void drain(Tick bound) = 0;

    /** True when nothing is in flight (synchronized contexts only). */
    virtual bool empty() const = 0;

    /** Arrival tick of the oldest in-flight entry, MaxTick when
     *  empty (synchronized contexts only) — feeds the group's idle
     *  fast-forward and termination decisions. */
    virtual Tick earliestArrival() const = 0;
};

/**
 * The shard container and parallel window driver.
 */
class ShardGroup
{
  public:
    /** Sentinel for "not executing any shard on this thread". */
    static constexpr unsigned NoShard = ~0u;

    /**
     * @param num_shards  1 = classic sequential kernel.
     * @param lookahead   Window length in ticks; must be > 0 when
     *                    num_shards > 1 (= min cross-shard latency).
     */
    ShardGroup(unsigned num_shards, Tick lookahead);

    unsigned numShards() const { return unsigned(queues.size()); }
    EventQueue &queue(unsigned s) { return *queues[s]; }
    const EventQueue &queue(unsigned s) const { return *queues[s]; }
    Tick lookahead() const { return window; }

    /**
     * Register an inbound channel for shard @p to.  Registration
     * order is part of the deterministic delivery order: at each
     * window top, channels drain in registration order and drained
     * entries take receiver-local sequence numbers in that order.
     * Construction-time only (not thread-safe against run()).
     */
    void addChannel(unsigned to, ShardChannel *ch);

    /**
     * Post a doorbell call to shard @p to, arriving one lookahead
     * later.  Must be called while executing an event of some shard
     * (the sending side of the pair's SPSC ring is that shard's
     * thread).  Used for the direct cross-shard couplings that are
     * not MessageBuffers: kernel launches and DMA operations.
     */
    void postCall(unsigned to, std::function<void()> fn);

    /** Shard whose event is executing on this thread (run() only);
     *  NoShard outside run(). */
    static unsigned currentShard() { return tlCurrentShard; }

    struct Outcome
    {
        enum class Kind
        {
            Completed,  ///< donePred held and everything drained
            Hang,       ///< all queues/channels empty but !donePred
            Watchdog,   ///< no forward progress for watchdogTicks
            CycleLimit, ///< next window would pass limitTick
            Error,      ///< a shard threw; message in error
            Failed,     ///< failPred tripped (checker violation,
                        ///< degraded link, containment, crash fate)
        };
        Kind kind = Kind::Completed;
        Tick finalTick = 0;          ///< max shard tick at stop
        std::uint64_t windows = 0;   ///< synchronization windows run
        std::uint64_t executed = 0;  ///< events executed by this run
        std::string error;
    };

    /**
     * Run windows on @p threads host threads (clamped to numShards;
     * the calling thread is worker 0) until donePred() holds and all
     * queues and channels drain, or a stop condition hits.
     *
     * @p donePred and the stop logic run in the barrier-completion
     * step — synchronized, but on an arbitrary worker thread, so the
     * predicate must only read state that shard execution publishes
     * via the barrier (e.g. an atomic task counter).
     *
     * @p failPred (optional) is evaluated in the same completion step
     * before anything else; when it returns true the run stops at
     * that window boundary with Outcome::Kind::Failed.  Because trip
     * flags raised during window k are published by the barrier and
     * observed at window k's completion, the stop window — and with
     * it every counter — is a pure function of simulated state, so a
     * failing run is as thread-count-invariant as a passing one.
     */
    Outcome run(unsigned threads, Tick limitTick, Tick watchdogTicks,
                std::function<bool()> donePred,
                std::function<bool()> failPred = {});

    /**
     * True once donePred has held at a completion step of the current
     * run (it stays true through the drain windows that follow).
     * Self-rearming auxiliary events — the per-shard storage
     * scrubbers — poll this to stop re-arming, so the drain can run
     * the queues dry; reading it from shard event execution is safe
     * (the flag is written in the synchronized completion step and
     * published by the barrier).
     */
    bool quiescing() const { return quiescing_; }

    /** Events executed since construction, summed over shards. */
    std::uint64_t totalExecuted() const;

    /**
     * Resolve a thread-count request: 0 means take HSC_PDES_THREADS
     * from the environment, else std::thread::hardware_concurrency.
     */
    static unsigned resolveThreads(unsigned requested);

  private:
    struct CallEntry
    {
        Tick when = 0;
        std::function<void()> fn;
    };

    /** Doorbell ring for one (from, to) shard pair; drains into the
     *  receiver's queue as progress-tagged Default-priority events. */
    class CallChannel : public ShardChannel
    {
      public:
        explicit CallChannel(EventQueue &sink) : ring(CallCapacity),
                                                 sink(sink)
        {}

        void push(Tick when, std::function<void()> fn);
        void drain(Tick bound) override;
        bool empty() const override { return ring.empty(); }
        Tick
        earliestArrival() const override
        {
            const CallEntry *e = ring.peekFront();
            return e ? e->when : MaxTick;
        }

      private:
        static constexpr std::size_t CallCapacity = 1024;
        SpscRing<CallEntry> ring;
        EventQueue &sink;
    };

    static thread_local unsigned tlCurrentShard;

    Tick window;
    /** See quiescing(): written only by the completion step. */
    bool quiescing_ = false;
    std::vector<std::unique_ptr<EventQueue>> queues;
    /** Inbound channels per receiving shard, registration order. */
    std::vector<std::vector<ShardChannel *>> inbound;
    /** Doorbell channels, [to * numShards + from], created eagerly
     *  (tiny until first use) so postCall is lock-free. */
    std::vector<std::unique_ptr<CallChannel>> calls;
};

} // namespace hsc

#endif // HSC_SIM_SHARD_HH
