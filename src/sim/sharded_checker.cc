#include "sim/sharded_checker.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace hsc
{

ShardedCoherenceChecker::ShardedCoherenceChecker(
    std::string name, ShardGroup &group,
    std::vector<unsigned> bank_shards, unsigned ring_notes)
    : CoherenceChecker(name, group.queue(0)), group(group)
{
    panic_if(bank_shards.empty(), "sharded checker needs >= 1 bank");
    const unsigned n = unsigned(bank_shards.size());
    banks.reserve(n);
    channels.reserve(n);
    for (unsigned b = 0; b < n; ++b) {
        panic_if(bank_shards[b] >= group.numShards(),
                 "checker bank %u on nonexistent shard %u", b,
                 bank_shards[b]);
        // Same stat prefix as the (single) registered checker so the
        // warn() lines a violation prints are identical to the
        // sequential run's; the bank instances never register stats —
        // finalizeParallel() folds their counters into this object's
        // registered ones.
        banks.push_back(std::make_unique<CoherenceChecker>(
            name, group.queue(bank_shards[b])));
        channels.push_back(std::make_unique<BankChannel>(
            *this, b, group.numShards(), ring_notes,
            group.lookahead()));
        group.addChannel(bank_shards[b], channels.back().get());
    }
}

CoherenceChecker &
ShardedCoherenceChecker::bankChecker(Addr addr)
{
    return *banks[bankOf(addr)];
}

void
ShardedCoherenceChecker::post(Addr addr, CheckerNote &&n)
{
    const unsigned src = ShardGroup::currentShard();
    n.tick = group.queue(src).curTick();
    n.addr = addr;
    panic_if(!channels[bankOf(addr)]->ring(src).push(std::move(n)),
             "checker note ring overflow (src shard %u, bank %u): "
             "raise the sharded checker's ring capacity", src,
             bankOf(addr));
}

bool
ShardedCoherenceChecker::noteEvent(CheckerCtrl kind,
                                   const std::string &ctrl, Addr addr,
                                   std::string_view state,
                                   std::string_view event)
{
    if (ShardGroup::currentShard() == ShardGroup::NoShard)
        return banks[bankOf(addr)]->noteEvent(kind, ctrl, addr, state,
                                              event);
    CheckerNote n;
    n.op = CheckerNote::Op::Event;
    n.kind = kind;
    n.ctrl = ctrl;
    n.state = state;
    n.event = event;
    post(addr, std::move(n));
    // The legality verdict is stateless, so the observing shard can
    // answer synchronously — exactly what the sequential checker
    // would have returned.  The bank records the history and flags
    // the violation when the note arrives.
    return legalEvent(kind, state, event);
}

void
ShardedCoherenceChecker::notePermission(const std::string &ctrl,
                                        Addr addr, Perm perm,
                                        std::string_view state)
{
    if (ShardGroup::currentShard() == ShardGroup::NoShard) {
        banks[bankOf(addr)]->notePermission(ctrl, addr, perm, state);
        return;
    }
    CheckerNote n;
    n.op = CheckerNote::Op::Permission;
    n.perm = perm;
    n.ctrl = ctrl;
    n.state = state;
    post(addr, std::move(n));
}

void
ShardedCoherenceChecker::noteStoreApplied(const std::string &ctrl,
                                          Addr addr,
                                          std::string_view state,
                                          bool had_write_perm)
{
    if (ShardGroup::currentShard() == ShardGroup::NoShard) {
        banks[bankOf(addr)]->noteStoreApplied(ctrl, addr, state,
                                              had_write_perm);
        return;
    }
    CheckerNote n;
    n.op = CheckerNote::Op::StoreApplied;
    n.flag = had_write_perm;
    n.ctrl = ctrl;
    n.state = state;
    post(addr, std::move(n));
}

void
ShardedCoherenceChecker::noteSystemWrite(const std::string &ctrl,
                                         Addr addr,
                                         const DataBlock &data,
                                         ByteMask mask)
{
    if (ShardGroup::currentShard() == ShardGroup::NoShard) {
        banks[bankOf(addr)]->noteSystemWrite(ctrl, addr, data, mask);
        return;
    }
    CheckerNote n;
    n.op = CheckerNote::Op::SystemWrite;
    n.mask = mask;
    n.ctrl = ctrl;
    n.data = std::make_unique<DataBlock>(data);
    post(addr, std::move(n));
}

void
ShardedCoherenceChecker::noteCleanData(const std::string &ctrl,
                                       Addr addr, const DataBlock &data,
                                       std::string_view what)
{
    if (ShardGroup::currentShard() == ShardGroup::NoShard) {
        banks[bankOf(addr)]->noteCleanData(ctrl, addr, data, what);
        return;
    }
    CheckerNote n;
    n.op = CheckerNote::Op::CleanData;
    n.ctrl = ctrl;
    n.event = what;
    n.data = std::make_unique<DataBlock>(data);
    post(addr, std::move(n));
}

void
ShardedCoherenceChecker::reportViolation(std::string kind,
                                         const std::string &ctrl,
                                         Addr addr, std::string detail)
{
    if (ShardGroup::currentShard() == ShardGroup::NoShard) {
        banks[bankOf(addr)]->reportViolation(std::move(kind), ctrl,
                                             addr, std::move(detail));
        return;
    }
    CheckerNote n;
    n.op = CheckerNote::Op::Violation;
    n.event = std::move(kind);
    n.detail = ctrl + ": " + std::move(detail);
    post(addr, std::move(n));
}

bool
ShardedCoherenceChecker::violated() const
{
    return anyViol.load(std::memory_order_relaxed) ||
           !violationList.empty();
}

void
ShardedCoherenceChecker::finalizeParallel()
{
    if (finalized)
        return;
    finalized = true;

    for (auto &ch : channels)
        ch->drainAll();

    // Violations, oldest first; ties keep bank order.  Each report
    // already carries its block's history from the owning bank.
    std::vector<const ViolationReport *> reports;
    for (auto &b : banks)
        for (const ViolationReport &r : b->violations())
            reports.push_back(&r);
    std::stable_sort(reports.begin(), reports.end(),
                     [](const ViolationReport *a,
                        const ViolationReport *b) {
                         return a->atTick < b->atTick;
                     });
    for (const ViolationReport *r : reports) {
        if (violationList.size() >= MaxViolations)
            break;
        violationList.push_back(*r);
    }

    // Fold the (unregistered) bank counters into the registered ones
    // so the stat dump carries the sequential names and totals.
    std::uint64_t trans = 0, shadowed = 0, viols = 0, poison = 0;
    for (auto &b : banks) {
        trans += b->transitionsChecked();
        shadowed += b->blocksShadowed();
        viols += b->violationsFlagged();
        poison += b->poisonSkips();
    }
    statTransitionsChecked += trans;
    statBlocksShadowed += shadowed;
    statViolations += viols;
    poisonSkipCount += poison;

    // Splice the per-bank trace rings into one tick-ordered tail.
    std::vector<CheckerEvent> all;
    for (auto &b : banks) {
        std::vector<CheckerEvent> tail = b->traceTail();
        all.insert(all.end(), std::make_move_iterator(tail.begin()),
                   std::make_move_iterator(tail.end()));
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const CheckerEvent &a, const CheckerEvent &b) {
                         return a.tick < b.tick;
                     });
    if (all.size() > globalRingCap)
        all.erase(all.begin(), all.end() - long(globalRingCap));
    globalRing = std::move(all);
    globalHead = 0;
    globalWrapped = false;
}

// --------------------------------------------------------------------
// BankChannel
// --------------------------------------------------------------------

ShardedCoherenceChecker::BankChannel::BankChannel(
    ShardedCoherenceChecker &owner, unsigned bank, unsigned sources,
    unsigned ring_notes, Tick lookahead)
    : owner(owner), bank(bank), lookahead(lookahead)
{
    panic_if(ring_notes == 0 || (ring_notes & (ring_notes - 1)),
             "checker note ring capacity must be a power of two");
    rings.reserve(sources);
    for (unsigned s = 0; s < sources; ++s)
        rings.push_back(
            std::make_unique<SpscRing<CheckerNote>>(ring_notes));
}

void
ShardedCoherenceChecker::BankChannel::drain(Tick bound)
{
    // Notes are stamped with the *observing* tick, not an arrival
    // tick, so the visibility cutoff sits one lookahead before the
    // group's drain bound: a note below it was pushed in a completed
    // window (published by the barrier), while notes the concurrently
    // executing window is pushing right now are at or above it —
    // whether they are visible yet must not influence the merge.
    mergeBelow(bound > lookahead ? bound - lookahead : 0);
}

void
ShardedCoherenceChecker::BankChannel::mergeBelow(Tick cut)
{
    bool applied = false;
    for (;;) {
        int best = -1;
        Tick bestTick = MaxTick;
        for (unsigned s = 0; s < rings.size(); ++s) {
            const CheckerNote *n = rings[s]->peekFront();
            if (n && n->tick < cut && n->tick < bestTick) {
                best = int(s);
                bestTick = n->tick;
            }
        }
        if (best < 0)
            break;
        apply(std::move(*rings[best]->peekFront()));
        rings[best]->popFront();
        applied = true;
    }
    if (applied && owner.banks[bank]->violated())
        owner.anyViol.store(true, std::memory_order_relaxed);
}

void
ShardedCoherenceChecker::BankChannel::apply(CheckerNote &&n)
{
    CoherenceChecker &c = *owner.banks[bank];
    switch (n.op) {
      case CheckerNote::Op::Event:
        // Verdict already returned at the observing shard.
        c.applyEvent(n.tick, n.kind, n.ctrl, n.addr, n.state, n.event);
        break;
      case CheckerNote::Op::Permission:
        c.applyPermission(n.tick, n.ctrl, n.addr, n.perm, n.state);
        break;
      case CheckerNote::Op::StoreApplied:
        c.applyStoreApplied(n.tick, n.ctrl, n.addr, n.state, n.flag);
        break;
      case CheckerNote::Op::SystemWrite:
        c.applySystemWrite(n.tick, n.ctrl, n.addr, *n.data, n.mask);
        break;
      case CheckerNote::Op::CleanData:
        c.applyCleanData(n.tick, n.ctrl, n.addr, *n.data, n.event);
        break;
      case CheckerNote::Op::Violation:
        c.violationAt(n.tick, std::move(n.event), n.addr,
                      std::move(n.detail));
        break;
    }
}

bool
ShardedCoherenceChecker::BankChannel::empty() const
{
    for (const auto &r : rings)
        if (!r->empty())
            return false;
    return true;
}

Tick
ShardedCoherenceChecker::BankChannel::earliestArrival() const
{
    Tick earliest = MaxTick;
    for (const auto &r : rings)
        if (const CheckerNote *n = r->peekFront())
            earliest = std::min(earliest, n->tick + lookahead);
    return earliest;
}

} // namespace hsc
