/**
 * @file
 * Size-class pooling allocator for the controllers' node containers.
 *
 * The protocol controllers keep their in-flight state in node-based
 * maps (TBEs, busy lines, stalled queues, fill MSHRs).  Every insert
 * used to malloc a node and every erase freed it — hundreds of
 * thousands of allocator round-trips per run, plus cold nodes
 * scattered across the heap (DESIGN.md §9).  PoolAllocator carves
 * nodes from per-pool slabs and recycles them through per-size free
 * lists, so steady-state insert/erase never touches the global
 * allocator and recycled nodes stay cache-warm.
 *
 * Each default-constructed allocator owns a fresh pool; rebound and
 * copied allocators share it (shared_ptr), which is exactly the
 * std::unordered_map/std::map usage pattern.  Pools are not
 * thread-safe — safe anyway, because every pool is private to one
 * container and every container to one controller:
 *  - parallel sweeps (bench_util runMatrix) give each HsaSystem its
 *    own controllers, hence its own pools;
 *  - under the PDES kernel (DESIGN.md §14) each controller belongs to
 *    exactly one shard and a shard executes on one worker thread at a
 *    time, with the window barrier ordering any thread handoff — so
 *    a pool only ever sees single-threaded use there too.
 * Nothing cross-shard is ever pool-allocated: messages travel by
 * value through the SPSC channel rings.
 *
 * Oversized requests (bucket arrays, > MaxBytes nodes) fall through
 * to the global allocator.
 */

#ifndef HSC_SIM_POOL_ALLOC_HH
#define HSC_SIM_POOL_ALLOC_HH

#include <cstddef>
#include <map>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

namespace hsc
{

namespace detail
{

/** Slab arena with per-size-class free lists (8-byte granularity). */
class AllocPool
{
  public:
    void *
    alloc(std::size_t bytes)
    {
        std::size_t cls = sizeClass(bytes);
        if (cls >= NumClasses)
            return ::operator new(bytes);
        if (void *p = freelist[cls]) {
            freelist[cls] = *static_cast<void **>(p);
            return p;
        }
        return carve((cls + 1) * Granule);
    }

    void
    free(void *p, std::size_t bytes)
    {
        std::size_t cls = sizeClass(bytes);
        if (cls >= NumClasses) {
            ::operator delete(p);
            return;
        }
        *static_cast<void **>(p) = freelist[cls];
        freelist[cls] = p;
    }

  private:
    /** Class granularity doubles as the alignment guarantee: slab
     *  carve offsets are multiples of it, matching default new. */
    static constexpr std::size_t Granule =
        __STDCPP_DEFAULT_NEW_ALIGNMENT__;
    static constexpr std::size_t MaxBytes = 1024;
    static constexpr std::size_t NumClasses = MaxBytes / Granule;
    static constexpr std::size_t SlabBytes = 64 * 1024;

    static std::size_t
    sizeClass(std::size_t bytes)
    {
        return bytes == 0 ? 0 : (bytes - 1) / Granule;
    }

    void *
    carve(std::size_t bytes)
    {
        if (slabUsed + bytes > slabSize()) {
            slabs.push_back(std::make_unique<unsigned char[]>(SlabBytes));
            slabUsed = 0;
        }
        void *p = slabs.back().get() + slabUsed;
        slabUsed += bytes;
        return p;
    }

    std::size_t slabSize() const { return slabs.empty() ? 0 : SlabBytes; }

    void *freelist[NumClasses] = {};
    std::vector<std::unique_ptr<unsigned char[]>> slabs;
    std::size_t slabUsed = 0;
};

} // namespace detail

template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    PoolAllocator() : pool(std::make_shared<detail::AllocPool>()) {}

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &o) noexcept : pool(o.pool)
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(pool->alloc(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        pool->free(p, n * sizeof(T));
    }

    template <typename U>
    bool
    operator==(const PoolAllocator<U> &o) const
    {
        return pool == o.pool;
    }

  private:
    template <typename U>
    friend class PoolAllocator;

    std::shared_ptr<detail::AllocPool> pool;
};

/** Hash map with pool-allocated nodes (per-map pool). */
template <typename K, typename V, typename Hash = std::hash<K>>
using PoolUMap =
    std::unordered_map<K, V, Hash, std::equal_to<K>,
                       PoolAllocator<std::pair<const K, V>>>;

/** Ordered map with pool-allocated nodes (per-map pool). */
template <typename K, typename V, typename Cmp = std::less<K>>
using PoolMap =
    std::map<K, V, Cmp, PoolAllocator<std::pair<const K, V>>>;

} // namespace hsc

#endif // HSC_SIM_POOL_ALLOC_HH
