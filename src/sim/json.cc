#include "sim/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace hsc
{

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.k = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.k = Kind::Object;
    return v;
}

static const char *
kindName(JsonValue::Kind k)
{
    switch (k) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "bool";
      case JsonValue::Kind::Int: return "int";
      case JsonValue::Kind::Double: return "double";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

bool
JsonValue::asBool() const
{
    fatal_if(k != Kind::Bool, "json: %s is not a bool", kindName(k));
    return boolean;
}

std::uint64_t
JsonValue::asUInt() const
{
    fatal_if(k != Kind::Int, "json: %s is not an int", kindName(k));
    fatal_if(negative, "json: negative value read as unsigned");
    return integer;
}

std::int64_t
JsonValue::asInt() const
{
    fatal_if(k != Kind::Int, "json: %s is not an int", kindName(k));
    // Unsigned negation then convert: INT64_MIN has no positive
    // int64_t counterpart to negate.
    return negative ? std::int64_t(0 - integer) : std::int64_t(integer);
}

double
JsonValue::asDouble() const
{
    if (k == Kind::Int)
        return negative ? -double(integer) : double(integer);
    fatal_if(k != Kind::Double, "json: %s is not a number", kindName(k));
    return real;
}

const std::string &
JsonValue::asString() const
{
    fatal_if(k != Kind::String, "json: %s is not a string", kindName(k));
    return str;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    fatal_if(k != Kind::Array, "json: %s is not an array", kindName(k));
    return arr;
}

std::vector<JsonValue> &
JsonValue::items()
{
    fatal_if(k != Kind::Array, "json: %s is not an array", kindName(k));
    return arr;
}

void
JsonValue::push(JsonValue v)
{
    fatal_if(k != Kind::Array, "json: push on %s", kindName(k));
    arr.push_back(std::move(v));
}

std::size_t
JsonValue::size() const
{
    if (k == Kind::Array)
        return arr.size();
    if (k == Kind::Object)
        return obj.size();
    fatal("json: size() on %s", kindName(k));
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    fatal_if(k != Kind::Array, "json: %s is not an array", kindName(k));
    fatal_if(i >= arr.size(), "json: index %zu out of range (size %zu)", i,
             arr.size());
    return arr[i];
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    fatal_if(k != Kind::Object, "json: %s is not an object", kindName(k));
    return obj;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    fatal_if(k != Kind::Object, "json: %s is not an object", kindName(k));
    for (const auto &[name, v] : obj)
        if (name == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    fatal_if(!v, "json: missing key \"%s\"", key.c_str());
    return *v;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    fatal_if(k != Kind::Object, "json: set on %s", kindName(k));
    for (auto &[name, old] : obj) {
        if (name == key) {
            old = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

static void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

static void
newline(std::ostream &os, int indent, int depth)
{
    if (indent > 0) {
        os << '\n';
        for (int i = 0; i < indent * depth; ++i)
            os << ' ';
    }
}

void
JsonValue::write(std::ostream &os, int indent, int depth) const
{
    switch (k) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (boolean ? "true" : "false");
        break;
      case Kind::Int:
        if (negative)
            os << '-';
        os << integer;
        break;
      case Kind::Double:
        {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", real);
            os << buf;
        }
        break;
      case Kind::String:
        writeEscaped(os, str);
        break;
      case Kind::Array:
        os << '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i)
                os << ',';
            newline(os, indent, depth + 1);
            arr[i].write(os, indent, depth + 1);
        }
        if (!arr.empty())
            newline(os, indent, depth);
        os << ']';
        break;
      case Kind::Object:
        os << '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
            if (i)
                os << ',';
            newline(os, indent, depth + 1);
            writeEscaped(os, obj[i].first);
            os << (indent > 0 ? ": " : ":");
            obj[i].second.write(os, indent, depth + 1);
        }
        if (!obj.empty())
            newline(os, indent, depth);
        os << '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::ostringstream os;
    write(os, indent);
    return os.str();
}

namespace
{

/** Recursive-descent parser over an in-memory string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        fatal_if(pos != s.size(), "json: trailing garbage at offset %zu",
                 pos);
        return v;
    }

  private:
    const std::string &s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(unsigned(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        fatal_if(pos >= s.size(), "json: unexpected end of input");
        return s[pos];
    }

    void
    expect(char c)
    {
        fatal_if(peek() != c, "json: expected '%c' at offset %zu, got '%c'",
                 c, pos, s[pos]);
        ++pos;
    }

    bool
    consume(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return JsonValue(string());
          case 't':
            fatal_if(!consume("true"), "json: bad literal at %zu", pos);
            return JsonValue(true);
          case 'f':
            fatal_if(!consume("false"), "json: bad literal at %zu", pos);
            return JsonValue(false);
          case 'n':
            fatal_if(!consume("null"), "json: bad literal at %zu", pos);
            return JsonValue();
          default:
            return number();
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v = JsonValue::makeObject();
        if (peek() == '}') {
            ++pos;
            return v;
        }
        for (;;) {
            std::string key = string();
            expect(':');
            v.set(key, value());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v = JsonValue::makeArray();
        if (peek() == ']') {
            ++pos;
            return v;
        }
        for (;;) {
            v.push(value());
            if (peek() == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            fatal_if(pos >= s.size(), "json: dangling escape");
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u':
                {
                    fatal_if(pos + 4 > s.size(), "json: short \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[pos++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            fatal("json: bad \\u escape");
                    }
                    // Traces only emit ASCII control escapes; anything
                    // wider is replaced rather than UTF-8 encoded.
                    out += cp < 0x80 ? char(cp) : '?';
                }
                break;
              default:
                fatal("json: bad escape '\\%c'", e);
            }
        }
        expect('"');
        return out;
    }

    JsonValue
    number()
    {
        skipWs();
        std::size_t start = pos;
        bool neg = false;
        if (pos < s.size() && s[pos] == '-') {
            neg = true;
            ++pos;
        }
        bool isFloat = false;
        while (pos < s.size() &&
               (std::isdigit(unsigned(s[pos])) || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' ||
                s[pos] == '-')) {
            if (s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E')
                isFloat = true;
            ++pos;
        }
        fatal_if(pos == start + (neg ? 1 : 0),
                 "json: bad number at offset %zu", start);
        std::string tok = s.substr(start, pos - start);
        if (isFloat)
            return JsonValue(std::stod(tok));
        // Exact 64-bit integer path: never through a double.
        std::uint64_t mag = std::stoull(neg ? tok.substr(1) : tok);
        if (neg) {
            // Convert via unsigned negation so INT64_MIN (magnitude
            // 2^63, which has no positive int64_t) parses exactly.
            fatal_if(mag > (std::uint64_t(1) << 63),
                     "json: negative number at offset %zu overflows "
                     "int64", start);
            return JsonValue(std::int64_t(0 - mag));
        }
        return JsonValue(mag);
    }
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    Parser p(text);
    return p.parse();
}

} // namespace hsc
