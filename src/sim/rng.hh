/**
 * @file
 * Small deterministic PRNG (xoshiro256**) for workload generation and
 * the random tester.  Seeded explicitly so runs reproduce exactly,
 * matching the paper's "randomization seeds for deterministic
 * execution".
 */

#ifndef HSC_SIM_RNG_HH
#define HSC_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace hsc
{

/** Deterministic xoshiro256** generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        // SplitMix64 expansion of the seed into the state vector.
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability @p percent / 100. */
    bool chance(unsigned percent) { return below(100) < percent; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /** @{ Stream-cursor serialization (snapshot/restore): the raw
     *  xoshiro256** state vector, so a resumed run continues the
     *  exact random sequence of the checkpointed one. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s[0], s[1], s[2], s[3]};
    }

    void
    setState(const std::array<std::uint64_t, 4> &st)
    {
        for (int i = 0; i < 4; ++i)
            s[i] = st[std::size_t(i)];
    }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace hsc

#endif // HSC_SIM_RNG_HH
