/**
 * @file
 * Protocol introspection — the hang-diagnosis backbone.
 *
 * Every coherence controller implements ProtocolIntrospect, exposing
 * its in-flight transactions (address, state, what it is waiting for,
 * age) and a one-line state summary.  When the system watchdog trips,
 * HsaSystem walks the introspectable objects and the links to build a
 * structured HangReport: the oldest stalled transactions ranked by
 * age, the links still holding undelivered messages, and per
 * controller summaries — a gem5-Ruby-style deadlock dump instead of a
 * blunt "no progress" warning.
 */

#ifndef HSC_SIM_INTROSPECT_HH
#define HSC_SIM_INTROSPECT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hsc
{

/** Snapshot of one in-flight transaction inside a controller. */
struct TxnInfo
{
    std::string controller; ///< owning controller's name
    Addr addr = 0;          ///< block address of the transaction
    std::uint64_t txnId = 0;///< directory transaction id (0 if none)
    std::string state;      ///< e.g. "RdBlkM pendingAcks=2"
    std::string waitingFor; ///< e.g. "probe acks", "SysResp"
    Tick age = 0;           ///< ticks since the transaction started

    /** One formatted report line. */
    std::string toString() const;
};

/** Snapshot of one link's undelivered traffic. */
struct LinkInfo
{
    std::string name;
    std::size_t depth = 0; ///< messages enqueued but not delivered
    Tick oldestAge = 0;    ///< age of the oldest undelivered message

    std::string toString() const;
};

/**
 * Implemented by every controller that holds transaction state, so
 * the watchdog can ask "what are you stuck on?".
 */
class ProtocolIntrospect
{
  public:
    virtual ~ProtocolIntrospect() = default;

    /** Name used in report lines (usually the SimObject name). */
    virtual std::string introspectName() const = 0;

    /** Append every in-flight transaction; ages relative to @p now. */
    virtual void inFlightTransactions(Tick now,
                                      std::vector<TxnInfo> &out) const = 0;

    /** One-line occupancy/state summary for the report footer. */
    virtual std::string stateSummary() const = 0;

    /** Monotone count of work items this controller has completed
     *  (core ops, directory transactions, fills...).  Hang and
     *  degradation reports print it so an operator can see which
     *  controllers were still advancing — and, next to the last
     *  checkpoint tick, how much progress a restore would replay. */
    virtual std::uint64_t progressCount() const { return 0; }

    /** Append anomaly diagnostics (livelocks, parked requests, ...). */
    virtual void diagnostics(std::vector<std::string> &out) const
    {
        (void)out;
    }
};

/**
 * Structured result of a failed run: what wedged, where, for how
 * long.  Built by HsaSystem when the watchdog fires, the cycle limit
 * is hit, or the post-run drain leaves transactions in flight.
 */
struct HangReport
{
    enum class Kind : std::uint8_t
    {
        None,            ///< the run completed
        Watchdog,        ///< no forward progress while work remained
        CycleLimit,      ///< max_cycles elapsed with work remaining
        DrainIncomplete, ///< tasks retired but transactions remained
    };

    Kind kind = Kind::None;
    Tick atTick = 0;           ///< tick at which the run gave up
    Tick lastProgressTick = 0; ///< last notifyProgress() observation
    unsigned liveTasks = 0;    ///< workload tasks still unfinished

    /** Tick of the most recent successful checkpoint (0 = none). */
    Tick lastCheckpointTick = 0;

    /** Per-controller completed-work counters ("name: N done"). */
    std::vector<std::string> progressCounters;

    /** In-flight transactions, ranked oldest first. */
    std::vector<TxnInfo> stalledTxns;

    /** Links still holding undelivered messages. */
    std::vector<LinkInfo> stalledLinks;

    /** One summary line per controller. */
    std::vector<std::string> controllerSummaries;

    /** Livelock and other anomaly diagnostics. */
    std::vector<std::string> diagnostics;

    /** Per-shard progress lines ("shard S: tick T, N events") — PDES
     *  runs only, so sequential report text never changes. */
    std::vector<std::string> shardProgress;

    bool hung() const { return kind != Kind::None; }

    static std::string_view kindName(Kind k);

    /** One-line diagnosis (the headline stalled transaction). */
    std::string brief() const;

    /** Full pretty-printed dump. */
    void print(std::ostream &os) const;
};

} // namespace hsc

#endif // HSC_SIM_INTROSPECT_HH
