/**
 * @file
 * ShardedCoherenceChecker — the runtime protocol sanitizer under the
 * PDES kernel (DESIGN.md §14).
 *
 * Every invariant the sequential CoherenceChecker enforces — SWMR,
 * shadow-data value checking, store-permission consistency, the
 * per-family legal-event tables — partitions by block address: no
 * check ever relates two different blocks.  The sharded checker
 * therefore splits its state exactly the way the directory does
 * (bank = block index mod banks, HsaSystem::dirFor) and gives each
 * bank its own private CoherenceChecker living on that bank's shard.
 *
 * Observations cross shards the same way protocol messages do: the
 * observing shard stamps its current tick on a CheckerNote and pushes
 * it into a per-(source shard, bank) SPSC ring; the bank's shard
 * drains its rings at the top of each window, k-way-merging by
 * (tick, source index, ring FIFO) — a total order that is a pure
 * function of simulated state, so the checker verdicts, counters and
 * violation reports are bit-identical at 1 worker thread and at N.
 *
 * Soundness under the one-window delivery delay: SWMR hand-offs are
 * serialized through the directory, so a permission drop at tick t
 * and the next grant are at least one link round-trip (≥ 2 windows)
 * apart — far wider than the ring latency — and shadow-data writes to
 * one block are serialized at its (single) home bank.  The delayed
 * merge can therefore reorder observations of *different* blocks, or
 * diagnostics within a window, but never the per-block sequences the
 * invariants read.
 *
 * Verdict-returning hooks stay synchronous: noteEvent's legality
 * check is stateless (the static legal-event table), so the observing
 * shard computes the verdict locally and ships the note purely for
 * history/violation bookkeeping.
 *
 * After the workers join, finalizeParallel() drains every ring,
 * merges the per-bank violation lists (sorted by tick, then bank),
 * sums the per-bank counters into the registered sequential stat
 * names, and splices the trace rings — so post-run reporting code
 * sees exactly the sequential checker surface.
 */

#ifndef HSC_SIM_SHARDED_CHECKER_HH
#define HSC_SIM_SHARDED_CHECKER_HH

#include <atomic>
#include <memory>
#include <vector>

#include "sim/coherence_checker.hh"
#include "sim/shard.hh"

namespace hsc
{

/** One checker observation in flight to the bank owning its block. */
struct CheckerNote
{
    enum class Op : std::uint8_t
    {
        Event,
        Permission,
        StoreApplied,
        SystemWrite,
        CleanData,
        Violation,
    };

    Op op = Op::Event;
    CheckerCtrl kind = CheckerCtrl::Directory;
    CoherenceChecker::Perm perm = CoherenceChecker::Perm::None;
    bool flag = false;       ///< StoreApplied: had_write_perm
    Tick tick = 0;           ///< observing shard's tick at the hook
    Addr addr = 0;
    ByteMask mask = 0;       ///< SystemWrite
    std::string ctrl;        ///< copied: call sites pass temporaries
    std::string state;
    std::string event;       ///< Event: name; CleanData: what;
                             ///< Violation: kind
    std::string detail;      ///< Violation
    /** SystemWrite/CleanData payload; heap so the common note stays
     *  small (the rings hold capacity slots once active). */
    std::unique_ptr<DataBlock> data;
};

class ShardedCoherenceChecker : public CoherenceChecker
{
  public:
    /**
     * @param name        Stat prefix, same as the sequential checker.
     * @param group       The system's shard group; one note ring per
     *                    (source shard, bank) and one inbound channel
     *                    per bank are registered with it.
     * @param bank_shards Shard id owning each directory bank, in bank
     *                    order; banks partition blocks by
     *                    (addr >> BlockShift) % banks.
     * @param ring_notes  Per-(source, bank) ring capacity: the most
     *                    notes one shard may emit for one bank inside
     *                    a single lookahead window.
     */
    ShardedCoherenceChecker(std::string name, ShardGroup &group,
                            std::vector<unsigned> bank_shards,
                            unsigned ring_notes = 1024);

    bool noteEvent(CheckerCtrl kind, const std::string &ctrl, Addr addr,
                   std::string_view state,
                   std::string_view event) override;
    void notePermission(const std::string &ctrl, Addr addr, Perm perm,
                        std::string_view state) override;
    void noteStoreApplied(const std::string &ctrl, Addr addr,
                          std::string_view state,
                          bool had_write_perm) override;
    void noteSystemWrite(const std::string &ctrl, Addr addr,
                         const DataBlock &data, ByteMask mask) override;
    void noteCleanData(const std::string &ctrl, Addr addr,
                       const DataBlock &data,
                       std::string_view what) override;
    void reportViolation(std::string kind, const std::string &ctrl,
                         Addr addr, std::string detail) override;

    /** Polled by the PDES fail predicate at window boundaries: true
     *  once any bank has flagged (set during the bank's window-top
     *  drain, published by the barrier) or after finalizeParallel()
     *  has merged the lists. */
    bool violated() const override;

    void finalizeParallel() override;

    /** The bank checker owning @p addr (tests / post-run probing). */
    CoherenceChecker &bankChecker(Addr addr);
    unsigned numBanks() const { return unsigned(banks.size()); }

  private:
    /** Inbound note channel of one bank: its per-source rings plus
     *  the window-top merge that applies them to the bank checker. */
    class BankChannel : public ShardChannel
    {
      public:
        BankChannel(ShardedCoherenceChecker &owner, unsigned bank,
                    unsigned sources, unsigned ring_notes,
                    Tick lookahead);

        SpscRing<CheckerNote> &ring(unsigned src) { return *rings[src]; }

        void drain(Tick bound) override;
        bool empty() const override;
        Tick earliestArrival() const override;

        /** Post-join: apply everything left, visibility cutoff only. */
        void drainAll() { mergeBelow(MaxTick); }

      private:
        void mergeBelow(Tick cut);
        void apply(CheckerNote &&n);

        ShardedCoherenceChecker &owner;
        const unsigned bank;
        const Tick lookahead;
        /** One ring per source shard (SpscRing is not movable). */
        std::vector<std::unique_ptr<SpscRing<CheckerNote>>> rings;
    };

    unsigned bankOf(Addr addr) const
    {
        return unsigned((addr >> BlockShift) % banks.size());
    }

    /** Stamp + route @p n, or apply it directly when called outside
     *  shard execution (post-run sweeps, tests). */
    void post(Addr addr, CheckerNote &&n);

    ShardGroup &group;
    std::vector<std::unique_ptr<CoherenceChecker>> banks;
    std::vector<std::unique_ptr<BankChannel>> channels;
    /** Set by a bank's drain when it flags; read by the completion
     *  step (ordered by the window barrier, hence relaxed). */
    std::atomic<bool> anyViol{false};
    bool finalized = false;
};

} // namespace hsc

#endif // HSC_SIM_SHARDED_CHECKER_HH
