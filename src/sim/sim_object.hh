/**
 * @file
 * Base class for named simulation objects.
 */

#ifndef HSC_SIM_SIM_OBJECT_HH
#define HSC_SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace hsc
{

/**
 * A named object bound to an event queue.  Every controller, core and
 * memory in a system derives from SimObject so traces and stats can be
 * attributed.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : _name(std::move(name)), eq(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Hierarchical instance name, e.g. "system.corepair1.l2". */
    const std::string &name() const { return _name; }

    /** Current simulated time. */
    Tick curTick() const { return eq.curTick(); }

    /** The event queue this object schedules on. */
    EventQueue &eventQueue() { return eq; }

  protected:
    const std::string _name;
    EventQueue &eq;
};

} // namespace hsc

#endif // HSC_SIM_SIM_OBJECT_HH
