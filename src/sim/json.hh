/**
 * @file
 * Minimal JSON reader/writer for failure-trace capture and replay.
 *
 * Deliberately tiny: no external dependency, order-preserving
 * objects, and — critically for replay determinism — integers are
 * kept as exact 64-bit values (never squeezed through a double), so
 * RNG seeds and full-width addresses round-trip bit-exactly.
 */

#ifndef HSC_SIM_JSON_HH
#define HSC_SIM_JSON_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace hsc
{

/** One JSON value (tagged union). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : k(Kind::Bool), boolean(b) {}
    JsonValue(std::uint64_t v) : k(Kind::Int), integer(v) {}
    JsonValue(std::int64_t v)
        // Negate in the unsigned domain: -INT64_MIN overflows int64_t.
        : k(Kind::Int),
          integer(v < 0 ? 0 - std::uint64_t(v) : std::uint64_t(v)),
          negative(v < 0)
    {}
    JsonValue(int v) : JsonValue(std::int64_t(v)) {}
    JsonValue(unsigned v) : JsonValue(std::uint64_t(v)) {}
    JsonValue(double v) : k(Kind::Double), real(v) {}
    JsonValue(std::string s) : k(Kind::String), str(std::move(s)) {}
    JsonValue(const char *s) : k(Kind::String), str(s) {}

    /** @{ Static factories for the container kinds. */
    static JsonValue makeArray();
    static JsonValue makeObject();
    /** @} */

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isObject() const { return k == Kind::Object; }
    bool isArray() const { return k == Kind::Array; }

    /** @{ Scalar accessors — fatal() on kind mismatch. */
    bool asBool() const;
    std::uint64_t asUInt() const;
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const;
    /** @} */

    /** @{ Array access. */
    const std::vector<JsonValue> &items() const;
    std::vector<JsonValue> &items();
    void push(JsonValue v);
    std::size_t size() const;
    /** Element access; fatal() when out of range. */
    const JsonValue &at(std::size_t i) const;
    /** @} */

    /** @{ Object access (insertion-ordered). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;
    /** Lookup; fatal() when @p key is absent. */
    const JsonValue &at(const std::string &key) const;
    /** Lookup; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;
    /** Insert or overwrite @p key. */
    void set(const std::string &key, JsonValue v);
    /** @} */

    /** Serialize; @p indent > 0 pretty-prints. */
    void write(std::ostream &os, int indent = 0, int depth = 0) const;
    std::string dump(int indent = 0) const;

  private:
    Kind k = Kind::Null;
    bool boolean = false;
    std::uint64_t integer = 0;
    bool negative = false;
    double real = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;
};

/** Parse @p text; throws SimError on malformed input. */
JsonValue parseJson(const std::string &text);

} // namespace hsc

#endif // HSC_SIM_JSON_HH
