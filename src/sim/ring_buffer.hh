/**
 * @file
 * Growable circular FIFO for hot-path pending queues.
 *
 * std::deque allocates and frees fixed-size chunks as elements flow
 * through, which puts a malloc every few messages on the delivery
 * path.  RingBuf grows its power-of-two storage to the high-water
 * mark once and then cycles through it allocation-free — exactly the
 * steady-state behaviour the event kernel promises (DESIGN.md §9).
 */

#ifndef HSC_SIM_RING_BUFFER_HH
#define HSC_SIM_RING_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace hsc
{

/** FIFO over reused storage; T must be default- and move-constructible. */
template <typename T>
class RingBuf
{
  public:
    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    T &front() { return slots[headIdx]; }
    const T &front() const { return slots[headIdx]; }

    /** @p i-th element from the front (0 = oldest). */
    const T &
    operator[](std::size_t i) const
    {
        return slots[(headIdx + i) & (slots.size() - 1)];
    }

    void
    push_back(T v)
    {
        if (count == slots.size())
            grow();
        slots[(headIdx + count) & (slots.size() - 1)] = std::move(v);
        ++count;
    }

    void
    pop_front()
    {
        slots[headIdx] = T{}; // drop payloads eagerly (e.g. DataBlocks)
        headIdx = (headIdx + 1) & (slots.size() - 1);
        --count;
    }

    void
    clear()
    {
        while (count > 0)
            pop_front();
    }

  private:
    void
    grow()
    {
        std::size_t cap = slots.empty() ? 8 : slots.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count; ++i)
            next[i] = std::move(slots[(headIdx + i) & (slots.size() - 1)]);
        slots = std::move(next);
        headIdx = 0;
    }

    std::vector<T> slots;
    std::size_t headIdx = 0;
    std::size_t count = 0;
};

} // namespace hsc

#endif // HSC_SIM_RING_BUFFER_HH
