/**
 * @file
 * Checkpoint/restore core — the drain-quiesce snapshot coordinator.
 *
 * A checkpoint is taken only at *quiesce*: agent frontends stop
 * issuing new operations (they park at the coordinator's gate), every
 * in-flight transaction retires, and the event queue holds no
 * progress-tagged events (EventQueue::progressPending() == 0).  At
 * that point the persistent state of the system is exactly the
 * component arrays (caches, directory, memory image, stats, RNG
 * cursors) plus *where each agent is in its program* — and the latter
 * is the part that cannot be serialized directly, because agents are
 * C++20 coroutines whose frames are opaque.
 *
 * The coordinator solves this with per-agent operation logs: while
 * checkpointing is enabled, every awaited operation records its kind
 * and result words on completion.  Restore rebuilds the system from
 * the component state, re-runs the workload's setup to re-register
 * the same coroutines, and then *replays* each coroutine
 * synchronously: every awaited op consumes the next log entry and
 * completes inline with the recorded result, touching no component
 * and scheduling no event.  When an agent's log runs dry its next op
 * parks at the gate — the exact program point it had reached at
 * quiesce.  Releasing the gates (in sorted agent-key order, the same
 * order the uninterrupted run uses) resumes the simulation; because
 * everything else was restored bit-exactly, the resumed run is
 * bit-identical to the uninterrupted one.
 *
 * The on-disk envelope carries a magic string, a format version and
 * an FNV-1a checksum of the payload, so truncated or corrupted
 * checkpoint files fail with a structured SimError instead of
 * undefined behaviour.
 */

#ifndef HSC_SIM_SNAPSHOT_HH
#define HSC_SIM_SNAPSHOT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hsc
{

class EventQueue;
class JsonValue;

/** Kind tag of one logged agent operation (stable snapshot ABI:
 *  append only, never renumber). */
enum class OpKind : std::uint8_t
{
    CpuLoad = 0,     ///< 1 result word
    CpuStore = 1,    ///< no result
    CpuAmo = 2,      ///< 1 result word (old value)
    CpuCompute = 3,  ///< no result
    GpuVload = 4,    ///< one result word per lane
    GpuVstore = 5,   ///< no result
    GpuLoad = 6,     ///< 1 result word
    GpuStore = 7,    ///< no result
    GpuAmo = 8,      ///< 1 result word
    GpuCompute = 9,  ///< no result
    GpuAcquire = 10, ///< no result
    GpuRelease = 11, ///< no result
    DmaRead = 12,    ///< 8 result words (one 64-byte block)
    DmaWrite = 13,   ///< no result
    DmaCopy = 14,    ///< no result
};

const char *opKindName(OpKind k);

/** One completed operation of one agent, in program order. */
struct OpRecord
{
    OpKind kind = OpKind::CpuLoad;
    std::vector<std::uint64_t> words;

    std::uint64_t word(std::size_t i) const;
};

/**
 * Agent keys.  CPU threads use their tid; wavefronts derive a key
 * from (kernel launch ordinal, workgroup id) so keys are unique
 * across kernel launches.  DMA operations are attributed to the CPU
 * agent that awaits them.
 */
constexpr std::uint64_t
waveAgentKey(std::uint64_t launch_ordinal, unsigned workgroup)
{
    return (std::uint64_t(1) << 63) | (launch_ordinal << 20) |
           workgroup;
}

/**
 * Drain / record / replay hub shared by every agent frontend.  Owned
 * by HsaSystem; frontends hold a raw pointer (null when checkpointing
 * is disabled, so the clean path costs one pointer test per op).
 */
class SnapshotCoordinator
{
  public:
    /** @{ Mode queries — each op's start() branches on these. */
    bool draining() const { return draining_; }
    bool replaying() const { return replaying_; }
    /** @} */

    /** @{ Drain protocol (HsaSystem's checkpoint loop). */
    void beginDrain();
    void endDrain();
    /** @} */

    /** Record the completion of @p agent's next operation. */
    void record(std::uint64_t agent, OpKind kind,
                const std::uint64_t *words, std::size_t n);

    void
    record(std::uint64_t agent, OpKind kind,
           std::initializer_list<std::uint64_t> words = {})
    {
        record(agent, kind, words.begin(), words.size());
    }

    /**
     * Replay: consume @p agent's next log entry.  Returns nullptr
     * when the log is exhausted (the op must park at the gate);
     * panics when the entry's kind differs from @p kind — the replay
     * diverged from the recorded program, i.e. the snapshot is
     * corrupt or the workload is non-deterministic.
     */
    const OpRecord *replayNext(std::uint64_t agent, OpKind kind);

    /** Park @p agent; @p resume re-issues its pending op. */
    void park(std::uint64_t agent, std::function<void()> resume);

    /**
     * Schedule one resume event per parked agent at the current tick,
     * in ascending agent-key order — identical between the drain end
     * of an uninterrupted run and a restore, so event sequence
     * numbers (and therefore everything downstream) match.
     */
    void releaseGates(EventQueue &eq);

    std::size_t parkedCount() const { return parked_.size(); }

    /** @{ Kernel-launch ordinals: assigned globally in launch order
     *  while recording, re-derived per launching agent during replay
     *  (cross-agent replay order need not match global launch
     *  order). */
    std::uint64_t assignLaunchOrdinal(std::uint64_t agent);
    std::uint64_t takeLaunchOrdinal(std::uint64_t agent);
    /** @} */

    /** @{ Log persistence + replay lifecycle. */
    void serializeLogs(JsonValue &out) const;
    /** Load logs and enter replay mode. */
    void beginReplay(const JsonValue &in);
    /** Leave replay mode; panics unless every log was consumed. */
    void endReplay();
    /** @} */

    /** Total logged ops (diagnostics / overhead accounting). */
    std::uint64_t loggedOps() const { return loggedOps_; }

  private:
    struct AgentLog
    {
        std::vector<OpRecord> ops;
        std::size_t replayPos = 0;
    };

    struct LaunchSeq
    {
        std::vector<std::uint64_t> ordinals;
        std::size_t replayPos = 0;
    };

    bool draining_ = false;
    bool replaying_ = false;
    std::map<std::uint64_t, AgentLog> logs_;
    std::map<std::uint64_t, LaunchSeq> launches_;
    std::uint64_t nextOrdinal_ = 0;
    std::uint64_t loggedOps_ = 0;
    std::map<std::uint64_t, std::function<void()>> parked_;
};

/** @{ Checkpoint envelope.
 * wrapSnapshot seals @p payload into the on-disk text (magic,
 * version, FNV-1a checksum); openSnapshot verifies and returns the
 * payload, throwing SimError("snapshot") on anything malformed —
 * truncation, bad magic, version skew, checksum mismatch. */
std::string wrapSnapshot(const JsonValue &payload);
JsonValue openSnapshot(const std::string &text);
/** @} */

/** @{ Checkpoint file IO.
 * Writes go to "<path>.tmp" then rename(2) into place, so a crash
 * (or SIGKILL) mid-write never leaves a torn checkpoint at @p path.
 * readSnapshotFile throws SimError("snapshot") when unreadable. */
void writeSnapshotFile(const std::string &path, const std::string &text);
std::string readSnapshotFile(const std::string &path);
/** @} */

} // namespace hsc

#endif // HSC_SIM_SNAPSHOT_HH
