#include "sim/fault_injector.hh"

namespace hsc
{

namespace
{

/** FNV-1a over the link name: stable per-link stream selector. */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (char c : s) {
        h ^= std::uint8_t(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig &cfg,
                             Tick cycle_period_ticks)
    : cfg(cfg), period(cycle_period_ticks)
{
}

Rng &
FaultInjector::streamFor(const std::string &link)
{
    auto it = streams.find(link);
    if (it == streams.end())
        it = streams.emplace(link, Rng(cfg.seed ^ fnv1a(link))).first;
    return it->second;
}

Tick
FaultInjector::extraDelay(const std::string &link)
{
    if (!cfg.enabled)
        return 0;
    Rng &rng = streamFor(link);
    Tick extra = 0;
    if (cfg.maxJitter)
        extra += rng.below(cfg.maxJitter + 1) * period;
    if (cfg.spikePercent && rng.chance(cfg.spikePercent))
        extra += cfg.spikeCycles * period;
    return extra;
}

bool
FaultInjector::isDead(const std::string &link) const
{
    for (const std::string &pat : cfg.deadLinks) {
        if (link.find(pat) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace hsc
