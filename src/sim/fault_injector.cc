#include "sim/fault_injector.hh"

#include "mem/data_block.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{

namespace
{

/**
 * SplitMix64-style mix of (seed, link id): every link gets a stream
 * that is independent of the others and of the link's name, so fault
 * schedules survive link renames and host-side threading.
 */
std::uint64_t
mixSeed(std::uint64_t seed, unsigned link_id)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (link_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

FaultInjector::FaultInjector(const FaultConfig &cfg,
                             Tick cycle_period_ticks)
    : cfg(cfg), period(cycle_period_ticks)
{
}

Rng &
FaultInjector::streamFor(unsigned link_id)
{
    if (link_id >= streams.size())
        streams.resize(link_id + 1);
    if (!streams[link_id])
        streams[link_id] =
            std::make_unique<Rng>(mixSeed(cfg.seed, link_id));
    return *streams[link_id];
}

void
FaultInjector::preallocateStreams(unsigned count)
{
    if (count > streams.size())
        streams.resize(count);
    for (unsigned id = 0; id < count; ++id) {
        if (!streams[id])
            streams[id] =
                std::make_unique<Rng>(mixSeed(cfg.seed, id));
    }
}

Tick
FaultInjector::extraDelay(unsigned link_id)
{
    if (!cfg.enabled)
        return 0;
    Rng &rng = streamFor(link_id);
    Tick extra = 0;
    if (cfg.maxJitter)
        extra += rng.below(cfg.maxJitter + 1) * period;
    if (cfg.spikePercent && rng.chance(cfg.spikePercent))
        extra += cfg.spikeCycles * period;
    return extra;
}

WireFate
FaultInjector::wireFate(unsigned link_id)
{
    WireFate fate;
    if (!cfg.enabled)
        return fate;
    Rng &rng = streamFor(link_id);
    // Fixed draw order, one draw per *configured* mode: the schedule
    // of mode A never shifts because mode B was toggled off.
    if (cfg.maxJitter)
        fate.extraDelay += rng.below(cfg.maxJitter + 1) * period;
    if (cfg.spikePercent && rng.chance(cfg.spikePercent))
        fate.extraDelay += cfg.spikeCycles * period;
    if (cfg.dropPer10k)
        fate.drop = rng.below(10000) < cfg.dropPer10k;
    if (cfg.dupPer10k) {
        fate.duplicate = rng.below(10000) < cfg.dupPer10k;
        if (fate.duplicate)
            fate.dupExtraDelay =
                fate.extraDelay + (1 + rng.below(4)) * period;
    }
    if (cfg.corruptPer10k) {
        fate.corrupt = rng.below(10000) < cfg.corruptPer10k;
        if (fate.corrupt)
            fate.corruptByte = unsigned(rng.below(BlockSizeBytes));
    }
    return fate;
}

void
FaultInjector::serialize(JsonValue &out) const
{
    // Only streams that have been drawn from exist; serialize them as
    // [link_id, s0, s1, s2, s3].  Untouched links re-seed identically
    // from (seed, id) on demand, so omitting them is lossless.
    JsonValue arr = JsonValue::makeArray();
    for (std::size_t id = 0; id < streams.size(); ++id) {
        if (!streams[id])
            continue;
        auto st = streams[id]->state();
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(std::uint64_t(id)));
        for (std::uint64_t word : st)
            row.push(JsonValue(word));
        arr.push(std::move(row));
    }
    out.set("streams", std::move(arr));
}

void
FaultInjector::restore(const JsonValue &in)
{
    streams.clear();
    for (const JsonValue &row : in.at("streams").items()) {
        if (row.size() != 5)
            throw SimError("fault injector restore: malformed stream row",
                           "snapshot");
        unsigned id = unsigned(row.items().at(0).asUInt());
        std::array<std::uint64_t, 4> st;
        for (int i = 0; i < 4; ++i)
            st[std::size_t(i)] = row.items().at(std::size_t(i + 1)).asUInt();
        streamFor(id).setState(st);
    }
}

bool
FaultInjector::isDead(const std::string &link) const
{
    for (const std::string &pat : cfg.deadLinks) {
        if (link.find(pat) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace hsc
