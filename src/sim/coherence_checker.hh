/**
 * @file
 * CoherenceChecker — runtime protocol-invariant sanitizer.
 *
 * A passive observer the controllers feed with every line-state
 * transition and data transfer.  Unlike the post-mortem quiescent
 * sweep (core/coherence_checker.hh) this checker fires *while the
 * protocol runs*, so a violation is reported at the first wrong
 * transition with the recent event history of the offending block,
 * not after the damage has propagated through the memory image.
 *
 * Invariants enforced:
 *   1. single-writer/multiple-reader over the CPU L2s (GPU VI caches
 *      are excluded: VIPER scoped coherence legitimately lets them
 *      hold stale data until an acquire);
 *   2. data-value: clean data delivered or written back anywhere must
 *      match a shadow image of the last system-visible write, which
 *      is maintained at the directory serialisation point (masked
 *      writes, dirty victims, dirty probe forwards);
 *   3. state/permission consistency: stores may only be applied
 *      against a line with write permission;
 *   4. per-controller legal-event tables: a message arriving in a
 *      state that cannot accept it flags instead of silently (or
 *      fatally) falling through.
 *
 * The checker never throws: it records bounded ViolationReports and
 * trips a flag that HsaSystem::run() polls, so a failing run ends
 * cleanly with a structured report (like PR 1's HangReport).
 */

#ifndef HSC_SIM_COHERENCE_CHECKER_HH
#define HSC_SIM_COHERENCE_CHECKER_HH

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mem/data_block.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace hsc
{

class JsonValue;

/** Controller families, each with its own legal-event table. */
enum class CheckerCtrl : std::uint8_t
{
    CorePair,
    Directory,
    Llc,
    Tcc,
    Tcp,
    Sqc,
    Dma,
};

std::string_view checkerCtrlName(CheckerCtrl c);

/** One observed protocol event; also the unit of the trace rings. */
struct CheckerEvent
{
    Tick tick = 0;
    CheckerCtrl kind = CheckerCtrl::Directory;
    std::string ctrl;   ///< controller instance name
    Addr addr = 0;
    std::string state;  ///< local state when the event was observed
    std::string event;  ///< message / action name

    std::string toString() const;
};

/** A detected invariant violation plus the block's recent history. */
struct ViolationReport
{
    std::string kind;    ///< swmr | stale-data | no-write-permission |
                         ///< illegal-event | double-dirty
    Addr addr = 0;
    Tick atTick = 0;
    std::string detail;  ///< names both controllers and their states
    std::vector<CheckerEvent> history;  ///< last K events on the block

    /** One-line summary for RunMetrics::failReason. */
    std::string brief() const;
    void print(std::ostream &os) const;
};

/**
 * The runtime checker.  One instance per HsaSystem; controllers hold
 * a raw pointer (null when SystemConfig::check is off) and call the
 * note*() hooks, all of which are no-throw and O(1) amortised.
 *
 * The note*() hooks are virtual so the PDES path can substitute a
 * ShardedCoherenceChecker (sim/sharded_checker.hh) that routes each
 * observation to the directory bank owning the block; the sequential
 * base class stamps every observation with its queue's current tick
 * and applies it immediately via the apply*() methods below.
 */
class CoherenceChecker
{
  public:
    /** Cached permission a controller holds on a block. */
    enum class Perm : std::uint8_t { None, Read, Write };

    CoherenceChecker(std::string name, EventQueue &eq,
                     unsigned global_ring = 4096,
                     unsigned per_block_ring = 16);
    virtual ~CoherenceChecker() = default;

    /**
     * Record @p event observed by @p ctrl in local @p state, and check
     * it against the family's legal-event table.
     * @return true when the (state, event) pair is legal; false after
     *         flagging an illegal-event violation (callers drop the
     *         message instead of panicking).
     */
    virtual bool noteEvent(CheckerCtrl kind, const std::string &ctrl,
                           Addr addr, std::string_view state,
                           std::string_view event);

    /**
     * A CorePair L2 line changed state; @p perm is the resulting
     * permission (None when invalidated).  Gaining Write while another
     * controller holds Write is the SWMR violation.
     */
    virtual void notePermission(const std::string &ctrl, Addr addr,
                                Perm perm, std::string_view state);

    /** A store/atomic was applied against local state @p state. */
    virtual void noteStoreApplied(const std::string &ctrl, Addr addr,
                                  std::string_view state,
                                  bool had_write_perm);

    /**
     * A system-visible write at the ordering point (directory masked
     * write, accepted dirty victim, dirty probe forward): updates the
     * shadow image of the block.
     */
    virtual void noteSystemWrite(const std::string &ctrl, Addr addr,
                                 const DataBlock &data, ByteMask mask);

    /**
     * Clean data observed at a compare point (clean victim, backing
     * response, clean probe forward): every byte the shadow knows must
     * match; unknown bytes seed the shadow.
     */
    virtual void noteCleanData(const std::string &ctrl, Addr addr,
                               const DataBlock &data,
                               std::string_view what);

    /** Flag a violation detected by a controller's own cross-check. */
    virtual void reportViolation(std::string kind,
                                 const std::string &ctrl, Addr addr,
                                 std::string detail);

    virtual bool violated() const { return !violationList.empty(); }

    /**
     * Merge any per-shard state into this checker after a parallel
     * run's workers have joined (violation lists, counters, trace
     * rings).  A no-op for the sequential checker; HsaSystem calls it
     * unconditionally after every PDES run, including failed ones.
     */
    virtual void finalizeParallel() {}

    /** @{ Explicit-tick variants of the note* hooks.  These hold the
     *  actual checking logic: the note* entry points stamp
     *  eq.curTick() and forward here, and the sharded router replays
     *  cross-shard observations with the tick captured at the
     *  observing shard.  @p tick must be nondecreasing per block for
     *  the history rings to read sensibly; the invariant logic itself
     *  is order-tolerant within a lookahead window. */
    bool applyEvent(Tick tick, CheckerCtrl kind, const std::string &ctrl,
                    Addr addr, std::string_view state,
                    std::string_view event);
    void applyPermission(Tick tick, const std::string &ctrl, Addr addr,
                         Perm perm, std::string_view state);
    void applyStoreApplied(Tick tick, const std::string &ctrl, Addr addr,
                           std::string_view state, bool had_write_perm);
    void applySystemWrite(Tick tick, const std::string &ctrl, Addr addr,
                          const DataBlock &data, ByteMask mask);
    void applyCleanData(Tick tick, const std::string &ctrl, Addr addr,
                        const DataBlock &data, std::string_view what);
    void violationAt(Tick tick, std::string kind, Addr addr,
                     std::string detail);
    /** @} */

    /** All violations flagged, including those past the report cap. */
    std::uint64_t violationsFlagged() const
    {
        return statViolations.value();
    }
    const std::vector<ViolationReport> &violations() const
    {
        return violationList;
    }

    /** First violation's one-liner ("" when clean). */
    std::string brief() const;

    /** Oldest-to-newest copy of the global event ring (≤ @p max). */
    std::vector<CheckerEvent> traceTail(std::size_t max = 0) const;

    void regStats(StatRegistry &reg);

    /** @{ Snapshot hooks: shadow images, known-byte masks and held
     *  permissions persist; the bounded trace rings restart empty
     *  (they are diagnostics, not protocol state). */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

    std::uint64_t transitionsChecked() const
    {
        return statTransitionsChecked.value();
    }

    /** Data compares skipped because one side carried ECC poison —
     *  contained corruption, not a coherence violation.  A plain
     *  (unregistered) counter so the stat namespace is unchanged. */
    std::uint64_t poisonSkips() const { return poisonSkipCount; }
    std::uint64_t blocksShadowed() const
    {
        return statBlocksShadowed.value();
    }

  protected:
    struct HeldPerm
    {
        Perm perm = Perm::None;
        std::string state;
    };

    struct BlockState
    {
        DataBlock shadow;
        ByteMask known = 0;  ///< bytes with a known expected value
        std::unordered_map<std::string, HeldPerm> perms;
        std::vector<CheckerEvent> ring;  ///< bounded, oldest first
    };

    BlockState &blockOf(Addr addr);
    void record(CheckerEvent ev);

    /** Family legal-event table; see the .cc for the encoding.
     *  Stateless, so the sharded router can return a verdict at the
     *  observing shard without waiting for the owning bank. */
    static bool legalEvent(CheckerCtrl kind, std::string_view state,
                           std::string_view event);

    const std::string checkerName;
    EventQueue &eq;
    const unsigned globalRingCap;
    const unsigned perBlockRingCap;

    std::unordered_map<Addr, BlockState> blocks;

    /** Global ring: fixed capacity, head = next slot to overwrite. */
    std::vector<CheckerEvent> globalRing;
    std::size_t globalHead = 0;
    bool globalWrapped = false;

    std::vector<ViolationReport> violationList;
    static constexpr std::size_t MaxViolations = 16;

    Counter statTransitionsChecked;
    Counter statBlocksShadowed;
    Counter statViolations;

    std::uint64_t poisonSkipCount = 0;
};

} // namespace hsc

#endif // HSC_SIM_COHERENCE_CHECKER_HH
