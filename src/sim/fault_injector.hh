/**
 * @file
 * FaultInjector — deterministic, semantics-preserving link
 * perturbation for protocol stress testing.
 *
 * The injector hooks MessageBuffer::enqueue and adds bounded
 * per-message latency jitter plus occasional per-link delay spikes.
 * Delivery stays FIFO per link (MessageBuffer clamps each delivery at
 * or after the previous one), so a correct protocol must produce the
 * same final memory image under every fault schedule — RandomTester's
 * jitter-sweep mode asserts exactly that.
 *
 * Each link draws from its own PRNG stream seeded from (seed, link
 * name), so the k-th message on a given link sees the same jitter
 * regardless of what other links do: the same seed always yields the
 * same delivery schedule.
 *
 * Dead links are the exception to semantics preservation: a link
 * matching FaultConfig::deadLinks silently drops every message.  That
 * is the supported way to *induce* a protocol hang and exercise the
 * watchdog/HangReport path in tests.
 */

#ifndef HSC_SIM_FAULT_INJECTOR_HH
#define HSC_SIM_FAULT_INJECTOR_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace hsc
{

/** Fault-injection knobs (SystemConfig::fault). */
struct FaultConfig
{
    /** Master switch for jitter/spikes (dead links apply regardless). */
    bool enabled = false;

    /** Schedule seed: same seed -> identical delivery schedule. */
    std::uint64_t seed = 1;

    /** Uniform extra latency in [0, maxJitter] cycles per message. */
    Cycles maxJitter = 0;

    /** Percent chance per message of an additional delay spike. */
    unsigned spikePercent = 0;

    /** Magnitude of a delay spike, in cycles. */
    Cycles spikeCycles = 0;

    /**
     * Links (substring-matched against the link name) that drop every
     * message — hang induction for watchdog/HangReport testing.
     */
    std::vector<std::string> deadLinks;

    bool any() const { return enabled || !deadLinks.empty(); }
};

/**
 * Deterministic per-link delay generator.  One instance is shared by
 * every MessageBuffer of a system; cycle values in FaultConfig are
 * converted with the period handed to the constructor (the CPU clock,
 * matching the uncore).
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, Tick cycle_period_ticks);

    /**
     * Extra delivery delay in ticks for the next message on @p link.
     * Consumes one draw from the link's stream; call exactly once per
     * enqueued message.
     */
    Tick extraDelay(const std::string &link);

    /** True when @p link matches a configured dead link. */
    bool isDead(const std::string &link) const;

    const FaultConfig &config() const { return cfg; }

  private:
    Rng &streamFor(const std::string &link);

    const FaultConfig cfg;
    const Tick period;
    std::unordered_map<std::string, Rng> streams;
};

} // namespace hsc

#endif // HSC_SIM_FAULT_INJECTOR_HH
