/**
 * @file
 * FaultInjector — deterministic link perturbation for protocol
 * stress testing.
 *
 * The injector hooks MessageBuffer::enqueue (and, when the reliable
 * transport is enabled, every LinkTransport wire transmission) and
 * perturbs delivery:
 *
 *  - bounded per-message latency jitter plus occasional per-link
 *    delay spikes (semantics-preserving: the legacy delivery path
 *    clamps FIFO order, so a correct protocol must produce the same
 *    final memory image under every jitter schedule);
 *  - probabilistic message drop / duplication / payload corruption
 *    (dropPer10k, dupPer10k, corruptPer10k) — these *do* break the
 *    link's delivery contract and are only survivable with the
 *    reliable transport layer (mem/transport.hh) enabled;
 *  - dead links matching FaultConfig::deadLinks silently drop every
 *    message: the supported way to induce a hang (legacy path) or a
 *    retry-budget DegradedReport (transport path).
 *
 * Each link draws from its own PRNG stream seeded from (seed,
 * link id).  The id is a small dense integer assigned by HsaSystem in
 * construction order, so the k-th draw on a given link is a pure
 * function of (seed, id, k): schedules never depend on the link's
 * name, on traffic interleaving across links, or on host threading
 * (HSC_BENCH_THREADS / runMatrix never change fault schedules).
 */

#ifndef HSC_SIM_FAULT_INJECTOR_HH
#define HSC_SIM_FAULT_INJECTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace hsc
{

class JsonValue;

/** Fault-injection knobs (SystemConfig::fault). */
struct FaultConfig
{
    /** Master switch for probabilistic faults (jitter, spikes, loss).
     *  Dead links apply regardless. */
    bool enabled = false;

    /** Schedule seed: same seed -> identical fault schedule. */
    std::uint64_t seed = 1;

    /** Uniform extra latency in [0, maxJitter] cycles per message. */
    Cycles maxJitter = 0;

    /** Percent chance per message of an additional delay spike. */
    unsigned spikePercent = 0;

    /** Magnitude of a delay spike, in cycles. */
    Cycles spikeCycles = 0;

    /** @{ Lossy-link modes, probabilities in basis points per message
     *  (1% = 100, 0.1% = 10; max 10000).  Only meaningful with the
     *  reliable transport enabled — the legacy path has no recovery
     *  and would simply wedge. */
    unsigned dropPer10k = 0;     ///< message silently lost on the wire
    unsigned dupPer10k = 0;      ///< a second copy arrives later
    unsigned corruptPer10k = 0;  ///< one payload byte flipped in flight
    /** @} */

    /**
     * Links (substring-matched against the link name) that drop every
     * message — hang/degradation induction for watchdog and
     * retry-budget testing.
     */
    std::vector<std::string> deadLinks;

    bool
    lossy() const
    {
        return dropPer10k || dupPer10k || corruptPer10k;
    }

    /** @{ Crash fates: deterministically kill the run mid-flight, the
     *  in-process analogue of SIGKILL for kill-resume testing.  The
     *  run stops exactly like a watchdog trip (failure report, no
     *  drain) once simulated time advances @p crashAtTick ticks past
     *  run start, or once @p crashAfterEvents events have executed.
     *  0 disables. */
    Tick crashAtTick = 0;
    std::uint64_t crashAfterEvents = 0;
    /** @} */

    bool any() const { return enabled || !deadLinks.empty(); }
};

/** Everything that can happen to one wire transmission. */
struct WireFate
{
    Tick extraDelay = 0;     ///< jitter + spike, in ticks
    bool drop = false;       ///< frame never arrives
    bool duplicate = false;  ///< a second copy also arrives
    Tick dupExtraDelay = 0;  ///< extra delay of the duplicate copy
    bool corrupt = false;    ///< flip one byte of the frame
    unsigned corruptByte = 0;  ///< which payload byte to flip
};

/**
 * Deterministic per-link fault generator.  One instance is shared by
 * every MessageBuffer of a system; cycle values in FaultConfig are
 * converted with the period handed to the constructor (the CPU clock,
 * matching the uncore).
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, Tick cycle_period_ticks);

    /**
     * Extra delivery delay in ticks for the next message on link
     * @p link_id (legacy jitter-only path).  Consumes draws from the
     * link's stream; call exactly once per enqueued message.
     */
    Tick extraDelay(unsigned link_id);

    /**
     * Full wire fate of the next transmission on link @p link_id
     * (transport path): jitter plus drop/duplicate/corrupt outcomes.
     * One call consumes a fixed number of draws per configured mode,
     * so the schedule is a pure function of (seed, id, call index).
     */
    WireFate wireFate(unsigned link_id);

    /** True when @p link matches a configured dead link. */
    bool isDead(const std::string &link) const;

    /**
     * Eagerly create the streams for link ids [0, count) — required
     * before a PDES run: streamFor's on-demand vector growth is not
     * thread-safe across shards, and with every stream pre-built each
     * link's RNG is only ever touched by its sender's worker thread.
     * PDES-only by design: pre-built untouched streams would also
     * appear in checkpoint serialization (harmless but text-changing),
     * and checkpoints are rejected under PDES anyway.
     */
    void preallocateStreams(unsigned count);

    const FaultConfig &config() const { return cfg; }

    /** @{ Snapshot hooks: per-link PRNG cursors, so a resumed run
     *  draws the same fault schedule tail as the uninterrupted one. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    Rng &streamFor(unsigned link_id);

    const FaultConfig cfg;
    const Tick period;
    /** Per-link streams, indexed by link id (grown on demand; unused
     *  slots stay null so ids may be sparse). */
    std::vector<std::unique_ptr<Rng>> streams;
};

} // namespace hsc

#endif // HSC_SIM_FAULT_INJECTOR_HH
