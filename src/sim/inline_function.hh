/**
 * @file
 * Small-buffer-only callable for the event-kernel hot path.
 *
 * std::function heap-allocates any capture larger than its (16-byte
 * on libstdc++) small-object buffer, which used to put one or two
 * mallocs on the path of *every* scheduled event.  InlineCallback
 * stores the callable inline, always: a callable that does not fit
 * the buffer is a compile error, not a silent allocation, so the
 * no-allocation property of the event kernel is enforced by the type
 * system rather than by review.  Oversized captures are a design
 * smell anyway — state belongs in the scheduling object (see
 * MessageBuffer's pending ring), with a thin [this] thunk scheduled.
 *
 * Move-only, like the events it carries.  Trivially-copyable
 * callables (the common case: [this], [this, i], plain function
 * pointers) relocate with memcpy and destroy for free; non-trivial
 * ones (e.g. a captured std::function) pay one indirect manager call.
 */

#ifndef HSC_SIM_INLINE_FUNCTION_HH
#define HSC_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hsc
{

/** Nullary void callable with inline-only storage. */
template <std::size_t Capacity>
class InlineFunction
{
  public:
    InlineFunction() = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InlineFunction>>>
    InlineFunction(F &&f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "capture too large for InlineFunction: move the "
                      "state into the scheduling object and capture "
                      "[this] (no heap fallback, by design)");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "overaligned capture not supported");
        static_assert(std::is_nothrow_move_constructible_v<Fn>,
                      "captures must be nothrow-move-constructible");
        ::new (static_cast<void *>(buf)) Fn(std::forward<F>(f));
        invokeFn = [](void *p) { (*static_cast<Fn *>(p))(); };
        size = sizeof(Fn);
        if constexpr (!(std::is_trivially_move_constructible_v<Fn> &&
                        std::is_trivially_destructible_v<Fn>)) {
            manageFn = [](Op op, void *self, void *other) {
                auto *fn = static_cast<Fn *>(self);
                if (op == Op::Relocate) {
                    auto *src = static_cast<Fn *>(other);
                    ::new (static_cast<void *>(fn)) Fn(std::move(*src));
                    src->~Fn();
                } else {
                    fn->~Fn();
                }
            };
        }
    }

    InlineFunction(InlineFunction &&o) noexcept { moveFrom(o); }

    InlineFunction &
    operator=(InlineFunction &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** Invoke; undefined when empty (never scheduled empty). */
    void operator()() { invokeFn(buf); }

    explicit operator bool() const { return invokeFn != nullptr; }

  private:
    enum class Op
    {
        Relocate,
        Destroy,
    };

    void
    moveFrom(InlineFunction &o) noexcept
    {
        invokeFn = o.invokeFn;
        manageFn = o.manageFn;
        size = o.size;
        if (manageFn)
            manageFn(Op::Relocate, buf, o.buf);
        else
            std::memcpy(buf, o.buf, size); // only the live bytes
        o.invokeFn = nullptr;
        o.manageFn = nullptr;
    }

    void
    reset() noexcept
    {
        if (manageFn)
            manageFn(Op::Destroy, buf, nullptr);
        invokeFn = nullptr;
        manageFn = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf[Capacity];
    void (*invokeFn)(void *) = nullptr;
    void (*manageFn)(Op, void *, void *) = nullptr;
    /** Live byte count of the stored callable: relocation copies only
     *  this much, so a ring full of [this] thunks moves 8 bytes per
     *  event, not Capacity. */
    std::uint32_t size = 0;
};

} // namespace hsc

#endif // HSC_SIM_INLINE_FUNCTION_HH
