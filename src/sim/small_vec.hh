/**
 * @file
 * Small vector with inline storage for the protocol hot paths.
 *
 * The directory and cache controllers keep many tiny, short-lived
 * sequences: probe target lists (a handful of machine ids), per-line
 * pending-op queues (usually one or two entries), victim queues
 * (almost always depth one).  std::vector heap-allocates for the
 * first element and std::deque allocates a ~512-byte chunk on
 * construction, which put hundreds of thousands of mallocs per run on
 * the simulation hot path (DESIGN.md §9).  SmallVec stores up to N
 * elements inline and only touches the heap beyond that.
 *
 * Deliberately minimal: contiguous storage, move-aware, plus the
 * small-FIFO helpers (front/pop_front) the controllers need.
 * pop_front shifts the tail down — for the typical one/two element
 * queues this is cheaper than any ring bookkeeping.
 */

#ifndef HSC_SIM_SMALL_VEC_HH
#define HSC_SIM_SMALL_VEC_HH

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace hsc
{

template <typename T, std::size_t N>
class SmallVec
{
  public:
    SmallVec() = default;

    SmallVec(std::initializer_list<T> il)
    {
        for (const T &v : il)
            push_back(v);
    }

    SmallVec(SmallVec &&o) noexcept { moveFrom(o); }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this != &o) {
            destroy();
            moveFrom(o);
        }
        return *this;
    }

    SmallVec(const SmallVec &o) { copyFrom(o); }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this != &o) {
            destroy();
            copyFrom(o);
        }
        return *this;
    }

    ~SmallVec() { destroy(); }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    T *begin() { return ptr(); }
    T *end() { return ptr() + count; }
    const T *begin() const { return ptr(); }
    const T *end() const { return ptr() + count; }

    T &operator[](std::size_t i) { return ptr()[i]; }
    const T &operator[](std::size_t i) const { return ptr()[i]; }

    T &front() { return ptr()[0]; }
    const T &front() const { return ptr()[0]; }
    T &back() { return ptr()[count - 1]; }
    const T &back() const { return ptr()[count - 1]; }

    void
    push_back(T v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (count == cap)
            grow();
        T *slot = ptr() + count;
        ::new (static_cast<void *>(slot)) T(std::forward<Args>(args)...);
        ++count;
        return *slot;
    }

    void
    pop_back()
    {
        ptr()[--count].~T();
    }

    /** FIFO pop: shift the tail down one slot (queues here are a
     *  couple of entries deep, so the shift beats ring bookkeeping). */
    void
    pop_front()
    {
        T *p = ptr();
        for (std::size_t i = 1; i < count; ++i)
            p[i - 1] = std::move(p[i]);
        pop_back();
    }

    /** Insert before @p pos, shifting the tail up. */
    T *
    insert(T *pos, T v)
    {
        std::size_t idx = std::size_t(pos - ptr());
        if (count == cap)
            grow();
        T *p = ptr();
        if (idx == count) {
            ::new (static_cast<void *>(p + count)) T(std::move(v));
        } else {
            ::new (static_cast<void *>(p + count))
                T(std::move(p[count - 1]));
            for (std::size_t i = count - 1; i > idx; --i)
                p[i] = std::move(p[i - 1]);
            p[idx] = std::move(v);
        }
        ++count;
        return p + idx;
    }

    /** Erase [first, last), shifting the tail down. */
    T *
    erase(T *first, T *last)
    {
        T *e = end();
        T *d = first;
        for (T *s = last; s != e; ++s, ++d)
            *d = std::move(*s);
        while (end() != d)
            pop_back();
        return first;
    }

    void
    clear()
    {
        T *p = ptr();
        for (std::size_t i = 0; i < count; ++i)
            p[i].~T();
        count = 0;
    }

  private:
    T *
    ptr()
    {
        return heap ? heap : reinterpret_cast<T *>(inline_);
    }
    const T *
    ptr() const
    {
        return heap ? heap : reinterpret_cast<const T *>(inline_);
    }

    void
    grow()
    {
        // First spill goes straight to 16 slots: callers with inline
        // N of a few (event-queue buckets stacking sub-bucket-stride
        // events) would otherwise pay two allocations back to back.
        std::size_t new_cap = cap * 2 < 16 ? 16 : cap * 2;
        T *mem = static_cast<T *>(
            ::operator new(new_cap * sizeof(T), std::align_val_t{
                                                    alignof(T)}));
        T *p = ptr();
        for (std::size_t i = 0; i < count; ++i) {
            ::new (static_cast<void *>(mem + i)) T(std::move(p[i]));
            p[i].~T();
        }
        releaseHeap();
        heap = mem;
        cap = new_cap;
    }

    void
    releaseHeap()
    {
        if (heap)
            ::operator delete(heap, std::align_val_t{alignof(T)});
        heap = nullptr;
    }

    void
    destroy()
    {
        clear();
        releaseHeap();
        cap = N;
    }

    void
    moveFrom(SmallVec &o) noexcept
    {
        if (o.heap) {
            heap = o.heap;
            cap = o.cap;
            count = o.count;
            o.heap = nullptr;
            o.cap = N;
            o.count = 0;
        } else {
            T *src = reinterpret_cast<T *>(o.inline_);
            for (std::size_t i = 0; i < o.count; ++i) {
                ::new (static_cast<void *>(
                    reinterpret_cast<T *>(inline_) + i))
                    T(std::move(src[i]));
                src[i].~T();
            }
            count = o.count;
            o.count = 0;
        }
    }

    void
    copyFrom(const SmallVec &o)
    {
        for (std::size_t i = 0; i < o.count; ++i)
            emplace_back(o.ptr()[i]);
    }

    // Bookkeeping precedes the inline buffer so size()/empty() on a
    // cold SmallVec touch only its first cache line (the event-queue
    // ring scans bucket occupancy at 700-byte stride).
    T *heap = nullptr;
    std::size_t cap = N;
    std::size_t count = 0;
    alignas(T) unsigned char inline_[N * sizeof(T)];
};

} // namespace hsc

#endif // HSC_SIM_SMALL_VEC_HH
