#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace hsc
{

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    panic_if(when < _curTick,
             "scheduling event in the past (when=%llu cur=%llu)",
             (unsigned long long)when, (unsigned long long)_curTick);
    events.push(Entry{when, static_cast<std::int8_t>(prio), nextSeq++,
                      std::move(cb)});
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!events.empty() && events.top().when <= limit) {
        // Copy out before popping: the callback may schedule new
        // events and invalidate the reference returned by top().
        Entry e = std::move(const_cast<Entry &>(events.top()));
        events.pop();
        _curTick = e.when;
        e.cb();
        ++executed;
        ++n;
    }
    if (events.empty() && _curTick < limit && limit != MaxTick)
        _curTick = limit;
    return n;
}

bool
EventQueue::runUntil(const std::function<bool()> &done, Tick limit)
{
    if (done())
        return true;
    while (!events.empty() && events.top().when <= limit) {
        Entry e = std::move(const_cast<Entry &>(events.top()));
        events.pop();
        _curTick = e.when;
        e.cb();
        ++executed;
        if (done())
            return true;
    }
    return false;
}

} // namespace hsc
