#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace hsc
{

EventQueue::EventQueue() : ring(RingBuckets) {}

void
EventQueue::insertSorted(Bucket &b, Entry e)
{
    // A fully-consumed bucket from an earlier horizon lap may still
    // hold its dead storage; reclaim it on first reuse.
    if (b.drained() && !b.entries.empty())
        b.reset();
    auto &v = b.entries;
    if (v.empty() || v.back() < e) {
        v.push_back(std::move(e));
        return;
    }
    // Rare: an earlier (tick, prio, seq) slot than the bucket's tail.
    // Scan from the back; never past the consumed prefix (everything
    // before head has already executed, and scheduling into the past
    // is rejected above).
    std::size_t pos = v.size();
    while (pos > b.head && e < v[pos - 1])
        --pos;
    v.insert(v.begin() + pos, std::move(e));
}

void
EventQueue::migrateOverflow()
{
    while (!overflow.empty() &&
           bucketNo(overflow.top().when) - _curBucket < RingBuckets) {
        // Move out before popping, as with any container reshuffle
        // around self-scheduling callbacks.
        Entry e = std::move(const_cast<Entry &>(overflow.top()));
        overflow.pop();
        insertSorted(bucketFor(bucketNo(e.when)), std::move(e));
        ++ringCount;
    }
}

bool
EventQueue::advanceToPending(std::uint64_t limit_bucket)
{
    for (;;) {
        if (!bucketFor(_curBucket).drained())
            return true;
        if (ringCount > 0) {
            // Some later bucket in the horizon has events; walk to it,
            // reclaiming consumed buckets as the horizon base passes
            // them (their indexes are about to be reused).  Stop at
            // the bound: parking the cursor on a beyond-the-bound
            // bucket would strand anything a later window schedules
            // into the range skipped here.
            for (;;) {
                if (_curBucket >= limit_bucket)
                    return false; // pending events all beyond the bound
                bucketFor(_curBucket).reset();
                ++_curBucket;
                if (!bucketFor(_curBucket).drained())
                    break;
            }
            migrateOverflow();
            return true;
        }
        if (overflow.empty())
            return false;
        // Ring empty: jump the horizon base to the earliest far-future
        // event (clamped to the bound) and pull everything newly in
        // range out of the heap.
        bucketFor(_curBucket).reset();
        std::uint64_t target = bucketNo(overflow.top().when);
        if (target > limit_bucket) {
            if (_curBucket < limit_bucket)
                _curBucket = limit_bucket;
            migrateOverflow();
            if (bucketFor(_curBucket).drained())
                return false; // pending events all beyond the bound
            continue;
        }
        _curBucket = target;
        migrateOverflow();
    }
}

EventQueue::Entry
EventQueue::popNext()
{
    Bucket &b = bucketFor(_curBucket);
    Entry e = std::move(b.entries[b.head]);
    ++b.head;
    --ringCount;
    return e;
}

void
EventQueue::schedule(Tick when, Callback cb, EventPriority prio,
                     bool progress)
{
    panic_if(when < _curTick,
             "scheduling event in the past (when=%llu cur=%llu)",
             (unsigned long long)when, (unsigned long long)_curTick);
    Entry e{when, nextSeq++, static_cast<std::int8_t>(prio), progress,
            std::move(cb)};
    if (progress)
        ++progressCount;
    if (bucketNo(when) - _curBucket < RingBuckets) {
        insertSorted(bucketFor(bucketNo(when)), std::move(e));
        ++ringCount;
    } else {
        overflow.push(std::move(e));
    }
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t n = 0;
    while (advanceToPending(bucketNo(limit))) {
        Bucket &b = bucketFor(_curBucket);
        if (b.entries[b.head].when > limit)
            return n; // events remain beyond the bound
        Entry e = popNext();
        _curTick = e.when;
        if (e.progress) {
            _lastProgress = e.when;
            --progressCount;
        }
        e.cb();
        ++executed;
        ++n;
    }
    if (empty() && _curTick < limit && limit != MaxTick)
        _curTick = limit;
    return n;
}

Tick
EventQueue::earliestPending() const
{
    Tick best = MaxTick;
    if (ringCount > 0) {
        // The first undrained bucket at or after the horizon base
        // holds the earliest ring event (buckets are sorted and the
        // ring invariant keeps every event within one horizon lap).
        for (std::uint64_t no = _curBucket;
             no < _curBucket + RingBuckets; ++no) {
            const Bucket &b = ring[no & (RingBuckets - 1)];
            if (!b.drained()) {
                best = b.entries[b.head].when;
                break;
            }
        }
    }
    if (!overflow.empty() && overflow.top().when < best)
        best = overflow.top().when;
    return best;
}

void
EventQueue::jumpTo(Tick t)
{
    panic_if(!empty(), "jumpTo with %zu events pending", size());
    panic_if(t < _curTick,
             "jumpTo into the past (to=%llu cur=%llu)",
             (unsigned long long)t, (unsigned long long)_curTick);
    _curTick = t;
    _lastProgress = t;
    // Drained buckets skipped over here are reclaimed lazily by
    // insertSorted on first reuse, exactly as on a horizon lap.
    _curBucket = bucketNo(t);
}

bool
EventQueue::runUntil(const std::function<bool()> &done, Tick limit)
{
    if (done())
        return true;
    while (advanceToPending(bucketNo(limit))) {
        Bucket &b = bucketFor(_curBucket);
        if (b.entries[b.head].when > limit)
            return false;
        Entry e = popNext();
        _curTick = e.when;
        if (e.progress) {
            _lastProgress = e.when;
            --progressCount;
        }
        e.cb();
        ++executed;
        if (done())
            return true;
    }
    return false;
}

} // namespace hsc
