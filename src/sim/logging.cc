#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "sim/sim_error.hh"

namespace hsc
{

std::uint32_t Logger::flags = 0;

void
Logger::enable(DebugFlag f)
{
    flags |= static_cast<std::uint32_t>(f);
}

void
Logger::disable(DebugFlag f)
{
    flags &= ~static_cast<std::uint32_t>(f);
}

bool
Logger::enabled(DebugFlag f)
{
    return (flags & static_cast<std::uint32_t>(f)) != 0;
}

void
Logger::trace(DebugFlag, std::uint64_t tick, const char *fmt, ...)
{
    std::fprintf(stderr, "%12llu: ", (unsigned long long)tick);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

namespace
{

std::string
formatVa(const char *fmt, va_list args)
{
    char buf[1024];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    return buf;
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatVa(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    // Throwing instead of abort() lets gtest death-free tests assert
    // on illegal protocol transitions; uncaught it still terminates.
    throw std::logic_error("panic: " + msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatVa(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    // User-reachable error (bad config, unsupported request): throw
    // SimError so embedders can catch and report it cleanly.
    throw SimError(msg, "fatal");
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = formatVa(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

} // namespace hsc
