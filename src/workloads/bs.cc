/**
 * @file
 * bs — Bézier Surface (CHAI).
 *
 * Data-parallel collaboration: CPU threads and GPU workgroups tessellate
 * disjoint halves of the output surface from a small read-shared set
 * of control points.  Coherence activity is low (the paper notes the
 * limited improvement on bs for exactly this reason): the only shared
 * lines are the read-only control points.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{

constexpr unsigned NumCtrl = 16;

/** Integer surface function: out(i,j) = sum_k P[k] * w(i,j,k). */
std::uint32_t
surfacePoint(const std::uint32_t *ctrl, unsigned i, unsigned j,
             unsigned width)
{
    std::uint32_t acc = 0;
    for (unsigned k = 0; k < NumCtrl; ++k) {
        std::uint32_t w = ((i * width + j) + k * 7) % 13 + 1;
        acc += ctrl[k] * w;
    }
    return acc;
}

} // namespace

struct BezierSurface::State
{
    unsigned width = 32;
    unsigned height = 0;
    Addr ctrl = 0;
    Addr out = 0;
    std::uint32_t ctrlHost[NumCtrl];
    unsigned gpuRows = 0; ///< rows [0, gpuRows) on GPU, rest on CPU
};

void
BezierSurface::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.height = 16 * params.scale;
    s.gpuRows = s.height / 2;
    s.ctrl = sys.alloc(NumCtrl * 4);
    s.out = sys.alloc(std::uint64_t(s.width) * s.height * 4);

    Rng rng(params.seed);
    for (unsigned k = 0; k < NumCtrl; ++k) {
        s.ctrlHost[k] = std::uint32_t(rng.next());
        sys.writeWord<std::uint32_t>(s.ctrl + k * 4, s.ctrlHost[k]);
    }

    auto state = st;
    unsigned wgs = params.gpuWorkgroups;

    GpuKernel kernel;
    kernel.name = "bs";
    kernel.numWorkgroups = wgs;
    kernel.body = [state, wgs](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        // The control points fit one block: one coalesced load.
        auto ctrl = co_await wf.vload(s.ctrl, 4, 4);
        for (unsigned row = wf.workgroupId(); row < s.gpuRows; row += wgs) {
            for (unsigned j0 = 0; j0 < s.width; j0 += wf.laneCount()) {
                std::vector<std::uint64_t> vals(wf.laneCount());
                for (unsigned l = 0; l < wf.laneCount(); ++l) {
                    std::uint32_t c[NumCtrl];
                    for (unsigned k = 0; k < NumCtrl; ++k)
                        c[k] = std::uint32_t(ctrl[k]);
                    vals[l] = surfacePoint(c, row, j0 + l, s.width);
                }
                co_await wf.compute(8); // tessellation math
                co_await wf.vstore(s.out + (Addr(row) * s.width + j0) * 4,
                                   4, 4, vals);
            }
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, n_threads, kernel](CpuCtx &cpu)
                             -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            // Read the shared control points once (read-shared lines).
            std::uint32_t c[NumCtrl];
            for (unsigned k = 0; k < NumCtrl; ++k)
                c[k] = std::uint32_t(co_await cpu.load(s.ctrl + k * 4, 4));
            for (unsigned row = s.gpuRows + t; row < s.height;
                 row += n_threads) {
                for (unsigned j = 0; j < s.width; ++j) {
                    std::uint32_t v = surfacePoint(c, row, j, s.width);
                    co_await cpu.compute(1);
                    co_await cpu.store(
                        s.out + (Addr(row) * s.width + j) * 4, v, 4);
                }
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
BezierSurface::verify(HsaSystem &sys)
{
    const State &s = *st;
    for (unsigned i = 0; i < s.height; ++i) {
        for (unsigned j = 0; j < s.width; ++j) {
            std::uint32_t want = surfacePoint(s.ctrlHost, i, j, s.width);
            std::uint64_t got =
                coherentPeek(sys, s.out + (Addr(i) * s.width + j) * 4, 4);
            if (got != want)
                return false;
        }
    }
    return true;
}

HSC_WORKLOAD_TU(bs)
{
    reg.add<BezierSurface>(
        "bs", TagChai,
        "Bezier surface: halves tessellated off read-shared control "
        "points");
}

} // namespace hsc
