#include "workloads/registry.hh"

#include "sim/logging.hh"

namespace hsc
{

/** @{ Translation-unit anchors (defined next to each workload). */
HSC_WORKLOAD_TU(bs);
HSC_WORKLOAD_TU(cedd);
HSC_WORKLOAD_TU(pad);
HSC_WORKLOAD_TU(sc);
HSC_WORKLOAD_TU(tq);
HSC_WORKLOAD_TU(hsti);
HSC_WORKLOAD_TU(hsto);
HSC_WORKLOAD_TU(trns);
HSC_WORKLOAD_TU(rscd);
HSC_WORKLOAD_TU(rsct);
HSC_WORKLOAD_TU(heterosync);
HSC_WORKLOAD_TU(trace);
/** @} */

WorkloadRegistry &
WorkloadRegistry::instance()
{
    // The anchor call order below *is* the public iteration order:
    // the ten CHAI ids in the paper's order, then the HeteroSync
    // microbenchmarks, then the trace/scenario frontends.
    static WorkloadRegistry reg = [] {
        WorkloadRegistry r;
        hscRegisterWorkloads_bs(r);
        hscRegisterWorkloads_cedd(r);
        hscRegisterWorkloads_pad(r);
        hscRegisterWorkloads_sc(r);
        hscRegisterWorkloads_tq(r);
        hscRegisterWorkloads_hsti(r);
        hscRegisterWorkloads_hsto(r);
        hscRegisterWorkloads_trns(r);
        hscRegisterWorkloads_rscd(r);
        hscRegisterWorkloads_rsct(r);
        hscRegisterWorkloads_heterosync(r);
        hscRegisterWorkloads_trace(r);
        return r;
    }();
    return reg;
}

void
WorkloadRegistry::addInfo(WorkloadInfo info)
{
    fatal_if(info.id.empty() || !info.make,
             "workload registration needs an id and a factory");
    fatal_if(find(info.id) != nullptr,
             "workload id '%s' registered twice", info.id.c_str());
    entries.push_back(std::move(info));
}

const WorkloadInfo *
WorkloadRegistry::find(const std::string &id) const
{
    for (const auto &e : entries) {
        if (e.id == id)
            return &e;
    }
    return nullptr;
}

std::vector<std::string>
WorkloadRegistry::idsWithTags(unsigned tags) const
{
    std::vector<std::string> ids;
    for (const auto &e : entries) {
        if ((e.tags & tags) == tags)
            ids.push_back(e.id);
    }
    return ids;
}

} // namespace hsc
