/**
 * @file
 * rscd — RANSAC, data partitioned (CHAI).
 *
 * Every iteration a master CPU thread fits a line model from two
 * sample points and publishes it with a flag; CPU worker threads and
 * GPU workgroups then count inliers over disjoint point slices into a
 * shared per-iteration atomic counter, and the master collects the
 * convergence barrier before moving on — lockstep flag/barrier
 * collaboration on shared state.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{

/** Integer inlier predicate shared by the agents and the oracle. */
bool
isInlier(std::uint32_t x, std::uint32_t y, std::uint32_t dx,
         std::uint32_t dy, std::uint32_t c)
{
    std::uint32_t v = dy * x - dx * y + c;
    return (v & 0xFF) < 0x40;
}

} // namespace

struct RansacData::State
{
    unsigned n = 0;
    unsigned iters = 0;
    unsigned numWorkers = 0; ///< CPU workers + GPU workgroups
    Addr px = 0;
    Addr py = 0;
    Addr model = 0;      ///< dx, dy, c (u32 each)
    Addr modelReady = 0; ///< iteration publication flag
    Addr inliers = 0;    ///< per-iteration shared counter
    Addr workerDone = 0; ///< per-iteration barrier counter
    Addr best = 0;       ///< packed (count << 8 | iter)
    std::vector<std::uint32_t> hx, hy;
};

void
RansacData::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.n = 256 * params.scale;
    s.iters = 8;
    s.numWorkers = (params.cpuThreads - 1) + params.gpuWorkgroups;
    s.px = sys.alloc(std::uint64_t(s.n) * 4);
    s.py = sys.alloc(std::uint64_t(s.n) * 4);
    s.model = sys.alloc(64);
    s.modelReady = sys.alloc(64);
    s.inliers = sys.alloc(std::uint64_t(s.iters) * 4);
    s.workerDone = sys.alloc(std::uint64_t(s.iters) * 4);
    s.best = sys.alloc(64);

    Rng rng(params.seed);
    s.hx.resize(s.n);
    s.hy.resize(s.n);
    for (unsigned i = 0; i < s.n; ++i) {
        s.hx[i] = std::uint32_t(rng.below(1024));
        s.hy[i] = std::uint32_t(rng.below(1024));
        sys.writeWord<std::uint32_t>(s.px + i * 4, s.hx[i]);
        sys.writeWord<std::uint32_t>(s.py + i * 4, s.hy[i]);
    }

    auto state = st;
    unsigned wgs = params.gpuWorkgroups;
    unsigned cpu_workers = params.cpuThreads - 1;

    GpuKernel kernel;
    kernel.name = "rscd";
    kernel.numWorkgroups = wgs;
    kernel.body = [state, wgs, cpu_workers](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        unsigned lanes = wf.laneCount();
        // GPU workgroups take the upper half of the points.
        unsigned begin = s.n / 2;
        for (unsigned it = 0; it < s.iters; ++it) {
            while (co_await wf.atomic(s.modelReady, AtomicOp::Load, 0, 0,
                                      4, Scope::System) < it + 1) {
                co_await wf.compute(40);
            }
            std::uint32_t dx = std::uint32_t(co_await wf.load(
                s.model + 0, 4, Scope::System));
            std::uint32_t dy = std::uint32_t(co_await wf.load(
                s.model + 4, 4, Scope::System));
            std::uint32_t cc = std::uint32_t(co_await wf.load(
                s.model + 8, 4, Scope::System));
            unsigned count = 0;
            for (unsigned base = begin + wf.workgroupId() * lanes;
                 base < s.n; base += wgs * lanes) {
                auto xs = co_await wf.vload(s.px + Addr(base) * 4, 4, 4);
                auto ys = co_await wf.vload(s.py + Addr(base) * 4, 4, 4);
                unsigned m = std::min<unsigned>(lanes, s.n - base);
                for (unsigned l = 0; l < m; ++l) {
                    if (isInlier(std::uint32_t(xs[l]),
                                 std::uint32_t(ys[l]), dx, dy, cc))
                        ++count;
                }
                co_await wf.compute(4);
            }
            if (count) {
                co_await wf.atomic(s.inliers + it * 4, AtomicOp::Add,
                                   count, 0, 4, Scope::System);
            }
            co_await wf.atomic(s.workerDone + it * 4, AtomicOp::Add, 1, 0,
                               4, Scope::System);
        }
        (void)cpu_workers;
    };

    // Master thread: fits and publishes models, collects barriers.
    sys.addCpuThread([state, kernel](CpuCtx &cpu) -> SimTask {
        const State &s = *state;
        cpu.launchKernelAsync(kernel);
        for (unsigned it = 0; it < s.iters; ++it) {
            unsigned ia = (it * 37) % s.n;
            unsigned ib = (it * 53 + 11) % s.n;
            std::uint32_t xa =
                std::uint32_t(co_await cpu.load(s.px + ia * 4, 4));
            std::uint32_t ya =
                std::uint32_t(co_await cpu.load(s.py + ia * 4, 4));
            std::uint32_t xb =
                std::uint32_t(co_await cpu.load(s.px + ib * 4, 4));
            std::uint32_t yb =
                std::uint32_t(co_await cpu.load(s.py + ib * 4, 4));
            co_await cpu.store(s.model + 0, xb - xa, 4);
            co_await cpu.store(s.model + 4, yb - ya, 4);
            co_await cpu.store(s.model + 8, (yb - ya) * xa - (xb - xa) * ya,
                               4);
            co_await cpu.store(s.modelReady, it + 1, 4);
            // Barrier: every worker checked in.
            while (co_await cpu.load(s.workerDone + it * 4, 4) <
                   s.numWorkers) {
                co_await cpu.compute(60);
            }
            std::uint64_t count =
                co_await cpu.load(s.inliers + it * 4, 4);
            co_await cpu.atomic(s.best, AtomicOp::Max,
                                (count << 8) | it, 0, 8);
        }
        co_await cpu.waitKernels();
    });

    for (unsigned t = 0; t < cpu_workers; ++t) {
        sys.addCpuThread([state, t, cpu_workers](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            unsigned end = s.n / 2; // CPU workers take the lower half
            for (unsigned it = 0; it < s.iters; ++it) {
                while (co_await cpu.load(s.modelReady, 4) < it + 1)
                    co_await cpu.compute(60);
                std::uint32_t dx =
                    std::uint32_t(co_await cpu.load(s.model + 0, 4));
                std::uint32_t dy =
                    std::uint32_t(co_await cpu.load(s.model + 4, 4));
                std::uint32_t cc =
                    std::uint32_t(co_await cpu.load(s.model + 8, 4));
                unsigned count = 0;
                for (unsigned i = t; i < end; i += cpu_workers) {
                    std::uint32_t x =
                        std::uint32_t(co_await cpu.load(s.px + i * 4, 4));
                    std::uint32_t y =
                        std::uint32_t(co_await cpu.load(s.py + i * 4, 4));
                    if (isInlier(x, y, dx, dy, cc))
                        ++count;
                }
                if (count) {
                    co_await cpu.atomic(s.inliers + it * 4, AtomicOp::Add,
                                        count, 0, 4);
                }
                co_await cpu.atomic(s.workerDone + it * 4, AtomicOp::Add,
                                    1, 0, 4);
            }
        });
    }
}

bool
RansacData::verify(HsaSystem &sys)
{
    const State &s = *st;
    std::uint64_t want_best = 0;
    for (unsigned it = 0; it < s.iters; ++it) {
        unsigned ia = (it * 37) % s.n;
        unsigned ib = (it * 53 + 11) % s.n;
        std::uint32_t dx = s.hx[ib] - s.hx[ia];
        std::uint32_t dy = s.hy[ib] - s.hy[ia];
        std::uint32_t cc = dy * s.hx[ia] - dx * s.hy[ia];
        std::uint64_t count = 0;
        for (unsigned i = 0; i < s.n; ++i)
            count += isInlier(s.hx[i], s.hy[i], dx, dy, cc);
        if (coherentPeek(sys, s.inliers + it * 4, 4) != count)
            return false;
        want_best = std::max(want_best, (count << 8) | it);
    }
    return coherentPeek(sys, s.best, 8) == want_best;
}

HSC_WORKLOAD_TU(rscd)
{
    reg.add<RansacData>(
        "rscd", TagChai,
        "RANSAC, data partitioned: model flags + shared inlier count");
}

} // namespace hsc
