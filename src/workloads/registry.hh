/**
 * @file
 * Self-registering workload factory.
 *
 * Each workload translation unit contributes one HSC_WORKLOAD_TU
 * anchor function that registers its workloads (id, one-line
 * description, tag set, factory).  registry.cc calls the anchors in a
 * fixed order on first use, which gives:
 *
 *  - no central if/else chain to keep in sync (the stanza lives next
 *    to the workload it describes);
 *  - deterministic iteration order (the anchor call order), so id
 *    lists and --list-workloads output are stable across builds;
 *  - no reliance on static-initializer side effects, which a static
 *    library would silently drop for unreferenced translation units.
 */

#ifndef HSC_WORKLOADS_REGISTRY_HH
#define HSC_WORKLOADS_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace hsc
{

/** @{ Workload tag bits (an entry may carry several). */
constexpr unsigned TagChai = 1u << 0;            ///< the ten CHAI ids
constexpr unsigned TagHeteroSync = 1u << 1;      ///< GPU-only sync
constexpr unsigned TagCoherenceActive = 1u << 2; ///< Figs. 6/7 subset
constexpr unsigned TagFrontend = 1u << 3;        ///< trace/scenario
/** @} */

struct WorkloadInfo
{
    std::string id;
    std::string description; ///< one line, for --list-workloads
    unsigned tags = 0;
    std::function<std::unique_ptr<Workload>(const WorkloadParams &)>
        make;
};

class WorkloadRegistry
{
  public:
    /** The process-wide registry, populated on first use. */
    static WorkloadRegistry &instance();

    /** Register @p W under @p id (fatal on a duplicate). */
    template <typename W>
    void
    add(const char *id, unsigned tags, const char *desc)
    {
        addInfo({id, desc, tags, [](const WorkloadParams &p) {
                     return std::unique_ptr<Workload>(new W(p));
                 }});
    }

    /** Register with an explicit factory (frontends with extra
     *  constructor arguments). */
    void addInfo(WorkloadInfo info);

    /** Null when @p id is unknown. */
    const WorkloadInfo *find(const std::string &id) const;

    /** Every entry, in registration (anchor-call) order. */
    const std::vector<WorkloadInfo> &all() const { return entries; }

    /** The ids carrying every bit of @p tags, in registration order. */
    std::vector<std::string> idsWithTags(unsigned tags) const;

  private:
    std::vector<WorkloadInfo> entries;
};

/** Declares/defines one translation unit's registration anchor. */
#define HSC_WORKLOAD_TU(tu)                                                \
    void hscRegisterWorkloads_##tu(::hsc::WorkloadRegistry &reg)

} // namespace hsc

#endif // HSC_WORKLOADS_REGISTRY_HH
