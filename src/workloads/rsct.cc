/**
 * @file
 * rsct — RANSAC, task partitioned (CHAI).
 *
 * Whole iterations are claimed dynamically by CPU threads and GPU
 * workgroups from a shared counter; each agent fits its model and
 * scans the entire (read-shared) point set, then folds its result
 * into a global best with an atomic max — coarse-grained task
 * parallelism over shared read-only data.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{

bool
isInlier(std::uint32_t x, std::uint32_t y, std::uint32_t dx,
         std::uint32_t dy, std::uint32_t c)
{
    std::uint32_t v = dy * x - dx * y + c;
    return (v & 0xFF) < 0x40;
}

struct Model
{
    std::uint32_t dx, dy, c;
};

Model
modelFor(unsigned it, const std::vector<std::uint32_t> &hx,
         const std::vector<std::uint32_t> &hy)
{
    unsigned n = unsigned(hx.size());
    unsigned ia = (it * 29 + 3) % n;
    unsigned ib = (it * 41 + 17) % n;
    Model m;
    m.dx = hx[ib] - hx[ia];
    m.dy = hy[ib] - hy[ia];
    m.c = m.dy * hx[ia] - m.dx * hy[ia];
    return m;
}

} // namespace

struct RansacTask::State
{
    unsigned n = 0;
    unsigned iters = 0;
    Addr px = 0;
    Addr py = 0;
    Addr iterCounter = 0;
    Addr best = 0; ///< packed (count << 8 | iter), atomic max
    std::vector<std::uint32_t> hx, hy;
};

void
RansacTask::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.n = 128 * params.scale;
    s.iters = 24;
    s.px = sys.alloc(std::uint64_t(s.n) * 4);
    s.py = sys.alloc(std::uint64_t(s.n) * 4);
    s.iterCounter = sys.alloc(64);
    s.best = sys.alloc(64);

    Rng rng(params.seed);
    s.hx.resize(s.n);
    s.hy.resize(s.n);
    for (unsigned i = 0; i < s.n; ++i) {
        s.hx[i] = std::uint32_t(rng.below(1024));
        s.hy[i] = std::uint32_t(rng.below(1024));
        sys.writeWord<std::uint32_t>(s.px + i * 4, s.hx[i]);
        sys.writeWord<std::uint32_t>(s.py + i * 4, s.hy[i]);
    }

    auto state = st;

    GpuKernel kernel;
    kernel.name = "rsct";
    kernel.numWorkgroups = params.gpuWorkgroups;
    kernel.body = [state](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        unsigned lanes = wf.laneCount();
        for (;;) {
            std::uint64_t it = co_await wf.atomic(
                s.iterCounter, AtomicOp::Add, 1, 0, 4, Scope::System);
            if (it >= s.iters)
                break;
            unsigned n = s.n;
            unsigned ia = (unsigned(it) * 29 + 3) % n;
            unsigned ib = (unsigned(it) * 41 + 17) % n;
            std::uint32_t xa = std::uint32_t(
                co_await wf.load(s.px + ia * 4, 4, Scope::Device));
            std::uint32_t ya = std::uint32_t(
                co_await wf.load(s.py + ia * 4, 4, Scope::Device));
            std::uint32_t xb = std::uint32_t(
                co_await wf.load(s.px + ib * 4, 4, Scope::Device));
            std::uint32_t yb = std::uint32_t(
                co_await wf.load(s.py + ib * 4, 4, Scope::Device));
            std::uint32_t dx = xb - xa, dy = yb - ya;
            std::uint32_t cc = dy * xa - dx * ya;
            std::uint64_t count = 0;
            for (unsigned base = 0; base < s.n; base += lanes) {
                auto xs = co_await wf.vload(s.px + Addr(base) * 4, 4, 4);
                auto ys = co_await wf.vload(s.py + Addr(base) * 4, 4, 4);
                unsigned m = std::min<unsigned>(lanes, s.n - base);
                for (unsigned l = 0; l < m; ++l) {
                    if (isInlier(std::uint32_t(xs[l]),
                                 std::uint32_t(ys[l]), dx, dy, cc))
                        ++count;
                }
                co_await wf.compute(4);
            }
            co_await wf.atomic(s.best, AtomicOp::Max, (count << 8) | it,
                               0, 8, Scope::System);
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            for (;;) {
                std::uint64_t it = co_await cpu.atomic(
                    s.iterCounter, AtomicOp::Add, 1, 0, 4);
                if (it >= s.iters)
                    break;
                unsigned n = s.n;
                unsigned ia = (unsigned(it) * 29 + 3) % n;
                unsigned ib = (unsigned(it) * 41 + 17) % n;
                std::uint32_t xa =
                    std::uint32_t(co_await cpu.load(s.px + ia * 4, 4));
                std::uint32_t ya =
                    std::uint32_t(co_await cpu.load(s.py + ia * 4, 4));
                std::uint32_t xb =
                    std::uint32_t(co_await cpu.load(s.px + ib * 4, 4));
                std::uint32_t yb =
                    std::uint32_t(co_await cpu.load(s.py + ib * 4, 4));
                std::uint32_t dx = xb - xa, dy = yb - ya;
                std::uint32_t cc = dy * xa - dx * ya;
                std::uint64_t count = 0;
                for (unsigned i = 0; i < s.n; ++i) {
                    std::uint32_t x =
                        std::uint32_t(co_await cpu.load(s.px + i * 4, 4));
                    std::uint32_t y =
                        std::uint32_t(co_await cpu.load(s.py + i * 4, 4));
                    if (isInlier(x, y, dx, dy, cc))
                        ++count;
                }
                co_await cpu.atomic(s.best, AtomicOp::Max,
                                    (count << 8) | it, 0, 8);
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
RansacTask::verify(HsaSystem &sys)
{
    const State &s = *st;
    std::uint64_t want = 0;
    for (unsigned it = 0; it < s.iters; ++it) {
        Model m = modelFor(it, s.hx, s.hy);
        std::uint64_t count = 0;
        for (unsigned i = 0; i < s.n; ++i)
            count += isInlier(s.hx[i], s.hy[i], m.dx, m.dy, m.c);
        want = std::max(want, (count << 8) | it);
    }
    return coherentPeek(sys, s.best, 8) == want;
}

HSC_WORKLOAD_TU(rsct)
{
    reg.add<RansacTask>(
        "rsct", TagChai | TagCoherenceActive,
        "RANSAC, task partitioned: iterations claimed off a counter");
}

} // namespace hsc
