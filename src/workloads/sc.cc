/**
 * @file
 * sc — Stream Compaction (CHAI).
 *
 * CPU threads and GPU workgroups claim input chunks through a shared
 * system-scope counter, filter out the removed sentinel, reserve
 * output space with an atomic fetch-add on the output cursor, and
 * write their surviving elements — CHAI's dynamic-partitioning plus
 * atomic-reservation pattern.
 */

#include "workloads/workload_impl.hh"

#include <algorithm>

namespace hsc
{

namespace
{
constexpr std::uint32_t Removed = 0xDEADDEAD;
constexpr unsigned ChunkElems = 16;
} // namespace

struct StreamCompaction::State
{
    unsigned n = 0;
    Addr input = 0;
    Addr output = 0;
    Addr chunkCounter = 0;
    Addr outCursor = 0;
    std::vector<std::uint32_t> host;
};

void
StreamCompaction::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.n = 512 * params.scale;
    s.input = sys.alloc(std::uint64_t(s.n) * 4);
    s.output = sys.alloc(std::uint64_t(s.n) * 4);
    s.chunkCounter = sys.alloc(64);
    s.outCursor = sys.alloc(64);

    Rng rng(params.seed);
    s.host.resize(s.n);
    for (unsigned i = 0; i < s.n; ++i) {
        s.host[i] = rng.chance(35) ? Removed
                                   : (std::uint32_t(rng.next()) | 1);
        sys.writeWord<std::uint32_t>(s.input + i * 4, s.host[i]);
    }

    auto state = st;

    GpuKernel kernel;
    kernel.name = "sc";
    kernel.numWorkgroups = params.gpuWorkgroups;
    kernel.body = [state](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        unsigned chunks = s.n / ChunkElems;
        for (;;) {
            std::uint64_t c = co_await wf.atomic(
                s.chunkCounter, AtomicOp::Add, 1, 0, 4, Scope::System);
            if (c >= chunks)
                break;
            auto vals = co_await wf.vload(
                s.input + Addr(c) * ChunkElems * 4, 4, 4);
            std::vector<std::uint64_t> kept;
            for (auto v : vals) {
                if (std::uint32_t(v) != Removed)
                    kept.push_back(v);
            }
            if (kept.empty())
                continue;
            std::uint64_t off = co_await wf.atomic(
                s.outCursor, AtomicOp::Add, kept.size(), 0, 4,
                Scope::System);
            for (unsigned k = 0; k < kept.size(); ++k) {
                co_await wf.store(s.output + (off + k) * 4, kept[k], 4,
                                  Scope::System);
            }
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            unsigned chunks = s.n / ChunkElems;
            for (;;) {
                std::uint64_t c = co_await cpu.atomic(
                    s.chunkCounter, AtomicOp::Add, 1, 0, 4);
                if (c >= chunks)
                    break;
                std::vector<std::uint32_t> kept;
                for (unsigned i = 0; i < ChunkElems; ++i) {
                    std::uint64_t v = co_await cpu.load(
                        s.input + (Addr(c) * ChunkElems + i) * 4, 4);
                    if (std::uint32_t(v) != Removed)
                        kept.push_back(std::uint32_t(v));
                }
                if (kept.empty())
                    continue;
                std::uint64_t off = co_await cpu.atomic(
                    s.outCursor, AtomicOp::Add, kept.size(), 0, 4);
                for (unsigned k = 0; k < kept.size(); ++k) {
                    co_await cpu.store(s.output + (off + k) * 4, kept[k],
                                       4);
                }
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
StreamCompaction::verify(HsaSystem &sys)
{
    const State &s = *st;
    std::vector<std::uint32_t> want;
    for (std::uint32_t v : s.host) {
        if (v != Removed)
            want.push_back(v);
    }
    std::uint64_t count = coherentPeek(sys, s.outCursor, 4);
    if (count != want.size())
        return false;
    std::vector<std::uint32_t> got;
    for (unsigned i = 0; i < count; ++i)
        got.push_back(
            std::uint32_t(coherentPeek(sys, s.output + Addr(i) * 4, 4)));
    // Compaction is unordered: compare as multisets.
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    return got == want;
}

HSC_WORKLOAD_TU(sc)
{
    reg.add<StreamCompaction>(
        "sc", TagChai | TagCoherenceActive,
        "Stream compaction: chunk claiming + atomic output cursor");
}

} // namespace hsc
