/**
 * @file
 * hsto — Histogram, output partitioned (CHAI).
 *
 * Each device owns half the bins and scans the *entire* input, so the
 * input array is read-shared by every L2 and the TCC: lots of Shared
 * grants and clean victims (the pattern §III-B1 discusses), with no
 * bin contention across devices.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{
constexpr unsigned NumBins = 32;
constexpr unsigned CpuBins = NumBins / 2; ///< CPU owns [0, CpuBins)
} // namespace

struct HistogramOutput::State
{
    unsigned n = 0;
    Addr input = 0;
    Addr bins = 0;
    std::vector<std::uint32_t> host;
};

void
HistogramOutput::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.n = 512 * params.scale;
    s.input = sys.alloc(std::uint64_t(s.n) * 4);
    s.bins = sys.alloc(NumBins * 4);

    Rng rng(params.seed);
    s.host.resize(s.n);
    for (unsigned i = 0; i < s.n; ++i) {
        s.host[i] = std::uint32_t(rng.below(NumBins));
        sys.writeWord<std::uint32_t>(s.input + i * 4, s.host[i]);
    }

    auto state = st;
    unsigned wgs = params.gpuWorkgroups;

    GpuKernel kernel;
    kernel.name = "hsto";
    kernel.numWorkgroups = wgs;
    kernel.body = [state, wgs](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        unsigned lanes = wf.laneCount();
        // Accumulate privately over a slice of the whole input, then
        // merge into the GPU-owned bins with device... the bins are
        // GPU-exclusive but shared across workgroups: system-scope
        // atomics keep the merge correct and visible to the host.
        std::uint32_t local[NumBins] = {};
        for (unsigned base = wf.workgroupId() * lanes; base < s.n;
             base += wgs * lanes) {
            auto vals = co_await wf.vload(s.input + base * 4, 4, 4);
            unsigned count = std::min<unsigned>(lanes, s.n - base);
            for (unsigned l = 0; l < count; ++l) {
                if (vals[l] >= CpuBins)
                    ++local[vals[l]];
            }
            co_await wf.compute(4);
        }
        for (unsigned b = CpuBins; b < NumBins; ++b) {
            if (local[b]) {
                co_await wf.atomic(s.bins + b * 4, AtomicOp::Add,
                                   local[b], 0, 4, Scope::System);
            }
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, n_threads,
                          kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            std::uint32_t local[CpuBins] = {};
            for (unsigned i = t; i < s.n; i += n_threads) {
                std::uint64_t v = co_await cpu.load(s.input + i * 4, 4);
                if (v < CpuBins)
                    ++local[v];
            }
            for (unsigned b = 0; b < CpuBins; ++b) {
                if (local[b])
                    co_await cpu.atomic(s.bins + b * 4, AtomicOp::Add,
                                        local[b], 0, 4);
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
HistogramOutput::verify(HsaSystem &sys)
{
    const State &s = *st;
    std::uint32_t want[NumBins] = {};
    for (std::uint32_t v : s.host)
        ++want[v];
    for (unsigned b = 0; b < NumBins; ++b) {
        if (coherentPeek(sys, s.bins + b * 4, 4) != want[b])
            return false;
    }
    return true;
}

HSC_WORKLOAD_TU(hsto)
{
    reg.add<HistogramOutput>(
        "hsto", TagChai,
        "Histogram, output partitioned: read-shared input, split bins");
}

} // namespace hsc
