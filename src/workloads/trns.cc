/**
 * @file
 * trns — in-place matrix transposition (CHAI, PTTWAC-style).
 *
 * An R×C row-major matrix is converted to column-major in place by
 * following the permutation cycles of i -> (i*R) mod (R*C-1).  CPU
 * threads and GPU workgroups claim cycle leaders through a shared
 * counter and mark every element they move with a system-scope
 * atomic flag CAS — the per-element fine-grained synchronisation that
 * makes trns the most atomics-intensive workload of the suite.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

struct Transposition::State
{
    unsigned rows = 0;
    unsigned cols = 0;
    Addr mat = 0;
    Addr counter = 0;
    Addr flags = 0; ///< one u32 per element (claimed marker)
    std::vector<std::uint32_t> host;

    std::uint64_t elems() const { return std::uint64_t(rows) * cols; }

    std::uint64_t
    dest(std::uint64_t i) const
    {
        std::uint64_t m = elems() - 1;
        return i == m ? m : (i * rows) % m;
    }

    /** True when @p i is the smallest index of its cycle. */
    bool
    isCycleLeader(std::uint64_t i) const
    {
        std::uint64_t cur = dest(i);
        while (cur != i) {
            if (cur < i)
                return false;
            cur = dest(cur);
        }
        return true;
    }
};

void
Transposition::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.rows = 8;
    s.cols = 8 * params.scale + 4; // non-square => nontrivial cycles
    s.mat = sys.alloc(s.elems() * 4);
    s.counter = sys.alloc(64);
    s.flags = sys.alloc(s.elems() * 4);

    Rng rng(params.seed);
    s.host.resize(s.elems());
    for (std::uint64_t i = 0; i < s.elems(); ++i) {
        s.host[i] = std::uint32_t(rng.next()) | 1;
        sys.writeWord<std::uint32_t>(s.mat + i * 4, s.host[i]);
    }

    auto state = st;

    GpuKernel kernel;
    kernel.name = "trns";
    kernel.numWorkgroups = params.gpuWorkgroups;
    kernel.body = [state](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        for (;;) {
            std::uint64_t i = co_await wf.atomic(
                s.counter, AtomicOp::Add, 1, 0, 4, Scope::System);
            if (i >= s.elems())
                break;
            if (s.dest(i) == i || !s.isCycleLeader(i))
                continue;
            // Claim the leader; losing the CAS means another agent
            // beat us to this cycle.
            std::uint64_t won = co_await wf.atomic(
                s.flags + i * 4, AtomicOp::Cas, 0, 1, 4, Scope::System);
            if (won != 0)
                continue;
            std::uint64_t carried = co_await wf.load(s.mat + i * 4, 4,
                                                     Scope::System);
            std::uint64_t cur = i;
            do {
                std::uint64_t nxt = s.dest(cur);
                co_await wf.atomic(s.flags + nxt * 4, AtomicOp::Exch, 1,
                                   0, 4, Scope::System);
                std::uint64_t displaced = co_await wf.load(
                    s.mat + nxt * 4, 4, Scope::System);
                co_await wf.store(s.mat + nxt * 4, carried, 4,
                                  Scope::System);
                carried = displaced;
                cur = nxt;
            } while (cur != i);
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            for (;;) {
                std::uint64_t i =
                    co_await cpu.atomic(s.counter, AtomicOp::Add, 1, 0, 4);
                if (i >= s.elems())
                    break;
                if (s.dest(i) == i || !s.isCycleLeader(i))
                    continue;
                std::uint64_t won = co_await cpu.atomic(
                    s.flags + i * 4, AtomicOp::Cas, 0, 1, 4);
                if (won != 0)
                    continue;
                std::uint64_t carried = co_await cpu.load(s.mat + i * 4, 4);
                std::uint64_t cur = i;
                do {
                    std::uint64_t nxt = s.dest(cur);
                    co_await cpu.atomic(s.flags + nxt * 4, AtomicOp::Exch,
                                        1, 0, 4);
                    std::uint64_t displaced =
                        co_await cpu.load(s.mat + nxt * 4, 4);
                    co_await cpu.store(s.mat + nxt * 4, carried, 4);
                    carried = displaced;
                    cur = nxt;
                } while (cur != i);
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
Transposition::verify(HsaSystem &sys)
{
    const State &s = *st;
    // Element at row-major index i moved to dest(i): the matrix is now
    // column-major, i.e. got[c*rows + r] == host[r*cols + c].
    for (unsigned r = 0; r < s.rows; ++r) {
        for (unsigned c = 0; c < s.cols; ++c) {
            std::uint64_t src = std::uint64_t(r) * s.cols + c;
            std::uint64_t dst = s.dest(src);
            if (coherentPeek(sys, s.mat + dst * 4, 4) != s.host[src])
                return false;
        }
    }
    return true;
}

HSC_WORKLOAD_TU(trns)
{
    reg.add<Transposition>(
        "trns", TagChai | TagCoherenceActive,
        "In-place transposition: per-element flag CAS on cycles");
}

} // namespace hsc
