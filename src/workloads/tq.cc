/**
 * @file
 * tq — Task Queue System (CHAI).
 *
 * CPU producer threads enqueue task descriptors into unpaired work
 * queues (per-queue tail counters released with plain stores after
 * the payload); GPU workgroups poll the queues with system-scope
 * atomics, claim tasks with CAS on the head pointer, and process
 * them.  This is the suite's finest-grained CPU->GPU synchronisation.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{
constexpr unsigned NumQueues = 2;
constexpr unsigned TaskElems = 16; ///< each task sums 16 u32s
} // namespace

struct TaskQueue::State
{
    unsigned tasksPerQueue = 0;
    unsigned totalTasks = 0;
    Addr desc = 0;    ///< task descriptors (data index per task)
    Addr data = 0;    ///< task payload
    Addr results = 0; ///< one u32 per task
    Addr heads = 0;   ///< per-queue consumer cursor (own block each)
    Addr tails = 0;   ///< per-queue producer cursor (own block each)
    std::vector<std::uint32_t> host;

    Addr
    descAddr(unsigned q, unsigned slot) const
    {
        return desc + (Addr(q) * tasksPerQueue + slot) * 4;
    }
};

void
TaskQueue::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.tasksPerQueue = 16 * params.scale;
    s.totalTasks = NumQueues * s.tasksPerQueue;
    s.desc = sys.alloc(std::uint64_t(s.totalTasks) * 4);
    s.data = sys.alloc(std::uint64_t(s.totalTasks) * TaskElems * 4);
    s.results = sys.alloc(std::uint64_t(s.totalTasks) * 4);
    s.heads = sys.alloc(NumQueues * 64);
    s.tails = sys.alloc(NumQueues * 64);

    Rng rng(params.seed);
    s.host.resize(std::uint64_t(s.totalTasks) * TaskElems);
    for (unsigned i = 0; i < s.host.size(); ++i) {
        s.host[i] = std::uint32_t(rng.next());
        sys.writeWord<std::uint32_t>(s.data + Addr(i) * 4, s.host[i]);
    }

    auto state = st;

    GpuKernel kernel;
    kernel.name = "tq";
    kernel.numWorkgroups = params.gpuWorkgroups;
    kernel.body = [state](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        unsigned q = wf.workgroupId() % NumQueues;
        unsigned idle_sweeps = 0;
        for (;;) {
            Addr head_addr = s.heads + Addr(q) * 64;
            Addr tail_addr = s.tails + Addr(q) * 64;
            std::uint64_t head = co_await wf.atomic(
                head_addr, AtomicOp::Load, 0, 0, 4, Scope::System);
            if (head >= s.tasksPerQueue) {
                // This queue is drained; rotate, and stop once every
                // queue has been seen drained.
                if (++idle_sweeps >= NumQueues)
                    break;
                q = (q + 1) % NumQueues;
                continue;
            }
            std::uint64_t tail = co_await wf.atomic(
                tail_addr, AtomicOp::Load, 0, 0, 4, Scope::System);
            if (head >= tail) {
                // Nothing published yet: poll with backoff.
                co_await wf.compute(40);
                continue;
            }
            std::uint64_t won = co_await wf.atomic(
                head_addr, AtomicOp::Cas, head, head + 1, 4,
                Scope::System);
            if (won != head)
                continue; // lost the claim race
            idle_sweeps = 0;
            unsigned task = unsigned(co_await wf.atomic(
                s.descAddr(q, unsigned(head)), AtomicOp::Load, 0, 0, 4,
                Scope::System));
            // Process: sum the task's payload.
            auto vals =
                co_await wf.vload(s.data + Addr(task) * TaskElems * 4, 4,
                                  4);
            std::uint32_t sum = 0;
            for (auto v : vals)
                sum += std::uint32_t(v);
            co_await wf.compute(10);
            co_await wf.store(s.results + Addr(task) * 4, sum, 4,
                              Scope::System);
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, n_threads,
                          kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            // Producers fill both queues, interleaved by thread.
            for (unsigned q = 0; q < NumQueues; ++q) {
                for (unsigned slot = t; slot < s.tasksPerQueue;
                     slot += n_threads) {
                    unsigned task = q * s.tasksPerQueue + slot;
                    co_await cpu.store(s.descAddr(q, slot), task, 4);
                    co_await cpu.compute(20); // produce the payload
                    // Publish: wait until it is our turn to bump the
                    // tail (tasks publish in slot order).
                    Addr tail_addr = s.tails + Addr(q) * 64;
                    for (;;) {
                        std::uint64_t cur =
                            co_await cpu.load(tail_addr, 4);
                        if (cur == slot)
                            break;
                        co_await cpu.compute(30);
                    }
                    co_await cpu.store(tail_addr, slot + 1, 4);
                }
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
TaskQueue::verify(HsaSystem &sys)
{
    const State &s = *st;
    for (unsigned task = 0; task < s.totalTasks; ++task) {
        std::uint32_t want = 0;
        for (unsigned e = 0; e < TaskElems; ++e)
            want += s.host[std::size_t(task) * TaskElems + e];
        if (coherentPeek(sys, s.results + Addr(task) * 4, 4) != want)
            return false;
    }
    return true;
}

HSC_WORKLOAD_TU(tq)
{
    reg.add<TaskQueue>(
        "tq", TagChai | TagCoherenceActive,
        "Task queues: CPU producers feed GPU consumers through CAS");
}

} // namespace hsc
