/**
 * @file
 * Internal declarations of the ten workload classes plus shared
 * coroutine helpers.  Users include workload.hh; this header is for
 * the workload translation units and the tests.
 */

#ifndef HSC_WORKLOADS_WORKLOAD_IMPL_HH
#define HSC_WORKLOADS_WORKLOAD_IMPL_HH

#include "sim/rng.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

namespace hsc
{

/** Spin (with backoff) until the 32-bit word at @p addr is >= @p v. */
inline SimTask
cpuSpinGe(CpuCtx &cpu, Addr addr, std::uint32_t v)
{
    while (co_await cpu.load(addr, 4) < v)
        co_await cpu.compute(60);
}

/** Declare one workload class. */
#define HSC_DECLARE_WORKLOAD(Cls, id_str)                                  \
    class Cls : public Workload                                            \
    {                                                                      \
      public:                                                              \
        using Workload::Workload;                                          \
        std::string name() const override { return id_str; }               \
        void setup(HsaSystem &sys) override;                               \
        bool verify(HsaSystem &sys) override;                              \
                                                                           \
      private:                                                             \
        struct State;                                                      \
        std::shared_ptr<State> st;                                         \
    }

HSC_DECLARE_WORKLOAD(BezierSurface, "bs");
HSC_DECLARE_WORKLOAD(CannyEdge, "cedd");
HSC_DECLARE_WORKLOAD(Padding, "pad");
HSC_DECLARE_WORKLOAD(StreamCompaction, "sc");
HSC_DECLARE_WORKLOAD(TaskQueue, "tq");
HSC_DECLARE_WORKLOAD(HistogramInput, "hsti");
HSC_DECLARE_WORKLOAD(HistogramOutput, "hsto");
HSC_DECLARE_WORKLOAD(Transposition, "trns");
HSC_DECLARE_WORKLOAD(RansacData, "rscd");
HSC_DECLARE_WORKLOAD(RansacTask, "rsct");

// HeteroSync-style GPU-only synchronisation microbenchmarks (§V: the
// paper evaluated HeteroSync and found the enhancements "not
// prominent due to their limited collaborative properties").
HSC_DECLARE_WORKLOAD(HsMutex, "hs_mutex");
HSC_DECLARE_WORKLOAD(HsBarrier, "hs_barrier");
HSC_DECLARE_WORKLOAD(HsSemaphore, "hs_sema");

#undef HSC_DECLARE_WORKLOAD

} // namespace hsc

#endif // HSC_WORKLOADS_WORKLOAD_IMPL_HH
