/**
 * @file
 * HeteroSync-style GPU synchronisation microbenchmarks.
 *
 * The paper (§V, §VIII) also evaluated HeteroSync and found the
 * coherence enhancements "not prominent due to their limited
 * collaborative properties": these kernels synchronise GPU workgroups
 * among themselves, with the CPU only launching.  They are included
 * so `bench/heterosync_compare` can reproduce that benchmark-selection
 * observation.
 *
 *  - hs_mutex: spin-lock (SLC CAS) protecting a shared accumulator;
 *  - hs_barrier: sense-reversing centralised barrier over R rounds;
 *  - hs_sema: producer/consumer workgroups over a semaphore-guarded
 *    ring buffer.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

// --------------------------------------------------------------------
// hs_mutex
// --------------------------------------------------------------------

struct HsMutex::State
{
    unsigned itersPerWg = 0;
    unsigned wgs = 0;
    Addr lock = 0;
    Addr counter = 0;
    Addr log = 0; ///< one slot per acquisition (ticket order)
};

void
HsMutex::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.itersPerWg = 4 * params.scale;
    s.wgs = params.gpuWorkgroups;
    s.lock = sys.alloc(64);
    s.counter = sys.alloc(64);
    s.log = sys.alloc(std::uint64_t(s.wgs) * s.itersPerWg * 4);

    auto state = st;
    GpuKernel kernel;
    kernel.name = "hs_mutex";
    kernel.numWorkgroups = s.wgs;
    kernel.body = [state](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        for (unsigned i = 0; i < s.itersPerWg; ++i) {
            // Spin lock: CAS 0 -> 1 at system scope.
            for (;;) {
                std::uint64_t won = co_await wf.atomic(
                    s.lock, AtomicOp::Cas, 0, 1, 4, Scope::System);
                if (won == 0)
                    break;
                co_await wf.compute(20 + (wf.workgroupId() % 4) * 10);
            }
            // Critical section: bump the counter and log the ticket.
            std::uint64_t ticket = co_await wf.load(s.counter, 4,
                                                    Scope::System);
            co_await wf.compute(8);
            co_await wf.store(s.log + ticket * 4,
                              wf.workgroupId() * 1000 + i, 4,
                              Scope::System);
            co_await wf.store(s.counter, ticket + 1, 4, Scope::System);
            // Unlock.
            co_await wf.atomic(s.lock, AtomicOp::Exch, 0, 0, 4,
                               Scope::System);
        }
    };

    sys.addCpuThread([state, kernel](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(kernel);
    });
}

bool
HsMutex::verify(HsaSystem &sys)
{
    const State &s = *st;
    unsigned total = s.itersPerWg * s.wgs;
    if (coherentPeek(sys, s.counter, 4) != total)
        return false;
    // Every (wg, iter) pair must appear exactly once in the log.
    std::vector<bool> seen(std::size_t(s.wgs) * s.itersPerWg, false);
    for (unsigned t = 0; t < total; ++t) {
        std::uint64_t v = coherentPeek(sys, s.log + t * 4, 4);
        unsigned wg = unsigned(v / 1000), it = unsigned(v % 1000);
        if (wg >= s.wgs || it >= s.itersPerWg)
            return false;
        std::size_t idx = std::size_t(wg) * s.itersPerWg + it;
        if (seen[idx])
            return false;
        seen[idx] = true;
    }
    return true;
}

// --------------------------------------------------------------------
// hs_barrier
// --------------------------------------------------------------------

struct HsBarrier::State
{
    unsigned rounds = 0;
    unsigned wgs = 0;
    Addr arrive = 0; ///< centralised arrival counter
    Addr sense = 0;  ///< global sense (round number)
    Addr slots = 0;  ///< per-wg slot, rewritten each round
    Addr sums = 0;   ///< per-wg per-round neighbour sums
};

void
HsBarrier::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.rounds = 3 * params.scale;
    s.wgs = params.gpuWorkgroups;
    s.arrive = sys.alloc(64);
    s.sense = sys.alloc(64);
    // One slot row per round: a fast workgroup must not overwrite a
    // slot that slower readers of the previous round still need.
    s.slots = sys.alloc(std::uint64_t(s.wgs) * s.rounds * 4);
    s.sums = sys.alloc(std::uint64_t(s.wgs) * s.rounds * 4);

    auto state = st;
    unsigned wgs = s.wgs;
    GpuKernel kernel;
    kernel.name = "hs_barrier";
    kernel.numWorkgroups = wgs;
    kernel.body = [state, wgs](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        unsigned me = wf.workgroupId();
        for (unsigned r = 0; r < s.rounds; ++r) {
            co_await wf.store(s.slots + (Addr(r) * wgs + me) * 4,
                              (r + 1) * 100 + me, 4, Scope::System);
            // Centralised sense-reversing barrier.
            std::uint64_t pos = co_await wf.atomic(
                s.arrive, AtomicOp::Add, 1, 0, 4, Scope::System);
            if (pos == wgs - 1) {
                // Last arriver resets and releases the round.
                co_await wf.store(s.arrive, 0, 4, Scope::System);
                co_await wf.atomic(s.sense, AtomicOp::Add, 1, 0, 4,
                                   Scope::System);
            } else {
                while (co_await wf.atomic(s.sense, AtomicOp::Load, 0, 0,
                                          4, Scope::System) <= r) {
                    co_await wf.compute(25);
                }
            }
            // Read the neighbours' slots for this round.
            std::uint64_t sum = 0;
            for (unsigned w = 0; w < wgs; ++w)
                sum += co_await wf.load(
                    s.slots + (Addr(r) * wgs + w) * 4, 4, Scope::System);
            co_await wf.store(s.sums + (Addr(me) * s.rounds + r) * 4,
                              sum, 4, Scope::System);
        }
    };

    sys.addCpuThread([state, kernel](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(kernel);
    });
}

bool
HsBarrier::verify(HsaSystem &sys)
{
    const State &s = *st;
    for (unsigned r = 0; r < s.rounds; ++r) {
        std::uint64_t want = 0;
        for (unsigned w = 0; w < s.wgs; ++w)
            want += (r + 1) * 100 + w;
        for (unsigned me = 0; me < s.wgs; ++me) {
            std::uint64_t got = coherentPeek(
                sys, s.sums + (Addr(me) * s.rounds + r) * 4, 4);
            if (got != want)
                return false;
        }
    }
    return true;
}

// --------------------------------------------------------------------
// hs_sema
// --------------------------------------------------------------------

struct HsSemaphore::State
{
    unsigned items = 0;
    unsigned ringSlots = 4;
    Addr ring = 0;
    Addr fullCount = 0;  ///< semaphore: produced, unconsumed items
    Addr takeIdx = 0;    ///< consumer claim cursor
    Addr consumedSum = 0;
};

void
HsSemaphore::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.items = 8 * params.scale;
    s.ring = sys.alloc(std::uint64_t(s.ringSlots) * 64);
    s.fullCount = sys.alloc(64);
    s.takeIdx = sys.alloc(64);
    s.consumedSum = sys.alloc(64);

    auto state = st;
    unsigned wgs = std::max(2u, params.gpuWorkgroups);
    GpuKernel kernel;
    kernel.name = "hs_sema";
    kernel.numWorkgroups = wgs;
    kernel.body = [state, wgs](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        bool producer = wf.workgroupId() % 2 == 0;
        unsigned peers = wgs / 2 + (wgs % 2 && producer ? 1 : 0);
        unsigned mine = s.items / peers +
                        (wf.workgroupId() / 2 < s.items % peers ? 1 : 0);
        if (producer) {
            for (unsigned i = 0; i < mine; ++i) {
                // Wait for a free slot (bounded ring).
                for (;;) {
                    std::uint64_t full = co_await wf.atomic(
                        s.fullCount, AtomicOp::Load, 0, 0, 4,
                        Scope::System);
                    if (full < s.ringSlots)
                        break;
                    co_await wf.compute(30);
                }
                std::uint64_t v = wf.workgroupId() * 100 + i + 1;
                // Publish into a slot then post the semaphore.
                std::uint64_t slot = co_await wf.atomic(
                    s.takeIdx, AtomicOp::Add, 1, 0, 4, Scope::System);
                co_await wf.store(s.ring + (slot % s.ringSlots) * 64, v,
                                  4, Scope::System);
                co_await wf.atomic(s.fullCount, AtomicOp::Add, 1, 0, 4,
                                   Scope::System);
            }
        } else {
            for (unsigned i = 0; i < mine; ++i) {
                // Wait for an item, then consume it.
                for (;;) {
                    std::uint64_t full = co_await wf.atomic(
                        s.fullCount, AtomicOp::Load, 0, 0, 4,
                        Scope::System);
                    if (full > 0) {
                        std::uint64_t won = co_await wf.atomic(
                            s.fullCount, AtomicOp::Cas, full, full - 1,
                            4, Scope::System);
                        if (won == full)
                            break;
                    }
                    co_await wf.compute(30);
                }
                co_await wf.atomic(s.consumedSum, AtomicOp::Add, 1, 0, 8,
                                   Scope::System);
            }
        }
    };

    sys.addCpuThread([state, kernel](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(kernel);
    });
}

bool
HsSemaphore::verify(HsaSystem &sys)
{
    const State &s = *st;
    // Every item was produced exactly once and consumed exactly once.
    return coherentPeek(sys, s.consumedSum, 8) == s.items &&
           coherentPeek(sys, s.takeIdx, 4) == s.items &&
           coherentPeek(sys, s.fullCount, 4) == 0;
}

HSC_WORKLOAD_TU(heterosync)
{
    reg.add<HsMutex>(
        "hs_mutex", TagHeteroSync,
        "HeteroSync: GPU spin mutex among workgroups");
    reg.add<HsBarrier>(
        "hs_barrier", TagHeteroSync,
        "HeteroSync: GPU atomic barrier among workgroups");
    reg.add<HsSemaphore>(
        "hs_sema", TagHeteroSync,
        "HeteroSync: GPU counting semaphore among workgroups");
}

} // namespace hsc
