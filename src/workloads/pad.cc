/**
 * @file
 * pad — in-place matrix padding (CHAI).
 *
 * Rows of an R×C matrix are expanded in place to C+P columns.  CPU
 * threads and GPU workgroups claim rows *descending* through a shared
 * system-scope counter (dynamic partitioning) and synchronise with
 * per-row "source read" flags: a row's destination overlaps the
 * sources of higher rows, so the writer waits until those rows have
 * been read — CHAI's fine-grained non-ordering-flag pattern.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{
constexpr unsigned PadCols = 8;
} // namespace

struct Padding::State
{
    unsigned rows = 0;
    unsigned cols = 0;
    Addr buf = 0;       ///< R*(C+PadCols) u32s
    Addr counter = 0;   ///< descending row claims
    Addr readFlags = 0; ///< one u32 per row: source captured
    std::vector<std::uint32_t> host;

    unsigned newCols() const { return cols + PadCols; }

    /** Highest row whose source overlaps row @p r's destination. */
    unsigned
    lastOverlappingRow(unsigned r) const
    {
        Addr dest_end = Addr(r) * newCols() + newCols();
        unsigned row = unsigned((dest_end - 1) / cols);
        return std::min(row, rows - 1);
    }
};

void
Padding::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.rows = 16 * params.scale;
    s.cols = 24;
    s.buf = sys.alloc(std::uint64_t(s.rows) * s.newCols() * 4);
    s.counter = sys.alloc(64);
    s.readFlags = sys.alloc(std::uint64_t(s.rows) * 4);

    Rng rng(params.seed);
    s.host.resize(std::uint64_t(s.rows) * s.cols);
    for (unsigned i = 0; i < s.host.size(); ++i) {
        s.host[i] = std::uint32_t(rng.next()) | 1;
        sys.writeWord<std::uint32_t>(s.buf + Addr(i) * 4, s.host[i]);
    }

    auto state = st;
    unsigned wgs = params.gpuWorkgroups;

    GpuKernel kernel;
    kernel.name = "pad";
    kernel.numWorkgroups = wgs;
    kernel.body = [state](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        for (;;) {
            std::uint64_t idx = co_await wf.atomic(
                s.counter, AtomicOp::Add, 1, 0, 4, Scope::System);
            if (idx >= s.rows)
                break;
            unsigned r = s.rows - 1 - unsigned(idx);
            // Capture the source row.
            std::vector<std::uint64_t> vals;
            for (unsigned c0 = 0; c0 < s.cols; c0 += wf.laneCount()) {
                auto part = co_await wf.vload(
                    s.buf + (Addr(r) * s.cols + c0) * 4, 4, 4);
                unsigned count =
                    std::min<unsigned>(wf.laneCount(), s.cols - c0);
                vals.insert(vals.end(), part.begin(),
                            part.begin() + count);
            }
            co_await wf.atomic(s.readFlags + r * 4, AtomicOp::Exch, 1, 0,
                               4, Scope::System);
            // Wait for every higher row whose source we are about to
            // overwrite.
            for (unsigned h = r + 1; h <= s.lastOverlappingRow(r); ++h) {
                while (co_await wf.atomic(s.readFlags + h * 4,
                                          AtomicOp::Load, 0, 0, 4,
                                          Scope::System) == 0) {
                    co_await wf.compute(30);
                }
            }
            vals.resize(s.newCols(), 0); // the padding
            for (unsigned c0 = 0; c0 < s.newCols();
                 c0 += wf.laneCount()) {
                unsigned count =
                    std::min<unsigned>(wf.laneCount(), s.newCols() - c0);
                std::vector<std::uint64_t> chunk(
                    vals.begin() + c0, vals.begin() + c0 + count);
                // System scope: the destination may be read by CPU
                // rows below us before the kernel ends.
                for (unsigned k = 0; k < count; ++k) {
                    co_await wf.store(
                        s.buf + (Addr(r) * s.newCols() + c0 + k) * 4,
                        chunk[k], 4, Scope::System);
                }
            }
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            for (;;) {
                std::uint64_t idx =
                    co_await cpu.atomic(s.counter, AtomicOp::Add, 1, 0, 4);
                if (idx >= s.rows)
                    break;
                unsigned r = s.rows - 1 - unsigned(idx);
                std::vector<std::uint32_t> vals(s.newCols(), 0);
                for (unsigned c = 0; c < s.cols; ++c) {
                    vals[c] = std::uint32_t(co_await cpu.load(
                        s.buf + (Addr(r) * s.cols + c) * 4, 4));
                }
                co_await cpu.store(s.readFlags + r * 4, 1, 4);
                for (unsigned h = r + 1; h <= s.lastOverlappingRow(r);
                     ++h) {
                    while (co_await cpu.load(s.readFlags + h * 4, 4) == 0)
                        co_await cpu.compute(40);
                }
                for (unsigned c = 0; c < s.newCols(); ++c) {
                    co_await cpu.store(
                        s.buf + (Addr(r) * s.newCols() + c) * 4, vals[c],
                        4);
                }
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
Padding::verify(HsaSystem &sys)
{
    const State &s = *st;
    for (unsigned r = 0; r < s.rows; ++r) {
        for (unsigned c = 0; c < s.newCols(); ++c) {
            std::uint32_t want =
                c < s.cols ? s.host[std::size_t(r) * s.cols + c] : 0;
            if (coherentPeek(sys,
                             s.buf + (Addr(r) * s.newCols() + c) * 4,
                             4) != want) {
                return false;
            }
        }
    }
    return true;
}

HSC_WORKLOAD_TU(pad)
{
    reg.add<Padding>(
        "pad", TagChai,
        "In-place row padding: shared counter + source-read flags");
}

} // namespace hsc
