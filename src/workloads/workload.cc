#include "workloads/workload.hh"

#include <chrono>

#include "core/run_report.hh"
#include "workloads/workload_impl.hh"

namespace hsc
{

std::unique_ptr<Workload>
makeWorkload(const std::string &id, const WorkloadParams &p)
{
    if (id == "bs")
        return std::make_unique<BezierSurface>(p);
    if (id == "cedd")
        return std::make_unique<CannyEdge>(p);
    if (id == "pad")
        return std::make_unique<Padding>(p);
    if (id == "sc")
        return std::make_unique<StreamCompaction>(p);
    if (id == "tq")
        return std::make_unique<TaskQueue>(p);
    if (id == "hsti")
        return std::make_unique<HistogramInput>(p);
    if (id == "hsto")
        return std::make_unique<HistogramOutput>(p);
    if (id == "trns")
        return std::make_unique<Transposition>(p);
    if (id == "rscd")
        return std::make_unique<RansacData>(p);
    if (id == "rsct")
        return std::make_unique<RansacTask>(p);
    if (id == "hs_mutex")
        return std::make_unique<HsMutex>(p);
    if (id == "hs_barrier")
        return std::make_unique<HsBarrier>(p);
    if (id == "hs_sema")
        return std::make_unique<HsSemaphore>(p);
    fatal("unknown workload id '%s'", id.c_str());
}

const std::vector<std::string> &
workloadIds()
{
    static const std::vector<std::string> ids = {
        "bs", "cedd", "pad", "sc", "tq",
        "hsti", "hsto", "trns", "rscd", "rsct",
    };
    return ids;
}

const std::vector<std::string> &
heteroSyncIds()
{
    static const std::vector<std::string> ids = {
        "hs_mutex", "hs_barrier", "hs_sema",
    };
    return ids;
}

const std::vector<std::string> &
coherenceActiveIds()
{
    // The five workloads with the richest CPU-GPU collaboration, used
    // for the state-tracking figures (the paper evaluates tracking on
    // five benchmarks for the same reason).
    static const std::vector<std::string> ids = {
        "cedd", "sc", "tq", "trns", "rsct",
    };
    return ids;
}

std::uint64_t
coherentPeek(HsaSystem &sys, Addr addr, unsigned size)
{
    for (unsigned i = 0; i < sys.numCorePairs(); ++i) {
        if (sys.corePair(i).hasLine(addr))
            return sys.corePair(i).peekWord(addr, size);
    }
    switch (size) {
      case 4: return sys.readWord<std::uint32_t>(addr);
      case 8: return sys.readWord<std::uint64_t>(addr);
      default: panic("coherentPeek: unsupported size %u", size);
    }
}

WorkloadRun
runWorkload(const std::string &id, const SystemConfig &cfg,
            const WorkloadParams &p)
{
    WorkloadRun result;
    HsaSystem sys(cfg);
    auto wl = makeWorkload(id, p);
    wl->setup(sys);
    result.ran = sys.run();
    result.cycles = sys.cpuCycles();
    if (result.ran)
        result.verified = wl->verify(sys);
    return result;
}

RunMetrics
benchWorkload(const std::string &id, const SystemConfig &cfg,
              const WorkloadParams &p)
{
    HsaSystem sys(cfg);
    auto wl = makeWorkload(id, p);
    wl->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool ran = sys.run();
    bool ok = ran && wl->verify(sys);
    auto t1 = std::chrono::steady_clock::now();
    RunMetrics m = collectMetrics(sys, id, ok);
    m.hostMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    m.hostEvents = sys.eventQueue().numExecuted();
    return m;
}

} // namespace hsc
