#include "workloads/workload.hh"

#include <chrono>

#include "core/run_report.hh"
#include "workloads/registry.hh"
#include "workloads/workload_impl.hh"

namespace hsc
{

std::unique_ptr<Workload>
makeWorkload(const std::string &id, const WorkloadParams &p)
{
    const WorkloadInfo *info = WorkloadRegistry::instance().find(id);
    if (!info)
        fatal("unknown workload id '%s'", id.c_str());
    return info->make(p);
}

const std::vector<std::string> &
workloadIds()
{
    static const std::vector<std::string> ids =
        WorkloadRegistry::instance().idsWithTags(TagChai);
    return ids;
}

const std::vector<std::string> &
heteroSyncIds()
{
    static const std::vector<std::string> ids =
        WorkloadRegistry::instance().idsWithTags(TagHeteroSync);
    return ids;
}

const std::vector<std::string> &
coherenceActiveIds()
{
    // The five workloads with the richest CPU-GPU collaboration, used
    // for the state-tracking figures (the paper evaluates tracking on
    // five benchmarks for the same reason).
    static const std::vector<std::string> ids =
        WorkloadRegistry::instance().idsWithTags(TagCoherenceActive);
    return ids;
}

std::uint64_t
coherentPeek(HsaSystem &sys, Addr addr, unsigned size)
{
    for (unsigned i = 0; i < sys.numCorePairs(); ++i) {
        if (sys.corePair(i).hasLine(addr))
            return sys.corePair(i).peekWord(addr, size);
    }
    switch (size) {
      case 4: return sys.readWord<std::uint32_t>(addr);
      case 8: return sys.readWord<std::uint64_t>(addr);
      default: panic("coherentPeek: unsupported size %u", size);
    }
}

WorkloadRun
runWorkload(const std::string &id, const SystemConfig &cfg,
            const WorkloadParams &p)
{
    WorkloadRun result;
    HsaSystem sys(cfg);
    auto wl = makeWorkload(id, p);
    wl->setup(sys);
    result.ran = sys.run();
    result.cycles = sys.cpuCycles();
    if (result.ran)
        result.verified = wl->verify(sys);
    return result;
}

RunMetrics
benchWorkload(const std::string &id, const SystemConfig &cfg,
              const WorkloadParams &p)
{
    HsaSystem sys(cfg);
    auto wl = makeWorkload(id, p);
    wl->setup(sys);
    auto t0 = std::chrono::steady_clock::now();
    bool ran = sys.run();
    bool ok = ran && wl->verify(sys);
    auto t1 = std::chrono::steady_clock::now();
    RunMetrics m = collectMetrics(sys, id, ok);
    m.hostMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    m.hostEvents = sys.eventsExecuted();
    return m;
}

} // namespace hsc
