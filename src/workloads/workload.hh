/**
 * @file
 * CHAI-like collaborative heterogeneous workloads (§V of the paper).
 *
 * Ten workloads reproduce the CPU/GPU collaboration structure of the
 * CHAI benchmarks the paper evaluates: data partitioning, fine- and
 * coarse-grained task partitioning, and the atomics-based
 * synchronisation primitives (work queues, non-ordering flags,
 * dynamic partitioning counters).  All data is functional: every
 * workload verifies its numerical output against a host-side
 * reference after the run.
 */

#ifndef HSC_WORKLOADS_WORKLOAD_HH
#define HSC_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "core/hsa_system.hh"

namespace hsc
{

/** Size/shape knobs shared by all workloads. */
struct WorkloadParams
{
    /** Linear problem-size multiplier (1 = bench default). */
    unsigned scale = 1;
    unsigned cpuThreads = 4;
    unsigned gpuWorkgroups = 8;
    std::uint64_t seed = 7;

    /** The trace replay frontend's input (workload id "trace"). */
    std::string tracePath;
};

/**
 * One collaborative workload: allocates and initialises its data,
 * registers CPU threads (which launch GPU kernels), and verifies the
 * output after the system has run.
 */
class Workload
{
  public:
    explicit Workload(const WorkloadParams &p) : params(p) {}
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate inputs/outputs and register the agents. */
    virtual void setup(HsaSystem &sys) = 0;

    /** Check the output; call only after a successful run. */
    virtual bool verify(HsaSystem &sys) = 0;

  protected:
    WorkloadParams params;
};

/** Instantiate a workload by CHAI id (bs, cedd, pad, sc, tq, hsti,
 *  hsto, trns, rscd, rsct). */
std::unique_ptr<Workload> makeWorkload(const std::string &id,
                                       const WorkloadParams &p);

/** All ten workload ids, in the paper's order. */
const std::vector<std::string> &workloadIds();

/** The five most coherence-active ids used for Figs. 6 and 7. */
const std::vector<std::string> &coherenceActiveIds();

/** HeteroSync-style GPU-only synchronisation microbenchmark ids. */
const std::vector<std::string> &heteroSyncIds();

/**
 * Read the current coherent value of a word once the system is
 * quiescent: an L2 copy (all copies are identical) wins over the
 * LLC, which wins over memory.
 */
std::uint64_t coherentPeek(HsaSystem &sys, Addr addr, unsigned size);

/** Convenience: build, run and verify one workload on @p cfg.
 *  @return {ran, verified}. */
struct WorkloadRun
{
    bool ran = false;
    bool verified = false;
    Cycles cycles = 0;
};
WorkloadRun runWorkload(const std::string &id, const SystemConfig &cfg,
                        const WorkloadParams &p = {});

/** Run one workload and collect the full figure metrics. */
struct RunMetrics;
RunMetrics benchWorkload(const std::string &id, const SystemConfig &cfg,
                         const WorkloadParams &p = {});

} // namespace hsc

#endif // HSC_WORKLOADS_WORKLOAD_HH
