/**
 * @file
 * hsti — Histogram, input partitioned (CHAI).
 *
 * CPU threads and GPU workgroups read disjoint slices of the input
 * but atomically update one *shared* bin array, so the bin lines
 * bounce between every L2 and the directory constantly — the
 * heaviest invalidation traffic of the suite.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{
constexpr unsigned NumBins = 32;
} // namespace

struct HistogramInput::State
{
    unsigned n = 0;
    Addr input = 0;
    Addr bins = 0;
    std::vector<std::uint32_t> host;
    unsigned cpuShare = 0; ///< first cpuShare elements on the CPU
};

void
HistogramInput::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.n = 512 * params.scale;
    s.cpuShare = s.n / 2;
    s.input = sys.alloc(std::uint64_t(s.n) * 4);
    s.bins = sys.alloc(NumBins * 4);

    Rng rng(params.seed);
    s.host.resize(s.n);
    for (unsigned i = 0; i < s.n; ++i) {
        s.host[i] = std::uint32_t(rng.below(NumBins));
        sys.writeWord<std::uint32_t>(s.input + i * 4, s.host[i]);
    }

    auto state = st;
    unsigned wgs = params.gpuWorkgroups;

    GpuKernel kernel;
    kernel.name = "hsti";
    kernel.numWorkgroups = wgs;
    kernel.body = [state, wgs](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        unsigned lanes = wf.laneCount();
        unsigned gpu_elems = s.n - s.cpuShare;
        for (unsigned base = wf.workgroupId() * lanes; base < gpu_elems;
             base += wgs * lanes) {
            Addr a = s.input + (s.cpuShare + base) * 4;
            auto vals = co_await wf.vload(a, 4, 4);
            unsigned count = std::min<unsigned>(lanes, gpu_elems - base);
            for (unsigned l = 0; l < count; ++l) {
                // Conflicting updates must be system-scope atomics.
                co_await wf.atomic(s.bins + vals[l] * 4, AtomicOp::Add, 1,
                                   0, 4, Scope::System);
            }
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, n_threads,
                          kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            for (unsigned i = t; i < s.cpuShare; i += n_threads) {
                std::uint64_t v = co_await cpu.load(s.input + i * 4, 4);
                co_await cpu.atomic(s.bins + v * 4, AtomicOp::Add, 1, 0, 4);
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
HistogramInput::verify(HsaSystem &sys)
{
    const State &s = *st;
    std::uint32_t want[NumBins] = {};
    for (std::uint32_t v : s.host)
        ++want[v];
    for (unsigned b = 0; b < NumBins; ++b) {
        if (coherentPeek(sys, s.bins + b * 4, 4) != want[b])
            return false;
    }
    return true;
}

HSC_WORKLOAD_TU(hsti)
{
    reg.add<HistogramInput>(
        "hsti", TagChai,
        "Histogram, input partitioned: one shared atomic bin array");
}

} // namespace hsc
