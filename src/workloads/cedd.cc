/**
 * @file
 * cedd — Canny Edge Detection (CHAI).
 *
 * A four-stage per-frame pipeline split across devices: the GPU runs
 * gaussian smoothing and gradient (stages 1-2) and releases each
 * frame with a system-scope flag; CPU threads pick finished frames up
 * and run non-maximum suppression and hysteresis thresholding
 * (stages 3-4) on row slices.  Frames hand over through coherent
 * flags — the producer/consumer pattern the paper's enhancements
 * target.
 */

#include "workloads/workload_impl.hh"

namespace hsc
{

namespace
{

constexpr unsigned W = 32;
constexpr unsigned H = 8;

std::uint32_t
stage1(const std::vector<std::uint32_t> &in, unsigned r, unsigned c)
{
    // Horizontal smoothing with clamped neighbours.
    std::uint32_t left = in[r * W + (c == 0 ? 0 : c - 1)];
    std::uint32_t mid = in[r * W + c];
    std::uint32_t right = in[r * W + (c == W - 1 ? c : c + 1)];
    return (left + 2 * mid + right) / 4;
}

std::uint32_t
stage2(const std::vector<std::uint32_t> &s1, unsigned r, unsigned c)
{
    std::uint32_t left = s1[r * W + (c == 0 ? 0 : c - 1)];
    std::uint32_t right = s1[r * W + (c == W - 1 ? c : c + 1)];
    return left > right ? left - right : right - left;
}

std::uint32_t
stage34(const std::vector<std::uint32_t> &s2, unsigned r, unsigned c)
{
    // Non-max suppression against horizontal neighbours, then
    // hysteresis-style thresholding.
    std::uint32_t left = s2[r * W + (c == 0 ? 0 : c - 1)];
    std::uint32_t mid = s2[r * W + c];
    std::uint32_t right = s2[r * W + (c == W - 1 ? c : c + 1)];
    std::uint32_t kept = (mid >= left && mid >= right) ? mid : 0;
    return kept >= 0x40000000u ? 255 : (kept >= 0x10000000u ? 128 : 0);
}

} // namespace

struct CannyEdge::State
{
    unsigned frames = 0;
    Addr in = 0;
    Addr s1 = 0;
    Addr s2 = 0;
    Addr out = 0;
    Addr flags = 0;      ///< per-frame: GPU stages done
    std::vector<std::vector<std::uint32_t>> host;

    Addr
    pix(Addr base, unsigned f, unsigned r, unsigned c) const
    {
        return base + (Addr(f) * W * H + Addr(r) * W + c) * 4;
    }
};

void
CannyEdge::setup(HsaSystem &sys)
{
    st = std::make_shared<State>();
    State &s = *st;
    s.frames = 4 * params.scale;
    std::uint64_t frame_bytes = std::uint64_t(W) * H * 4;
    s.in = sys.alloc(s.frames * frame_bytes);
    s.s1 = sys.alloc(s.frames * frame_bytes);
    s.s2 = sys.alloc(s.frames * frame_bytes);
    s.out = sys.alloc(s.frames * frame_bytes);
    s.flags = sys.alloc(std::uint64_t(s.frames) * 4);

    Rng rng(params.seed);
    s.host.resize(s.frames);
    for (unsigned f = 0; f < s.frames; ++f) {
        s.host[f].resize(W * H);
        for (unsigned i = 0; i < W * H; ++i) {
            s.host[f][i] = std::uint32_t(rng.next());
            sys.writeWord<std::uint32_t>(s.in + Addr(f) * frame_bytes +
                                             Addr(i) * 4,
                                         s.host[f][i]);
        }
    }

    auto state = st;
    unsigned wgs = params.gpuWorkgroups;

    GpuKernel kernel;
    kernel.name = "cedd";
    kernel.numWorkgroups = wgs;
    kernel.body = [state, wgs](WaveCtx &wf) -> SimTask {
        const State &s = *state;
        for (unsigned f = wf.workgroupId(); f < s.frames; f += wgs) {
            std::vector<std::uint32_t> in(W * H), t1(W * H);
            for (unsigned r = 0; r < H; ++r) {
                for (unsigned c0 = 0; c0 < W; c0 += wf.laneCount()) {
                    auto vals =
                        co_await wf.vload(s.pix(s.in, f, r, c0), 4, 4);
                    for (unsigned l = 0; l < wf.laneCount(); ++l)
                        in[r * W + c0 + l] = std::uint32_t(vals[l]);
                }
            }
            // Stage 1 (gaussian) then stage 2 (gradient).
            for (unsigned r = 0; r < H; ++r) {
                std::vector<std::uint64_t> row(W);
                for (unsigned c = 0; c < W; ++c) {
                    t1[r * W + c] = stage1(in, r, c);
                    row[c] = t1[r * W + c];
                }
                co_await wf.compute(6);
                for (unsigned c0 = 0; c0 < W; c0 += wf.laneCount()) {
                    std::vector<std::uint64_t> chunk(
                        row.begin() + c0,
                        row.begin() + c0 + wf.laneCount());
                    co_await wf.vstore(s.pix(s.s1, f, r, c0), 4, 4,
                                       chunk);
                }
            }
            for (unsigned r = 0; r < H; ++r) {
                std::vector<std::uint64_t> row(W);
                for (unsigned c = 0; c < W; ++c)
                    row[c] = stage2(t1, r, c);
                co_await wf.compute(6);
                for (unsigned c0 = 0; c0 < W; c0 += wf.laneCount()) {
                    std::vector<std::uint64_t> chunk(
                        row.begin() + c0,
                        row.begin() + c0 + wf.laneCount());
                    co_await wf.vstore(s.pix(s.s2, f, r, c0), 4, 4,
                                       chunk);
                }
            }
            // Release the frame to the CPU consumers.  The flag write
            // must order after the pixel stores: drain them first.
            co_await wf.release();
            co_await wf.atomic(s.flags + f * 4, AtomicOp::Exch, 1, 0, 4,
                               Scope::System);
        }
    };

    unsigned n_threads = params.cpuThreads;
    for (unsigned t = 0; t < n_threads; ++t) {
        sys.addCpuThread([state, t, n_threads,
                          kernel](CpuCtx &cpu) -> SimTask {
            const State &s = *state;
            if (t == 0)
                cpu.launchKernelAsync(kernel);
            unsigned rows = H / 1;
            for (unsigned f = 0; f < s.frames; ++f) {
                // Wait for the GPU to release this frame.
                while (co_await cpu.load(s.flags + f * 4, 4) == 0)
                    co_await cpu.compute(80);
                // Stages 3-4 on this thread's row slice.
                std::vector<std::uint32_t> grad(W * H);
                for (unsigned r = 0; r < rows; ++r) {
                    for (unsigned c = 0; c < W; ++c) {
                        grad[r * W + c] = std::uint32_t(co_await cpu.load(
                            s.pix(s.s2, f, r, c), 4));
                    }
                }
                for (unsigned r = t; r < rows; r += n_threads) {
                    for (unsigned c = 0; c < W; ++c) {
                        co_await cpu.compute(1);
                        co_await cpu.store(s.pix(s.out, f, r, c),
                                           stage34(grad, r, c), 4);
                    }
                }
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }
}

bool
CannyEdge::verify(HsaSystem &sys)
{
    const State &s = *st;
    for (unsigned f = 0; f < s.frames; ++f) {
        std::vector<std::uint32_t> t1(W * H), t2(W * H);
        for (unsigned r = 0; r < H; ++r)
            for (unsigned c = 0; c < W; ++c)
                t1[r * W + c] = stage1(s.host[f], r, c);
        for (unsigned r = 0; r < H; ++r)
            for (unsigned c = 0; c < W; ++c)
                t2[r * W + c] = stage2(t1, r, c);
        for (unsigned r = 0; r < H; ++r) {
            for (unsigned c = 0; c < W; ++c) {
                if (coherentPeek(sys, s.pix(s.out, f, r, c), 4) !=
                    stage34(t2, r, c)) {
                    return false;
                }
            }
        }
    }
    return true;
}

HSC_WORKLOAD_TU(cedd)
{
    reg.add<CannyEdge>(
        "cedd", TagChai | TagCoherenceActive,
        "Canny edge pipeline: GPU stages 1-2 hand frames to CPU 3-4");
}

} // namespace hsc
