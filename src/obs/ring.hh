/**
 * @file
 * Bounded single-producer staging ring for span events.
 *
 * Controllers push into the ring on the simulation hot path; the
 * ObsTracer drains it in batches into the aggregation structures.
 * The ring never allocates after construction and never blocks: a
 * push into a full ring is refused and counted, so a misbehaving
 * drain cadence costs events, not correctness or memory.
 */

#ifndef HSC_OBS_RING_HH
#define HSC_OBS_RING_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/span.hh"

namespace hsc
{

class SpanRing
{
  public:
    explicit SpanRing(std::size_t capacity)
        : buf(capacity ? capacity : 1)
    {}

    std::size_t capacity() const { return buf.size(); }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool full() const { return count == buf.size(); }

    /** Events refused because the ring was full. */
    std::uint64_t dropped() const { return drops; }

    /** Append @p ev; false (and a drop counted) when full. */
    bool
    push(const SpanEvent &ev)
    {
        if (count == buf.size()) {
            ++drops;
            return false;
        }
        buf[(head + count) % buf.size()] = ev;
        ++count;
        return true;
    }

    /** Pop every event in FIFO order through @p fn. */
    template <typename Fn>
    void
    drain(Fn &&fn)
    {
        while (count) {
            fn(buf[head]);
            head = (head + 1) % buf.size();
            --count;
        }
    }

  private:
    std::vector<SpanEvent> buf;
    std::size_t head = 0;
    std::size_t count = 0;
    std::uint64_t drops = 0;
};

} // namespace hsc

#endif // HSC_OBS_RING_HH
