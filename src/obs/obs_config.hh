/**
 * @file
 * Configuration of the observability subsystem (src/obs).
 *
 * Everything here is off by default: a default-constructed
 * SystemConfig builds no tracer and no sampler, and the protocol
 * controllers' tracer pointers stay null, so the instrumented hot
 * paths reduce to one untaken branch.  bench/obs_overhead asserts
 * that turning the subsystem on does not move simulated cycles.
 */

#ifndef HSC_OBS_OBS_CONFIG_HH
#define HSC_OBS_OBS_CONFIG_HH

#include <cstddef>
#include <cstdint>

#include "sim/types.hh"

namespace hsc
{

struct ObsConfig
{
    /** Master switch: build the tracer and attach it everywhere. */
    bool enabled = false;

    /** Staging ring capacity (span events between collector drains). */
    std::size_t ringEntries = 4096;

    /** Ceiling on concurrently open (un-completed) transactions;
     *  newTxn() beyond this drops the transaction and counts it. */
    std::size_t maxOpenTxns = 1u << 16;

    /** Keep per-transaction event lists for Chrome trace export.
     *  Aggregated histograms are always maintained. */
    bool keepSpans = true;

    /** Ceiling on finished spans retained for export (memory bound);
     *  spans beyond this still feed the histograms. */
    std::size_t maxKeptSpans = 1u << 18;

    /** Latency histogram shape (bucket width in CPU cycles). */
    std::uint64_t histBucketCycles = 64;
    std::size_t histBuckets = 64;

    /** Time-series sampling period in CPU cycles; 0 disables the
     *  sampler.  Implies @ref enabled when set via hsc_run. */
    Cycles samplingInterval = 0;
};

} // namespace hsc

#endif // HSC_OBS_OBS_CONFIG_HH
