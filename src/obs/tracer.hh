/**
 * @file
 * Transaction-lifetime tracer and latency-attribution collector.
 *
 * Controllers hold an ObsTracer pointer (null when observability is
 * off, mirroring the CoherenceChecker attach pattern) and emit span
 * events into a bounded staging ring; the tracer drains the ring
 * lazily and, per transaction, attributes every interval between
 * consecutive events to one ObsComponent using a small replayed
 * state machine (dispatched / probes outstanding / backing
 * outstanding / responded).  By construction the per-component sums
 * equal the end-to-end latency exactly.
 *
 * The tracer is purely passive: it never schedules events and never
 * feeds anything back into the simulation, so enabling it cannot
 * move simulated time (bench/obs_overhead asserts this).
 */

#ifndef HSC_OBS_TRACER_HH
#define HSC_OBS_TRACER_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/obs_config.hh"
#include "obs/ring.hh"
#include "obs/span.hh"
#include "stats/stats.hh"

namespace hsc
{

/** One completed transaction, ready for export. */
struct FinishedSpan
{
    std::uint64_t id = 0;
    ObsClass cls = ObsClass::CpuRead;
    std::uint16_t origin = 0;  ///< interned controller that issued it
    Addr addr = 0;
    Tick start = 0;
    Tick end = 0;
    /** Latency breakdown; sums exactly to end - start. */
    std::array<Tick, NumObsComponents> comp{};
    /** Full event list (empty unless ObsConfig::keepSpans). */
    std::vector<SpanEvent> events;
};

class ObsTracer
{
  public:
    explicit ObsTracer(const ObsConfig &cfg);

    /** @{ Controller registration (attach time, not hot path). */
    std::uint16_t internCtrl(const std::string &name, ObsCtrlKind kind);
    const std::string &ctrlName(std::uint16_t idx) const;
    ObsCtrlKind ctrlKind(std::uint16_t idx) const;
    std::size_t numCtrls() const { return ctrls.size(); }
    /** @} */

    /**
     * Set the tick-per-cycle period used to convert histogram samples
     * (and the report) from ticks to CPU cycles.  Defaults to 1.
     */
    void setCyclePeriod(Tick period_ps);
    Tick cyclePeriod() const { return periodPs; }

    /** @{ Hot path: all O(1), no allocation beyond vector growth. */

    /**
     * Open a transaction; returns its id (carried on messages as
     * Msg::obsId) or 0 when the open-transaction ceiling was hit.
     */
    std::uint64_t newTxn(ObsClass cls, std::uint16_t ctrl, Addr addr,
                         Tick now);

    /** Record a lifecycle event; ignored when @p id is 0. */
    void emit(std::uint64_t id, ObsPhase phase, std::uint16_t ctrl,
              Addr addr, Tick now, std::uint32_t arg = 0);

    /** Record completion; finalizes the breakdown at next collect. */
    void
    complete(std::uint64_t id, std::uint16_t ctrl, Addr addr, Tick now)
    {
        emit(id, ObsPhase::Complete, ctrl, addr, now);
    }

    /** @} */

    /** Drain the staging ring into the aggregation structures. */
    void collect();

    /** @{ Results (call collect() first, or use HsaSystem::run). */
    const std::vector<FinishedSpan> &spans() const { return finished; }
    const Histogram &latency(ObsClass cls) const;
    const Histogram &component(ObsClass cls, ObsComponent c) const;

    std::uint64_t started() const { return statTxnsStarted.value(); }
    std::uint64_t completed() const
    {
        return statTxnsCompleted.value();
    }
    std::uint64_t liveTxns() const { return live; }
    std::uint64_t ringDropped() const { return ring.dropped(); }
    std::uint64_t txnsDropped() const
    {
        return statTxnsDropped.value();
    }
    std::uint64_t spansDropped() const
    {
        return statSpansDropped.value();
    }
    std::uint64_t lateEvents() const
    {
        return statLateEvents.value();
    }

    /** Stray events for closed transactions (export only). */
    const std::vector<SpanEvent> &strayEvents() const { return stray; }

    /** Formatted latency-breakdown report (cycles). */
    void report(std::ostream &os) const;
    /** @} */

    void regStats(StatRegistry &reg);

    const ObsConfig &config() const { return cfg; }

  private:
    struct OpenTxn
    {
        ObsClass cls = ObsClass::CpuRead;
        std::uint16_t origin = 0;
        Addr addr = 0;
        Tick start = 0;
        std::vector<SpanEvent> events;
    };

    void aggregate(const SpanEvent &ev);
    void finish(OpenTxn &txn, const SpanEvent &complete_ev);

    ObsConfig cfg;
    Tick periodPs = 1;

    struct CtrlInfo
    {
        std::string name;
        ObsCtrlKind kind;
    };
    std::vector<CtrlInfo> ctrls;
    std::unordered_map<std::string, std::uint16_t> ctrlIndex;

    SpanRing ring;
    std::uint64_t nextId = 1;
    std::uint64_t live = 0;  ///< open txns incl. not-yet-drained
    std::unordered_map<std::uint64_t, OpenTxn> open;
    std::vector<FinishedSpan> finished;
    std::vector<SpanEvent> stray;

    std::vector<Histogram> latencyHist;  ///< [class]
    std::vector<Histogram> compHist;     ///< [class][component]

    Counter statEvents;
    Counter statTxnsStarted;
    Counter statTxnsCompleted;
    Counter statTxnsDropped;
    Counter statSpansDropped;
    Counter statLateEvents;
    Counter statRingDrops;  ///< mirrors ring.dropped() for the registry
    std::uint64_t mirroredRingDrops = 0;
};

} // namespace hsc

#endif // HSC_OBS_TRACER_HH
