#include "obs/chrome_trace.hh"

#include <fstream>
#include <sstream>

#include "obs/sampler.hh"
#include "obs/tracer.hh"

namespace hsc
{

namespace
{

/** Ticks are picoseconds; trace timestamps are microseconds. */
double
toUs(Tick t)
{
    return double(t) / 1e6;
}

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

JsonValue
baseEvent(const char *ph, const std::string &name, std::uint16_t tid,
          Tick ts)
{
    JsonValue ev = JsonValue::makeObject();
    ev.set("ph", JsonValue(ph));
    ev.set("name", JsonValue(name));
    ev.set("pid", JsonValue(0u));
    ev.set("tid", JsonValue(unsigned(tid)));
    ev.set("ts", JsonValue(toUs(ts)));
    return ev;
}

JsonValue
ctrlArgs(const ObsTracer &tracer, std::uint16_t ctrl)
{
    JsonValue args = JsonValue::makeObject();
    args.set("ctrl", JsonValue(tracer.ctrlName(ctrl)));
    args.set("kind",
             JsonValue(std::string(
                 obsCtrlKindName(tracer.ctrlKind(ctrl)))));
    return args;
}

void
pushInstant(JsonValue &events, const ObsTracer &tracer,
            const SpanEvent &ev)
{
    JsonValue inst = baseEvent(
        "i", std::string(obsPhaseName(ev.phase)), ev.ctrl, ev.tick);
    inst.set("s", JsonValue("t"));
    JsonValue args = ctrlArgs(tracer, ev.ctrl);
    args.set("obsId", JsonValue(ev.id));
    args.set("addr", JsonValue(hexAddr(ev.addr)));
    inst.set("args", std::move(args));
    events.push(std::move(inst));
}

} // namespace

JsonValue
buildChromeTrace(const ObsTracer &tracer, const ObsSampler *sampler)
{
    JsonValue events = JsonValue::makeArray();

    JsonValue pname = JsonValue::makeObject();
    pname.set("ph", JsonValue("M"));
    pname.set("name", JsonValue("process_name"));
    pname.set("pid", JsonValue(0u));
    JsonValue pargs = JsonValue::makeObject();
    pargs.set("name", JsonValue("hsc-sim"));
    pname.set("args", std::move(pargs));
    events.push(std::move(pname));

    for (std::size_t i = 0; i < tracer.numCtrls(); ++i) {
        JsonValue tname = JsonValue::makeObject();
        tname.set("ph", JsonValue("M"));
        tname.set("name", JsonValue("thread_name"));
        tname.set("pid", JsonValue(0u));
        tname.set("tid", JsonValue(unsigned(i)));
        JsonValue targs = JsonValue::makeObject();
        targs.set("name",
                  JsonValue(tracer.ctrlName(std::uint16_t(i))));
        tname.set("args", std::move(targs));
        events.push(std::move(tname));
    }

    for (const FinishedSpan &span : tracer.spans()) {
        const std::string cls(obsClassName(span.cls));
        const std::string id = std::to_string(span.id);

        // The whole transaction as an async begin/end pair: async
        // events tolerate the overlap of concurrent transactions.
        JsonValue b = baseEvent("b", cls, span.origin, span.start);
        b.set("cat", JsonValue("txn"));
        b.set("id", JsonValue(id));
        JsonValue bargs = ctrlArgs(tracer, span.origin);
        bargs.set("obsId", JsonValue(span.id));
        bargs.set("addr", JsonValue(hexAddr(span.addr)));
        b.set("args", std::move(bargs));
        events.push(std::move(b));

        JsonValue e = baseEvent("e", cls, span.origin, span.end);
        e.set("cat", JsonValue("txn"));
        e.set("id", JsonValue(id));
        JsonValue eargs = JsonValue::makeObject();
        for (std::size_t c = 0; c < NumObsComponents; ++c) {
            eargs.set(
                std::string(obsComponentName(ObsComponent(c))) +
                    "Cycles",
                JsonValue(span.comp[c] / tracer.cyclePeriod()));
        }
        e.set("args", std::move(eargs));
        events.push(std::move(e));

        // Directory service window as its own async pair, plus
        // instant markers for the intermediate lifecycle points.
        const SpanEvent *dispatch = nullptr;
        Tick dir_end = 0;
        for (const SpanEvent &ev : span.events) {
            switch (ev.phase) {
              case ObsPhase::DirDispatch:
                if (!dispatch)
                    dispatch = &ev;
                break;
              case ObsPhase::Inject:
              case ObsPhase::LocalHit:
              case ObsPhase::Merge:
              case ObsPhase::ProbeIn:
              case ObsPhase::EccCorrected:
              case ObsPhase::LinePoisoned:
              case ObsPhase::PoisonConsumed:
              case ObsPhase::ScrubRepair:
                pushInstant(events, tracer, ev);
                break;
              default:
                break;
            }
            if (dispatch && ev.ctrl == dispatch->ctrl &&
                ev.tick > dir_end) {
                dir_end = ev.tick;
            }
        }
        if (dispatch) {
            JsonValue db = baseEvent("b", "svc:" + cls,
                                     dispatch->ctrl, dispatch->tick);
            db.set("cat", JsonValue("dirsvc"));
            db.set("id", JsonValue(id));
            JsonValue dargs = ctrlArgs(tracer, dispatch->ctrl);
            dargs.set("addr", JsonValue(hexAddr(span.addr)));
            db.set("args", std::move(dargs));
            events.push(std::move(db));

            JsonValue de = baseEvent("e", "svc:" + cls,
                                     dispatch->ctrl, dir_end);
            de.set("cat", JsonValue("dirsvc"));
            de.set("id", JsonValue(id));
            events.push(std::move(de));
        }
    }

    for (const SpanEvent &ev : tracer.strayEvents())
        pushInstant(events, tracer, ev);

    if (sampler) {
        const auto &gnames = sampler->gaugeNames();
        for (const ObsSampler::Row &row : sampler->rows()) {
            for (std::size_t g = 0; g < gnames.size(); ++g) {
                JsonValue c =
                    baseEvent("C", gnames[g], 0, row.tick);
                JsonValue cargs = JsonValue::makeObject();
                cargs.set("value", JsonValue(row.gauges[g]));
                c.set("args", std::move(cargs));
                events.push(std::move(c));
            }
        }
    }

    JsonValue doc = JsonValue::makeObject();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", JsonValue("ns"));
    JsonValue other = JsonValue::makeObject();
    other.set("tool", JsonValue("hsc-sim obs"));
    other.set("txnsCompleted", JsonValue(tracer.completed()));
    other.set("spansDropped", JsonValue(tracer.spansDropped()));
    doc.set("otherData", std::move(other));
    return doc;
}

bool
writeChromeTrace(const ObsTracer &tracer, const ObsSampler *sampler,
                 const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    buildChromeTrace(tracer, sampler).write(os);
    os << '\n';
    return bool(os);
}

} // namespace hsc
