#include "obs/tracer.hh"

#include <iomanip>
#include <ostream>

#include "sim/logging.hh"

namespace hsc
{

ObsTracer::ObsTracer(const ObsConfig &cfg)
    : cfg(cfg), ring(cfg.ringEntries)
{
    latencyHist.assign(
        NumObsClasses,
        Histogram(cfg.histBucketCycles, cfg.histBuckets));
    compHist.assign(
        NumObsClasses * NumObsComponents,
        Histogram(cfg.histBucketCycles, cfg.histBuckets));
}

std::uint16_t
ObsTracer::internCtrl(const std::string &name, ObsCtrlKind kind)
{
    auto it = ctrlIndex.find(name);
    if (it != ctrlIndex.end())
        return it->second;
    panic_if(ctrls.size() >= 0xffff, "too many traced controllers");
    std::uint16_t idx = std::uint16_t(ctrls.size());
    ctrls.push_back({name, kind});
    ctrlIndex.emplace(name, idx);
    return idx;
}

const std::string &
ObsTracer::ctrlName(std::uint16_t idx) const
{
    static const std::string unknown = "?";
    return idx < ctrls.size() ? ctrls[idx].name : unknown;
}

ObsCtrlKind
ObsTracer::ctrlKind(std::uint16_t idx) const
{
    return idx < ctrls.size() ? ctrls[idx].kind : ObsCtrlKind::Other;
}

void
ObsTracer::setCyclePeriod(Tick period_ps)
{
    periodPs = period_ps ? period_ps : 1;
}

std::uint64_t
ObsTracer::newTxn(ObsClass cls, std::uint16_t ctrl, Addr addr,
                  Tick now)
{
    if (live >= cfg.maxOpenTxns) {
        ++statTxnsDropped;
        return 0;
    }
    std::uint64_t id = nextId++;
    ++live;
    ++statTxnsStarted;
    SpanEvent ev;
    ev.id = id;
    ev.tick = now;
    ev.addr = addr;
    ev.phase = ObsPhase::Issue;
    ev.cls = cls;
    ev.ctrl = ctrl;
    if (!ring.push(ev)) {
        collect();
        ring.push(ev);
    }
    return id;
}

void
ObsTracer::emit(std::uint64_t id, ObsPhase phase, std::uint16_t ctrl,
                Addr addr, Tick now, std::uint32_t arg)
{
    if (!id)
        return;
    SpanEvent ev;
    ev.id = id;
    ev.tick = now;
    ev.addr = addr;
    ev.phase = phase;
    ev.ctrl = ctrl;
    ev.arg = arg;
    if (!ring.push(ev)) {
        collect();
        ring.push(ev);
    }
}

void
ObsTracer::collect()
{
    ring.drain([this](const SpanEvent &ev) { aggregate(ev); });
    std::uint64_t d = ring.dropped();
    if (d > mirroredRingDrops) {
        statRingDrops += d - mirroredRingDrops;
        mirroredRingDrops = d;
    }
}

void
ObsTracer::aggregate(const SpanEvent &ev)
{
    ++statEvents;
    if (ev.phase == ObsPhase::Issue) {
        OpenTxn &txn = open[ev.id];
        txn.cls = ev.cls;
        txn.origin = ev.ctrl;
        txn.addr = ev.addr;
        txn.start = ev.tick;
        txn.events.push_back(ev);
        return;
    }
    auto it = open.find(ev.id);
    if (it == open.end()) {
        // Late event for an already-completed transaction (e.g. a
        // trailing probe ack after an early response): keep it for
        // trace export, but it no longer affects any breakdown.
        ++statLateEvents;
        if (cfg.keepSpans && stray.size() < cfg.maxKeptSpans)
            stray.push_back(ev);
        return;
    }
    it->second.events.push_back(ev);
    if (ev.phase == ObsPhase::Complete) {
        finish(it->second, ev);
        open.erase(it);
    }
}

void
ObsTracer::finish(OpenTxn &txn, const SpanEvent &complete_ev)
{
    FinishedSpan span;
    span.id = complete_ev.id;
    span.cls = txn.cls;
    span.origin = txn.origin;
    span.addr = txn.addr;
    span.start = txn.start;
    span.end = complete_ev.tick;

    // Replay the transaction's events in arrival order (the event
    // queue delivers them in tick order) and charge each interval to
    // the component the transaction was waiting on at that point.
    bool dispatched = false;
    bool responded = false;
    bool backing = false;
    std::uint64_t probes_out = 0;
    std::uint64_t acks_in = 0;
    Tick prev = txn.start;
    for (const SpanEvent &ev : txn.events) {
        Tick t = ev.tick < prev ? prev : ev.tick;
        ObsComponent c = ObsComponent::Queue;
        if (responded)
            c = ObsComponent::Delivery;
        else if (backing)
            c = ObsComponent::Backing;
        else if (probes_out > acks_in)
            c = ObsComponent::ProbeRtt;
        else if (dispatched)
            c = ObsComponent::DirService;
        span.comp[std::size_t(c)] += t - prev;
        prev = t;
        switch (ev.phase) {
          case ObsPhase::DirDispatch: dispatched = true; break;
          case ObsPhase::ProbesOut: probes_out += ev.arg; break;
          case ObsPhase::ProbeAck: ++acks_in; break;
          case ObsPhase::BackingRead: backing = true; break;
          case ObsPhase::BackingData: backing = false; break;
          case ObsPhase::Respond: responded = true; break;
          default: break;
        }
    }

    std::size_t cls = std::size_t(txn.cls);
    latencyHist[cls].sample((span.end - span.start) / periodPs);
    for (std::size_t c = 0; c < NumObsComponents; ++c)
        compHist[cls * NumObsComponents + c].sample(span.comp[c] /
                                                    periodPs);

    ++statTxnsCompleted;
    --live;
    if (cfg.keepSpans) {
        if (finished.size() < cfg.maxKeptSpans) {
            span.events = std::move(txn.events);
            finished.push_back(std::move(span));
        } else {
            ++statSpansDropped;
        }
    }
}

const Histogram &
ObsTracer::latency(ObsClass cls) const
{
    return latencyHist[std::size_t(cls)];
}

const Histogram &
ObsTracer::component(ObsClass cls, ObsComponent c) const
{
    return compHist[std::size_t(cls) * NumObsComponents +
                    std::size_t(c)];
}

void
ObsTracer::report(std::ostream &os) const
{
    os << "latency breakdown (CPU cycles, means per request class)\n";
    os << std::left << std::setw(11) << "class" << std::right
       << std::setw(9) << "txns" << std::setw(10) << "mean"
       << std::setw(8) << "max";
    for (std::size_t c = 0; c < NumObsComponents; ++c)
        os << std::setw(11) << obsComponentName(ObsComponent(c));
    os << '\n';
    for (std::size_t cls = 0; cls < NumObsClasses; ++cls) {
        const Histogram &h = latencyHist[cls];
        if (!h.samples())
            continue;
        os << std::left << std::setw(11) << obsClassName(ObsClass(cls))
           << std::right << std::setw(9) << h.samples()
           << std::setw(10) << std::fixed << std::setprecision(1)
           << h.mean() << std::setw(8) << h.max();
        for (std::size_t c = 0; c < NumObsComponents; ++c) {
            const Histogram &ch =
                compHist[cls * NumObsComponents + c];
            os << std::setw(11) << std::fixed << std::setprecision(1)
               << ch.mean();
        }
        os << '\n';
    }
    os << "(component means sum to the end-to-end mean per class;"
          " per-transaction sums are exact)\n";
}

void
ObsTracer::regStats(StatRegistry &reg)
{
    reg.addCounter("obs.events", &statEvents);
    reg.addCounter("obs.txnsStarted", &statTxnsStarted);
    reg.addCounter("obs.txnsCompleted", &statTxnsCompleted);
    reg.addCounter("obs.txnsDropped", &statTxnsDropped);
    reg.addCounter("obs.spansDropped", &statSpansDropped);
    reg.addCounter("obs.lateEvents", &statLateEvents);
    reg.addCounter("obs.ringDrops", &statRingDrops);
    for (std::size_t cls = 0; cls < NumObsClasses; ++cls) {
        reg.addHistogram("obs.latency." +
                             std::string(obsClassName(ObsClass(cls))),
                         &latencyHist[cls]);
    }
}

} // namespace hsc
