/**
 * @file
 * Chrome trace-event (Perfetto-loadable) export of collected spans.
 *
 * Produces the JSON object format ({"traceEvents": [...]}) consumed
 * by chrome://tracing and ui.perfetto.dev.  Each traced controller
 * becomes a named thread; every finished transaction becomes an
 * async begin/end ("b"/"e") pair on its originating controller's
 * track (async events tolerate overlapping transactions), with a
 * nested directory-service pair on the directory's track, instant
 * ("i") markers for the intermediate lifecycle points, and counter
 * ("C") tracks from the interval sampler.  Timestamps are
 * microseconds (ticks are picoseconds, so ts = tick / 1e6).
 */

#ifndef HSC_OBS_CHROME_TRACE_HH
#define HSC_OBS_CHROME_TRACE_HH

#include <string>

#include "sim/json.hh"

namespace hsc
{

class ObsTracer;
class ObsSampler;

/** Build the trace document; @p sampler may be null. */
JsonValue buildChromeTrace(const ObsTracer &tracer,
                           const ObsSampler *sampler);

/**
 * Write the trace document to @p path; false on I/O failure.
 * Collect the tracer first (HsaSystem::run does).
 */
bool writeChromeTrace(const ObsTracer &tracer, const ObsSampler *sampler,
                      const std::string &path);

} // namespace hsc

#endif // HSC_OBS_CHROME_TRACE_HH
