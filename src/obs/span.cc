#include "obs/span.hh"

namespace hsc
{

std::string_view
obsPhaseName(ObsPhase p)
{
    switch (p) {
      case ObsPhase::Issue: return "Issue";
      case ObsPhase::Inject: return "Inject";
      case ObsPhase::LocalHit: return "LocalHit";
      case ObsPhase::Merge: return "Merge";
      case ObsPhase::DirDispatch: return "DirDispatch";
      case ObsPhase::ProbesOut: return "ProbesOut";
      case ObsPhase::ProbeAck: return "ProbeAck";
      case ObsPhase::ProbeIn: return "ProbeIn";
      case ObsPhase::BackingRead: return "BackingRead";
      case ObsPhase::BackingData: return "BackingData";
      case ObsPhase::Respond: return "Respond";
      case ObsPhase::Retire: return "Retire";
      case ObsPhase::Complete: return "Complete";
      case ObsPhase::LinkRetransmit: return "LinkRetransmit";
      case ObsPhase::LinkAcked: return "LinkAcked";
      case ObsPhase::LinkDupDrop: return "LinkDupDrop";
      case ObsPhase::LinkCorruptDrop: return "LinkCorruptDrop";
      case ObsPhase::EccCorrected: return "EccCorrected";
      case ObsPhase::LinePoisoned: return "LinePoisoned";
      case ObsPhase::PoisonConsumed: return "PoisonConsumed";
      case ObsPhase::ScrubRepair: return "ScrubRepair";
    }
    return "?";
}

std::string_view
obsClassName(ObsClass c)
{
    switch (c) {
      case ObsClass::CpuRead: return "CpuRead";
      case ObsClass::CpuWrite: return "CpuWrite";
      case ObsClass::CpuIfetch: return "CpuIfetch";
      case ObsClass::GpuRead: return "GpuRead";
      case ObsClass::GpuWrite: return "GpuWrite";
      case ObsClass::GpuAtomic: return "GpuAtomic";
      case ObsClass::GpuIfetch: return "GpuIfetch";
      case ObsClass::GpuFlush: return "GpuFlush";
      case ObsClass::DmaRead: return "DmaRead";
      case ObsClass::DmaWrite: return "DmaWrite";
      case ObsClass::WriteBack: return "WriteBack";
      case ObsClass::NumClasses: break;
    }
    return "?";
}

std::string_view
obsComponentName(ObsComponent c)
{
    switch (c) {
      case ObsComponent::Queue: return "queue";
      case ObsComponent::DirService: return "dirService";
      case ObsComponent::ProbeRtt: return "probeRtt";
      case ObsComponent::Backing: return "backing";
      case ObsComponent::Delivery: return "delivery";
      case ObsComponent::NumComponents: break;
    }
    return "?";
}

std::string_view
obsCtrlKindName(ObsCtrlKind k)
{
    switch (k) {
      case ObsCtrlKind::CorePair: return "corepair";
      case ObsCtrlKind::Dir: return "dir";
      case ObsCtrlKind::Tcc: return "tcc";
      case ObsCtrlKind::Tcp: return "tcp";
      case ObsCtrlKind::Sqc: return "sqc";
      case ObsCtrlKind::Dma: return "dma";
      case ObsCtrlKind::Other: return "other";
      case ObsCtrlKind::NumKinds: break;
    }
    return "?";
}

} // namespace hsc
