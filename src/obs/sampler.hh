/**
 * @file
 * Periodic time-series sampler.
 *
 * Every ObsConfig::samplingInterval CPU cycles, HsaSystem calls
 * sample(): the sampler records gauge values (queue depths, cache
 * occupancies — instantaneous by nature, registered as closures) and
 * the per-interval increment of every StatRegistry counter via
 * snapshotDelta().  Rows are kept in memory and can be written as
 * CSV (hsc_run --stats-interval N --interval-csv out.csv) or folded
 * into the Chrome trace as counter tracks.
 *
 * The sampler is passive: sampling reads state and never mutates the
 * simulation, so its scheduled events (Late priority, driven by
 * HsaSystem) cannot reorder protocol work.
 */

#ifndef HSC_OBS_SAMPLER_HH
#define HSC_OBS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "stats/stats.hh"

namespace hsc
{

class ObsSampler
{
  public:
    /**
     * @param reg Registry whose counters are delta-sampled.
     * @param interval_ticks Sampling period in ticks.
     * @param cycle_period CPU-clock period for the "cycle" column.
     */
    ObsSampler(StatRegistry &reg, Tick interval_ticks,
               Tick cycle_period);

    /** Register an instantaneous gauge (call before first sample). */
    void addGauge(std::string name,
                  std::function<std::uint64_t()> fn);

    /** Record one row at simulated time @p now. */
    void sample(Tick now);

    Tick interval() const { return intervalTicks; }

    struct Row
    {
        Tick tick = 0;
        std::vector<std::uint64_t> gauges;   ///< by gaugeNames order
        std::vector<std::uint64_t> deltas;   ///< by counterNames order
    };

    const std::vector<Row> &rows() const { return samples; }
    const std::vector<std::string> &gaugeNames() const
    {
        return gNames;
    }
    /** Counter column names (fixed at the first sample). */
    const std::vector<std::string> &counterNames() const
    {
        return cNames;
    }

    /** Write the full time series as CSV (header + one row/sample). */
    void writeCsv(std::ostream &os) const;

  private:
    StatRegistry &reg;
    Tick intervalTicks;
    Tick cyclePeriod;
    std::vector<std::string> gNames;
    std::vector<std::function<std::uint64_t()>> gauges;
    std::vector<std::string> cNames;
    StatRegistry::Snapshot baseline;
    std::vector<Row> samples;
};

} // namespace hsc

#endif // HSC_OBS_SAMPLER_HH
