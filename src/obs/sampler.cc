#include "obs/sampler.hh"

namespace hsc
{

ObsSampler::ObsSampler(StatRegistry &reg, Tick interval_ticks,
                       Tick cycle_period)
    : reg(reg), intervalTicks(interval_ticks ? interval_ticks : 1),
      cyclePeriod(cycle_period ? cycle_period : 1)
{
}

void
ObsSampler::addGauge(std::string name,
                     std::function<std::uint64_t()> fn)
{
    gNames.push_back(std::move(name));
    gauges.push_back(std::move(fn));
}

void
ObsSampler::sample(Tick now)
{
    StatRegistry::Snapshot delta = reg.snapshotDelta(baseline);
    if (cNames.empty()) {
        cNames.reserve(delta.size());
        for (const auto &[name, v] : delta)
            cNames.push_back(name);
    }
    Row row;
    row.tick = now;
    row.gauges.reserve(gauges.size());
    for (const auto &fn : gauges)
        row.gauges.push_back(fn());
    row.deltas.reserve(cNames.size());
    for (const std::string &name : cNames) {
        auto it = delta.find(name);
        row.deltas.push_back(it == delta.end() ? 0 : it->second);
    }
    samples.push_back(std::move(row));
}

void
ObsSampler::writeCsv(std::ostream &os) const
{
    os << "tick,cpuCycle";
    for (const std::string &g : gNames)
        os << ',' << g;
    for (const std::string &c : cNames)
        os << ',' << c;
    os << '\n';
    for (const Row &row : samples) {
        os << row.tick << ',' << row.tick / cyclePeriod;
        for (std::uint64_t v : row.gauges)
            os << ',' << v;
        for (std::uint64_t v : row.deltas)
            os << ',' << v;
        os << '\n';
    }
}

} // namespace hsc
