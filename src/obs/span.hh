/**
 * @file
 * Span-event vocabulary of the observability subsystem.
 *
 * A *transaction* is one requester-visible memory-system operation
 * (a CorePair miss, a TCC fill or write-through, a DMA transfer...).
 * Controllers that touch the transaction emit timestamped SpanEvents
 * keyed by a globally unique transaction id carried on messages
 * (Msg::obsId); the ObsTracer orders a transaction's events and
 * attributes every gap between consecutive events to one latency
 * component, so the per-component breakdown sums exactly to the
 * end-to-end (Issue -> Complete) latency.
 */

#ifndef HSC_OBS_SPAN_HH
#define HSC_OBS_SPAN_HH

#include <cstdint>
#include <string_view>

#include "sim/types.hh"

namespace hsc
{

/** Lifecycle points a transaction passes through. */
enum class ObsPhase : std::uint8_t
{
    Issue,        ///< requester created the transaction
    Inject,       ///< request message entered the directory network
    LocalHit,     ///< served by a local cache level, no directory trip
    Merge,        ///< coalesced into an already-outstanding fill
    DirDispatch,  ///< directory began servicing the request
    ProbesOut,    ///< directory sent probes (arg = probe count)
    ProbeAck,     ///< directory received one probe acknowledgment
    ProbeIn,      ///< a cache received a probe of this transaction
    BackingRead,  ///< LLC/DRAM read started
    BackingData,  ///< LLC/DRAM data arrived at the directory
    Respond,      ///< directory answered the requester
    Retire,       ///< directory retired the transaction (TBE freed)
    Complete,     ///< requester observed completion

    // Reliable-transport lifecycle points (DESIGN.md §10).  Emitted
    // between the phases above; the gap-attribution machine treats
    // them as passive markers (they never change the component the
    // interval is charged to).
    LinkRetransmit,   ///< a frame of this txn was retransmitted
    LinkAcked,        ///< frame confirmed by a cumulative ack
    LinkDupDrop,      ///< receiver suppressed a duplicate frame
    LinkCorruptDrop,  ///< checksum-failed frame dropped in flight

    // Storage-fault lifecycle points (DESIGN.md §12), passive markers
    // like the link phases above.
    EccCorrected,     ///< SECDED corrected a single-bit flip on access
    LinePoisoned,     ///< uncorrectable: the line is now poisoned
    PoisonConsumed,   ///< an agent consumed a poisoned line (contained)
    ScrubRepair,      ///< background scrubber repaired a latent flip
};

std::string_view obsPhaseName(ObsPhase p);

/** Request classes the latency histograms are keyed by. */
enum class ObsClass : std::uint8_t
{
    CpuRead,
    CpuWrite,
    CpuIfetch,
    GpuRead,
    GpuWrite,
    GpuAtomic,
    GpuIfetch,
    GpuFlush,
    DmaRead,
    DmaWrite,
    WriteBack,
    NumClasses,
};

std::string_view obsClassName(ObsClass c);

constexpr std::size_t NumObsClasses =
    std::size_t(ObsClass::NumClasses);

/** Latency components the end-to-end time decomposes into. */
enum class ObsComponent : std::uint8_t
{
    Queue,       ///< before the directory dispatched the request
    DirService,  ///< at the directory, no probe/DRAM outstanding
    ProbeRtt,    ///< probes outstanding (and DRAM idle)
    Backing,     ///< LLC/DRAM read outstanding
    Delivery,    ///< response sent, requester not yet complete
    NumComponents,
};

std::string_view obsComponentName(ObsComponent c);

constexpr std::size_t NumObsComponents =
    std::size_t(ObsComponent::NumComponents);

/** Kind of controller an event came from (Chrome trace category). */
enum class ObsCtrlKind : std::uint8_t
{
    CorePair,
    Dir,
    Tcc,
    Tcp,
    Sqc,
    Dma,
    Other,
    NumKinds,
};

std::string_view obsCtrlKindName(ObsCtrlKind k);

/** One timestamped lifecycle event of one transaction. */
struct SpanEvent
{
    std::uint64_t id = 0;  ///< transaction id (Msg::obsId); never 0
    Tick tick = 0;
    Addr addr = 0;
    ObsPhase phase = ObsPhase::Issue;
    ObsClass cls = ObsClass::CpuRead;  ///< meaningful on Issue only
    std::uint16_t ctrl = 0;            ///< interned controller index
    std::uint32_t arg = 0;             ///< ProbesOut: number of probes
};

} // namespace hsc

#endif // HSC_OBS_SPAN_HH
