/**
 * @file
 * Coherence message vocabulary of the heterogeneous system.
 *
 * The request types mirror §II-A of the paper: the directory receives
 * RdBlk / RdBlkS / RdBlkM / VicDirty / VicClean from CorePair L2s;
 * RdBlk / Atomic / WriteThrough / Flush from the TCC; and DMARead /
 * DMAWrite from the DMA engine.  Probes are invalidating or
 * downgrading; responses carry data and a granted state.
 */

#ifndef HSC_MEM_MESSAGE_HH
#define HSC_MEM_MESSAGE_HH

#include <cstdint>
#include <string_view>

#include "mem/data_block.hh"
#include "sim/types.hh"

namespace hsc
{

/** Every message type exchanged in the memory system. */
enum class MsgType : std::uint8_t
{
    // CorePair L2 -> directory (§II-A).
    RdBlk,          ///< read; may be granted Shared or Exclusive
    RdBlkS,         ///< read, specifically Shared (I-cache misses)
    RdBlkM,         ///< write permission
    VicDirty,       ///< dirty victim write-back
    VicClean,       ///< clean victim write-back (noisy evictions)

    // TCC -> directory (§II-A).
    TccRdBlk,       ///< GPU read; Exclusive grant is ignored by TCC
    Atomic,         ///< system-scope atomic executed at the directory
    WriteThrough,   ///< system-visible write / TCC write-back
    Flush,          ///< store-release flush orchestrated by the TCC

    // DMA engine -> directory (§II-E).
    DmaRead,
    DmaWrite,

    // Directory -> caches.
    PrbInv,         ///< invalidating probe
    PrbDowngrade,   ///< downgrading probe

    // Caches -> directory.
    PrbResp,        ///< probe acknowledgment, possibly with dirty data

    // Directory -> requester.
    SysResp,        ///< data/permission response
    WBAck,          ///< victim write-back acknowledgment
    AtomicResp,     ///< atomic result (old value)
    DmaResp,        ///< DMA completion

    // Requester -> directory.
    Unblock,        ///< ends the transaction; line returns to U
};

/** Human-readable message-type name. */
std::string_view msgTypeName(MsgType t);

/** True for the write-permission requests that broadcast PrbInv. */
constexpr bool
isWritePermission(MsgType t)
{
    return t == MsgType::RdBlkM || t == MsgType::WriteThrough ||
           t == MsgType::Flush || t == MsgType::Atomic ||
           t == MsgType::DmaWrite;
}

/** True for requests that trigger downgrade probes in the baseline. */
constexpr bool
isReadPermission(MsgType t)
{
    return t == MsgType::RdBlk || t == MsgType::RdBlkS ||
           t == MsgType::TccRdBlk || t == MsgType::DmaRead;
}

/** Coherence permission granted by a SysResp. */
enum class Grant : std::uint8_t
{
    None,
    Shared,
    Exclusive,
    Modified,
};

std::string_view grantName(Grant g);

/** Read-modify-write operators supported by Atomic requests. */
enum class AtomicOp : std::uint8_t
{
    None,
    Add,
    Exch,
    Cas,
    Min,
    Max,
    Or,
    And,
    Load,   ///< atomic load (bypassing) — used for scoped spin waits
};

std::string_view atomicOpName(AtomicOp op);

/**
 * Apply @p op to @p old_val; returns the new value to store.
 * For Load the stored value is unchanged.
 */
std::uint64_t applyAtomic(AtomicOp op, std::uint64_t old_val,
                          std::uint64_t operand, std::uint64_t operand2);

/**
 * One memory-system message.  A single concrete struct (rather than a
 * virtual hierarchy) keeps buffers value-typed and simulation
 * deterministic.
 */
struct Msg
{
    MsgType type = MsgType::RdBlk;
    Addr addr = 0;                       ///< block-aligned address
    MachineId sender = InvalidMachineId;
    MachineId dest = InvalidMachineId;
    std::uint64_t txnId = 0;             ///< directory transaction tag

    /** Observability transaction id (src/obs): globally unique per
     *  requester-visible operation, carried on the request and echoed
     *  on probes/responses so every controller can attach its span
     *  events to the right transaction.  0 = untraced (obs off, or a
     *  directory-internal transaction such as a back-invalidation);
     *  never affects protocol behaviour or timing. */
    std::uint64_t obsId = 0;

    Grant grant = Grant::None;           ///< for SysResp

    bool hasData = false;
    bool dirty = false;    ///< probe resp carried modified data
    bool hit = false;      ///< probe resp: responder held a valid copy
    /** Probe resp: the data came from a pending write-back that this
     *  (invalidating) probe cancelled; the directory must drop the
     *  in-flight victim message. */
    bool cancelledVic = false;
    DataBlock data;
    ByteMask mask = FullMask;            ///< partial write-through mask

    /** Directory-internal: all-ways-transacting retry count of this
     *  request (set-conflict livelock detection, not on the wire). */
    unsigned dirRetries = 0;

    /** @{ Reliable-transport wire header (DESIGN.md §10).  Stamped by
     *  LinkTransport at transmit time and consumed at the receiving
     *  end of the link; all three stay 0 when the transport layer is
     *  disabled, so the legacy delivery path is bit-identical.
     *  tpSeq is the 1-based per-link sequence number (0 = not a
     *  transport frame / pure-ack frame), tpAck the piggybacked
     *  cumulative ack for the reverse link, tpChecksum an FNV-1a
     *  checksum over the semantic fields + tpSeq/tpAck. */
    std::uint64_t tpSeq = 0;
    std::uint64_t tpAck = 0;
    std::uint32_t tpChecksum = 0;
    /** @} */

    // Atomic payload (offset/size select the word within the block).
    AtomicOp atomicOp = AtomicOp::None;
    unsigned atomicOffset = 0;
    unsigned atomicSize = 8;
    std::uint64_t atomicOperand = 0;
    std::uint64_t atomicOperand2 = 0;
    std::uint64_t atomicResult = 0;      ///< old value, in AtomicResp
};

} // namespace hsc

#endif // HSC_MEM_MESSAGE_HH
