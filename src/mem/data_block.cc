#include "mem/data_block.hh"
