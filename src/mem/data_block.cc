#include "mem/data_block.hh"

#include <string>

#include "sim/sim_error.hh"

namespace hsc
{

namespace
{
constexpr char HexDigits[] = "0123456789abcdef";

int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}
} // namespace

std::string
blockToHex(const DataBlock &b)
{
    std::string s(2 * BlockSizeBytes, '0');
    const std::uint8_t *p = b.raw();
    for (unsigned i = 0; i < BlockSizeBytes; ++i) {
        s[2 * i] = HexDigits[p[i] >> 4];
        s[2 * i + 1] = HexDigits[p[i] & 0xf];
    }
    if (b.poisoned())
        s.push_back('p');
    return s;
}

DataBlock
blockFromHex(const std::string &hex)
{
    bool poisoned = hex.size() == 2 * BlockSizeBytes + 1 &&
                    hex.back() == 'p';
    if (hex.size() != 2 * BlockSizeBytes && !poisoned)
        throw SimError("block hex string has length " +
                           std::to_string(hex.size()) + ", expected " +
                           std::to_string(2 * BlockSizeBytes),
                       "snapshot");
    DataBlock b;
    std::uint8_t *p = b.raw();
    for (unsigned i = 0; i < BlockSizeBytes; ++i) {
        int hi = hexVal(hex[2 * i]);
        int lo = hexVal(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            throw SimError("block hex string has a non-hex digit",
                           "snapshot");
        p[i] = std::uint8_t((hi << 4) | lo);
    }
    b.setPoisoned(poisoned);
    return b;
}

} // namespace hsc
