/**
 * @file
 * Reliable link transport — recovery beneath the virtual networks.
 *
 * A LinkTransport sits between MessageBuffer::enqueue and the wire,
 * turning a lossy link (FaultInjector drop/duplicate/corrupt modes,
 * dead links) back into the exactly-once in-order delivery contract
 * every controller handler is written against (DESIGN.md §10):
 *
 *  - every data frame carries a 1-based per-link sequence number
 *    (Msg::tpSeq), a piggybacked cumulative ack for the reverse link
 *    (Msg::tpAck) and an FNV-1a checksum (Msg::tpChecksum);
 *  - the receiver verifies the checksum (corrupt frames are dropped
 *    and recovered like losses), suppresses duplicates, parks
 *    out-of-order arrivals in a reorder buffer and delivers strictly
 *    in sequence order — so the consumer sees exactly-once FIFO
 *    delivery no matter what the wire did;
 *  - acks are cumulative: piggybacked on reverse-direction data
 *    frames when there are any, otherwise flushed by a delayed
 *    standalone ack frame (tpSeq == 0, never delivered to the
 *    consumer);
 *  - the sender keeps unacked frames in a FIFO window and, on a
 *    timeout, retransmits the *oldest* unacked frame with exponential
 *    backoff; cumulative acks after the retransmission confirm the
 *    whole window, so one loss costs one retransmission;
 *  - a frame that exhausts its retry budget marks the link degraded:
 *    timers stop, the system is notified (HsaSystem turns this into a
 *    structured DegradedReport and a clean failing run()) — never a
 *    silent hang.
 *
 * When the transport is disabled MessageBuffer keeps its legacy
 * delivery path untouched and every wire-header field stays zero, so
 * runs are bit-identical (asserted by bench/kernel_identity and
 * bench/recovery_overhead).  On a fault-free run the transport adds
 * zero retransmissions, zero duplicate drops and identical delivery
 * ticks — only ack bookkeeping events ride along.
 */

#ifndef HSC_MEM_TRANSPORT_HH
#define HSC_MEM_TRANSPORT_HH

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "mem/message.hh"
#include "mem/message_buffer.hh"
#include "sim/pool_alloc.hh"
#include "sim/ring_buffer.hh"
#include "stats/stats.hh"

namespace hsc
{

class JsonValue;
class MessageBuffer;
class ObsTracer;

/** Reliable-transport knobs (SystemConfig::transport). */
struct TransportConfig
{
    /** Master switch; off = legacy delivery path, bit-identical. */
    bool enabled = false;

    /** Base retransmission timeout, in CPU cycles.  Should comfortably
     *  exceed one link round trip (2 * linkLatency + ackDelay). */
    Cycles timeoutCycles = 400;

    /** Exponential backoff cap: the k-th retry waits
     *  timeoutCycles << min(k, backoffShiftCap). */
    unsigned backoffShiftCap = 6;

    /** Retransmissions of a single frame before the link is declared
     *  degraded.  With the defaults a dead link degrades after
     *  ~400 * (1+2+4+...+64 + 10*64) ≈ 300k cycles — an order of
     *  magnitude before the default 3M-cycle watchdog. */
    unsigned retryBudget = 16;

    /** Delayed-ack coalescing window, in CPU cycles. */
    Cycles ackDelayCycles = 16;

    /** Safety valve: receiver reorder-buffer bound (frames parked
     *  waiting for a gap).  Exceeding it is a SimError, not silent
     *  unbounded growth. */
    std::size_t maxReorder = 65536;
};

/**
 * FNV-1a checksum over a frame's semantic fields plus its wire
 * header (tpSeq/tpAck), excluding tpChecksum itself.  Data bytes are
 * included only when hasData is set.
 */
std::uint32_t msgChecksum(const Msg &m);

/** One degraded link in a DegradedReport. */
struct DegradedLinkInfo
{
    std::string link;          ///< link name
    std::uint64_t headSeq = 0; ///< sequence number that exhausted retries
    unsigned retries = 0;      ///< retransmissions spent on it
    std::size_t unacked = 0;   ///< frames stranded in the send window
    Tick firstSendTick = 0;    ///< when the head frame was first sent
    Tick atTick = 0;           ///< when the link degraded
    /** Sending shard under PDES; ~0u (not printed) sequentially. */
    unsigned shard = ~0u;
};

/**
 * Structured escalation of retry-budget exhaustion: the transport
 * analogue of HangReport/ViolationReport, surfaced through
 * HsaSystem::failReason() after a failing run().
 */
struct DegradedReport
{
    Tick atTick = 0;
    std::vector<DegradedLinkInfo> links;

    /** Tick of the most recent successful checkpoint (0 = none) —
     *  tells the operator how much work a restore would replay. */
    Tick lastCheckpointTick = 0;

    /** Per-controller progress counters ("name: N msgs in / M txns"),
     *  so a degradation report shows who was still making headway. */
    std::vector<std::string> progressSummaries;

    /** Per-shard progress lines ("shard S: tick T, N events") — PDES
     *  runs only, so sequential report text never changes. */
    std::vector<std::string> shardProgress;

    bool degraded() const { return !links.empty(); }

    /** One-line summary (failReason). */
    std::string brief() const;

    /** Multi-line report for the CLI. */
    void print(std::ostream &os) const;
};

/**
 * Per-link controller-ingress guard: controllers re-check at their
 * handler boundary that the transport really delivered each wire
 * sequence number at most once (belt and braces over the transport's
 * own dedup — with the transport healthy the counter stays 0, and
 * tests assert exactly that).  Messages with tpSeq == 0 (transport
 * off) always pass.
 */
struct IngressDedup
{
    std::uint64_t lastSeq = 0;

    /** True when @p m should be processed; false = duplicate. */
    bool
    accept(const Msg &m, Counter &dups)
    {
        if (m.tpSeq == 0)
            return true;
        if (m.tpSeq <= lastSeq) {
            ++dups;
            return false;
        }
        lastSeq = m.tpSeq;
        return true;
    }
};

/**
 * Bind @p handler as @p buf's consumer — wrapped in a fresh per-link
 * IngressDedup guard when the transport is enabled on the link.  The
 * controller supplies the guard storage (pointer-stable), its shared
 * duplicate counter and a flag regStats uses to gate registration
 * (so legacy-run stat snapshots never change).
 */
template <typename Handler>
void
bindGuardedConsumer(MessageBuffer &buf,
                    std::vector<std::unique_ptr<IngressDedup>> &guards,
                    Counter &dups, bool &guarded, Handler handler)
{
    if (!buf.transportEnabled()) {
        buf.setConsumer(std::move(handler));
        return;
    }
    guarded = true;
    guards.push_back(std::make_unique<IngressDedup>());
    IngressDedup *g = guards.back().get();
    buf.setConsumer(
        [g, &dups, handler = std::move(handler)](Msg &&m) mutable {
            if (!g->accept(m, dups))
                return;
            handler(std::move(m));
        });
}

/**
 * The reliable-transport state machine of one direction of a link
 * pair.  Owns the sender window for its own MessageBuffer and the
 * receiver state for frames arriving on it; acks for received frames
 * travel on the paired reverse-direction transport.
 */
class LinkTransport
{
  public:
    /**
     * @param link The MessageBuffer this transport carries.
     * @param cfg Transport knobs.
     * @param cycle_period Ticks per CPU cycle (timeout conversion).
     */
    LinkTransport(MessageBuffer &link, const TransportConfig &cfg,
                  Tick cycle_period);

    /**
     * Pair with the reverse-direction transport.  Required before the
     * first send: acks travel on the reverse link.
     */
    void pairWith(LinkTransport *reverse) { peer = reverse; }

    /** Invoked once when the link degrades (retry budget exhausted). */
    void setOnDegraded(std::function<void()> cb)
    {
        onDegraded = std::move(cb);
    }

    /** Attach the observability tracer (retry/ack spans). */
    void attachTracer(ObsTracer *t, std::uint16_t ctrl_id)
    {
        tracer = t;
        obsCtrl = ctrl_id;
    }

    /** Entry point from MessageBuffer::enqueue. */
    void send(Msg msg);

    /**
     * PDES binding (MessageBuffer::bindCrossShard delegates here when
     * the transport is enabled).  The whole sender half — window,
     * retransmit timer, wire-fate draws — runs on @p from_shard, whose
     * calendar it reads through senderEq(); wire copies cross to
     * @p to_shard through a timestamped ring drained at window tops,
     * where the receiver half (dedup, reorder, delivery, ack timer)
     * lives.  Call after pairWith()/attachFaultInjector: the reverse
     * transport's receiver state (peer->recvCum etc.) is co-located on
     * this sender's shard by construction, so the piggyback accesses
     * in transmit() stay shard-local.
     */
    void bindCrossShard(ShardGroup &group, unsigned from_shard,
                        unsigned to_shard);

    /** Register the retransmission stat group with @p reg. */
    void regStats(StatRegistry &reg);

    /** @{ Introspection. */
    bool isDegraded() const { return degraded_; }
    DegradedLinkInfo degradedInfo() const { return degradedAt; }
    std::size_t unackedCount() const { return sendQ.size(); }
    Tick oldestUnackedAge(Tick now) const;
    std::uint64_t retransmitCount() const { return statRetx.value(); }
    std::uint64_t dupDropCount() const { return statDupDrop.value(); }
    std::uint64_t corruptDropCount() const
    {
        return statCorruptDrop.value();
    }
    std::uint64_t wireDropCount() const { return statWireDrop.value(); }
    std::uint64_t ackFrameCount() const { return statAckFrames.value(); }
    /** @} */

    /** @{ Snapshot hooks.  A transport only serializes its sequence
     *  cursors: checkpoints are taken at quiesce, when the window is
     *  fully acked, no frames are parked out of order, no delayed ack
     *  is owed AND both timers are disarmed (idle()), so
     *  {nextSeq, recvCum} is the complete persistent state.  The timer
     *  flags matter: an armed-but-stale timer event surviving the
     *  snapshot in the live run would absorb a post-checkpoint
     *  scheduleAckFlush()/armRetxTimer() and fire at the *old*
     *  deadline, while the restored run (flags cleared) arms a fresh
     *  one — shifting ack ticks and every wire-fate draw after them.
     *  Requiring disarmed timers lets the drain run those events out
     *  (they no-op once the queues are empty), so live and restored
     *  state agree exactly. */
    bool
    idle() const
    {
        return sendQ.empty() && reorder.empty() && !ackPending &&
               !reAck && !retxArmed && !ackTimerArmed;
    }
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    /** One unacked frame in the sender window (front = oldest). */
    struct Unacked
    {
        std::uint64_t seq = 0;
        Msg msg;
        Tick firstSend = 0;
        Tick lastSend = 0;
        unsigned retries = 0;
    };

    /** Stamp header, draw the wire fate, schedule arrival(s). */
    void transmit(Msg frame, bool retransmission);
    /** Put one wire copy of @p frame on the calendar. */
    void scheduleArrival(const Msg &frame, Tick extra);
    /** Receiving end: checksum, acks, dedup, reorder, deliver. */
    void onArrival(Msg &&m);
    /** Deliver in-sequence frames (advances recvCum). */
    void deliverReady();
    /** Cumulative ack from the reverse direction. */
    void onAckReceived(std::uint64_t cum);
    /** Send a standalone ack frame for the *reverse* link's receiver. */
    void transmitAckFrame(std::uint64_t cum);

    void armRetxTimer();
    void onRetxTimer();
    Tick frontDeadline() const;
    void scheduleAckFlush();
    void onAckTimer();
    void degrade();

    /** The calendar the sender half runs on: the sending shard's
     *  under PDES, the link's own (receiver == sender) sequentially. */
    EventQueue &senderEq() { return srcEq ? *srcEq : link.eq; }

    /** One wire frame crossing shards, stamped with its arrival tick
     *  (sender tick + link latency + fault delay, clamped monotone). */
    struct TimedFrame
    {
        Tick when = 0;
        Msg msg;
    };

    /**
     * The PDES wire: sender pushes timed frames, the receiving shard
     * drains those below the window bound and schedules onArrival at
     * the recorded tick on its own calendar.  Frames are parked in a
     * receiver-side buffer between drain and delivery so the event
     * closure stays within the calendar's inline budget.
     */
    class WireChannel : public ShardChannel
    {
      public:
        explicit WireChannel(LinkTransport &tp) : tp(tp), ring(Capacity)
        {
        }

        void push(Tick when, Msg &&m);
        void drain(Tick bound) override;
        bool empty() const override { return ring.empty(); }
        Tick earliestArrival() const override;

      private:
        static constexpr std::size_t Capacity = 512;

        LinkTransport &tp;
        SpscRing<TimedFrame> ring;
        /** Receiver-side: frames drained but not yet delivered. */
        RingBuf<Msg> park;
    };

    MessageBuffer &link;
    const TransportConfig cfg;
    const Tick period;
    const Tick timeoutTicks;
    const Tick ackDelayTicks;
    LinkTransport *peer = nullptr;
    std::function<void()> onDegraded;
    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    /** @{ Sender state. */
    std::uint64_t nextSeq = 1;
    RingBuf<Unacked> sendQ;
    bool retxArmed = false;
    bool degraded_ = false;
    DegradedLinkInfo degradedAt;
    /** @} */

    /** @{ Receiver state. */
    std::uint64_t recvCum = 0;   ///< highest in-order seq delivered
    PoolUMap<std::uint64_t, Msg> reorder; ///< parked out-of-order frames
    bool ackTimerArmed = false;
    bool ackPending = false;  ///< recvCum advanced since last ack
    bool reAck = false;       ///< duplicate seen: force an ack resend
    /** @} */

    /** Frames in flight on the wire (events capture pool pointers,
     *  never whole Msgs — the callback budget is 128 bytes). */
    PoolAllocator<Msg> wirePool;

    /** @{ PDES state (null/idle sequentially — zero behavior change). */
    EventQueue *srcEq = nullptr;        ///< sending shard's calendar
    unsigned sendShard = ~0u;           ///< for DegradedLinkInfo
    Tick wireClamp = 0;                 ///< monotone ring timestamps
    std::unique_ptr<WireChannel> wire;  ///< cross-shard wire ring
    /** @} */

    /** @{ Retransmission stat group (registered only when the
     *  transport is enabled, so stat hashes of legacy runs never
     *  change). */
    Counter statDataFrames;   ///< first transmissions
    Counter statRetx;         ///< timeout retransmissions
    Counter statAckFrames;    ///< standalone ack frames sent
    Counter statAcked;        ///< frames confirmed by cumulative acks
    Counter statDupDrop;      ///< receiver duplicate suppressions
    Counter statReordered;    ///< frames parked out-of-order
    Counter statCorruptDrop;  ///< checksum-failed frames dropped
    Counter statWireDrop;     ///< frames the injector lost
    /** @} */
};

} // namespace hsc

#endif // HSC_MEM_TRANSPORT_HH
