#include "mem/main_memory.hh"

#include <algorithm>
#include <vector>

#include "mem/storage_fault.hh"
#include "sim/json.hh"

namespace hsc
{

Tick
MainMemory::channelFreeAt(Tick now)
{
    Tick start = std::max(now, nextFree);
    nextFree = start + servicePeriod;
    return start;
}

void
MainMemory::read(Addr addr, ReadCallback cb)
{
    ++numReads;
    Addr base = blockAlign(addr);
    Tick start = channelFreeAt(curTick());
    // progress-tagged: an outstanding DRAM read is in-flight work the
    // snapshot drain must wait out (EventQueue::progressPending).
    eq.schedule(start + latency,
                [this, base, cb = std::move(cb)]() {
                    eq.notifyProgress();
                    if (storage) {
                        // Faults live in the cells: materialize the
                        // sparse entry so a flip persists at rest.
                        storage->access(storageArrayId, base,
                                        store[base], curTick());
                    }
                    cb(functionalRead(base));
                },
                EventPriority::Default, /*progress=*/true);
}

void
MainMemory::write(Addr addr, const DataBlock &data, ByteMask mask)
{
    ++numWrites;
    // Writes are non-blocking: the data is merged functionally now (the
    // directory guarantees ordering) and only the channel occupancy is
    // modelled.
    channelFreeAt(curTick());
    if (storage && mask == FullMask)
        storage->noteFullOverwrite(storageArrayId, blockAlign(addr));
    functionalWrite(blockAlign(addr), data, mask);
}

DataBlock
MainMemory::functionalRead(Addr addr) const
{
    auto it = store.find(blockAlign(addr));
    return it == store.end() ? DataBlock() : it->second;
}

void
MainMemory::functionalWrite(Addr addr, const DataBlock &data, ByteMask mask)
{
    DataBlock &blk = store[blockAlign(addr)];
    blk.merge(data, mask);
}

void
MainMemory::serialize(JsonValue &out) const
{
    out.set("nextFree", JsonValue(nextFree));
    std::vector<Addr> addrs;
    addrs.reserve(store.size());
    for (const auto &kv : store)
        addrs.push_back(kv.first);
    std::sort(addrs.begin(), addrs.end());
    JsonValue blocks = JsonValue::makeArray();
    for (Addr a : addrs) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(a));
        row.push(JsonValue(blockToHex(store.at(a))));
        blocks.push(std::move(row));
    }
    out.set("blocks", std::move(blocks));
}

void
MainMemory::restore(const JsonValue &in)
{
    nextFree = in.at("nextFree").asUInt();
    store.clear();
    for (const JsonValue &row : in.at("blocks").items()) {
        Addr a = row.items().at(0).asUInt();
        store[blockAlign(a)] = blockFromHex(row.items().at(1).asString());
    }
}

} // namespace hsc
