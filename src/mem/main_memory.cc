#include "mem/main_memory.hh"

namespace hsc
{

Tick
MainMemory::channelFreeAt(Tick now)
{
    Tick start = std::max(now, nextFree);
    nextFree = start + servicePeriod;
    return start;
}

void
MainMemory::read(Addr addr, ReadCallback cb)
{
    ++numReads;
    Addr base = blockAlign(addr);
    Tick start = channelFreeAt(curTick());
    eq.schedule(start + latency, [this, base, cb = std::move(cb)]() {
        eq.notifyProgress();
        cb(functionalRead(base));
    });
}

void
MainMemory::write(Addr addr, const DataBlock &data, ByteMask mask)
{
    ++numWrites;
    // Writes are non-blocking: the data is merged functionally now (the
    // directory guarantees ordering) and only the channel occupancy is
    // modelled.
    channelFreeAt(curTick());
    functionalWrite(blockAlign(addr), data, mask);
}

DataBlock
MainMemory::functionalRead(Addr addr) const
{
    auto it = store.find(blockAlign(addr));
    return it == store.end() ? DataBlock() : it->second;
}

void
MainMemory::functionalWrite(Addr addr, const DataBlock &data, ByteMask mask)
{
    DataBlock &blk = store[blockAlign(addr)];
    blk.merge(data, mask);
}

} // namespace hsc
