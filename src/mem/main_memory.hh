/**
 * @file
 * Fixed-latency main-memory model with an ordered interface.
 *
 * The paper notes that the only interface from the LLC to the memory
 * (through the directory) is ordered and that write-backs are
 * non-blocking (§III-C); this model reproduces both properties: reads
 * get a response callback after queueing + access latency, writes are
 * fire-and-forget, and a service period serialises accesses.
 *
 * The number of reads and writes observed here is the Fig. 5 metric
 * ("memory reads and writes from the directory").
 */

#ifndef HSC_MEM_MAIN_MEMORY_HH
#define HSC_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mem/data_block.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"

namespace hsc
{

class JsonValue;
class StorageFaultInjector;

/**
 * Sparse functional DRAM with timing.
 */
class MainMemory : public SimObject
{
  public:
    using ReadCallback = std::function<void(const DataBlock &)>;

    /**
     * @param latency Access latency in ticks.
     * @param service_period Minimum spacing between accesses (ticks),
     *        modelling channel bandwidth.
     */
    MainMemory(std::string name, EventQueue &eq, Tick latency,
               Tick service_period)
        : SimObject(std::move(name), eq), latency(latency),
          servicePeriod(service_period)
    {}

    /** Timed read; @p cb fires with the block data after the latency. */
    void read(Addr addr, ReadCallback cb);

    /** DRAM cells are a protected array: timed reads pass through the
     *  storage-fault injector (functional reads never do). */
    void
    attachStorageFault(StorageFaultInjector *s, unsigned array_id)
    {
        storage = s;
        storageArrayId = array_id;
    }

    /** Timed, non-blocking write of the bytes selected by @p mask. */
    void write(Addr addr, const DataBlock &data, ByteMask mask = FullMask);

    /** @{ Functional (zero-time) access for setup and verification. */
    DataBlock functionalRead(Addr addr) const;
    void functionalWrite(Addr addr, const DataBlock &data,
                         ByteMask mask = FullMask);

    template <typename T>
    T
    functionalReadWord(Addr addr) const
    {
        return functionalRead(blockAlign(addr))
            .template get<T>(blockOffset(addr));
    }

    template <typename T>
    void
    functionalWriteWord(Addr addr, T v)
    {
        Addr base = blockAlign(addr);
        DataBlock blk = functionalRead(base);
        blk.set(blockOffset(addr), v);
        functionalWrite(base, blk);
    }
    /** @} */

    void
    regStats(StatRegistry &reg)
    {
        reg.addCounter(name() + ".reads", &numReads);
        reg.addCounter(name() + ".writes", &numWrites);
    }

    std::uint64_t reads() const { return numReads.value(); }
    std::uint64_t writes() const { return numWrites.value(); }

    /** @{ Snapshot hooks: the sparse image (sorted by address for a
     *  canonical encoding) plus the channel cursor. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    /** Next tick the (ordered) channel is free. */
    Tick channelFreeAt(Tick now);

    Tick latency;
    Tick servicePeriod;
    Tick nextFree = 0;

    std::unordered_map<Addr, DataBlock> store;

    StorageFaultInjector *storage = nullptr;
    unsigned storageArrayId = 0;

    Counter numReads;
    Counter numWrites;
};

} // namespace hsc

#endif // HSC_MEM_MAIN_MEMORY_HH
