/**
 * @file
 * A 64-byte cache block with functional data and byte-mask merging.
 *
 * Functional data is carried end to end so workload synchronisation
 * (flags, atomics, task queues) is real: a protocol bug that loses or
 * stales data breaks workload verification.
 */

#ifndef HSC_MEM_DATA_BLOCK_HH
#define HSC_MEM_DATA_BLOCK_HH

#include <array>
#include <cstdint>
#include <cstring>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace hsc
{

/** Cache block size in bytes, shared by L2 and LLC per §III-C. */
constexpr unsigned BlockSizeBytes = 64;
constexpr unsigned BlockShift = 6;

/** Align @p a down to its containing block. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~Addr(BlockSizeBytes - 1);
}

/** Byte offset of @p a within its block. */
constexpr unsigned
blockOffset(Addr a)
{
    return static_cast<unsigned>(a & (BlockSizeBytes - 1));
}

/** One bit per byte of a block; bit i covers byte i. */
using ByteMask = std::uint64_t;

/** Mask covering @p size bytes starting at block offset @p offset. */
constexpr ByteMask
makeMask(unsigned offset, unsigned size)
{
    ByteMask m = (size >= 64) ? ~ByteMask(0)
                              : ((ByteMask(1) << size) - 1);
    return m << offset;
}

constexpr ByteMask FullMask = ~ByteMask(0);

/**
 * 64 bytes of functional data, plus a machine-check-style poison bit.
 *
 * The poison bit marks data an ECC uncorrectable has corrupted
 * (DESIGN.md §12).  It rides along on every block copy — writebacks,
 * probe responses, DMA transfers, link frames — so containment can
 * fire at the *consumption* point rather than where the flip landed.
 * Equality stays bytes-only: poison is metadata about the bytes, not
 * part of the value.
 */
class DataBlock
{
  public:
    DataBlock() { bytes.fill(0); }

    /** Read an unsigned integer of @p Size bytes at @p offset. */
    template <typename T>
    T
    get(unsigned offset) const
    {
        panic_if(offset + sizeof(T) > BlockSizeBytes,
                 "DataBlock read beyond block (off=%u)", offset);
        T v;
        std::memcpy(&v, bytes.data() + offset, sizeof(T));
        return v;
    }

    /** Write an unsigned integer at @p offset. */
    template <typename T>
    void
    set(unsigned offset, T v)
    {
        panic_if(offset + sizeof(T) > BlockSizeBytes,
                 "DataBlock write beyond block (off=%u)", offset);
        std::memcpy(bytes.data() + offset, &v, sizeof(T));
    }

    /** Copy bytes of @p other selected by @p mask into this block.
     *  A full-mask merge rewrites the whole line, so it *replaces*
     *  the poison bit; a partial merge can only contaminate. */
    void
    merge(const DataBlock &other, ByteMask mask)
    {
        if (mask == FullMask) {
            bytes = other.bytes;
            poison = other.poison;
            return;
        }
        if (mask == 0)
            return; // no bytes move, so no poison can move either
        for (unsigned i = 0; i < BlockSizeBytes; ++i) {
            if (mask & (ByteMask(1) << i))
                bytes[i] = other.bytes[i];
        }
        poison = poison || other.poison;
    }

    bool
    operator==(const DataBlock &other) const
    {
        return bytes == other.bytes;
    }

    /** @{ ECC uncorrectable marker (storage-fault model). */
    bool poisoned() const { return poison; }
    void setPoisoned(bool p) { poison = p; }
    /** @} */

    const std::uint8_t *raw() const { return bytes.data(); }
    std::uint8_t *raw() { return bytes.data(); }

  private:
    std::array<std::uint8_t, BlockSizeBytes> bytes;
    bool poison = false;
};

/** @{ Snapshot encoding: a block as 128 lowercase hex chars; a
 *  poisoned block carries a trailing 'p' (129 chars), so clean
 *  snapshots keep the original format byte for byte. */
std::string blockToHex(const DataBlock &b);
/** Decode; throws SimError("snapshot") on bad length or digits. */
DataBlock blockFromHex(const std::string &hex);
/** @} */

} // namespace hsc

#endif // HSC_MEM_DATA_BLOCK_HH
