#include "mem/transport.hh"

#include <algorithm>
#include <cstring>
#include <new>
#include <sstream>

#include "mem/message_buffer.hh"
#include "obs/tracer.hh"
#include "sim/fault_injector.hh"
#include "sim/hash.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{

std::uint32_t
msgChecksum(const Msg &m)
{
    std::uint64_t h = FnvOffsetBasis;
    fnvMix(h, std::uint64_t(m.type));
    fnvMix(h, m.addr);
    fnvMix(h, std::uint64_t(m.sender));
    fnvMix(h, std::uint64_t(m.dest));
    fnvMix(h, m.txnId);
    fnvMix(h, m.obsId);
    fnvMix(h, std::uint64_t(m.grant));
    // Poison is bit 4: unpoisoned frames hash exactly as before, so
    // the digest stays wire-compatible with pre-poison traces.
    fnvMix(h, (std::uint64_t(m.data.poisoned()) << 4) |
                  (std::uint64_t(m.hasData) << 3) |
                  (std::uint64_t(m.dirty) << 2) |
                  (std::uint64_t(m.hit) << 1) |
                  std::uint64_t(m.cancelledVic));
    fnvMix(h, m.mask);
    fnvMix(h, std::uint64_t(m.atomicOp));
    fnvMix(h, m.atomicOffset);
    fnvMix(h, m.atomicSize);
    fnvMix(h, m.atomicOperand);
    fnvMix(h, m.atomicOperand2);
    fnvMix(h, m.atomicResult);
    fnvMix(h, m.tpSeq);
    fnvMix(h, m.tpAck);
    if (m.hasData) {
        const std::uint8_t *p = m.data.raw();
        for (unsigned i = 0; i < BlockSizeBytes; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, p + i, 8);
            fnvMix(h, w);
        }
    }
    return std::uint32_t(h ^ (h >> 32));
}

std::string
DegradedReport::brief() const
{
    if (links.empty())
        return {};
    std::ostringstream os;
    os << "link degraded: " << links.front().link << " (seq "
       << links.front().headSeq << " unacked after "
       << links.front().retries << " retransmissions, "
       << links.front().unacked << " frames stranded)";
    if (links.size() > 1)
        os << " +" << links.size() - 1 << " more";
    return os.str();
}

void
DegradedReport::print(std::ostream &os) const
{
    os << "=== DegradedReport (tick " << atTick << ") ===\n";
    if (lastCheckpointTick) {
        os << "  last checkpoint at tick " << lastCheckpointTick
           << " (" << atTick - lastCheckpointTick
           << " ticks of work since)\n";
    }
    for (const DegradedLinkInfo &l : links) {
        os << "  " << l.link << ": seq " << l.headSeq
           << " exhausted its retry budget (" << l.retries
           << " retransmissions, first sent @" << l.firstSendTick
           << ", degraded @" << l.atTick << "), " << l.unacked
           << " frames stranded";
        if (l.shard != ~0u)
            os << " [shard " << l.shard << "]";
        os << '\n';
    }
    if (!progressSummaries.empty()) {
        os << "  -- controller progress counters --\n";
        for (const std::string &s : progressSummaries)
            os << "  " << s << '\n';
    }
    if (!shardProgress.empty()) {
        os << "  -- shard progress --\n";
        for (const std::string &s : shardProgress)
            os << "  " << s << '\n';
    }
}

LinkTransport::LinkTransport(MessageBuffer &link,
                             const TransportConfig &cfg,
                             Tick cycle_period)
    : link(link), cfg(cfg), period(cycle_period),
      timeoutTicks(std::max<Tick>(1, cfg.timeoutCycles * cycle_period)),
      ackDelayTicks(cfg.ackDelayCycles * cycle_period)
{
}

void
LinkTransport::regStats(StatRegistry &reg)
{
    const std::string &n = link.name();
    reg.addCounter(n + ".tp.dataFrames", &statDataFrames);
    reg.addCounter(n + ".tp.retransmits", &statRetx);
    reg.addCounter(n + ".tp.ackFrames", &statAckFrames);
    reg.addCounter(n + ".tp.acked", &statAcked);
    reg.addCounter(n + ".tp.dupDrops", &statDupDrop);
    reg.addCounter(n + ".tp.reordered", &statReordered);
    reg.addCounter(n + ".tp.corruptDrops", &statCorruptDrop);
    reg.addCounter(n + ".tp.wireDrops", &statWireDrop);
}

Tick
LinkTransport::oldestUnackedAge(Tick now) const
{
    return sendQ.empty() ? 0 : now - sendQ.front().firstSend;
}

void
LinkTransport::send(Msg msg)
{
    fatal_if(!peer, "link '%s': transport not paired (acks need the "
             "reverse-direction link)", link.name().c_str());
    Tick now = senderEq().curTick();
    Unacked u{nextSeq, std::move(msg), now, now, 0};
    u.msg.tpSeq = nextSeq++;
    if (!degraded_) {
        ++statDataFrames;
        transmit(u.msg, /*retransmission=*/false);
    }
    // Degraded links still park the message (never transmitted): the
    // stranded count feeds Degraded/Hang reports.
    sendQ.push_back(std::move(u));
    if (!degraded_)
        armRetxTimer();
}

void
LinkTransport::transmit(Msg frame, bool retransmission)
{
    // Piggyback the freshest cumulative ack of the reverse link and
    // seal the frame.  A retransmission re-stamps both, so a stale
    // wire copy never rolls an ack backwards (acks are monotone and
    // the receiver takes the max anyway).
    frame.tpAck = peer->recvCum;
    peer->ackPending = false;
    peer->reAck = false;
    frame.tpChecksum = msgChecksum(frame);

    if (retransmission && tracer) {
        tracer->emit(frame.obsId, ObsPhase::LinkRetransmit, obsCtrl,
                     frame.addr, senderEq().curTick());
    }

    if (link.dead) {
        ++statWireDrop;
        return; // dead link: every wire copy is lost
    }

    WireFate fate = link.fault
                        ? link.fault->wireFate(link.linkId())
                        : WireFate{};
    if (fate.corrupt) {
        // Payload corruption model: flip one data byte (checksum
        // catches it); control frames get the checksum itself bent.
        if (frame.hasData) {
            std::uint8_t v = frame.data.get<std::uint8_t>(
                fate.corruptByte % BlockSizeBytes);
            frame.data.set<std::uint8_t>(
                fate.corruptByte % BlockSizeBytes,
                std::uint8_t(v ^ 0x80));
        } else {
            frame.tpChecksum ^= 0x80;
        }
    }
    if (wire) {
        // Cross-shard wire: schedule the original *before* the
        // duplicate — the sender-side monotonic clamp in
        // scheduleArrival would otherwise push the original out to
        // the duplicate's (strictly later) arrival tick.  A dropped
        // original still lets its duplicate through, matching the
        // sequential path.
        if (fate.drop)
            ++statWireDrop;
        else
            scheduleArrival(frame, fate.extraDelay);
        if (fate.duplicate)
            scheduleArrival(frame, fate.dupExtraDelay);
        return;
    }
    if (fate.duplicate)
        scheduleArrival(frame, fate.dupExtraDelay);
    if (fate.drop) {
        ++statWireDrop;
        return;
    }
    scheduleArrival(frame, fate.extraDelay);
}

void
LinkTransport::scheduleArrival(const Msg &frame, Tick extra)
{
    if (wire) {
        // Cross-shard wire: stamp the arrival from the sending
        // shard's clock and ship the copy through the ring.  The
        // clamp keeps ring timestamps monotone so the receiver's
        // drain can stop at the first at-or-past-bound entry; it may
        // delay a jittered frame slightly relative to the sequential
        // schedule, which is fine — the PDES determinism contract is
        // 1-vs-N threads, not PDES-vs-sequential (DESIGN.md §14).
        Tick when = std::max(senderEq().curTick() + link.latency + extra,
                             wireClamp);
        wireClamp = when;
        wire->push(when, Msg(frame));
        return;
    }
    // No FIFO clamp here: drops and retransmissions already reorder
    // the wire, and the receiver's sequence numbers restore order.
    Msg *p = wirePool.allocate(1);
    new (p) Msg(frame);
    link.eq.schedule(link.eq.curTick() + link.latency + extra,
                     [this, p] {
                         Msg m = std::move(*p);
                         p->~Msg();
                         wirePool.deallocate(p, 1);
                         onArrival(std::move(m));
                     },
                     EventPriority::Default, /*progress=*/true);
}

void
LinkTransport::onArrival(Msg &&m)
{
    Tick now = link.eq.curTick();
    if (msgChecksum(m) != m.tpChecksum) {
        ++statCorruptDrop;
        if (tracer)
            tracer->emit(m.obsId, ObsPhase::LinkCorruptDrop, obsCtrl,
                         m.addr, now);
        return; // recovered exactly like a loss
    }
    if (m.tpAck)
        peer->onAckReceived(m.tpAck);
    if (m.tpSeq == 0)
        return; // standalone ack frame, nothing to deliver

    if (m.tpSeq <= recvCum) {
        // Duplicate (wire dup, or a retransmission whose ack was
        // lost): drop, but make sure an ack goes back so the sender
        // stops retransmitting.
        ++statDupDrop;
        if (tracer)
            tracer->emit(m.obsId, ObsPhase::LinkDupDrop, obsCtrl,
                         m.addr, now);
        reAck = true;
        scheduleAckFlush();
        return;
    }
    if (m.tpSeq == recvCum + 1) {
        recvCum = m.tpSeq;
        link.deliverTransported(std::move(m));
        deliverReady();
    } else {
        // Gap: park the frame until the missing ones arrive.
        auto ins = reorder.emplace(m.tpSeq, std::move(m));
        if (!ins.second) {
            ++statDupDrop;
        } else {
            ++statReordered;
            if (reorder.size() > cfg.maxReorder)
                throw SimError("link '" + link.name() +
                                   "': transport reorder buffer "
                                   "exceeded its bound",
                               "transport");
        }
        reAck = true; // duplicate cum ack doubles as a NACK hint
    }
    ackPending = true;
    scheduleAckFlush();
}

void
LinkTransport::deliverReady()
{
    for (auto it = reorder.find(recvCum + 1); it != reorder.end();
         it = reorder.find(recvCum + 1)) {
        Msg m = std::move(it->second);
        reorder.erase(it);
        recvCum = m.tpSeq;
        link.deliverTransported(std::move(m));
    }
}

void
LinkTransport::onAckReceived(std::uint64_t cum)
{
    // Sender-side state, but invoked from the *peer's* receive path —
    // which runs on this transport's sending shard (the pair's halves
    // are co-located), so senderEq() is the executing shard's clock.
    Tick now = senderEq().curTick();
    while (!sendQ.empty() && sendQ.front().seq <= cum) {
        ++statAcked;
        if (tracer)
            tracer->emit(sendQ.front().msg.obsId, ObsPhase::LinkAcked,
                         obsCtrl, sendQ.front().msg.addr, now,
                         sendQ.front().retries);
        sendQ.pop_front();
    }
}

void
LinkTransport::transmitAckFrame(std::uint64_t cum)
{
    if (degraded_)
        return;
    ++statAckFrames;
    Msg ack;
    ack.tpSeq = 0;
    ack.tpAck = cum;
    // transmit() re-stamps tpAck from peer->recvCum — the same value
    // by construction (the peer computed it) — and seals the checksum.
    transmit(std::move(ack), /*retransmission=*/false);
}

Tick
LinkTransport::frontDeadline() const
{
    const Unacked &u = sendQ.front();
    unsigned shift = std::min(u.retries, cfg.backoffShiftCap);
    return u.lastSend + (timeoutTicks << shift);
}

void
LinkTransport::armRetxTimer()
{
    if (retxArmed || degraded_ || sendQ.empty())
        return;
    retxArmed = true;
    Tick now = senderEq().curTick();
    // Bookkeeping only (progress=false): a link retrying into the
    // void must not keep a wedged run alive past the watchdog.  The
    // timer lives on the *sending* shard's calendar: it reads and
    // mutates the sender window.
    senderEq().schedule(std::max(frontDeadline(), now + 1),
                        [this] { onRetxTimer(); },
                        EventPriority::Late, /*progress=*/false);
}

void
LinkTransport::onRetxTimer()
{
    retxArmed = false;
    if (degraded_ || sendQ.empty())
        return; // window fully acked; next send() re-arms
    Tick now = senderEq().curTick();
    if (now >= frontDeadline()) {
        Unacked &u = sendQ.front();
        if (u.retries >= cfg.retryBudget) {
            degrade();
            return;
        }
        ++u.retries;
        u.lastSend = now;
        ++statRetx;
        transmit(u.msg, /*retransmission=*/true);
    }
    armRetxTimer();
}

void
LinkTransport::scheduleAckFlush()
{
    if (ackTimerArmed || degraded_)
        return;
    ackTimerArmed = true;
    link.eq.schedule(link.eq.curTick() + std::max<Tick>(1, ackDelayTicks),
                     [this] { onAckTimer(); },
                     EventPriority::Late, /*progress=*/false);
}

void
LinkTransport::onAckTimer()
{
    ackTimerArmed = false;
    if (!ackPending && !reAck)
        return; // a reverse data frame piggybacked it already
    ackPending = false;
    reAck = false;
    // Acks for frames received *here* travel on the reverse link.
    peer->transmitAckFrame(recvCum);
}

void
LinkTransport::serialize(JsonValue &out) const
{
    panic_if(!idle(),
             "link '%s': snapshot of a non-quiesced transport "
             "(%zu unacked, %zu reordered, ackPending=%d reAck=%d, "
             "retxArmed=%d ackTimerArmed=%d)",
             link.name().c_str(), sendQ.size(), reorder.size(),
             int(ackPending), int(reAck), int(retxArmed),
             int(ackTimerArmed));
    panic_if(degraded_, "link '%s': snapshot of a degraded transport",
             link.name().c_str());
    out.set("nextSeq", JsonValue(nextSeq));
    out.set("recvCum", JsonValue(recvCum));
}

void
LinkTransport::restore(const JsonValue &in)
{
    nextSeq = in.at("nextSeq").asUInt();
    recvCum = in.at("recvCum").asUInt();
    retxArmed = false;
    ackTimerArmed = false;
    ackPending = false;
    reAck = false;
}

void
LinkTransport::bindCrossShard(ShardGroup &group, unsigned from_shard,
                              unsigned to_shard)
{
    panic_if(wire != nullptr,
             "link '%s': transport already cross-shard",
             link.name().c_str());
    srcEq = &group.queue(from_shard);
    sendShard = from_shard;
    wire = std::make_unique<WireChannel>(*this);
    group.addChannel(to_shard, wire.get());
}

void
LinkTransport::WireChannel::push(Tick when, Msg &&m)
{
    panic_if(!ring.push(TimedFrame{when, std::move(m)}),
             "link '%s': cross-shard wire overflow (%zu frames in one "
             "window)", tp.link.name().c_str(), Capacity);
}

void
LinkTransport::WireChannel::drain(Tick bound)
{
    // Arrival ticks are monotone (sender-side clamp), and any frame
    // pushed by the concurrently-executing window satisfies
    // when >= sender tick + latency >= windowStart + lookahead =
    // bound, so stopping at the first at-or-past-bound entry never
    // depends on which same-window pushes are visible yet.
    while (TimedFrame *t = ring.peekFront()) {
        if (t->when >= bound)
            break;
        Tick when = t->when;
        park.push_back(std::move(t->msg));
        ring.popFront();
        // Pops match schedule order: `when` is monotone across
        // drains, so same-tick events keep ring FIFO via seq order.
        tp.link.eq.schedule(when,
                            [this] {
                                Msg m = std::move(park.front());
                                park.pop_front();
                                tp.onArrival(std::move(m));
                            },
                            EventPriority::Default, /*progress=*/true);
    }
}

Tick
LinkTransport::WireChannel::earliestArrival() const
{
    const TimedFrame *t = ring.peekFront();
    return t ? t->when : MaxTick;
}

void
LinkTransport::degrade()
{
    degraded_ = true;
    Tick now = senderEq().curTick();
    const Unacked &u = sendQ.front();
    degradedAt = DegradedLinkInfo{link.name(), u.seq, u.retries,
                                  sendQ.size(), u.firstSend, now};
    degradedAt.shard = sendShard;
    warn("link '%s': degraded at tick %llu (seq %llu unacked after "
         "%u retransmissions)", link.name().c_str(),
         (unsigned long long)now, (unsigned long long)u.seq, u.retries);
    if (onDegraded)
        onDegraded();
}

} // namespace hsc
