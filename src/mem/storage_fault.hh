/**
 * @file
 * Storage-fault model: bit flips at rest, SECDED ECC, and poison
 * containment (DESIGN.md §12).
 *
 * Mirrors the wire-fate design of sim/fault_injector.hh for data *at
 * rest*: every protected array (CorePair L2s, the TCC, the LLC, main
 * memory, directory metadata) registers in construction order and
 * gets a per-(seed, array id) SplitMix64-seeded stream, so the flip
 * schedule is a pure function of (config, access sequence) — the same
 * run replays the same faults bit-exactly, and a FailureTrace carries
 * the knobs.
 *
 * The ECC model is SECDED per line:
 *  - a single latent flip is corrected on every access (and repaired
 *    in place by the background scrubber or any full-line overwrite);
 *  - a double-bit event — or a second flip landing on a line already
 *    carrying a latent one — is uncorrectable: the stored bytes are
 *    corrupted for real and the line is *poisoned*;
 *  - directory metadata has no data path to poison, so an
 *    uncorrectable there escalates to containment immediately.
 *
 * Poison travels on the DataBlock itself (writebacks, probe
 * responses, DMA, link transport all copy it untouched); the injector
 * is also the containment authority: the first *consumption* of a
 * poisoned line by a CPU, GPU or DMA agent trips a structured
 * ContainmentReport and the run stops cleanly.
 *
 * With ECC disabled (StorageFaultConfig::ecc = false) flips corrupt
 * the stored bytes silently — the CoherenceChecker's shadow-data
 * compare is then expected to catch the corruption downstream, which
 * doubles as a seeded-bug validation of the ECC model itself.
 */

#ifndef HSC_MEM_STORAGE_FAULT_HH
#define HSC_MEM_STORAGE_FAULT_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "mem/data_block.hh"
#include "obs/span.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "stats/stats.hh"

namespace hsc
{

class JsonValue;
class ObsTracer;

/** Knobs of the storage-fault model (SystemConfig::storageFault). */
struct StorageFaultConfig
{
    /** Master switch; off = zero cost, bit-identical to golden. */
    bool enabled = false;

    /** Seed of the per-array SplitMix64 flip streams. */
    std::uint64_t seed = 1;

    /** Chance (basis points per access) that a protected-array access
     *  lands a new bit flip on the touched line. */
    unsigned flipPer10kAccesses = 0;

    /** Of the injected flips, the fraction (basis points) that are
     *  double-bit events — uncorrectable under SECDED. */
    unsigned doublePer10k = 1000;

    /** One-shot deterministic double-bit flip: injected into the
     *  first protected data access at or after this tick (0 = off).
     *  Guarantees a reproducible uncorrectable for tests and replay. */
    Tick flipAtTick = 0;

    /** SECDED on (the default).  Off = flips corrupt silently and the
     *  coherence checker is expected to catch them downstream. */
    bool ecc = true;

    /** Background scrubber cadence in CPU cycles (0 = no scrubber). */
    Cycles scrubIntervalCycles = 0;

    /** True when any fault source is configured. */
    bool
    any() const
    {
        return enabled && (flipPer10kAccesses > 0 || flipAtTick > 0);
    }
};

/**
 * Structured outcome of a contained storage fault: the machine-check
 * analogue of HangReport/DegradedReport.  Raised when a poisoned line
 * is consumed, or when directory metadata takes an uncorrectable.
 */
struct ContainmentReport
{
    enum class Kind : std::uint8_t
    {
        None,
        PoisonConsumed,          ///< CPU/GPU/DMA used a poisoned line
        MetadataUncorrectable,   ///< directory state/sharer bits died
    };

    Kind kind = Kind::None;
    Tick atTick = 0;
    std::string consumer;  ///< agent (or metadata array) that tripped
    Addr addr = 0;

    /** Error-economy at trip time. */
    std::uint64_t corrected = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t poisonConsumed = 0;

    /** Last durable checkpoint (0 = none), for operator restart. */
    Tick lastCheckpointTick = 0;

    bool contained() const { return kind != Kind::None; }
    std::string brief() const;
    void print(std::ostream &os) const;
};

/** Roll-up of the storage-fault counters for CLI/bench reporting. */
struct StorageSummary
{
    bool enabled = false;
    std::uint64_t flips = 0;
    std::uint64_t corrected = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t poisonConsumed = 0;
    std::uint64_t metaCorrected = 0;
    std::uint64_t metaUncorrectable = 0;
};

/**
 * The storage-fault injector, ECC model and containment authority.
 *
 * Only constructed when the config enables it; controllers hold a
 * null pointer otherwise, so the disabled path costs nothing and
 * draws no randomness.
 */
class StorageFaultInjector
{
  public:
    explicit StorageFaultInjector(const StorageFaultConfig &cfg);

    /** Register a protected data array; returns its dense id.  Call
     *  order must be deterministic (HsaSystem construction order).
     *  @p owner_shard is the PDES shard whose events access the array
     *  (ignored sequentially — everything runs on shard 0's thread). */
    unsigned registerArray(const std::string &name,
                           unsigned owner_shard = 0);

    /** Register a metadata array (directory state/sharer bits). */
    unsigned registerMetaArray(const std::string &name,
                               unsigned owner_shard = 0);

    /** Attach the observability tracer (null = disabled). */
    void attachTracer(ObsTracer *t);

    /**
     * Timed protocol access to a line of a protected data array: may
     * inject a new flip, then applies SECDED to any latent fault on
     * the line.  @p data must reference the *stored* copy so an
     * uncorrectable poisons the array, not a transient.  Functional
     * paths (peeks, verification reads) must not call this.
     */
    void access(unsigned array_id, Addr addr, DataBlock &data, Tick now,
                std::uint64_t obs_id = 0);

    /** Timed access to directory metadata: corrected or contained on
     *  the spot (metadata has no poison path). */
    void metaAccess(unsigned array_id, Addr addr, Tick now);

    /** A full-line overwrite rewrites every stored bit: latent flips
     *  die with the old contents. */
    void noteFullOverwrite(unsigned array_id, Addr addr);

    /** Consumption boundary: a CPU/GPU/DMA agent is about to use the
     *  block's contents.  Poisoned data trips containment. */
    void noteConsumption(const std::string &consumer, Addr addr,
                         const DataBlock &data, Tick now,
                         std::uint64_t obs_id = 0);

    /** Background scrubber sweep: repair every latent single-bit
     *  flip.  Driven by HsaSystem on the configured cadence. */
    void scrubSweep(Tick now);

    /** @{ PDES mode (DESIGN.md §14).  enterPdesMode() — called once,
     *  after every registerArray — switches counters and containment
     *  trips to per-shard slots (each array's state is only touched
     *  by its owner shard's worker; streams are pre-built so the lazy
     *  vector growth can't race) and rejects the flipAtTick one-shot,
     *  whose "first access at or after T" trigger reads the global
     *  event order that PDES doesn't have.  Per-shard scrubbers call
     *  scrubSweepShard for the arrays they own.  After the workers
     *  join, mergeParallel() folds the shard counters into the
     *  registered ones and elects the earliest trip — ties to the
     *  lowest shard — as *the* ContainmentReport, so the result is
     *  bit-identical at 1 worker thread and at N. */
    void enterPdesMode(unsigned num_shards);
    void scrubSweepShard(unsigned shard, Tick now);
    void mergeParallel();
    /** @} */

    /** True once a ContainmentReport has been raised.  Under PDES the
     *  atomic covers shard-local trips before mergeParallel() elects
     *  the winner (read at window barriers — ordering via the
     *  barrier, hence relaxed). */
    bool
    tripped() const
    {
        return report.contained() ||
               trippedFlag.load(std::memory_order_relaxed);
    }
    const ContainmentReport &containmentReport() const { return report; }
    ContainmentReport &mutableReport() { return report; }

    const StorageFaultConfig &config() const { return cfg; }
    StorageSummary summary() const;

    /** Latent (corrected-on-access) flips currently outstanding. */
    std::size_t pendingFlips() const;

    void regStats(StatRegistry &reg, const std::string &prefix);

    /** @{ Snapshot hooks: stream cursors, latent flips and the
     *  one-shot arm, so a resumed run draws the same fault tail. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    /** Latent single-bit flip awaiting scrub/overwrite repair. */
    struct Latent
    {
        std::uint16_t bit = 0;  ///< flipped bit index within the line
    };

    struct ArrayInfo
    {
        std::string name;
        bool metadata = false;
        /** PDES shard whose worker touches this array (0 sequential). */
        unsigned shard = 0;
        /** This array's latent flips, keyed by block address.  Held
         *  per array (not in one global map) so concurrent shards
         *  never mutate a shared container. */
        std::map<Addr, Latent> pending;
    };

    /** Single-writer counter shadows, one set per shard (plus one for
     *  outside-shard calls); folded into the registered Counters by
     *  mergeParallel(). */
    struct LocalCounts
    {
        std::uint64_t flips = 0;
        std::uint64_t corrected = 0;
        std::uint64_t poisoned = 0;
        std::uint64_t scrubRepairs = 0;
        std::uint64_t poisonConsumed = 0;
        std::uint64_t metaCorrected = 0;
        std::uint64_t metaUncorrectable = 0;
    };

    /** The executing shard's counter shadow, or null when sequential
     *  (counters then hit the registered Counters directly — the
     *  enabled-but-sequential path is byte-identical to before). */
    LocalCounts *pdesCounts();

    Rng &streamFor(unsigned array_id);

    /** Key latent flips by (block address | array id): block
     *  alignment frees the low BlockShift bits and arrays are few. */
    static std::uint64_t
    key(unsigned array_id, Addr addr)
    {
        return blockAlign(addr) | std::uint64_t(array_id);
    }

    /** Flip bit @p bit (and @p bit^1 when @p dbl) of @p data. */
    static void corrupt(DataBlock &data, unsigned bit, bool dbl);

    /** Raise the ContainmentReport (first trip wins). */
    void trip(ContainmentReport::Kind kind, const std::string &consumer,
              Addr addr, Tick now);

    void obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr,
                 Tick now);

    const StorageFaultConfig cfg;

    std::vector<ArrayInfo> arrays;
    std::vector<std::unique_ptr<Rng>> streams;

    bool oneShotArmed;
    ContainmentReport report;

    /** @{ PDES state; empty/false sequentially. */
    std::vector<LocalCounts> shardCounts;   ///< [numShards] + no-shard
    std::vector<ContainmentReport> shardReports;  ///< first trip each
    std::atomic<bool> trippedFlag{false};
    bool mergedParallel = false;
    /** @} */

    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    Counter statFlips;
    Counter statCorrected;
    Counter statPoisoned;
    Counter statScrubRepairs;
    Counter statPoisonConsumed;
    Counter statMetaCorrected;
    Counter statMetaUncorrectable;
};

} // namespace hsc

#endif // HSC_MEM_STORAGE_FAULT_HH
