/**
 * @file
 * An ordered, latency-modelled point-to-point link.
 *
 * MessageBuffer models one virtual-network link between two
 * controllers: messages arrive at the consumer a fixed latency after
 * enqueue, in FIFO order.  Message counts are recorded so benches can
 * report network activity (Fig. 7 of the paper counts probes sent on
 * these links).
 */

#ifndef HSC_MEM_MESSAGE_BUFFER_HH
#define HSC_MEM_MESSAGE_BUFFER_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "mem/message.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace hsc
{

/**
 * Anything a controller can send messages into: a concrete link, or a
 * router spreading traffic over several (e.g. the banked-directory
 * interleaver).
 */
class MsgSink
{
  public:
    virtual ~MsgSink() = default;
    virtual void enqueue(Msg msg) = 0;
};

/**
 * One-way link delivering messages to a consumer callback after a
 * fixed latency.
 */
class MessageBuffer : public MsgSink
{
  public:
    using Consumer = std::function<void(Msg &&)>;

    /**
     * @param name Link name for stats.
     * @param eq Shared event queue.
     * @param latency Delivery latency in ticks.
     */
    MessageBuffer(std::string name, EventQueue &eq, Tick latency)
        : _name(std::move(name)), eq(eq), latency(latency)
    {}

    /** Attach the receiving controller. Must be set before enqueue. */
    void setConsumer(Consumer c) { consumer = std::move(c); }

    /** Send @p msg; it arrives at the consumer after the latency. */
    void
    enqueue(Msg msg) override
    {
        ++numMessages;
        eq.scheduleIn(latency, [this, m = std::move(msg)]() mutable {
            eq.notifyProgress();
            consumer(std::move(m));
        });
    }

    const std::string &name() const { return _name; }
    Tick latencyTicks() const { return latency; }

    /** Register the message counter with @p reg. */
    void
    regStats(StatRegistry &reg)
    {
        reg.addCounter(_name + ".messages", &numMessages);
    }

    std::uint64_t messageCount() const { return numMessages.value(); }

  private:
    const std::string _name;
    EventQueue &eq;
    Tick latency;
    Consumer consumer;
    Counter numMessages;
};

/**
 * Address-interleaved router over several links — the client side of
 * a banked (distributed) directory: block b goes to bank
 * (b % numBanks).
 */
class BankedSink : public MsgSink
{
  public:
    explicit BankedSink(std::vector<MessageBuffer *> banks)
        : banks(std::move(banks))
    {}

    void
    enqueue(Msg msg) override
    {
        std::size_t bank =
            std::size_t(msg.addr >> BlockShift) % banks.size();
        banks[bank]->enqueue(std::move(msg));
    }

    std::size_t numBanks() const { return banks.size(); }

  private:
    std::vector<MessageBuffer *> banks;
};

} // namespace hsc

#endif // HSC_MEM_MESSAGE_BUFFER_HH
