/**
 * @file
 * An ordered, latency-modelled point-to-point link.
 *
 * MessageBuffer models one virtual-network link between two
 * controllers: messages arrive at the consumer a fixed latency after
 * enqueue, in FIFO order.  Message counts are recorded so benches can
 * report network activity (Fig. 7 of the paper counts probes sent on
 * these links).
 *
 * Robustness hooks:
 *  - an attached FaultInjector can add bounded per-message jitter;
 *    delivery ticks are clamped to be non-decreasing so FIFO order is
 *    preserved and the protocol must stay correct;
 *  - a dead link (fault-injected) drops every message, the supported
 *    way to induce a hang for watchdog testing;
 *  - with the reliable transport enabled (mem/transport.hh), enqueue
 *    hands each message to a LinkTransport instead: sequence numbers,
 *    checksums, acks and retransmissions make delivery exactly-once
 *    and in-order even when the injector drops / duplicates /
 *    corrupts wire frames.  Disabled, the legacy path below is
 *    byte-for-byte what it was — bit-identical runs;
 *  - undelivered messages are tracked (depth + oldest age) so hang
 *    reports can name the links traffic is stuck on;
 *  - enqueue on a link with no consumer throws SimError naming the
 *    link, instead of a bad-function call deep inside the event loop.
 *
 * Hot-path note (DESIGN.md §9): messages are parked in the buffer's
 * own pending ring, never captured into per-message lambdas — each
 * delivery event is a [this] thunk that pops the front.  One event
 * per message is deliberate: it keeps the (tick, prio, seq) slot of
 * every delivery, the executed-event count, and the granularity at
 * which EventQueue::runUntil evaluates its predicate bit-identical
 * to a per-message-event kernel, which coalesced same-tick draining
 * would not.
 */

#ifndef HSC_MEM_MESSAGE_BUFFER_HH
#define HSC_MEM_MESSAGE_BUFFER_HH

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/message.hh"
#include "sim/event_queue.hh"
#include "sim/introspect.hh"
#include "sim/ring_buffer.hh"
#include "sim/shard.hh"
#include "stats/stats.hh"

namespace hsc
{

class FaultInjector;
class JsonValue;
class LinkTransport;
struct TransportConfig;

/**
 * Anything a controller can send messages into: a concrete link, or a
 * router spreading traffic over several (e.g. the banked-directory
 * interleaver).
 */
class MsgSink
{
  public:
    virtual ~MsgSink() = default;
    virtual void enqueue(Msg msg) = 0;
};

/**
 * One-way link delivering messages to a consumer callback after a
 * fixed latency.
 */
class MessageBuffer : public MsgSink
{
  public:
    using Consumer = std::function<void(Msg &&)>;

    /**
     * @param name Link name for stats.
     * @param eq Shared event queue.
     * @param latency Delivery latency in ticks.
     * @param link_id Dense system-assigned id; keys the link's fault
     *        RNG stream, so schedules survive renames and threading.
     */
    MessageBuffer(std::string name, EventQueue &eq, Tick latency,
                  unsigned link_id = 0);

    ~MessageBuffer();

    /** Attach the receiving controller. Must be set before enqueue. */
    void setConsumer(Consumer c) { consumer = std::move(c); }

    /**
     * Attach the system's fault injector.  The link caches whether it
     * is configured dead; jitter is drawn per message at enqueue.
     */
    void attachFaultInjector(FaultInjector *fi);

    /**
     * Put a reliable LinkTransport (mem/transport.hh) between enqueue
     * and the wire.  Call after attachFaultInjector; pair the two
     * directions with transport()->pairWith() before the first send.
     */
    void enableTransport(const TransportConfig &tcfg,
                         Tick cycle_period);

    /** The reliable transport, or null when disabled. */
    LinkTransport *transport() { return tp.get(); }
    const LinkTransport *transport() const { return tp.get(); }
    bool transportEnabled() const { return tp != nullptr; }

    /**
     * Cross-shard mode (DESIGN.md §14): the sending controller lives
     * on shard @p from_shard, the consumer on shard @p to_shard of
     * @p group.  enqueue() then pushes {send tick + latency, msg}
     * into a lock-free SPSC ring instead of scheduling a delivery
     * event; the receiving shard drains the ring at the top of each
     * window.  Requires latency >= the group's lookahead and a
     * consumer that never changes after construction.  Composes with
     * the robustness hooks: with the transport enabled the binding is
     * delegated to the LinkTransport (whose sender half then runs
     * entirely on @p from_shard), fault jitter is drawn sender-side
     * with delivery ticks clamped monotone, and dead links swallow
     * messages at enqueue.  Call after attachFaultInjector /
     * enableTransport / pairWith.
     */
    void bindCrossShard(ShardGroup &group, unsigned from_shard,
                        unsigned to_shard);

    /** True when enqueue crosses a shard boundary. */
    bool crossShard() const { return xchan != nullptr; }

    /** Send @p msg; it arrives at the consumer after the latency. */
    void enqueue(Msg msg) override;

    const std::string &name() const { return _name; }
    Tick latencyTicks() const { return latency; }
    unsigned linkId() const { return _linkId; }

    /** Register the message counters with @p reg. */
    void regStats(StatRegistry &reg);

    std::uint64_t messageCount() const { return numMessages.value(); }
    std::uint64_t deliveredCount() const
    {
        return numDelivered.value();
    }

    /** High-water mark of undelivered messages over the whole run. */
    std::size_t peakDepth() const { return peak; }

    /** @{ Hang-report introspection. */
    /** Messages enqueued but not yet delivered (legacy path) or not
     *  yet acknowledged (transport path) — dropped-dead included. */
    std::size_t queueDepth() const;

    /** Age of the oldest undelivered/unacked message at @p now. */
    Tick oldestPendingAge(Tick now) const;

    LinkInfo
    linkInfo(Tick now) const
    {
        return LinkInfo{_name, queueDepth(), oldestPendingAge(now)};
    }
    /** @} */

    /** @{ Snapshot hooks.  Checkpoints are taken at quiesce, when no
     *  message is awaiting delivery, so only the FIFO clamp, the
     *  high-water mark and the transport cursors persist. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    friend class LinkTransport; // wire physics + final delivery

    /** One undelivered message (FIFO => front oldest / next due). */
    struct PendingMsg
    {
        Msg msg;
        Tick enqTick = 0;
    };

    /** The SPSC ring between the sending and receiving shard.  The
     *  producer is the sender's worker thread (enqueue); the consumer
     *  is the receiver's worker thread (the per-window drain). */
    class MsgChannel : public ShardChannel
    {
      public:
        explicit MsgChannel(MessageBuffer &sink) : ring(Capacity),
                                                   sink(sink)
        {}

        void push(Tick when, Msg &&m);
        void drain(Tick bound) override;
        bool empty() const override { return ring.empty(); }
        Tick
        earliestArrival() const override
        {
            const TimedMsg *e = ring.peekFront();
            return e ? e->when : MaxTick;
        }
        std::size_t size() const { return ring.size(); }

      private:
        /** Per-window occupancy is bounded by one controller's sends
         *  on one link within one lookahead window (tens at most);
         *  512 slots is a generous margin and, allocated lazily,
         *  ~90 KB per *active* channel even on big128. */
        static constexpr std::size_t Capacity = 512;

        struct TimedMsg
        {
            Tick when = 0;
            Msg msg;
        };

        SpscRing<TimedMsg> ring;
        MessageBuffer &sink;
    };

    /** Receiver-side arrival of a cross-shard message: park it in the
     *  pending ring and schedule the delivery event locally. */
    void channelDeliver(Tick when, Msg &&m);

    /** Deliver the front pending message to the consumer. */
    void deliverFront();

    /** Transport-path delivery: exactly-once, in sequence order. */
    void deliverTransported(Msg &&m);

    const std::string _name;
    EventQueue &eq;
    Tick latency;
    const unsigned _linkId;
    Consumer consumer;
    Counter numMessages;
    Counter numDelivered;
    std::size_t peak = 0;

    FaultInjector *fault = nullptr;
    bool dead = false;

    /** Reliable transport; null = legacy direct delivery. */
    std::unique_ptr<LinkTransport> tp;

    /** Cross-shard channel; null = same-shard direct scheduling.
     *  Counter discipline under PDES: numMessages is written only by
     *  the sending shard, numDelivered/peak/lastDelivery only by the
     *  receiving shard — single-writer throughout, merged by reading
     *  them after the workers join. */
    std::unique_ptr<MsgChannel> xchan;
    /** The sending shard's queue (cross-shard mode): send ticks are
     *  read from here, never from the receiver-owned `eq`. */
    EventQueue *srcEq = nullptr;
    /** @{ Sender-shard-owned cross-shard state: the monotone arrival
     *  clamp under jitter, and the count/first-tick of messages a
     *  dead link swallowed (pending stays receiver-owned, so dead
     *  drops are accounted separately for hang reports). */
    Tick sendClamp = 0;
    std::size_t deadDropped = 0;
    Tick deadOldestEnq = 0;
    /** @} */

    /** Undelivered messages; delivery events only capture [this] and
     *  pop from here, so no Msg ever rides inside a callback. */
    RingBuf<PendingMsg> pending;
    /** Latest scheduled delivery tick: the FIFO clamp under jitter. */
    Tick lastDelivery = 0;
};

/**
 * Address-interleaved router over several links — the client side of
 * a banked (distributed) directory: block b goes to bank
 * (b % numBanks).
 */
class BankedSink : public MsgSink
{
  public:
    explicit BankedSink(std::vector<MessageBuffer *> banks)
        : banks(std::move(banks))
    {}

    void
    enqueue(Msg msg) override
    {
        std::size_t bank =
            std::size_t(msg.addr >> BlockShift) % banks.size();
        banks[bank]->enqueue(std::move(msg));
    }

    std::size_t numBanks() const { return banks.size(); }

  private:
    std::vector<MessageBuffer *> banks;
};

} // namespace hsc

#endif // HSC_MEM_MESSAGE_BUFFER_HH
