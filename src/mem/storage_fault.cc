#include "mem/storage_fault.hh"

#include <algorithm>
#include <sstream>

#include "obs/tracer.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/sim_error.hh"

namespace hsc
{

namespace
{

constexpr unsigned BitsPerLine = BlockSizeBytes * 8;

/** Arrays register with ids below this so (addr | id) keys stay
 *  collision-free (block alignment zeroes the low BlockShift bits). */
constexpr unsigned MaxArrays = BlockSizeBytes;

/**
 * SplitMix64-style mix of (seed, array id), the same construction the
 * wire-fate injector uses for links: every array gets an independent
 * stream that survives renames and host-side threading.
 */
std::uint64_t
mixSeed(std::uint64_t seed, unsigned array_id)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (array_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::string_view
containmentKindName(ContainmentReport::Kind k)
{
    switch (k) {
      case ContainmentReport::Kind::None: return "none";
      case ContainmentReport::Kind::PoisonConsumed:
        return "poison-consumed";
      case ContainmentReport::Kind::MetadataUncorrectable:
        return "metadata-uncorrectable";
    }
    return "?";
}

} // namespace

std::string
ContainmentReport::brief() const
{
    if (!contained())
        return "not contained";
    std::ostringstream os;
    os << "storage fault contained (" << containmentKindName(kind)
       << ") at tick " << atTick << ": " << consumer << " addr 0x"
       << std::hex << addr << std::dec;
    return os.str();
}

void
ContainmentReport::print(std::ostream &os) const
{
    os << "=== ContainmentReport ===\n"
       << "kind: " << containmentKindName(kind) << "\n"
       << "tick: " << atTick << "\n"
       << "consumer: " << consumer << "\n"
       << "addr: 0x" << std::hex << addr << std::dec << "\n"
       << "eccCorrected: " << corrected << "\n"
       << "linesPoisoned: " << poisoned << "\n"
       << "scrubRepairs: " << scrubRepairs << "\n"
       << "poisonConsumed: " << poisonConsumed << "\n";
    if (lastCheckpointTick)
        os << "lastCheckpointTick: " << lastCheckpointTick << "\n";
    else
        os << "lastCheckpointTick: none\n";
}

StorageFaultInjector::StorageFaultInjector(const StorageFaultConfig &cfg)
    : cfg(cfg), oneShotArmed(cfg.flipAtTick > 0)
{
}

unsigned
StorageFaultInjector::registerArray(const std::string &name,
                                    unsigned owner_shard)
{
    panic_if(arrays.size() >= MaxArrays,
             "storage fault: too many protected arrays");
    arrays.push_back(ArrayInfo{name, false, owner_shard, {}});
    return unsigned(arrays.size() - 1);
}

unsigned
StorageFaultInjector::registerMetaArray(const std::string &name,
                                        unsigned owner_shard)
{
    panic_if(arrays.size() >= MaxArrays,
             "storage fault: too many protected arrays");
    arrays.push_back(ArrayInfo{name, true, owner_shard, {}});
    return unsigned(arrays.size() - 1);
}

void
StorageFaultInjector::enterPdesMode(unsigned num_shards)
{
    panic_if(cfg.flipAtTick,
             "storage fault: flipAtTick is meaningless under PDES "
             "(no global first-access order) — validateConfig should "
             "have rejected it");
    shardCounts.assign(num_shards + 1, LocalCounts{});
    shardReports.assign(num_shards + 1, ContainmentReport{});
    // Pre-build every stream: streamFor's on-demand vector growth is
    // not thread-safe across shards, and with the streams in place
    // each one is only ever drawn from by its array's owner shard.
    for (unsigned id = 0; id < arrays.size(); ++id)
        streamFor(id);
}

StorageFaultInjector::LocalCounts *
StorageFaultInjector::pdesCounts()
{
    if (shardCounts.empty())
        return nullptr;
    unsigned s = ShardGroup::currentShard();
    return &shardCounts[s == ShardGroup::NoShard
                            ? shardCounts.size() - 1
                            : s];
}

void
StorageFaultInjector::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl("storage", ObsCtrlKind::Other);
}

Rng &
StorageFaultInjector::streamFor(unsigned array_id)
{
    if (array_id >= streams.size())
        streams.resize(array_id + 1);
    if (!streams[array_id]) {
        streams[array_id] =
            std::make_unique<Rng>(mixSeed(cfg.seed, array_id));
    }
    return *streams[array_id];
}

void
StorageFaultInjector::corrupt(DataBlock &data, unsigned bit, bool dbl)
{
    bit %= BitsPerLine;
    data.raw()[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    if (dbl) {
        unsigned b2 = bit ^ 1;
        data.raw()[b2 / 8] ^= std::uint8_t(1u << (b2 % 8));
    }
}

void
StorageFaultInjector::obsEmit(std::uint64_t obs_id, ObsPhase phase,
                              Addr addr, Tick now)
{
    if (tracer && obs_id)
        tracer->emit(obs_id, phase, obsCtrl, addr, now);
}

void
StorageFaultInjector::access(unsigned array_id, Addr addr,
                             DataBlock &data, Tick now,
                             std::uint64_t obs_id)
{
    Addr block = blockAlign(addr);
    bool inject = false;
    bool dbl = false;
    unsigned bit = 0;

    if (oneShotArmed && now >= cfg.flipAtTick) {
        // Deterministic one-shot uncorrectable: no stream draw, so it
        // cannot perturb the probabilistic schedule around it.
        oneShotArmed = false;
        inject = true;
        dbl = true;
    } else if (cfg.flipPer10kAccesses) {
        // Fixed two draws per access (chance + fault shape), so the
        // k-th draw of an array is a pure function of its access
        // count — the wire-fate economy.
        Rng &rng = streamFor(array_id);
        std::uint64_t chance = rng.next();
        std::uint64_t shape = rng.next();
        if (chance % 10000 < cfg.flipPer10kAccesses) {
            inject = true;
            bit = unsigned((shape >> 32) % BitsPerLine);
            dbl = shape % 10000 < cfg.doublePer10k;
        }
    }

    auto &pend = arrays[array_id].pending;
    auto it = pend.find(block);
    LocalCounts *lc = pdesCounts();

    if (inject) {
        if (lc)
            ++lc->flips;
        else
            ++statFlips;
        if (!cfg.ecc) {
            // No ECC: the flip lands in the stored bits and the array
            // simply lies from now on.  The coherence checker's
            // shadow compare is the only thing standing.
            corrupt(data, bit, dbl);
            return;
        }
        if (dbl || it != pend.end()) {
            // Uncorrectable: a double-bit event, or a second flip on
            // a line already carrying a latent one.  Corrupt the
            // stored bytes for real and poison the line.
            corrupt(data, bit, dbl);
            if (it != pend.end())
                pend.erase(it);
            data.setPoisoned(true);
            if (lc)
                ++lc->poisoned;
            else
                ++statPoisoned;
            obsEmit(obs_id, ObsPhase::LinePoisoned, block, now);
            return;
        }
        it = pend.emplace(block, Latent{std::uint16_t(bit)}).first;
    }

    if (!cfg.ecc || it == pend.end())
        return;

    // SECDED corrects the latent single on the fly: the consumer sees
    // clean data, but the stored bit stays flipped until the scrubber
    // or a full-line overwrite repairs it.
    if (lc)
        ++lc->corrected;
    else
        ++statCorrected;
    obsEmit(obs_id, ObsPhase::EccCorrected, block, now);
}

void
StorageFaultInjector::metaAccess(unsigned array_id, Addr addr, Tick now)
{
    // Metadata stays SECDED-protected even in the ECC-off validation
    // mode: corrupted state bits would break the protocol arbitrarily
    // rather than produce checkable wrong data.
    if (!cfg.flipPer10kAccesses || !cfg.ecc)
        return;
    Rng &rng = streamFor(array_id);
    std::uint64_t chance = rng.next();
    std::uint64_t shape = rng.next();
    if (chance % 10000 >= cfg.flipPer10kAccesses)
        return;
    if (shape % 10000 < cfg.doublePer10k) {
        // No data path exists for poisoned metadata: containment
        // fires right here.
        if (auto *lc = pdesCounts())
            ++lc->metaUncorrectable;
        else
            ++statMetaUncorrectable;
        trip(ContainmentReport::Kind::MetadataUncorrectable,
             arrays[array_id].name, blockAlign(addr), now);
    } else {
        if (auto *lc = pdesCounts())
            ++lc->metaCorrected;
        else
            ++statMetaCorrected;
    }
}

void
StorageFaultInjector::noteFullOverwrite(unsigned array_id, Addr addr)
{
    arrays[array_id].pending.erase(blockAlign(addr));
}

void
StorageFaultInjector::noteConsumption(const std::string &consumer,
                                      Addr addr, const DataBlock &data,
                                      Tick now, std::uint64_t obs_id)
{
    if (!data.poisoned())
        return;
    if (auto *lc = pdesCounts())
        ++lc->poisonConsumed;
    else
        ++statPoisonConsumed;
    obsEmit(obs_id, ObsPhase::PoisonConsumed, blockAlign(addr), now);
    trip(ContainmentReport::Kind::PoisonConsumed, consumer,
         blockAlign(addr), now);
}

void
StorageFaultInjector::scrubSweep(Tick now)
{
    (void)now;
    // Every latent fault is a single-bit flip (doubles poison at
    // injection time), so the sweep repairs everything outstanding.
    std::size_t repaired = 0;
    for (ArrayInfo &a : arrays) {
        repaired += a.pending.size();
        a.pending.clear();
    }
    statScrubRepairs += repaired;
}

void
StorageFaultInjector::scrubSweepShard(unsigned shard, Tick now)
{
    (void)now;
    std::size_t repaired = 0;
    for (ArrayInfo &a : arrays) {
        if (a.shard != shard)
            continue;
        repaired += a.pending.size();
        a.pending.clear();
    }
    if (auto *lc = pdesCounts())
        lc->scrubRepairs += repaired;
    else
        statScrubRepairs += repaired;
}

void
StorageFaultInjector::trip(ContainmentReport::Kind kind,
                           const std::string &consumer, Addr addr,
                           Tick now)
{
    if (!shardCounts.empty() &&
        ShardGroup::currentShard() != ShardGroup::NoShard) {
        // PDES: record the shard's *first* trip in its private slot
        // and raise the barrier-published flag; mergeParallel elects
        // the global winner after the workers join.
        ContainmentReport &slot =
            shardReports[ShardGroup::currentShard()];
        if (slot.contained())
            return;
        slot.kind = kind;
        slot.atTick = now;
        slot.consumer = consumer;
        slot.addr = addr;
        trippedFlag.store(true, std::memory_order_relaxed);
        return;
    }
    if (report.contained())
        return; // first trip wins; the run is already stopping
    report.kind = kind;
    report.atTick = now;
    report.consumer = consumer;
    report.addr = addr;
    report.corrected = statCorrected.value() + statMetaCorrected.value();
    report.poisoned = statPoisoned.value();
    report.scrubRepairs = statScrubRepairs.value();
    report.poisonConsumed = statPoisonConsumed.value();
}

void
StorageFaultInjector::mergeParallel()
{
    if (shardCounts.empty() || mergedParallel)
        return;
    mergedParallel = true;

    for (const LocalCounts &c : shardCounts) {
        statFlips += c.flips;
        statCorrected += c.corrected;
        statPoisoned += c.poisoned;
        statScrubRepairs += c.scrubRepairs;
        statPoisonConsumed += c.poisonConsumed;
        statMetaCorrected += c.metaCorrected;
        statMetaUncorrectable += c.metaUncorrectable;
    }

    // Elect the earliest trip; strict < keeps the lowest shard on
    // ties, so the winner is a pure function of simulated state.
    const ContainmentReport *win = nullptr;
    for (const ContainmentReport &r : shardReports) {
        if (r.contained() && (!win || r.atTick < win->atTick))
            win = &r;
    }
    if (win && !report.contained()) {
        report = *win;
        // Error-economy snapshot: under PDES the trip-time global
        // totals don't exist race-free, so the report carries the
        // (deterministic) end-of-run totals instead.
        report.corrected =
            statCorrected.value() + statMetaCorrected.value();
        report.poisoned = statPoisoned.value();
        report.scrubRepairs = statScrubRepairs.value();
        report.poisonConsumed = statPoisonConsumed.value();
    }

    // Post-join calls (the quiescent verification sweep, summary())
    // must hit the registered counters and the merged report directly
    // — drop the shard slots so the sequential paths take over.
    shardCounts.clear();
    shardReports.clear();
}

std::size_t
StorageFaultInjector::pendingFlips() const
{
    std::size_t n = 0;
    for (const ArrayInfo &a : arrays)
        n += a.pending.size();
    return n;
}

StorageSummary
StorageFaultInjector::summary() const
{
    StorageSummary s;
    s.enabled = true;
    s.flips = statFlips.value();
    s.corrected = statCorrected.value();
    s.poisoned = statPoisoned.value();
    s.scrubRepairs = statScrubRepairs.value();
    s.poisonConsumed = statPoisonConsumed.value();
    s.metaCorrected = statMetaCorrected.value();
    s.metaUncorrectable = statMetaUncorrectable.value();
    return s;
}

void
StorageFaultInjector::regStats(StatRegistry &reg,
                               const std::string &prefix)
{
    // Registered only when the subsystem is enabled, so the disabled
    // stat namespace (and every stat hash over it) is unchanged.
    reg.addCounter(prefix + ".storage.flips", &statFlips);
    reg.addCounter(prefix + ".storage.eccCorrected", &statCorrected);
    reg.addCounter(prefix + ".storage.linesPoisoned", &statPoisoned);
    reg.addCounter(prefix + ".storage.scrubRepairs", &statScrubRepairs);
    reg.addCounter(prefix + ".storage.poisonConsumed",
                   &statPoisonConsumed);
    reg.addCounter(prefix + ".storage.metaCorrected", &statMetaCorrected);
    reg.addCounter(prefix + ".storage.metaUncorrectable",
                   &statMetaUncorrectable);
}

void
StorageFaultInjector::serialize(JsonValue &out) const
{
    out = JsonValue::makeObject();
    out.set("oneShotArmed", JsonValue(std::uint64_t(oneShotArmed)));

    JsonValue sarr = JsonValue::makeArray();
    for (std::size_t id = 0; id < streams.size(); ++id) {
        if (!streams[id])
            continue;
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(std::uint64_t(id)));
        for (std::uint64_t word : streams[id]->state())
            row.push(JsonValue(word));
        sarr.push(std::move(row));
    }
    out.set("streams", std::move(sarr));

    // Latent flips live per array now, but the snapshot keeps the
    // original [key, bit] rows in global key order, so checkpoint
    // text is unchanged from the single-map era.
    std::vector<std::pair<std::uint64_t, std::uint16_t>> rows;
    for (std::size_t id = 0; id < arrays.size(); ++id)
        for (const auto &[block, latent] : arrays[id].pending)
            rows.emplace_back(key(unsigned(id), block), latent.bit);
    std::sort(rows.begin(), rows.end());
    JsonValue parr = JsonValue::makeArray();
    for (const auto &[k, bit] : rows) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(k));
        row.push(JsonValue(std::uint64_t(bit)));
        parr.push(std::move(row));
    }
    out.set("pending", std::move(parr));
}

void
StorageFaultInjector::restore(const JsonValue &in)
{
    oneShotArmed = in.at("oneShotArmed").asUInt() != 0;

    streams.clear();
    for (const JsonValue &row : in.at("streams").items()) {
        if (row.items().size() != 5)
            throw SimError("storage fault restore: malformed stream row",
                           "snapshot");
        unsigned id = unsigned(row.items().at(0).asUInt());
        std::array<std::uint64_t, 4> st;
        for (int i = 0; i < 4; ++i)
            st[std::size_t(i)] = row.items().at(std::size_t(i + 1)).asUInt();
        streamFor(id).setState(st);
    }

    for (ArrayInfo &a : arrays)
        a.pending.clear();
    for (const JsonValue &row : in.at("pending").items()) {
        if (row.items().size() != 2)
            throw SimError("storage fault restore: malformed latent row",
                           "snapshot");
        std::uint64_t k = row.items().at(0).asUInt();
        unsigned id = unsigned(k & (MaxArrays - 1));
        Addr block = Addr(k & ~std::uint64_t(MaxArrays - 1));
        if (id >= arrays.size())
            throw SimError("storage fault restore: latent row names an "
                           "unregistered array",
                           "snapshot");
        arrays[id].pending.emplace(
            block, Latent{std::uint16_t(row.items().at(1).asUInt())});
    }
}

} // namespace hsc
