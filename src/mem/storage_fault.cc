#include "mem/storage_fault.hh"

#include <sstream>

#include "obs/tracer.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{

namespace
{

constexpr unsigned BitsPerLine = BlockSizeBytes * 8;

/** Arrays register with ids below this so (addr | id) keys stay
 *  collision-free (block alignment zeroes the low BlockShift bits). */
constexpr unsigned MaxArrays = BlockSizeBytes;

/**
 * SplitMix64-style mix of (seed, array id), the same construction the
 * wire-fate injector uses for links: every array gets an independent
 * stream that survives renames and host-side threading.
 */
std::uint64_t
mixSeed(std::uint64_t seed, unsigned array_id)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (array_id + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::string_view
containmentKindName(ContainmentReport::Kind k)
{
    switch (k) {
      case ContainmentReport::Kind::None: return "none";
      case ContainmentReport::Kind::PoisonConsumed:
        return "poison-consumed";
      case ContainmentReport::Kind::MetadataUncorrectable:
        return "metadata-uncorrectable";
    }
    return "?";
}

} // namespace

std::string
ContainmentReport::brief() const
{
    if (!contained())
        return "not contained";
    std::ostringstream os;
    os << "storage fault contained (" << containmentKindName(kind)
       << ") at tick " << atTick << ": " << consumer << " addr 0x"
       << std::hex << addr << std::dec;
    return os.str();
}

void
ContainmentReport::print(std::ostream &os) const
{
    os << "=== ContainmentReport ===\n"
       << "kind: " << containmentKindName(kind) << "\n"
       << "tick: " << atTick << "\n"
       << "consumer: " << consumer << "\n"
       << "addr: 0x" << std::hex << addr << std::dec << "\n"
       << "eccCorrected: " << corrected << "\n"
       << "linesPoisoned: " << poisoned << "\n"
       << "scrubRepairs: " << scrubRepairs << "\n"
       << "poisonConsumed: " << poisonConsumed << "\n";
    if (lastCheckpointTick)
        os << "lastCheckpointTick: " << lastCheckpointTick << "\n";
    else
        os << "lastCheckpointTick: none\n";
}

StorageFaultInjector::StorageFaultInjector(const StorageFaultConfig &cfg)
    : cfg(cfg), oneShotArmed(cfg.flipAtTick > 0)
{
}

unsigned
StorageFaultInjector::registerArray(const std::string &name)
{
    panic_if(arrays.size() >= MaxArrays,
             "storage fault: too many protected arrays");
    arrays.push_back(ArrayInfo{name, false});
    return unsigned(arrays.size() - 1);
}

unsigned
StorageFaultInjector::registerMetaArray(const std::string &name)
{
    panic_if(arrays.size() >= MaxArrays,
             "storage fault: too many protected arrays");
    arrays.push_back(ArrayInfo{name, true});
    return unsigned(arrays.size() - 1);
}

void
StorageFaultInjector::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl("storage", ObsCtrlKind::Other);
}

Rng &
StorageFaultInjector::streamFor(unsigned array_id)
{
    if (array_id >= streams.size())
        streams.resize(array_id + 1);
    if (!streams[array_id]) {
        streams[array_id] =
            std::make_unique<Rng>(mixSeed(cfg.seed, array_id));
    }
    return *streams[array_id];
}

void
StorageFaultInjector::corrupt(DataBlock &data, unsigned bit, bool dbl)
{
    bit %= BitsPerLine;
    data.raw()[bit / 8] ^= std::uint8_t(1u << (bit % 8));
    if (dbl) {
        unsigned b2 = bit ^ 1;
        data.raw()[b2 / 8] ^= std::uint8_t(1u << (b2 % 8));
    }
}

void
StorageFaultInjector::obsEmit(std::uint64_t obs_id, ObsPhase phase,
                              Addr addr, Tick now)
{
    if (tracer && obs_id)
        tracer->emit(obs_id, phase, obsCtrl, addr, now);
}

void
StorageFaultInjector::access(unsigned array_id, Addr addr,
                             DataBlock &data, Tick now,
                             std::uint64_t obs_id)
{
    Addr block = blockAlign(addr);
    bool inject = false;
    bool dbl = false;
    unsigned bit = 0;

    if (oneShotArmed && now >= cfg.flipAtTick) {
        // Deterministic one-shot uncorrectable: no stream draw, so it
        // cannot perturb the probabilistic schedule around it.
        oneShotArmed = false;
        inject = true;
        dbl = true;
    } else if (cfg.flipPer10kAccesses) {
        // Fixed two draws per access (chance + fault shape), so the
        // k-th draw of an array is a pure function of its access
        // count — the wire-fate economy.
        Rng &rng = streamFor(array_id);
        std::uint64_t chance = rng.next();
        std::uint64_t shape = rng.next();
        if (chance % 10000 < cfg.flipPer10kAccesses) {
            inject = true;
            bit = unsigned((shape >> 32) % BitsPerLine);
            dbl = shape % 10000 < cfg.doublePer10k;
        }
    }

    std::uint64_t k = key(array_id, block);
    auto it = pending.find(k);

    if (inject) {
        ++statFlips;
        if (!cfg.ecc) {
            // No ECC: the flip lands in the stored bits and the array
            // simply lies from now on.  The coherence checker's
            // shadow compare is the only thing standing.
            corrupt(data, bit, dbl);
            return;
        }
        if (dbl || it != pending.end()) {
            // Uncorrectable: a double-bit event, or a second flip on
            // a line already carrying a latent one.  Corrupt the
            // stored bytes for real and poison the line.
            corrupt(data, bit, dbl);
            if (it != pending.end())
                pending.erase(it);
            data.setPoisoned(true);
            ++statPoisoned;
            obsEmit(obs_id, ObsPhase::LinePoisoned, block, now);
            return;
        }
        it = pending.emplace(k, Latent{std::uint16_t(bit)}).first;
    }

    if (!cfg.ecc || it == pending.end())
        return;

    // SECDED corrects the latent single on the fly: the consumer sees
    // clean data, but the stored bit stays flipped until the scrubber
    // or a full-line overwrite repairs it.
    ++statCorrected;
    obsEmit(obs_id, ObsPhase::EccCorrected, block, now);
}

void
StorageFaultInjector::metaAccess(unsigned array_id, Addr addr, Tick now)
{
    // Metadata stays SECDED-protected even in the ECC-off validation
    // mode: corrupted state bits would break the protocol arbitrarily
    // rather than produce checkable wrong data.
    if (!cfg.flipPer10kAccesses || !cfg.ecc)
        return;
    Rng &rng = streamFor(array_id);
    std::uint64_t chance = rng.next();
    std::uint64_t shape = rng.next();
    if (chance % 10000 >= cfg.flipPer10kAccesses)
        return;
    if (shape % 10000 < cfg.doublePer10k) {
        // No data path exists for poisoned metadata: containment
        // fires right here.
        ++statMetaUncorrectable;
        trip(ContainmentReport::Kind::MetadataUncorrectable,
             arrays[array_id].name, blockAlign(addr), now);
    } else {
        ++statMetaCorrected;
    }
}

void
StorageFaultInjector::noteFullOverwrite(unsigned array_id, Addr addr)
{
    pending.erase(key(array_id, blockAlign(addr)));
}

void
StorageFaultInjector::noteConsumption(const std::string &consumer,
                                      Addr addr, const DataBlock &data,
                                      Tick now, std::uint64_t obs_id)
{
    if (!data.poisoned())
        return;
    ++statPoisonConsumed;
    obsEmit(obs_id, ObsPhase::PoisonConsumed, blockAlign(addr), now);
    trip(ContainmentReport::Kind::PoisonConsumed, consumer,
         blockAlign(addr), now);
}

void
StorageFaultInjector::scrubSweep(Tick now)
{
    (void)now;
    // Every latent fault is a single-bit flip (doubles poison at
    // injection time), so the sweep repairs everything outstanding.
    std::size_t repaired = pending.size();
    pending.clear();
    statScrubRepairs += repaired;
}

void
StorageFaultInjector::trip(ContainmentReport::Kind kind,
                           const std::string &consumer, Addr addr,
                           Tick now)
{
    if (report.contained())
        return; // first trip wins; the run is already stopping
    report.kind = kind;
    report.atTick = now;
    report.consumer = consumer;
    report.addr = addr;
    report.corrected = statCorrected.value() + statMetaCorrected.value();
    report.poisoned = statPoisoned.value();
    report.scrubRepairs = statScrubRepairs.value();
    report.poisonConsumed = statPoisonConsumed.value();
}

StorageSummary
StorageFaultInjector::summary() const
{
    StorageSummary s;
    s.enabled = true;
    s.flips = statFlips.value();
    s.corrected = statCorrected.value();
    s.poisoned = statPoisoned.value();
    s.scrubRepairs = statScrubRepairs.value();
    s.poisonConsumed = statPoisonConsumed.value();
    s.metaCorrected = statMetaCorrected.value();
    s.metaUncorrectable = statMetaUncorrectable.value();
    return s;
}

void
StorageFaultInjector::regStats(StatRegistry &reg,
                               const std::string &prefix)
{
    // Registered only when the subsystem is enabled, so the disabled
    // stat namespace (and every stat hash over it) is unchanged.
    reg.addCounter(prefix + ".storage.flips", &statFlips);
    reg.addCounter(prefix + ".storage.eccCorrected", &statCorrected);
    reg.addCounter(prefix + ".storage.linesPoisoned", &statPoisoned);
    reg.addCounter(prefix + ".storage.scrubRepairs", &statScrubRepairs);
    reg.addCounter(prefix + ".storage.poisonConsumed",
                   &statPoisonConsumed);
    reg.addCounter(prefix + ".storage.metaCorrected", &statMetaCorrected);
    reg.addCounter(prefix + ".storage.metaUncorrectable",
                   &statMetaUncorrectable);
}

void
StorageFaultInjector::serialize(JsonValue &out) const
{
    out = JsonValue::makeObject();
    out.set("oneShotArmed", JsonValue(std::uint64_t(oneShotArmed)));

    JsonValue sarr = JsonValue::makeArray();
    for (std::size_t id = 0; id < streams.size(); ++id) {
        if (!streams[id])
            continue;
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(std::uint64_t(id)));
        for (std::uint64_t word : streams[id]->state())
            row.push(JsonValue(word));
        sarr.push(std::move(row));
    }
    out.set("streams", std::move(sarr));

    JsonValue parr = JsonValue::makeArray();
    for (const auto &[k, latent] : pending) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(k));
        row.push(JsonValue(std::uint64_t(latent.bit)));
        parr.push(std::move(row));
    }
    out.set("pending", std::move(parr));
}

void
StorageFaultInjector::restore(const JsonValue &in)
{
    oneShotArmed = in.at("oneShotArmed").asUInt() != 0;

    streams.clear();
    for (const JsonValue &row : in.at("streams").items()) {
        if (row.items().size() != 5)
            throw SimError("storage fault restore: malformed stream row",
                           "snapshot");
        unsigned id = unsigned(row.items().at(0).asUInt());
        std::array<std::uint64_t, 4> st;
        for (int i = 0; i < 4; ++i)
            st[std::size_t(i)] = row.items().at(std::size_t(i + 1)).asUInt();
        streamFor(id).setState(st);
    }

    pending.clear();
    for (const JsonValue &row : in.at("pending").items()) {
        if (row.items().size() != 2)
            throw SimError("storage fault restore: malformed latent row",
                           "snapshot");
        std::uint64_t k = row.items().at(0).asUInt();
        pending.emplace(
            k, Latent{std::uint16_t(row.items().at(1).asUInt())});
    }
}

} // namespace hsc
