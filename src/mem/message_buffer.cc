#include "mem/message_buffer.hh"

#include <algorithm>

#include "sim/fault_injector.hh"
#include "sim/sim_error.hh"

namespace hsc
{

void
MessageBuffer::attachFaultInjector(FaultInjector *fi)
{
    fault = fi;
    dead = fi && fi->isDead(_name);
}

void
MessageBuffer::enqueue(Msg msg)
{
    if (!consumer)
        throw SimError("link '" + _name + "' has no consumer",
                       "message-buffer");
    ++numMessages;
    pending.push_back(PendingMsg{std::move(msg), eq.curTick()});
    if (pending.size() > peak)
        peak = pending.size();
    if (dead)
        return; // fault-injected dead link: the message never arrives

    Tick extra = fault ? fault->extraDelay(_name) : 0;
    // FIFO even under jitter: never deliver before the previously
    // scheduled message (ties keep insertion order in the queue).
    Tick when = std::max(eq.curTick() + latency + extra, lastDelivery);
    lastDelivery = when;
    // Delivery events fire in schedule order (times are clamped
    // non-decreasing, ties keep seq order), so the front of the
    // pending ring is always the message the firing event owns.
    eq.schedule(when, [this] { deliverFront(); },
                EventPriority::Default, /*progress=*/true);
}

void
MessageBuffer::deliverFront()
{
    Msg m = std::move(pending.front().msg);
    pending.pop_front();
    ++numDelivered;
    consumer(std::move(m));
}

} // namespace hsc
