#include "mem/message_buffer.hh"

#include <algorithm>

#include "mem/transport.hh"
#include "sim/fault_injector.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{

MessageBuffer::MessageBuffer(std::string name, EventQueue &eq,
                             Tick latency, unsigned link_id)
    : _name(std::move(name)), eq(eq), latency(latency),
      _linkId(link_id)
{
}

MessageBuffer::~MessageBuffer() = default;

void
MessageBuffer::attachFaultInjector(FaultInjector *fi)
{
    fault = fi;
    dead = fi && fi->isDead(_name);
}

void
MessageBuffer::enableTransport(const TransportConfig &tcfg,
                               Tick cycle_period)
{
    tp = std::make_unique<LinkTransport>(*this, tcfg, cycle_period);
}

void
MessageBuffer::bindCrossShard(ShardGroup &group, unsigned from_shard,
                              unsigned to_shard)
{
    panic_if(xchan != nullptr, "link '%s' already cross-shard",
             _name.c_str());
    panic_if(latency < group.lookahead(),
             "link '%s': latency %llu below the lookahead %llu — the "
             "conservative window would miss its deliveries",
             _name.c_str(), (unsigned long long)latency,
             (unsigned long long)group.lookahead());
    srcEq = &group.queue(from_shard);
    if (tp) {
        // Transport path: the LinkTransport owns the wire, so it owns
        // the shard crossing too — its sender half (window, timers,
        // fault draws) runs on from_shard and its wire ring crosses
        // to the receiver.  enqueue() keeps handing to tp->send().
        tp->bindCrossShard(group, from_shard, to_shard);
        return;
    }
    xchan = std::make_unique<MsgChannel>(*this);
    group.addChannel(to_shard, xchan.get());
}

void
MessageBuffer::MsgChannel::push(Tick when, Msg &&m)
{
    panic_if(!ring.push(TimedMsg{when, std::move(m)}),
             "cross-shard link overflow (%zu messages in one window)",
             Capacity);
}

void
MessageBuffer::MsgChannel::drain(Tick bound)
{
    // Arrival ticks are monotonic per link (one sender, fixed
    // latency, FIFO ring): stopping at the first at-or-past-bound
    // entry drains exactly this window's deliveries, independent of
    // which same-window pushes happen to be visible already.
    while (TimedMsg *t = ring.peekFront()) {
        if (t->when >= bound)
            break;
        Tick when = t->when;
        Msg m = std::move(t->msg);
        ring.popFront();
        sink.channelDeliver(when, std::move(m));
    }
}

void
MessageBuffer::channelDeliver(Tick when, Msg &&m)
{
    // Arrival ticks are monotonic per link: one sender, fixed
    // latency, FIFO ring.
    panic_if(when < lastDelivery,
             "link '%s': cross-shard FIFO violated (%llu < %llu)",
             _name.c_str(), (unsigned long long)when,
             (unsigned long long)lastDelivery);
    lastDelivery = when;
    pending.push_back(PendingMsg{std::move(m), when - latency});
    if (pending.size() > peak)
        peak = pending.size();
    eq.schedule(when, [this] { deliverFront(); },
                EventPriority::Default, /*progress=*/true);
}

void
MessageBuffer::regStats(StatRegistry &reg)
{
    reg.addCounter(_name + ".messages", &numMessages);
    reg.addCounter(_name + ".delivered", &numDelivered);
    if (tp)
        tp->regStats(reg);
}

std::size_t
MessageBuffer::queueDepth() const
{
    if (tp)
        return tp->unackedCount();
    // Cross-shard in-flight entries count too (hang reports walk the
    // links after the workers have joined, so the read is safe), as
    // do messages a dead cross-shard link swallowed at enqueue.
    return pending.size() + (xchan ? xchan->size() : 0) + deadDropped;
}

Tick
MessageBuffer::oldestPendingAge(Tick now) const
{
    if (tp)
        return tp->oldestUnackedAge(now);
    if (!pending.empty())
        return now - pending.front().enqTick;
    return deadDropped ? now - deadOldestEnq : 0;
}

void
MessageBuffer::enqueue(Msg msg)
{
    if (!consumer)
        throw SimError("link '" + _name + "' has no consumer",
                       "message-buffer");
    ++numMessages;
    if (xchan) {
        // Cross-shard send, all sender-side: dead links swallow the
        // message here (tracked for hang reports), jitter is drawn
        // from the sending shard's stream, and the arrival tick is
        // stamped from the *sending* shard's clock with the FIFO
        // clamp applied before the ring (the receiver asserts it).
        if (dead) {
            if (deadDropped++ == 0)
                deadOldestEnq = srcEq->curTick();
            return;
        }
        Tick extra = fault ? fault->extraDelay(_linkId) : 0;
        Tick when =
            std::max(srcEq->curTick() + latency + extra, sendClamp);
        sendClamp = when;
        xchan->push(when, std::move(msg));
        return;
    }
    if (tp) {
        tp->send(std::move(msg));
        peak = std::max(peak, tp->unackedCount());
        return;
    }
    pending.push_back(PendingMsg{std::move(msg), eq.curTick()});
    if (pending.size() > peak)
        peak = pending.size();
    if (dead)
        return; // fault-injected dead link: the message never arrives

    Tick extra = fault ? fault->extraDelay(_linkId) : 0;
    // FIFO even under jitter: never deliver before the previously
    // scheduled message (ties keep insertion order in the queue).
    Tick when = std::max(eq.curTick() + latency + extra, lastDelivery);
    lastDelivery = when;
    // Delivery events fire in schedule order (times are clamped
    // non-decreasing, ties keep seq order), so the front of the
    // pending ring is always the message the firing event owns.
    eq.schedule(when, [this] { deliverFront(); },
                EventPriority::Default, /*progress=*/true);
}

void
MessageBuffer::deliverFront()
{
    Msg m = std::move(pending.front().msg);
    pending.pop_front();
    ++numDelivered;
    consumer(std::move(m));
}

void
MessageBuffer::deliverTransported(Msg &&m)
{
    ++numDelivered;
    consumer(std::move(m));
}

void
MessageBuffer::serialize(JsonValue &out) const
{
    panic_if(!pending.empty(),
             "link '%s': snapshot with %zu undelivered messages "
             "(dead legacy links cannot be checkpointed)",
             _name.c_str(), pending.size());
    out.set("lastDelivery", JsonValue(lastDelivery));
    out.set("peak", JsonValue(std::uint64_t(peak)));
    if (tp) {
        JsonValue t = JsonValue::makeObject();
        tp->serialize(t);
        out.set("tp", std::move(t));
    }
}

void
MessageBuffer::restore(const JsonValue &in)
{
    lastDelivery = in.at("lastDelivery").asUInt();
    peak = std::size_t(in.at("peak").asUInt());
    if (tp)
        tp->restore(in.at("tp"));
}

} // namespace hsc
