#include "mem/message_buffer.hh"

#include <algorithm>

#include "mem/transport.hh"
#include "sim/fault_injector.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{

MessageBuffer::MessageBuffer(std::string name, EventQueue &eq,
                             Tick latency, unsigned link_id)
    : _name(std::move(name)), eq(eq), latency(latency),
      _linkId(link_id)
{
}

MessageBuffer::~MessageBuffer() = default;

void
MessageBuffer::attachFaultInjector(FaultInjector *fi)
{
    fault = fi;
    dead = fi && fi->isDead(_name);
}

void
MessageBuffer::enableTransport(const TransportConfig &tcfg,
                               Tick cycle_period)
{
    tp = std::make_unique<LinkTransport>(*this, tcfg, cycle_period);
}

void
MessageBuffer::regStats(StatRegistry &reg)
{
    reg.addCounter(_name + ".messages", &numMessages);
    reg.addCounter(_name + ".delivered", &numDelivered);
    if (tp)
        tp->regStats(reg);
}

std::size_t
MessageBuffer::queueDepth() const
{
    return tp ? tp->unackedCount() : pending.size();
}

Tick
MessageBuffer::oldestPendingAge(Tick now) const
{
    if (tp)
        return tp->oldestUnackedAge(now);
    return pending.empty() ? 0 : now - pending.front().enqTick;
}

void
MessageBuffer::enqueue(Msg msg)
{
    if (!consumer)
        throw SimError("link '" + _name + "' has no consumer",
                       "message-buffer");
    ++numMessages;
    if (tp) {
        tp->send(std::move(msg));
        peak = std::max(peak, tp->unackedCount());
        return;
    }
    pending.push_back(PendingMsg{std::move(msg), eq.curTick()});
    if (pending.size() > peak)
        peak = pending.size();
    if (dead)
        return; // fault-injected dead link: the message never arrives

    Tick extra = fault ? fault->extraDelay(_linkId) : 0;
    // FIFO even under jitter: never deliver before the previously
    // scheduled message (ties keep insertion order in the queue).
    Tick when = std::max(eq.curTick() + latency + extra, lastDelivery);
    lastDelivery = when;
    // Delivery events fire in schedule order (times are clamped
    // non-decreasing, ties keep seq order), so the front of the
    // pending ring is always the message the firing event owns.
    eq.schedule(when, [this] { deliverFront(); },
                EventPriority::Default, /*progress=*/true);
}

void
MessageBuffer::deliverFront()
{
    Msg m = std::move(pending.front().msg);
    pending.pop_front();
    ++numDelivered;
    consumer(std::move(m));
}

void
MessageBuffer::deliverTransported(Msg &&m)
{
    ++numDelivered;
    consumer(std::move(m));
}

void
MessageBuffer::serialize(JsonValue &out) const
{
    panic_if(!pending.empty(),
             "link '%s': snapshot with %zu undelivered messages "
             "(dead legacy links cannot be checkpointed)",
             _name.c_str(), pending.size());
    out.set("lastDelivery", JsonValue(lastDelivery));
    out.set("peak", JsonValue(std::uint64_t(peak)));
    if (tp) {
        JsonValue t = JsonValue::makeObject();
        tp->serialize(t);
        out.set("tp", std::move(t));
    }
}

void
MessageBuffer::restore(const JsonValue &in)
{
    lastDelivery = in.at("lastDelivery").asUInt();
    peak = std::size_t(in.at("peak").asUInt());
    if (tp)
        tp->restore(in.at("tp"));
}

} // namespace hsc
