#include "mem/message_buffer.hh"
