#include "mem/message_buffer.hh"

#include <algorithm>

#include "sim/fault_injector.hh"
#include "sim/sim_error.hh"

namespace hsc
{

void
MessageBuffer::attachFaultInjector(FaultInjector *fi)
{
    fault = fi;
    dead = fi && fi->isDead(_name);
}

void
MessageBuffer::enqueue(Msg msg)
{
    if (!consumer)
        throw SimError("link '" + _name + "' has no consumer",
                       "message-buffer");
    ++numMessages;
    pending.push_back(eq.curTick());
    if (pending.size() > peak)
        peak = pending.size();
    if (dead)
        return; // fault-injected dead link: the message never arrives

    Tick extra = fault ? fault->extraDelay(_name) : 0;
    // FIFO even under jitter: never deliver before the previously
    // scheduled message (ties keep insertion order in the queue).
    Tick when = std::max(eq.curTick() + latency + extra, lastDelivery);
    lastDelivery = when;
    eq.schedule(when, [this, m = std::move(msg)]() mutable {
        eq.notifyProgress();
        pending.pop_front();
        ++numDelivered;
        consumer(std::move(m));
    });
}

} // namespace hsc
