#include "mem/message.hh"

#include <algorithm>

namespace hsc
{

std::string_view
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::RdBlk: return "RdBlk";
      case MsgType::RdBlkS: return "RdBlkS";
      case MsgType::RdBlkM: return "RdBlkM";
      case MsgType::VicDirty: return "VicDirty";
      case MsgType::VicClean: return "VicClean";
      case MsgType::TccRdBlk: return "TccRdBlk";
      case MsgType::Atomic: return "Atomic";
      case MsgType::WriteThrough: return "WriteThrough";
      case MsgType::Flush: return "Flush";
      case MsgType::DmaRead: return "DmaRead";
      case MsgType::DmaWrite: return "DmaWrite";
      case MsgType::PrbInv: return "PrbInv";
      case MsgType::PrbDowngrade: return "PrbDowngrade";
      case MsgType::PrbResp: return "PrbResp";
      case MsgType::SysResp: return "SysResp";
      case MsgType::WBAck: return "WBAck";
      case MsgType::AtomicResp: return "AtomicResp";
      case MsgType::DmaResp: return "DmaResp";
      case MsgType::Unblock: return "Unblock";
    }
    return "?";
}

std::string_view
grantName(Grant g)
{
    switch (g) {
      case Grant::None: return "None";
      case Grant::Shared: return "Shared";
      case Grant::Exclusive: return "Exclusive";
      case Grant::Modified: return "Modified";
    }
    return "?";
}

std::string_view
atomicOpName(AtomicOp op)
{
    switch (op) {
      case AtomicOp::None: return "None";
      case AtomicOp::Add: return "Add";
      case AtomicOp::Exch: return "Exch";
      case AtomicOp::Cas: return "Cas";
      case AtomicOp::Min: return "Min";
      case AtomicOp::Max: return "Max";
      case AtomicOp::Or: return "Or";
      case AtomicOp::And: return "And";
      case AtomicOp::Load: return "Load";
    }
    return "?";
}

std::uint64_t
applyAtomic(AtomicOp op, std::uint64_t old_val, std::uint64_t operand,
            std::uint64_t operand2)
{
    switch (op) {
      case AtomicOp::Add: return old_val + operand;
      case AtomicOp::Exch: return operand;
      case AtomicOp::Cas: return old_val == operand ? operand2 : old_val;
      case AtomicOp::Min: return std::min(old_val, operand);
      case AtomicOp::Max: return std::max(old_val, operand);
      case AtomicOp::Or: return old_val | operand;
      case AtomicOp::And: return old_val & operand;
      case AtomicOp::Load:
      case AtomicOp::None:
        return old_val;
    }
    return old_val;
}

} // namespace hsc
