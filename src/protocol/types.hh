/**
 * @file
 * Shared protocol-level types: agent topology, scopes, and the
 * directory configuration knobs corresponding to the paper's
 * enhancements.
 */

#ifndef HSC_PROTOCOL_TYPES_HH
#define HSC_PROTOCOL_TYPES_HH

#include <string>
#include <string_view>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace hsc
{

/**
 * Machine-id layout of one system:
 *   [0, numCorePairs)            CorePair L2 controllers
 *   [numCorePairs, +numTccs)     TCC controllers
 *   next                         DMA controller
 *   next                         the directory itself
 */
struct Topology
{
    unsigned numCorePairs = 4;
    unsigned numTccs = 1;

    MachineId
    l2Id(unsigned i) const
    {
        panic_if(i >= numCorePairs, "bad CorePair index %u", i);
        return static_cast<MachineId>(i);
    }

    MachineId
    tccId(unsigned i = 0) const
    {
        panic_if(i >= numTccs, "bad TCC index %u", i);
        return static_cast<MachineId>(numCorePairs + i);
    }

    MachineId dmaId() const
    {
        return static_cast<MachineId>(numCorePairs + numTccs);
    }

    MachineId dirId() const
    {
        return static_cast<MachineId>(numCorePairs + numTccs + 1);
    }

    /** Number of probe-able coherence clients (L2s + TCCs). */
    unsigned numCacheClients() const { return numCorePairs + numTccs; }

    /** Clients + DMA (agents with a directory channel). */
    unsigned numClients() const { return numCacheClients() + 1; }

    bool isL2(MachineId id) const
    {
        return id >= 0 && id < static_cast<MachineId>(numCorePairs);
    }

    bool isTcc(MachineId id) const
    {
        return id >= static_cast<MachineId>(numCorePairs) &&
               id < static_cast<MachineId>(numCorePairs + numTccs);
    }

    bool isDma(MachineId id) const { return id == dmaId(); }
};

/** Memory-scope of a GPU operation (HSA scoped synchronisation). */
enum class Scope : std::uint8_t
{
    Wave,   ///< stays in the TCP
    Device, ///< global-level coherent: visible across the GPU (TCC)
    System, ///< system-level coherent: executed at the directory
};

std::string_view scopeName(Scope s);

/** Sharer/owner tracking level of the system directory (§IV). */
enum class DirTracking : std::uint8_t
{
    None,    ///< baseline stateless directory
    Owner,   ///< §IV-A: track I/S/O + owner id
    Sharers, ///< §IV-B: additionally track the sharer set
};

std::string_view dirTrackingName(DirTracking t);

/**
 * Directory / LLC configuration: one flag per paper enhancement, all
 * off reproduces the unmodified gem5 HSC baseline.
 */
struct DirConfig
{
    /** §III-A: respond on the first dirty probe ack for downgrades. */
    bool earlyDirtyResp = false;

    /** §III-B: do not write clean victims to memory. */
    bool noCleanVicToMem = false;

    /** §III-B1: additionally do not cache clean victims in the LLC. */
    bool noCleanVicToLlc = false;

    /**
     * §III-C: LLC becomes a write-back victim cache; victims write
     * only the LLC (dirty bit) and memory is updated on LLC eviction.
     * Implies noCleanVicToMem.
     */
    bool llcWriteBack = false;

    /** gem5 useL3OnWT: TCC write-throughs/atomics also write the LLC. */
    bool useL3OnWT = false;

    /** §IV: precise state tracking. */
    DirTracking tracking = DirTracking::None;

    /**
     * §IV-B limited-pointer mode: max sharers tracked exactly;
     * 0 means full-map.  Ignored unless tracking == Sharers.
     */
    unsigned maxSharerPointers = 0;

    /** Directory cache geometry (Table II: 256 KB, 32-way). */
    unsigned dirEntries = 32768;
    unsigned dirAssoc = 32;

    /** Directory replacement ("TreePLRU" or "LRU"). */
    std::string dirRepl = "TreePLRU";

    /**
     * Robustness: maximum all-ways-transacting retries of one request
     * before it is parked and surfaced as a livelock diagnostic in the
     * HangReport (instead of spinning silently forever).
     */
    unsigned maxSetConflictRetries = 4096;

    /**
     * §VII future-work ablation: prefer evicting directory entries
     * that are untracked/clean with the fewest sharers.
     */
    bool stateAwareDirRepl = false;

    /**
     * §IX future-work: a software-declared read-only region
     * [readOnlyBase, readOnlyLimit) whose reads are never tracked —
     * they are served from the LLC/memory without allocating
     * directory entries, saving directory capacity for shared
     * read-write data.  Empty (0, 0) disables the feature.
     */
    Addr readOnlyBase = 0;
    Addr readOnlyLimit = 0;

    bool
    isReadOnly(Addr a) const
    {
        return a >= readOnlyBase && a < readOnlyLimit;
    }

    bool stateful() const { return tracking != DirTracking::None; }
};

/**
 * Test-only seeded protocol bug: deliberately corrupts one transition
 * class on one block so the CoherenceChecker's detection of each
 * violation class can be validated (and RandomTester failures can be
 * induced deterministically for schedule shrinking).  Kind::None (the
 * default) compiles to a single predicted-false branch per hook.
 */
struct SeededBug
{
    enum class Kind : std::uint8_t
    {
        None,
        /** CorePair keeps its line on PrbInv (answers miss): two
         *  writers end up coexisting -> SWMR violation. */
        IgnoreInvProbe,
        /** Directory drops collected probe data: readers are served
         *  stale backing data -> data-value violation. */
        IgnoreProbeData,
        /** CorePair applies a store in S without upgrading ->
         *  no-write-permission violation. */
        WriteNoPermission,
        /** Directory sends a WBAck nobody asked for -> illegal-event
         *  violation at the receiving L2. */
        BogusWBAck,
        /** Directory loses system-visible writes touching the block's
         *  data word (byte 8..15) -> silent value corruption for the
         *  RandomTester / schedule shrinking to find. */
        DropWrite,
    };

    Kind kind = Kind::None;
    Addr addr = 0;  ///< block-aligned target address
    MachineId agent = InvalidMachineId;  ///< restrict to one client

    /** @p block must be block-aligned by the caller. */
    bool
    matchesBlock(Addr block, MachineId m = InvalidMachineId) const
    {
        return kind != Kind::None && block == addr &&
               (agent == InvalidMachineId || m == InvalidMachineId ||
                agent == m);
    }
};

std::string_view seededBugKindName(SeededBug::Kind k);
SeededBug::Kind seededBugKindFromName(std::string_view name);

} // namespace hsc

#endif // HSC_PROTOCOL_TYPES_HH
