#include "protocol/types.hh"

namespace hsc
{

std::string_view
scopeName(Scope s)
{
    switch (s) {
      case Scope::Wave: return "wave";
      case Scope::Device: return "device";
      case Scope::System: return "system";
    }
    return "?";
}

std::string_view
dirTrackingName(DirTracking t)
{
    switch (t) {
      case DirTracking::None: return "stateless";
      case DirTracking::Owner: return "owner";
      case DirTracking::Sharers: return "sharers";
    }
    return "?";
}

std::string_view
seededBugKindName(SeededBug::Kind k)
{
    switch (k) {
      case SeededBug::Kind::None: return "none";
      case SeededBug::Kind::IgnoreInvProbe: return "ignoreInvProbe";
      case SeededBug::Kind::IgnoreProbeData: return "ignoreProbeData";
      case SeededBug::Kind::WriteNoPermission: return "writeNoPermission";
      case SeededBug::Kind::BogusWBAck: return "bogusWBAck";
      case SeededBug::Kind::DropWrite: return "dropWrite";
    }
    return "?";
}

SeededBug::Kind
seededBugKindFromName(std::string_view name)
{
    for (unsigned k = 0; k <= unsigned(SeededBug::Kind::DropWrite); ++k) {
        if (seededBugKindName(SeededBug::Kind(k)) == name)
            return SeededBug::Kind(k);
    }
    fatal("unknown seeded-bug kind '%s'",
          std::string(name).c_str());
}

} // namespace hsc
