#include "protocol/types.hh"

namespace hsc
{

std::string_view
scopeName(Scope s)
{
    switch (s) {
      case Scope::Wave: return "wave";
      case Scope::Device: return "device";
      case Scope::System: return "system";
    }
    return "?";
}

std::string_view
dirTrackingName(DirTracking t)
{
    switch (t) {
      case DirTracking::None: return "stateless";
      case DirTracking::Owner: return "owner";
      case DirTracking::Sharers: return "sharers";
    }
    return "?";
}

} // namespace hsc
