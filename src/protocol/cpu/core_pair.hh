/**
 * @file
 * CorePair: two CPU cores behind L1I + 2×L1D and a shared, inclusive
 * MOESI L2 (§II-B of the paper).
 *
 * The L2 is the coherence agent visible to the system directory.  It
 * issues RdBlk / RdBlkS / RdBlkM on misses and VicDirty / VicClean on
 * (noisy) evictions, answers invalidating and downgrading probes —
 * forwarding data from M/O (dirty) and E (clean) but never from S —
 * and performs silent E→M upgrades, exactly the behaviours the
 * directory in §IV has to accommodate.
 *
 * The L1s are modelled as inclusive tag filters over the L2 (all
 * CPU-side latencies are 1 cycle in Table II, so L1 vs L2 hits are
 * timing-equivalent); their occupancy and hit rates are reported, and
 * L2 evictions/invalidations enforce inclusivity.
 */

#ifndef HSC_PROTOCOL_CPU_CORE_PAIR_HH
#define HSC_PROTOCOL_CPU_CORE_PAIR_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "mem/message_buffer.hh"
#include "mem/transport.hh"
#include "obs/span.hh"
#include "protocol/types.hh"
#include "sim/clocked.hh"
#include "sim/introspect.hh"
#include "sim/pool_alloc.hh"
#include "sim/ring_buffer.hh"
#include "sim/small_vec.hh"
#include "stats/stats.hh"

namespace hsc
{

class CoherenceChecker;
class ObsTracer;
class StorageFaultInjector;

/** Stable MOESI states of an L2 line (absent lines are Invalid). */
enum class L2State : std::uint8_t
{
    Shared,
    Exclusive,
    Owned,
    Modified,
};

std::string_view l2StateName(L2State s);

/** Parameters of one CorePair cache hierarchy. */
struct CorePairParams
{
    CacheGeometry l2Geom{4096, 8};   ///< 2 MB, 8-way (Table II)
    CacheGeometry l1dGeom{512, 2};   ///< 64 KB, 2-way
    CacheGeometry l1iGeom{256, 2};   ///< 32 KB, 2-way
    Cycles l2Latency = 1;            ///< Table II access latency
    SeededBug bug{};                 ///< test-only corruption hook
};

/**
 * The CorePair coherence controller.
 *
 * CPU cores call loads/stores/atomics directly with completion
 * callbacks; the controller exchanges messages with the directory via
 * MessageBuffers.
 */
class CorePairController : public Clocked, public ProtocolIntrospect
{
  public:
    using LoadCallback = std::function<void(std::uint64_t)>;
    using DoneCallback = std::function<void()>;

    CorePairController(std::string name, EventQueue &eq, ClockDomain clk,
                       MachineId machine_id, const CorePairParams &params,
                       MsgSink &to_dir);

    /** Attach the directory->CorePair channel. */
    void bindFromDir(MessageBuffer &from_dir);

    /** Attach the runtime invariant checker (null = disabled). */
    void attachChecker(CoherenceChecker *c) { checker = c; }

    /** Attach the observability tracer (null = disabled). */
    void attachTracer(ObsTracer *t);

    /** L2 data is a protected array (null = no storage faults). */
    void
    attachStorageFault(StorageFaultInjector *s, unsigned array_id)
    {
        storage = s;
        storageArrayId = array_id;
    }

    /** @{ Core-facing operations (async, callback on completion).
     *  Accesses must not cross a 64-byte block boundary. */
    void load(unsigned core, Addr addr, unsigned size, LoadCallback cb);
    void store(unsigned core, Addr addr, unsigned size, std::uint64_t value,
               DoneCallback cb);
    void ifetch(unsigned core, Addr addr, DoneCallback cb);
    void atomic(unsigned core, Addr addr, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2, unsigned size, LoadCallback cb);
    /** @} */

    MachineId machineId() const { return id; }

    /** True when no misses or write-backs are in flight. */
    bool idle() const { return tbes.empty() && victims.empty(); }

    void regStats(StatRegistry &reg);

    /** @{ Introspection for tests and the invariant checker. */
    bool hasLine(Addr addr) const;
    L2State lineState(Addr addr) const;
    std::uint64_t peekWord(Addr addr, unsigned size) const;
    std::size_t l2Occupancy() const { return l2.occupancy(); }
    void forEachLine(
        const std::function<void(Addr, L2State)> &fn) const;
    /** @} */

    /** @{ ProtocolIntrospect. */
    std::string introspectName() const override { return name(); }
    void inFlightTransactions(Tick now,
                              std::vector<TxnInfo> &out) const override;
    std::string stateSummary() const override;
    std::uint64_t progressCount() const override;
    /** @} */

    /** @{ Snapshot hooks.  Serialize asserts the controller is
     *  quiesced (no TBEs, victims or deferred messages); restore
     *  repopulates a freshly constructed controller. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    /** One pending core operation, queued on a miss. */
    struct CoreOp
    {
        enum class Kind : std::uint8_t { Load, Store, Ifetch, Atomic };
        Kind kind;
        unsigned core;
        Addr addr;
        unsigned size;
        std::uint64_t value;     ///< store value / atomic operand
        std::uint64_t operand2;  ///< CAS swap value
        AtomicOp aop;
        LoadCallback loadCb;
        DoneCallback doneCb;
    };

    /** Miss-status entry: one outstanding directory request per line. */
    struct Tbe
    {
        MsgType reqType;
        /** Ops merged onto this miss; almost always one or two. */
        SmallVec<CoreOp, 2> pendingOps;
        Tick startedAt = 0;
        std::uint64_t obsId = 0;
    };

    /**
     * Written-back lines awaiting WBAck; they answer probes meanwhile.
     * A line can be evicted, refetched and evicted again before the
     * first acknowledgment returns, so entries form a queue per
     * address: acks retire the oldest, probes answer from the newest.
     */
    struct VictimEntry
    {
        DataBlock data;
        bool dirty;
        /** An invalidating probe consumed this victim's data; the
         *  write-back is dead and must not answer further probes. */
        bool cancelled = false;
        Tick startedAt = 0;
        std::uint64_t obsId = 0;
    };

    struct L2Entry
    {
        L2State state = L2State::Shared;
        DataBlock data;
    };

    /** L1 lines are presence-only: data and state live in the L2. */
    struct L1Entry
    {
    };

    void handleFromDir(Msg &&msg);
    void handleProbe(const Msg &msg);
    void handleSysResp(const Msg &msg);

    /** Start processing @p op; either completes it or queues a miss. */
    void processOp(CoreOp op);

    /** Complete @p op against a present L2 line (permission checked). */
    void finishAgainstLine(CoreOp &op, L2Entry &entry);

    /** Issue a directory request for the op's line. */
    void issueRequest(Addr block, MsgType type, CoreOp op);

    /** Make room in the L2 set of @p block, writing back a victim. */
    void makeRoom(Addr block);

    /** Fill L1 tag (d-cache of @p core or i-cache) for @p block. */
    void touchL1(const CoreOp &op, Addr block);

    /** Drop the line from every L1 (inclusivity). */
    void invalidateL1s(Addr block);

    /** Charge @p extra L2 cycles, then run @p fn.  @p fn is a function
     *  template parameter so the continuation is stored inline in the
     *  event (no std::function heap traffic). */
    template <typename Fn>
    void
    after(Cycles extra, Fn &&fn)
    {
        scheduleCycles(extra, std::forward<Fn>(fn),
                       EventPriority::Default, /*progress=*/true);
    }

    /** Run the front of the deferred-message ring (probe/response). */
    void processDeferred();

    /** Tell the checker the permission this L2 now holds on @p block. */
    void notePerm(Addr block, const L2Entry *entry);

    /** Checker meta-state of @p block ("M"/"E"/"O"/"S"/"TBE"/"V"/"I"). */
    std::string_view checkerState(Addr block, MsgType incoming) const;

    const MachineId id;
    const CorePairParams params;
    MsgSink &toDir;

    CacheArray<L2Entry> l2;
    std::vector<CacheArray<L1Entry>> l1d;  ///< one per core
    CacheArray<L1Entry> l1i;               ///< shared, context-sensitive

    PoolUMap<Addr, Tbe> tbes;
    PoolUMap<Addr, SmallVec<VictimEntry, 1>> victims;

    /** Directory messages (probes/responses) awaiting their L2 access
     *  latency.  All deferrals use the same fixed delay, so their
     *  events fire in push order and the front is always the due
     *  message; the event itself captures [this] only. */
    RingBuf<Msg> deferred;

    CoherenceChecker *checker = nullptr;

    StorageFaultInjector *storage = nullptr;
    unsigned storageArrayId = 0;

    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    /** Span emission helper; no-op when untraced (id 0 / tracer off). */
    void obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr,
                 std::uint32_t arg = 0);

    // Statistics.
    Counter statLoads, statStores, statIfetches, statAtomics;
    Counter statL1dHits, statL1iHits, statL2Hits, statL2Misses;
    Counter statUpgrades;
    Counter statVicClean, statVicDirty;
    Counter statProbesRecvd, statProbeDataFwd;

    /** @{ Controller-ingress exactly-once guard (DESIGN.md §10):
     *  with the transport healthy the counter stays 0. */
    std::vector<std::unique_ptr<IngressDedup>> ingressGuards;
    Counter statIngressDups;
    bool ingressGuarded = false;
    /** @} */
};

} // namespace hsc

#endif // HSC_PROTOCOL_CPU_CORE_PAIR_HH
