#include "protocol/cpu/core_pair.hh"

#include <sstream>

#include "mem/storage_fault.hh"
#include "obs/tracer.hh"
#include "sim/coherence_checker.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{

std::string_view
l2StateName(L2State s)
{
    switch (s) {
      case L2State::Shared: return "S";
      case L2State::Exclusive: return "E";
      case L2State::Owned: return "O";
      case L2State::Modified: return "M";
    }
    return "?";
}

namespace
{

/** Extract a little-endian word of @p size bytes at @p addr. */
std::uint64_t
readWord(const DataBlock &blk, Addr addr, unsigned size)
{
    unsigned off = blockOffset(addr);
    switch (size) {
      case 1: return blk.get<std::uint8_t>(off);
      case 2: return blk.get<std::uint16_t>(off);
      case 4: return blk.get<std::uint32_t>(off);
      case 8: return blk.get<std::uint64_t>(off);
      default: panic("unsupported access size %u", size);
    }
}

void
writeWord(DataBlock &blk, Addr addr, unsigned size, std::uint64_t v)
{
    unsigned off = blockOffset(addr);
    switch (size) {
      case 1: blk.set<std::uint8_t>(off, std::uint8_t(v)); break;
      case 2: blk.set<std::uint16_t>(off, std::uint16_t(v)); break;
      case 4: blk.set<std::uint32_t>(off, std::uint32_t(v)); break;
      case 8: blk.set<std::uint64_t>(off, v); break;
      default: panic("unsupported access size %u", size);
    }
}

bool
writable(L2State s)
{
    return s == L2State::Exclusive || s == L2State::Modified;
}

} // namespace

CorePairController::CorePairController(std::string name, EventQueue &eq,
                                       ClockDomain clk, MachineId machine_id,
                                       const CorePairParams &params,
                                       MsgSink &to_dir)
    : Clocked(std::move(name), eq, clk), id(machine_id), params(params),
      toDir(to_dir), l2(this->name() + ".l2", params.l2Geom),
      l1i(this->name() + ".l1i", params.l1iGeom)
{
    l1d.reserve(2);
    for (unsigned c = 0; c < 2; ++c)
        l1d.emplace_back(this->name() + ".l1d" + std::to_string(c),
                         params.l1dGeom);
}

void
CorePairController::bindFromDir(MessageBuffer &from_dir)
{
    bindGuardedConsumer(
        from_dir, ingressGuards, statIngressDups, ingressGuarded,
        [this](Msg &&m) { handleFromDir(std::move(m)); });
}

void
CorePairController::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl(name(), ObsCtrlKind::CorePair);
}

void
CorePairController::obsEmit(std::uint64_t obs_id, ObsPhase phase,
                            Addr addr, std::uint32_t arg)
{
    if (!tracer || !obs_id)
        return;
    tracer->emit(obs_id, phase, obsCtrl, addr, curTick(), arg);
}

void
CorePairController::regStats(StatRegistry &reg)
{
    const std::string &n = name();
    reg.addCounter(n + ".loads", &statLoads);
    reg.addCounter(n + ".stores", &statStores);
    reg.addCounter(n + ".ifetches", &statIfetches);
    reg.addCounter(n + ".atomics", &statAtomics);
    reg.addCounter(n + ".l1dHits", &statL1dHits);
    reg.addCounter(n + ".l1iHits", &statL1iHits);
    reg.addCounter(n + ".l2Hits", &statL2Hits);
    reg.addCounter(n + ".l2Misses", &statL2Misses);
    reg.addCounter(n + ".upgrades", &statUpgrades);
    reg.addCounter(n + ".vicClean", &statVicClean);
    reg.addCounter(n + ".vicDirty", &statVicDirty);
    reg.addCounter(n + ".probesRecvd", &statProbesRecvd);
    reg.addCounter(n + ".probeDataFwd", &statProbeDataFwd);
    if (ingressGuarded)
        reg.addCounter(n + ".ingress.dupDrops", &statIngressDups);
}

void
CorePairController::load(unsigned core, Addr addr, unsigned size,
                         LoadCallback cb)
{
    ++statLoads;
    panic_if(blockOffset(addr) + size > BlockSizeBytes,
             "load crosses block boundary at %#llx", (unsigned long long)addr);
    CoreOp op;
    op.kind = CoreOp::Kind::Load;
    op.core = core;
    op.addr = addr;
    op.size = size;
    op.loadCb = std::move(cb);
    if (l1d[core].lookup(addr))
        ++statL1dHits;
    after(params.l2Latency, [this, op = std::move(op)]() mutable {
        processOp(std::move(op));
    });
}

void
CorePairController::store(unsigned core, Addr addr, unsigned size,
                          std::uint64_t value, DoneCallback cb)
{
    ++statStores;
    panic_if(blockOffset(addr) + size > BlockSizeBytes,
             "store crosses block boundary at %#llx",
             (unsigned long long)addr);
    CoreOp op;
    op.kind = CoreOp::Kind::Store;
    op.core = core;
    op.addr = addr;
    op.size = size;
    op.value = value;
    op.doneCb = std::move(cb);
    if (l1d[core].lookup(addr))
        ++statL1dHits;
    after(params.l2Latency, [this, op = std::move(op)]() mutable {
        processOp(std::move(op));
    });
}

void
CorePairController::ifetch(unsigned core, Addr addr, DoneCallback cb)
{
    ++statIfetches;
    CoreOp op;
    op.kind = CoreOp::Kind::Ifetch;
    op.core = core;
    op.addr = addr;
    op.size = 4;
    op.doneCb = std::move(cb);
    if (l1i.lookup(addr))
        ++statL1iHits;
    after(params.l2Latency, [this, op = std::move(op)]() mutable {
        processOp(std::move(op));
    });
}

void
CorePairController::atomic(unsigned core, Addr addr, AtomicOp aop,
                           std::uint64_t operand, std::uint64_t operand2,
                           unsigned size, LoadCallback cb)
{
    ++statAtomics;
    CoreOp op;
    op.kind = CoreOp::Kind::Atomic;
    op.core = core;
    op.addr = addr;
    op.size = size;
    op.value = operand;
    op.operand2 = operand2;
    op.aop = aop;
    op.loadCb = std::move(cb);
    after(params.l2Latency, [this, op = std::move(op)]() mutable {
        processOp(std::move(op));
    });
}

void
CorePairController::notePerm(Addr block, const L2Entry *entry)
{
    if (!checker)
        return;
    if (!entry) {
        checker->notePermission(name(), block,
                                CoherenceChecker::Perm::None, "I");
        return;
    }
    auto p = writable(entry->state) ? CoherenceChecker::Perm::Write
                                    : CoherenceChecker::Perm::Read;
    checker->notePermission(name(), block, p, l2StateName(entry->state));
}

std::string_view
CorePairController::checkerState(Addr block, MsgType incoming) const
{
    // Responses are matched to their transaction structure first so the
    // legal-event table can require it (SysResp needs a TBE, WBAck a
    // pending victim); probes report whatever the line state is.
    if (incoming == MsgType::SysResp && tbes.count(block))
        return "TBE";
    if (incoming == MsgType::WBAck) {
        auto it = victims.find(block);
        if (it != victims.end() && !it->second.empty())
            return "V";
    }
    if (const L2Entry *e = l2.peek(block))
        return l2StateName(e->state);
    if (tbes.count(block))
        return "TBE";
    auto it = victims.find(block);
    if (it != victims.end() && !it->second.empty())
        return "V";
    return "I";
}

void
CorePairController::processOp(CoreOp op)
{
    Addr block = blockAlign(op.addr);

    // An outstanding request to the line: queue behind it (MSHR merge).
    auto tbe_it = tbes.find(block);
    if (tbe_it != tbes.end()) {
        tbe_it->second.pendingOps.push_back(std::move(op));
        return;
    }

    L2Entry *entry = l2.lookup(block);
    bool needs_write = op.kind == CoreOp::Kind::Store ||
                       op.kind == CoreOp::Kind::Atomic;

    if (entry && (!needs_write || writable(entry->state))) {
        ++statL2Hits;
        finishAgainstLine(op, *entry);
        return;
    }

    if (entry) {
        if (params.bug.kind == SeededBug::Kind::WriteNoPermission &&
            params.bug.matchesBlock(block, id)) {
            // Seeded bug: apply the write in S/O without upgrading.
            ++statL2Hits;
            finishAgainstLine(op, *entry);
            return;
        }
        // Write to S/O: upgrade.  The line stays resident; the grant
        // carries permission and (possibly stale w.r.t. us) data that
        // is ignored while we still hold a valid copy.
        ++statUpgrades;
        issueRequest(block, MsgType::RdBlkM, std::move(op));
        return;
    }

    ++statL2Misses;
    MsgType req;
    if (needs_write)
        req = MsgType::RdBlkM;
    else if (op.kind == CoreOp::Kind::Ifetch)
        req = MsgType::RdBlkS;
    else
        req = MsgType::RdBlk;
    issueRequest(block, req, std::move(op));
}

void
CorePairController::finishAgainstLine(CoreOp &op, L2Entry &entry)
{
    Addr block = blockAlign(op.addr);
    touchL1(op, block);
    if (storage) {
        // Every op reads the L2 data array (stores are a
        // read-modify-write of the line), so faults can land here;
        // loads/ifetches/atomics then architecturally consume the
        // line, which is where poison must contain.
        storage->access(storageArrayId, block, entry.data, curTick());
        if (op.kind != CoreOp::Kind::Store)
            storage->noteConsumption(name(), block, entry.data,
                                     curTick());
    }
    switch (op.kind) {
      case CoreOp::Kind::Load:
        HSC_TRACE(Protocol, curTick(), "%s: load %#llx -> %llx",
                  name().c_str(), (unsigned long long)op.addr,
                  (unsigned long long)readWord(entry.data, op.addr,
                                               op.size));
        op.loadCb(readWord(entry.data, op.addr, op.size));
        break;
      case CoreOp::Kind::Ifetch:
        op.doneCb();
        break;
      case CoreOp::Kind::Store:
        HSC_TRACE(Protocol, curTick(), "%s: store %#llx val=%llx",
                  name().c_str(), (unsigned long long)op.addr,
                  (unsigned long long)op.value);
        if (checker)
            checker->noteStoreApplied(name(), block,
                                      l2StateName(entry.state),
                                      writable(entry.state));
        writeWord(entry.data, op.addr, op.size, op.value);
        entry.state = L2State::Modified; // silent E->M
        notePerm(block, &entry);
        op.doneCb();
        break;
      case CoreOp::Kind::Atomic: {
        if (checker)
            checker->noteStoreApplied(name(), block,
                                      l2StateName(entry.state),
                                      writable(entry.state));
        std::uint64_t old_val = readWord(entry.data, op.addr, op.size);
        writeWord(entry.data, op.addr, op.size,
                  applyAtomic(op.aop, old_val, op.value, op.operand2));
        entry.state = L2State::Modified;
        notePerm(block, &entry);
        op.loadCb(old_val);
        break;
      }
    }
}

void
CorePairController::issueRequest(Addr block, MsgType type, CoreOp op)
{
    Tbe &tbe = tbes[block];
    tbe.reqType = type;
    tbe.startedAt = curTick();
    tbe.pendingOps.push_back(std::move(op));

    if (tracer) {
        ObsClass cls = type == MsgType::RdBlkM ? ObsClass::CpuWrite
                       : type == MsgType::RdBlkS ? ObsClass::CpuIfetch
                                                 : ObsClass::CpuRead;
        tbe.obsId = tracer->newTxn(cls, obsCtrl, block, curTick());
    }

    Msg m;
    m.type = type;
    m.addr = block;
    m.sender = id;
    m.obsId = tbe.obsId;
    toDir.enqueue(m);
}

void
CorePairController::makeRoom(Addr block)
{
    if (l2.hasFreeWay(block))
        return;
    // Never evict a line with an outstanding upgrade request.
    auto victim = l2.findVictimAmong(block, [this](Addr a, const L2Entry &) {
        return tbes.count(a) == 0;
    });
    panic_if(tbes.count(victim.addr),
             "no evictable L2 way in set of %#llx",
             (unsigned long long)block);

    bool dirty = victim.entry->state == L2State::Modified ||
                 victim.entry->state == L2State::Owned;
    std::uint64_t vic_obs = tracer
        ? tracer->newTxn(ObsClass::WriteBack, obsCtrl, victim.addr,
                         curTick())
        : 0;
    if (storage) {
        // The eviction reads the line out of the array one last time;
        // a fault injected here rides the write-back into the system.
        storage->access(storageArrayId, victim.addr, victim.entry->data,
                        curTick(), vic_obs);
    }
    Msg m;
    m.type = dirty ? MsgType::VicDirty : MsgType::VicClean;
    m.addr = victim.addr;
    m.sender = id;
    m.hasData = true;
    m.dirty = dirty;
    m.data = victim.entry->data;
    m.obsId = vic_obs;
    HSC_TRACE(Protocol, curTick(), "%s: evict %s %#llx val=%llx",
              name().c_str(), dirty ? "VicDirty" : "VicClean",
              (unsigned long long)victim.addr,
              (unsigned long long)victim.entry->data
                  .get<std::uint64_t>(8));
    toDir.enqueue(m);
    if (dirty)
        ++statVicDirty;
    else
        ++statVicClean;

    victims[victim.addr].push_back(
        VictimEntry{victim.entry->data, dirty, false, curTick(),
                    vic_obs});
    invalidateL1s(victim.addr);
    l2.invalidate(victim.addr);
    notePerm(victim.addr, nullptr);
}

void
CorePairController::touchL1(const CoreOp &op, Addr block)
{
    CacheArray<L1Entry> &arr =
        op.kind == CoreOp::Kind::Ifetch ? l1i : l1d[op.core];
    if (arr.lookup(block))
        return;
    if (!arr.hasFreeWay(block)) {
        auto v = arr.findVictim(block);
        arr.invalidate(v.addr); // L1 evictions are silent
    }
    arr.allocate(block);
}

void
CorePairController::invalidateL1s(Addr block)
{
    for (auto &arr : l1d)
        arr.invalidate(block);
    l1i.invalidate(block);
}

void
CorePairController::handleFromDir(Msg &&msg)
{
    if (checker &&
        !checker->noteEvent(CheckerCtrl::CorePair, name(), msg.addr,
                            checkerState(blockAlign(msg.addr), msg.type),
                            msgTypeName(msg.type)))
        return;  // illegal in this state: flagged, message dropped

    switch (msg.type) {
      case MsgType::PrbInv:
      case MsgType::PrbDowngrade:
        ++statProbesRecvd;
        deferred.push_back(std::move(msg));
        after(params.l2Latency, [this] { processDeferred(); });
        break;
      case MsgType::SysResp:
        deferred.push_back(std::move(msg));
        after(params.l2Latency, [this] { processDeferred(); });
        break;
      case MsgType::WBAck: {
        auto it = victims.find(msg.addr);
        panic_if(it == victims.end() || it->second.empty(),
                 "%s: WBAck with no pending victim", name().c_str());
        obsEmit(it->second.front().obsId, ObsPhase::Complete, msg.addr);
        it->second.pop_front();
        if (it->second.empty())
            victims.erase(it);
        break;
      }
      default:
        panic("%s: unexpected message %s from directory", name().c_str(),
              std::string(msgTypeName(msg.type)).c_str());
    }
}

void
CorePairController::processDeferred()
{
    Msg m = std::move(deferred.front());
    deferred.pop_front();
    if (m.type == MsgType::SysResp)
        handleSysResp(m);
    else
        handleProbe(m);
}

void
CorePairController::handleProbe(const Msg &msg)
{
    HSC_TRACE(Protocol, curTick(), "%s: probe %s %#llx txn=%llu",
              name().c_str(), std::string(msgTypeName(msg.type)).c_str(),
              (unsigned long long)msg.addr,
              (unsigned long long)msg.txnId);
    obsEmit(msg.obsId, ObsPhase::ProbeIn, msg.addr);
    Msg resp;
    resp.type = MsgType::PrbResp;
    resp.addr = msg.addr;
    resp.sender = id;
    resp.txnId = msg.txnId;

    if (msg.type == MsgType::PrbInv &&
        params.bug.kind == SeededBug::Kind::IgnoreInvProbe &&
        params.bug.matchesBlock(msg.addr, id) && l2.peek(msg.addr)) {
        // Seeded bug: keep the line but answer "miss", so the
        // requester and we end up writers simultaneously.
        resp.hit = false;
        toDir.enqueue(resp);
        return;
    }

    L2Entry *entry = l2.lookup(msg.addr, false);
    if (entry) {
        // M/O/E probes forward the line: that read passes through the
        // data array, so it is an injection point (S never forwards).
        if (storage && entry->state != L2State::Shared) {
            storage->access(storageArrayId, msg.addr, entry->data,
                            curTick(), msg.obsId);
        }
        switch (entry->state) {
          case L2State::Modified:
          case L2State::Owned:
            resp.hit = true;
            resp.hasData = true;
            resp.dirty = true;
            resp.data = entry->data;
            ++statProbeDataFwd;
            // A dirty probe forward is the moment this value becomes
            // system-visible (it is ordered by the probing txn), and it
            // happens whether or not the directory mishandles it later.
            if (checker)
                checker->noteSystemWrite(name(), msg.addr, entry->data,
                                         FullMask);
            if (msg.type == MsgType::PrbInv) {
                invalidateL1s(msg.addr);
                l2.invalidate(msg.addr);
                notePerm(msg.addr, nullptr);
            } else {
                entry->state = L2State::Owned;
                notePerm(msg.addr, entry);
            }
            break;
          case L2State::Exclusive:
            // E forwards clean data so a tracking directory can elide
            // its LLC read even for conservatively-O lines (§IV-A).
            resp.hit = true;
            resp.hasData = true;
            resp.dirty = false;
            resp.data = entry->data;
            ++statProbeDataFwd;
            if (checker)
                checker->noteCleanData(name(), msg.addr, entry->data,
                                       "clean probe forward");
            if (msg.type == MsgType::PrbInv) {
                invalidateL1s(msg.addr);
                l2.invalidate(msg.addr);
                notePerm(msg.addr, nullptr);
            } else {
                entry->state = L2State::Shared;
                notePerm(msg.addr, entry);
            }
            break;
          case L2State::Shared:
            // Dirty sharers never forward data (Table I, footnote h).
            resp.hit = true;
            if (msg.type == MsgType::PrbInv) {
                invalidateL1s(msg.addr);
                l2.invalidate(msg.addr);
                notePerm(msg.addr, nullptr);
            }
            break;
        }
        toDir.enqueue(resp);
        return;
    }

    // A probe may race with an in-flight write-back: answer from the
    // victim buffer so the transaction that ordered ahead of our
    // victim still sees the data.
    auto vic = victims.find(msg.addr);
    if (vic != victims.end() && !vic->second.empty() &&
        !vic->second.back().cancelled) {
        VictimEntry &newest = vic->second.back();
        resp.hit = true;
        resp.hasData = true;
        resp.dirty = newest.dirty;
        resp.data = newest.data;
        if (checker) {
            if (newest.dirty)
                checker->noteSystemWrite(name(), msg.addr, newest.data,
                                         FullMask);
            else
                checker->noteCleanData(name(), msg.addr, newest.data,
                                       "victim-buffer probe forward");
        }
        if (msg.type == MsgType::PrbInv) {
            // Responsibility for the data transfers to this probe's
            // transaction: the in-flight write-back is now stale and
            // the directory must drop it when it arrives.
            newest.cancelled = true;
            resp.cancelledVic = true;
        }
        ++statProbeDataFwd;
        toDir.enqueue(resp);
        return;
    }

    resp.hit = false;
    toDir.enqueue(resp);
}

void
CorePairController::handleSysResp(const Msg &msg)
{
    auto it = tbes.find(msg.addr);
    panic_if(it == tbes.end(), "%s: SysResp with no TBE for %#llx",
             name().c_str(), (unsigned long long)msg.addr);

    L2Entry *entry = l2.lookup(msg.addr, false);
    if (!entry) {
        // Room is made at fill time (not request time) so concurrent
        // misses to one set cannot oversubscribe the free ways.
        makeRoom(msg.addr);
        entry = &l2.allocate(msg.addr);
        panic_if(!msg.hasData, "%s: fill without data for %#llx",
                 name().c_str(), (unsigned long long)msg.addr);
        entry->data = msg.data;
        // A full-line fill rewrites every cell, repairing any latent
        // flip the array held at this address.
        if (storage)
            storage->noteFullOverwrite(storageArrayId, msg.addr);
        // The fill is where response data is consumed: it must match
        // the shadow whether it came from probes or the backing store.
        if (checker)
            checker->noteCleanData(name(), msg.addr, msg.data, "L2 fill");
    }
    // else: we still hold a valid copy (upgrade); the local data is the
    // current value (all sharers are identical) so the response payload
    // is ignored.

    switch (msg.grant) {
      case Grant::Modified:
        entry->state = L2State::Modified;
        break;
      case Grant::Exclusive:
        entry->state = L2State::Exclusive;
        break;
      case Grant::Shared:
        entry->state = L2State::Shared;
        break;
      case Grant::None:
        panic("%s: SysResp without grant", name().c_str());
    }
    notePerm(msg.addr, entry);

    Msg unblock;
    unblock.type = MsgType::Unblock;
    unblock.addr = msg.addr;
    unblock.sender = id;
    unblock.txnId = msg.txnId;
    toDir.enqueue(unblock);

    obsEmit(it->second.obsId, ObsPhase::Complete, msg.addr);

    // Replay merged ops; they either complete or trigger an upgrade.
    SmallVec<CoreOp, 2> ops = std::move(it->second.pendingOps);
    tbes.erase(it);
    for (auto &op : ops)
        processOp(std::move(op));
}

bool
CorePairController::hasLine(Addr addr) const
{
    return l2.peek(addr) != nullptr;
}

L2State
CorePairController::lineState(Addr addr) const
{
    const L2Entry *e = l2.peek(addr);
    panic_if(!e, "lineState of absent line");
    return e->state;
}

std::uint64_t
CorePairController::peekWord(Addr addr, unsigned size) const
{
    const L2Entry *e = l2.peek(addr);
    panic_if(!e, "peekWord of absent line");
    return readWord(e->data, addr, size);
}

void
CorePairController::forEachLine(
    const std::function<void(Addr, L2State)> &fn) const
{
    l2.forEach([&](Addr a, const L2Entry &e) { fn(a, e.state); });
}

void
CorePairController::inFlightTransactions(Tick now,
                                         std::vector<TxnInfo> &out) const
{
    for (const auto &[addr, tbe] : tbes) {
        TxnInfo info;
        info.controller = name();
        info.addr = addr;
        std::ostringstream st;
        st << msgTypeName(tbe.reqType) << " miss, "
           << tbe.pendingOps.size() << " merged op(s)";
        info.state = st.str();
        info.waitingFor = "SysResp from directory";
        info.age = now >= tbe.startedAt ? now - tbe.startedAt : 0;
        out.push_back(std::move(info));
    }
    for (const auto &[addr, queue] : victims) {
        for (const VictimEntry &v : queue) {
            TxnInfo info;
            info.controller = name();
            info.addr = addr;
            info.state = std::string(v.dirty ? "dirty" : "clean") +
                         " victim" + (v.cancelled ? " (cancelled)" : "");
            info.waitingFor = "WBAck from directory";
            info.age = now >= v.startedAt ? now - v.startedAt : 0;
            out.push_back(std::move(info));
        }
    }
}

std::string
CorePairController::stateSummary() const
{
    std::size_t vics = 0;
    for (const auto &[addr, queue] : victims)
        vics += queue.size();
    std::ostringstream os;
    os << name() << ": " << tbes.size() << " outstanding misses, "
       << vics << " victims awaiting WBAck, " << l2.occupancy()
       << " L2 lines";
    return os.str();
}

std::uint64_t
CorePairController::progressCount() const
{
    return statLoads.value() + statStores.value() +
           statIfetches.value() + statAtomics.value();
}

void
CorePairController::serialize(JsonValue &out) const
{
    panic_if(!idle() || !deferred.empty(),
             "%s: snapshot of a non-quiesced core pair (%zu TBEs, "
             "%zu victim lines, %zu deferred messages)",
             name().c_str(), tbes.size(), victims.size(),
             deferred.size());
    JsonValue l2v = JsonValue::makeObject();
    JsonValue l2lines = JsonValue::makeArray();
    l2.forEachWay([&](unsigned set, unsigned way, Addr tag,
                      const L2Entry &e) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(std::uint64_t(set)));
        row.push(JsonValue(std::uint64_t(way)));
        row.push(JsonValue(tag));
        row.push(JsonValue(std::uint64_t(e.state)));
        row.push(JsonValue(blockToHex(e.data)));
        l2lines.push(std::move(row));
    });
    l2v.set("lines", std::move(l2lines));
    JsonValue l2repl = JsonValue::makeObject();
    l2.replacement().serialize(l2repl);
    l2v.set("repl", std::move(l2repl));
    out.set("l2", std::move(l2v));

    auto dump_tags = [](const CacheArray<L1Entry> &arr) {
        JsonValue v = JsonValue::makeObject();
        JsonValue lines = JsonValue::makeArray();
        arr.forEachWay([&](unsigned set, unsigned way, Addr tag,
                           const L1Entry &) {
            JsonValue row = JsonValue::makeArray();
            row.push(JsonValue(std::uint64_t(set)));
            row.push(JsonValue(std::uint64_t(way)));
            row.push(JsonValue(tag));
            lines.push(std::move(row));
        });
        v.set("lines", std::move(lines));
        JsonValue repl = JsonValue::makeObject();
        arr.replacement().serialize(repl);
        v.set("repl", std::move(repl));
        return v;
    };
    JsonValue l1ds = JsonValue::makeArray();
    for (const auto &arr : l1d)
        l1ds.push(dump_tags(arr));
    out.set("l1d", std::move(l1ds));
    out.set("l1i", dump_tags(l1i));

    JsonValue ingress = JsonValue::makeArray();
    for (const auto &g : ingressGuards)
        ingress.push(JsonValue(g->lastSeq));
    out.set("ingress", std::move(ingress));
}

void
CorePairController::restore(const JsonValue &in)
{
    const JsonValue &l2v = in.at("l2");
    for (const JsonValue &row : l2v.at("lines").items()) {
        const auto &c = row.items();
        L2Entry &e = l2.restoreLine(unsigned(c.at(0).asUInt()),
                                    unsigned(c.at(1).asUInt()),
                                    c.at(2).asUInt());
        std::uint64_t st = c.at(3).asUInt();
        if (st > std::uint64_t(L2State::Modified))
            throw SimError("L2 restore: unknown state " +
                               std::to_string(st), "snapshot");
        e.state = L2State(st);
        e.data = blockFromHex(c.at(4).asString());
    }
    l2.replacement().restore(l2v.at("repl"));

    auto load_tags = [](CacheArray<L1Entry> &arr, const JsonValue &v) {
        for (const JsonValue &row : v.at("lines").items()) {
            const auto &c = row.items();
            arr.restoreLine(unsigned(c.at(0).asUInt()),
                            unsigned(c.at(1).asUInt()),
                            c.at(2).asUInt());
        }
        arr.replacement().restore(v.at("repl"));
    };
    const auto &l1dv = in.at("l1d").items();
    if (l1dv.size() != l1d.size())
        throw SimError("core pair restore: L1D count mismatch",
                       "snapshot");
    for (std::size_t i = 0; i < l1d.size(); ++i)
        load_tags(l1d[i], l1dv[i]);
    load_tags(l1i, in.at("l1i"));

    const auto &ingress = in.at("ingress").items();
    if (ingress.size() != ingressGuards.size())
        throw SimError("core pair restore: ingress guard count "
                       "mismatch", "snapshot");
    for (std::size_t i = 0; i < ingress.size(); ++i)
        ingressGuards[i]->lastSeq = ingress[i].asUInt();
}

} // namespace hsc
